//! Graphviz DOT export for join trees and attack graphs.
//!
//! Useful for eyeballing the structures the classification rests on; the
//! output of the `certainty attack-graph --dot` CLI command reproduces
//! Figures 2, 4 and 5 of the paper when fed the catalog queries.

use cqa_core::attack::{AttackGraph, AttackStrength};
use cqa_query::{ConjunctiveQuery, JoinTree};

fn escape(label: &str) -> String {
    label.replace('"', "\\\"")
}

/// Renders a join tree as an undirected Graphviz graph; edge labels carry the
/// shared-variable sets, as in Figure 2 (left).
pub fn join_tree_to_dot(query: &ConjunctiveQuery, tree: &JoinTree) -> String {
    let schema = query.schema();
    let mut out = String::from("graph join_tree {\n  node [shape=box];\n");
    for (id, atom) in query.atoms_with_ids() {
        out.push_str(&format!(
            "  a{id} [label=\"{}\"];\n",
            escape(&atom.display(schema).to_string())
        ));
    }
    for (a, b, label) in tree.labeled_edges() {
        let vars: Vec<String> = label.iter().map(|v| v.to_string()).collect();
        out.push_str(&format!(
            "  a{a} -- a{b} [label=\"{{{}}}\"];\n",
            escape(&vars.join(","))
        ));
    }
    out.push_str("}\n");
    out
}

/// Renders an attack graph as a directed Graphviz graph; strong attacks are
/// drawn bold and red, weak attacks solid black, as a stand-in for the
/// paper's Figure 2 (right), Figure 4 and Figure 5.
pub fn attack_graph_to_dot(graph: &AttackGraph) -> String {
    let query = graph.query();
    let schema = query.schema();
    let mut out = String::from("digraph attack_graph {\n  node [shape=box];\n");
    for (id, atom) in query.atoms_with_ids() {
        out.push_str(&format!(
            "  a{id} [label=\"{}\"];\n",
            escape(&atom.display(schema).to_string())
        ));
    }
    for edge in graph.edges() {
        let style = match edge.strength {
            AttackStrength::Weak => "color=black",
            AttackStrength::Strong => "color=red, penwidth=2.0",
        };
        out.push_str(&format!(
            "  a{} -> a{} [{} label=\"{}\"];\n",
            edge.from, edge.to, style, edge.strength
        ));
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_query::catalog;

    #[test]
    fn q1_attack_graph_dot_marks_the_strong_attack() {
        let q = catalog::q1().query;
        let graph = AttackGraph::build(&q).unwrap();
        let dot = attack_graph_to_dot(&graph);
        assert!(dot.starts_with("digraph"));
        assert!(
            dot.contains("color=red"),
            "strong attack must be highlighted"
        );
        assert_eq!(dot.matches("->").count(), graph.edges().len());
        assert!(dot.contains("R(u, 'a', x)") || dot.contains("R(u; 'a', x)"));
    }

    #[test]
    fn join_tree_dot_lists_every_atom_and_edge() {
        let q = catalog::q1().query;
        let tree = JoinTree::build(&q).unwrap();
        let dot = join_tree_to_dot(&q, &tree);
        assert!(dot.starts_with("graph"));
        assert_eq!(dot.matches(" -- ").count(), q.len() - 1);
        assert_eq!(dot.matches("[label=\"").count(), q.len() + (q.len() - 1));
    }

    #[test]
    fn dot_output_is_parseable_enough() {
        // Quotes in constants must be escaped.
        let schema = cqa_data::Schema::from_relations([("R", 2, 1)])
            .unwrap()
            .into_shared();
        let q = cqa_query::ConjunctiveQuery::builder(schema)
            .atom(
                "R",
                [
                    cqa_query::Term::var("x"),
                    cqa_query::Term::constant("say \"hi\""),
                ],
            )
            .build()
            .unwrap();
        let graph = AttackGraph::build(&q).unwrap();
        let dot = attack_graph_to_dot(&graph);
        assert!(dot.contains("\\\"hi\\\""));
    }
}
