//! Certain first-order rewritings (the Theorem 1 machinery).
//!
//! Theorem 1 ([Wijsen 2012], restated in the paper): for an acyclic,
//! self-join-free Boolean conjunctive query `q`, `CERTAINTY(q)` is
//! first-order expressible **iff** the attack graph of `q` is acyclic. This
//! module provides the positive side as executable artifacts:
//!
//! * [`formula::FoFormula`] — a small first-order logic AST;
//! * [`rewrite::certain_rewriting`] — builds the certain rewriting `φ_q` by
//!   repeatedly eliminating an unattacked atom;
//! * [`eval`] — a model checker for [`formula::FoFormula`] over an
//!   uncertain database (viewed as a plain first-order structure), used to
//!   cross-validate the rewriting against the solvers;
//! * [`sql`] — translates the rewriting into a SQL `EXISTS` / `NOT EXISTS`
//!   query, the form in which consistent query answering is usually deployed
//!   on top of an ordinary RDBMS.

pub mod eval;
pub mod rewrite;
pub mod sql;

/// The formula AST, re-exported under its historical path (it moved to
/// `cqa-query` so that `cqa-exec` can compile formulas into physical plans
/// without depending on this crate).
pub use cqa_query::fo_formula as formula;
pub use cqa_query::fo_formula::FoFormula;
pub use rewrite::{certain_rewriting, certain_rewriting_open};
