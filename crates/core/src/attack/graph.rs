//! Attack graphs (Definitions 3–5).

use super::ClosureTable;
use cqa_graph::{cycles, DiGraph, NodeId};
use cqa_query::{AtomId, ConjunctiveQuery, JoinTree, QueryError};
use std::fmt;

/// Whether an attack is weak or strong (Definition 5).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AttackStrength {
    /// `key(G) ⊆ F^{⊞,q}`.
    Weak,
    /// `key(G) ⊄ F^{⊞,q}`.
    Strong,
}

impl fmt::Display for AttackStrength {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttackStrength::Weak => write!(f, "weak"),
            AttackStrength::Strong => write!(f, "strong"),
        }
    }
}

/// A directed attack `from ⇝ to` with its strength.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct AttackEdge {
    /// The attacking atom `F`.
    pub from: AtomId,
    /// The attacked atom `G`.
    pub to: AtomId,
    /// Weak or strong (Definition 5).
    pub strength: AttackStrength,
}

/// The attack graph of an acyclic Boolean conjunctive query (Definition 4).
///
/// Construction requires the query to be Boolean and acyclic (attack graphs
/// are only defined for acyclic queries); self-join-freeness is *not*
/// required here but is required by every theorem that consumes the graph and
/// is therefore checked by [`crate::classify::classify`] and the solvers.
#[derive(Clone, Debug)]
pub struct AttackGraph {
    query: ConjunctiveQuery,
    join_tree: JoinTree,
    closures: ClosureTable,
    edges: Vec<AttackEdge>,
    /// Adjacency view used for cycle analysis; node `i` = atom `i`.
    digraph: DiGraph<AtomId>,
}

impl AttackGraph {
    /// Builds the attack graph of `query`.
    ///
    /// Fails with [`QueryError::NotBoolean`] for non-Boolean queries and with
    /// [`QueryError::CyclicQuery`] for queries that have no join tree.
    pub fn build(query: &ConjunctiveQuery) -> Result<Self, QueryError> {
        query.require_boolean()?;
        let join_tree = JoinTree::build(query).ok_or(QueryError::CyclicQuery)?;
        let closures = ClosureTable::compute(query)?;
        let index = closures.var_index().clone();

        let mut digraph: DiGraph<AtomId> = DiGraph::new();
        for id in query.atom_ids() {
            digraph.add_node(id);
        }
        let mut edges = Vec::new();
        for f in query.atom_ids() {
            for g in query.atom_ids() {
                if f == g {
                    continue;
                }
                // Definition 3: F attacks G iff no label on the join-tree path
                // from F to G is contained in F^{+,q}.
                let attacks = join_tree
                    .path_labels(f, g)
                    .iter()
                    .all(|label| !index.set_of(label.iter()).is_subset_of(&closures.plus(f)));
                if attacks {
                    // Definition 5: the attack is weak iff key(G) ⊆ F^{⊞,q}.
                    let strength = if closures.key_set(g).is_subset_of(&closures.boxed(f)) {
                        AttackStrength::Weak
                    } else {
                        AttackStrength::Strong
                    };
                    edges.push(AttackEdge {
                        from: f,
                        to: g,
                        strength,
                    });
                    digraph.add_edge(NodeId::from_index(f), NodeId::from_index(g));
                }
            }
        }
        Ok(AttackGraph {
            query: query.clone(),
            join_tree,
            closures,
            edges,
            digraph,
        })
    }

    /// The query this graph was built for.
    pub fn query(&self) -> &ConjunctiveQuery {
        &self.query
    }

    /// The join tree used to build the graph. (By the uniqueness theorem of
    /// [Wijsen 2012] every join tree yields the same attack graph.)
    pub fn join_tree(&self) -> &JoinTree {
        &self.join_tree
    }

    /// The closure table (`F^{+,q}`, `F^{⊞,q}`).
    pub fn closures(&self) -> &ClosureTable {
        &self.closures
    }

    /// All attack edges.
    pub fn edges(&self) -> &[AttackEdge] {
        &self.edges
    }

    /// Number of atoms (vertices).
    pub fn atom_count(&self) -> usize {
        self.query.len()
    }

    /// True iff `from` attacks `to`.
    pub fn attacks(&self, from: AtomId, to: AtomId) -> bool {
        self.digraph
            .has_edge(NodeId::from_index(from), NodeId::from_index(to))
    }

    /// The strength of the attack `from ⇝ to`, if it exists.
    pub fn strength(&self, from: AtomId, to: AtomId) -> Option<AttackStrength> {
        self.edges
            .iter()
            .find(|e| e.from == from && e.to == to)
            .map(|e| e.strength)
    }

    /// The atoms attacked by `from`.
    pub fn attacked_by(&self, from: AtomId) -> Vec<AtomId> {
        self.digraph
            .successors(NodeId::from_index(from))
            .iter()
            .map(|n| n.index())
            .collect()
    }

    /// The atoms attacking `to`.
    pub fn attackers_of(&self, to: AtomId) -> Vec<AtomId> {
        self.digraph
            .predecessors(NodeId::from_index(to))
            .iter()
            .map(|n| n.index())
            .collect()
    }

    /// Atoms with no incoming attack (in-degree zero). The rewriting-based
    /// solvers repeatedly eliminate such atoms.
    pub fn unattacked_atoms(&self) -> Vec<AtomId> {
        self.query
            .atom_ids()
            .filter(|&id| self.digraph.in_degree(NodeId::from_index(id)) == 0)
            .collect()
    }

    /// True iff the attack graph contains no directed cycle.
    /// By Theorem 1 this is equivalent to `CERTAINTY(q)` being first-order
    /// expressible (for self-join-free queries).
    pub fn is_acyclic(&self) -> bool {
        cycles::is_acyclic(&self.digraph)
    }

    /// The underlying directed graph (vertex `i` = atom `i`).
    pub fn digraph(&self) -> &DiGraph<AtomId> {
        &self.digraph
    }

    /// A compact multi-line rendering, one `F -> G (strength)` line per edge.
    pub fn render(&self) -> String {
        let schema = self.query.schema();
        let mut out = String::new();
        for e in &self.edges {
            out.push_str(&format!(
                "{} -> {} ({})\n",
                self.query.atom(e.from).display(schema),
                self.query.atom(e.to).display(schema),
                e.strength
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_query::catalog;

    /// Figure 2 (right): the attack graph of q1.
    ///
    /// Atom ids: 0 = F = R(u,'a',x), 1 = G = S(y,x,z), 2 = H = T(x,y), 3 = I = P(x,z).
    #[test]
    fn figure2_attack_graph_edges() {
        let q = catalog::q1().query;
        let ag = AttackGraph::build(&q).unwrap();
        // From Example 3: F attacks G, H, I.
        assert!(ag.attacks(0, 1));
        assert!(ag.attacks(0, 2));
        assert!(ag.attacks(0, 3));
        // H attacks G but not F.
        assert!(ag.attacks(2, 1));
        assert!(!ag.attacks(2, 0));
        // The full edge set of Figure 2 (right): G attacks F; I attacks G; G attacks H?
        // Verify against the figure: edges are F->G, F->H, F->I, G->F, H->G, G->H, I->G, G->I.
        // We assert the properties stated explicitly in the paper's text instead of
        // guessing the picture: the attack from G to F exists and is the only strong one.
        assert!(ag.attacks(1, 0));
        let strong_edges: Vec<_> = ag
            .edges()
            .iter()
            .filter(|e| e.strength == AttackStrength::Strong)
            .collect();
        assert_eq!(strong_edges.len(), 1, "only strong attack is G -> F");
        assert_eq!((strong_edges[0].from, strong_edges[0].to), (1, 0));
        // Example 4: the attack F -> G is weak.
        assert_eq!(ag.strength(0, 1), Some(AttackStrength::Weak));
        // The attack graph of q1 is cyclic (F <-> G among others).
        assert!(!ag.is_acyclic());
    }

    #[test]
    fn attack_graph_requires_acyclic_queries() {
        let c3 = catalog::c_k(3).query;
        assert!(matches!(
            AttackGraph::build(&c3),
            Err(QueryError::CyclicQuery)
        ));
    }

    #[test]
    fn path_query_attack_graph_is_acyclic() {
        // {R(x;y), S(y;z)}: R attacks S (y not in R+ = {x}), S does not attack R
        // (the label {y} is contained in S+ = {y}).
        let q = catalog::fo_path2().query;
        let ag = AttackGraph::build(&q).unwrap();
        assert!(ag.attacks(0, 1));
        assert!(!ag.attacks(1, 0));
        assert!(ag.is_acyclic());
        assert_eq!(ag.unattacked_atoms(), vec![0]);
        assert_eq!(ag.strength(0, 1), Some(AttackStrength::Weak));
    }

    #[test]
    fn ac3_attack_graph_matches_figure5() {
        // Figure 5: each Ri attacks every other atom; S3 attacks nothing.
        let q = catalog::ac_k(3).query;
        let ag = AttackGraph::build(&q).unwrap();
        let s3 = 3usize;
        for i in 0..3usize {
            for j in 0..4usize {
                if i != j {
                    assert!(ag.attacks(i, j), "R{} should attack atom {}", i + 1, j);
                }
            }
        }
        for j in 0..3usize {
            assert!(!ag.attacks(s3, j), "S3 must not attack R{}", j + 1);
        }
        // All attacks are weak (Example 6 / Figure 5 caption).
        assert!(ag
            .edges()
            .iter()
            .all(|e| e.strength == AttackStrength::Weak));
        assert!(!ag.is_acyclic());
        // S3 is unattacked... no: S3 *is* attacked by every Ri; the Ri have
        // incoming attacks too, so no atom is unattacked.
        assert!(ag.unattacked_atoms().is_empty());
    }

    #[test]
    fn fig4_attack_graph_is_three_weak_terminal_two_cycles() {
        // Example 5: the attack graph consists of the cycles R1<->R2, R3<->R4,
        // R5<->R6, all weak; no attack leaves a cycle.
        let q = catalog::fig4().query;
        let ag = AttackGraph::build(&q).unwrap();
        let pairs = [(0usize, 1usize), (2, 3), (4, 5)];
        for &(a, b) in &pairs {
            assert!(ag.attacks(a, b), "{a} should attack {b}");
            assert!(ag.attacks(b, a), "{b} should attack {a}");
            assert_eq!(ag.strength(a, b), Some(AttackStrength::Weak));
            assert_eq!(ag.strength(b, a), Some(AttackStrength::Weak));
        }
        // No other attacks at all.
        assert_eq!(ag.edges().len(), 6);
        assert!(!ag.is_acyclic());
    }

    #[test]
    fn conference_query_attack_graph() {
        // {C(x,y;'Rome'), R(x;'A')}: the join-tree edge is labelled {x}, which is
        // contained in both C^{+} = {x,y} and R^{+} = {x}, so neither atom
        // attacks the other — the attack graph is empty and hence acyclic,
        // making the introduction's query first-order rewritable.
        let q = catalog::conference().query;
        let ag = AttackGraph::build(&q).unwrap();
        assert!(ag.is_acyclic());
        assert!(ag.edges().is_empty());
        assert_eq!(ag.unattacked_atoms().len(), 2);
    }

    #[test]
    fn single_atom_queries_have_empty_attack_graphs() {
        let schema = cqa_data::Schema::from_relations([("R", 2, 1)])
            .unwrap()
            .into_shared();
        let q = cqa_query::ConjunctiveQuery::builder(schema)
            .atom("R", [cqa_query::Term::var("x"), cqa_query::Term::var("y")])
            .build()
            .unwrap();
        let ag = AttackGraph::build(&q).unwrap();
        assert!(ag.edges().is_empty());
        assert!(ag.is_acyclic());
        assert_eq!(ag.unattacked_atoms(), vec![0]);
    }

    #[test]
    fn render_mentions_every_edge() {
        let q = catalog::q1().query;
        let ag = AttackGraph::build(&q).unwrap();
        let text = ag.render();
        assert_eq!(text.lines().count(), ag.edges().len());
        assert!(text.contains("strong"));
    }
}
