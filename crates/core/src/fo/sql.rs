//! SQL generation for certain first-order rewritings.
//!
//! Consistent query answering is usually deployed by rewriting the query
//! into SQL and running it on an ordinary RDBMS; this module translates the
//! guarded formulas produced by [`crate::fo::rewrite`] into a single SQL
//! `SELECT` whose `EXISTS` / `NOT EXISTS` nesting mirrors the ∃ / ∀ →
//! structure of the rewriting.
//!
//! Conventions: relation `R` of arity `n` becomes table `R` with columns
//! `c1, ..., cn`. The generated statement returns one row with a single
//! boolean-ish column `certain`.

use super::FoFormula;
use cqa_data::{Schema, Value};
use cqa_query::{QueryError, Term, Variable};
use rustc_hash::FxHashMap;

/// Translates a certain rewriting into a SQL statement.
///
/// Only the guarded shapes produced by [`crate::fo::rewrite`] are supported:
/// existential blocks whose body starts with a relational atom over the
/// quantified variables, universal blocks whose body is an implication
/// guarded by a relational atom, conjunctions, equalities and `true`.
pub fn to_sql(formula: &FoFormula, schema: &Schema) -> Result<String, QueryError> {
    let condition = translate(formula, schema, &FxHashMap::default(), &mut 0)?;
    Ok(format!(
        "SELECT CASE WHEN {condition} THEN 1 ELSE 0 END AS certain;"
    ))
}

fn literal(value: &Value) -> String {
    match value {
        Value::Int(i) => i.to_string(),
        other => format!("'{}'", other.to_string().replace('\'', "''")),
    }
}

fn term_expr(term: &Term, bindings: &FxHashMap<Variable, String>) -> Result<String, QueryError> {
    match term {
        Term::Const(c) => Ok(literal(c)),
        Term::Var(v) => bindings
            .get(v)
            .cloned()
            .ok_or_else(|| QueryError::Unsupported {
                reason: format!("variable {v} is not bound by an enclosing guard"),
            }),
    }
}

/// The FROM alias, WHERE constraints and fresh variable bindings produced by
/// translating one guard atom.
type GuardParts = (String, Vec<String>, FxHashMap<Variable, String>);

/// Translates a quantifier body guarded by `guard_atom`: produces the FROM
/// alias, the WHERE constraints induced by the guard, and the bindings for
/// the freshly guarded variables.
fn guard_constraints(
    relation: cqa_data::RelationId,
    terms: &[Term],
    quantified: &[Variable],
    schema: &Schema,
    bindings: &FxHashMap<Variable, String>,
    alias_counter: &mut usize,
) -> Result<GuardParts, QueryError> {
    let alias = format!("t{}", *alias_counter);
    *alias_counter += 1;
    let rel = schema.relation(relation);
    let mut constraints = Vec::new();
    let mut extended = bindings.clone();
    for (i, term) in terms.iter().enumerate() {
        let column = format!("{alias}.c{}", i + 1);
        match term {
            Term::Const(c) => constraints.push(format!("{column} = {}", literal(c))),
            Term::Var(v) => {
                if let Some(expr) = extended.get(v) {
                    constraints.push(format!("{column} = {expr}"));
                } else if quantified.contains(v) {
                    extended.insert(v.clone(), column);
                } else {
                    return Err(QueryError::Unsupported {
                        reason: format!("unguarded free variable {v} in atom over {}", rel.name),
                    });
                }
            }
        }
    }
    Ok((format!("{} AS {alias}", rel.name), constraints, extended))
}

fn translate(
    formula: &FoFormula,
    schema: &Schema,
    bindings: &FxHashMap<Variable, String>,
    alias_counter: &mut usize,
) -> Result<String, QueryError> {
    match formula {
        FoFormula::True => Ok("(1 = 1)".to_string()),
        FoFormula::False => Ok("(1 = 0)".to_string()),
        FoFormula::Equals(a, b) => Ok(format!(
            "({} = {})",
            term_expr(a, bindings)?,
            term_expr(b, bindings)?
        )),
        FoFormula::Not(inner) => Ok(format!(
            "NOT {}",
            translate(inner, schema, bindings, alias_counter)?
        )),
        FoFormula::And(parts) => {
            let translated: Result<Vec<String>, QueryError> = parts
                .iter()
                .map(|p| translate(p, schema, bindings, alias_counter))
                .collect();
            Ok(format!("({})", translated?.join(" AND ")))
        }
        FoFormula::Or(parts) => {
            let translated: Result<Vec<String>, QueryError> = parts
                .iter()
                .map(|p| translate(p, schema, bindings, alias_counter))
                .collect();
            Ok(format!("({})", translated?.join(" OR ")))
        }
        FoFormula::Implies(a, b) => Ok(format!(
            "(NOT {} OR {})",
            translate(a, schema, bindings, alias_counter)?,
            translate(b, schema, bindings, alias_counter)?
        )),
        FoFormula::Atom { relation, terms } => {
            // A fully-bound membership test.
            let (from, constraints, _) =
                guard_constraints(*relation, terms, &[], schema, bindings, alias_counter)?;
            let where_clause = if constraints.is_empty() {
                "1 = 1".to_string()
            } else {
                constraints.join(" AND ")
            };
            Ok(format!(
                "EXISTS (SELECT 1 FROM {from} WHERE {where_clause})"
            ))
        }
        FoFormula::Exists(vars, body) => {
            // Expect the body to be (possibly a conjunction starting with) a
            // guard atom that binds the quantified variables.
            let (guard, rest) = split_guard(body)?;
            let FoFormula::Atom { relation, terms } = guard else {
                return Err(QueryError::Unsupported {
                    reason: "existential block without a relational guard".into(),
                });
            };
            let (from, constraints, extended) =
                guard_constraints(*relation, terms, vars, schema, bindings, alias_counter)?;
            let mut where_parts = constraints;
            for part in rest {
                where_parts.push(translate(part, schema, &extended, alias_counter)?);
            }
            let where_clause = if where_parts.is_empty() {
                "1 = 1".to_string()
            } else {
                where_parts.join(" AND ")
            };
            Ok(format!(
                "EXISTS (SELECT 1 FROM {from} WHERE {where_clause})"
            ))
        }
        FoFormula::Forall(vars, body) => {
            // ∀ x̄ (guard → ψ)  ≡  NOT EXISTS (guard AND NOT ψ).
            let FoFormula::Implies(guard, psi) = body.as_ref() else {
                return Err(QueryError::Unsupported {
                    reason: "universal block must be an implication guarded by an atom".into(),
                });
            };
            let FoFormula::Atom { relation, terms } = guard.as_ref() else {
                return Err(QueryError::Unsupported {
                    reason: "universal block without a relational guard".into(),
                });
            };
            let (from, constraints, extended) =
                guard_constraints(*relation, terms, vars, schema, bindings, alias_counter)?;
            let psi_sql = translate(psi, schema, &extended, alias_counter)?;
            let mut where_parts = constraints;
            where_parts.push(format!("NOT {psi_sql}"));
            Ok(format!(
                "NOT EXISTS (SELECT 1 FROM {from} WHERE {})",
                where_parts.join(" AND ")
            ))
        }
    }
}

/// Splits a quantifier body into its leading relational guard and the rest.
fn split_guard(body: &FoFormula) -> Result<(&FoFormula, Vec<&FoFormula>), QueryError> {
    match body {
        FoFormula::Atom { .. } => Ok((body, Vec::new())),
        FoFormula::And(parts) if !parts.is_empty() => {
            if matches!(parts[0], FoFormula::Atom { .. }) {
                Ok((&parts[0], parts[1..].iter().collect()))
            } else {
                Err(QueryError::Unsupported {
                    reason: "quantifier body does not start with a relational guard".into(),
                })
            }
        }
        _ => Err(QueryError::Unsupported {
            reason: "quantifier body does not start with a relational guard".into(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fo::rewrite::certain_rewriting;
    use cqa_query::catalog;

    #[test]
    fn conference_rewriting_translates_to_sql() {
        let q = catalog::conference().query;
        let formula = certain_rewriting(&q).unwrap();
        let sql = to_sql(&formula, q.schema()).unwrap();
        assert!(sql.starts_with("SELECT CASE WHEN"));
        assert!(sql.contains("EXISTS (SELECT 1 FROM C AS"));
        assert!(sql.contains("NOT EXISTS"));
        assert!(sql.contains("'Rome'"));
        assert!(sql.contains("'A'"));
        assert!(sql.ends_with(';'));
    }

    #[test]
    fn path3_rewriting_translates_and_nests() {
        let q = catalog::fo_path3().query;
        let formula = certain_rewriting(&q).unwrap();
        let sql = to_sql(&formula, q.schema()).unwrap();
        // Three levels of elimination: at least three EXISTS and two NOT EXISTS.
        assert!(sql.matches("EXISTS").count() >= 5);
        assert!(sql.matches("NOT EXISTS").count() >= 2);
    }

    #[test]
    fn unsupported_shapes_are_reported() {
        let schema = cqa_data::Schema::from_relations([("R", 2, 1)]).unwrap();
        // ∀x (x = x → true) has no relational guard.
        let formula = FoFormula::forall(
            vec![Variable::new("x")],
            FoFormula::Implies(
                Box::new(FoFormula::Equals(Term::var("x"), Term::var("x"))),
                Box::new(FoFormula::True),
            ),
        );
        assert!(matches!(
            to_sql(&formula, &schema),
            Err(QueryError::Unsupported { .. })
        ));
    }

    #[test]
    fn string_literals_are_escaped() {
        let schema = cqa_data::Schema::from_relations([("R", 1, 1)]).unwrap();
        let r = schema.relation_id("R").unwrap();
        let formula = FoFormula::atom(r, vec![Term::constant("O'Brien")]);
        let sql = to_sql(&formula, &schema).unwrap();
        assert!(sql.contains("'O''Brien'"));
    }
}
