//! Minimal CSV fact ingestion — the first "scenario diversity" frontend.
//!
//! One CSV file becomes one relation: every record is a fact, the column
//! count is the arity, and the caller names the relation and says how many
//! leading columns form the primary key (`key_prefix`). The dialect is the
//! RFC-4180 core: fields separated by commas, optionally wrapped in double
//! quotes, with `""` inside a quoted field meaning a literal quote.
//!
//! Typing follows the document format's convention: an **unquoted** field
//! that parses as an integer becomes [`Value::Int`], everything else
//! becomes [`Value::Str`]. Quoting a field therefore forces it to stay a
//! string — `123` is the integer, `"123"` the three-character string —
//! which matters because dictionary codes order integers and strings
//! separately.
//!
//! The resulting [`UncertainDatabase`] feeds straight into
//! [`cqa_data::store::save`], which is how `certainty ingest` persists it.

use crate::{err, ParseError};
use cqa_data::{Fact, Schema, UncertainDatabase, Value};

/// Splits one CSV record into its raw fields, remembering which were
/// quoted. Errors on an unterminated quote or on characters trailing a
/// closing quote.
fn split_record(line_no: usize, text: &str) -> Result<Vec<(String, bool)>, ParseError> {
    let mut fields: Vec<(String, bool)> = Vec::new();
    let mut current = String::new();
    let mut was_quoted = false;
    let mut chars = text.chars().peekable();
    loop {
        match chars.next() {
            None => {
                fields.push((current, was_quoted));
                return Ok(fields);
            }
            Some(',') => {
                fields.push((std::mem::take(&mut current), was_quoted));
                was_quoted = false;
            }
            Some('"') if current.is_empty() && !was_quoted => {
                was_quoted = true;
                loop {
                    match chars.next() {
                        None => return Err(err(line_no, "unterminated quoted field")),
                        Some('"') if chars.peek() == Some(&'"') => {
                            chars.next();
                            current.push('"');
                        }
                        Some('"') => break,
                        Some(c) => current.push(c),
                    }
                }
                if !matches!(chars.peek(), None | Some(',')) {
                    return Err(err(line_no, "unexpected characters after closing quote"));
                }
            }
            Some('"') => return Err(err(line_no, "quote inside an unquoted field")),
            Some(c) => current.push(c),
        }
    }
}

/// Parses one CSV record into typed values: unquoted integers become
/// [`Value::Int`], everything else [`Value::Str`].
pub fn parse_record(line_no: usize, text: &str) -> Result<Vec<Value>, ParseError> {
    Ok(split_record(line_no, text)?
        .into_iter()
        .map(|(field, quoted)| {
            if !quoted {
                if let Ok(i) = field.trim().parse::<i64>() {
                    return Value::Int(i);
                }
            }
            Value::str(field)
        })
        .collect())
}

/// Ingests CSV text as one relation named `relation` whose first
/// `key_prefix` columns form the primary key. The arity is the column
/// count of the first record; every later record must match it. Blank
/// lines are skipped; duplicate records collapse (inserting an existing
/// fact is a no-op).
pub fn database_from_csv(
    text: &str,
    relation: &str,
    key_prefix: usize,
) -> Result<UncertainDatabase, ParseError> {
    let mut records: Vec<(usize, Vec<Value>)> = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        records.push((i + 1, parse_record(i + 1, line)?));
    }
    let Some((first_line, first)) = records.first() else {
        return Err(err(0, "the CSV has no records"));
    };
    let arity = first.len();
    if key_prefix == 0 || key_prefix > arity {
        return Err(err(
            *first_line,
            format!("key prefix must be between 1 and the arity ({arity}), got {key_prefix}"),
        ));
    }
    let mut schema = Schema::new();
    schema
        .add_relation(relation, arity, key_prefix)
        .map_err(|e| err(0, e.to_string()))?;
    let schema = schema.into_shared();
    let rel = schema.relation_id(relation).expect("just added");
    let mut database = UncertainDatabase::new(schema.clone());
    for (line_no, values) in records {
        if values.len() != arity {
            return Err(err(
                line_no,
                format!(
                    "expected {arity} fields (the width of the first record), got {}",
                    values.len()
                ),
            ));
        }
        let fact = Fact::checked(&schema, rel, values).map_err(|e| err(line_no, e.to_string()))?;
        database
            .insert(fact)
            .map_err(|e| err(line_no, e.to_string()))?;
    }
    Ok(database)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typed_fields_and_key_prefix() {
        let db =
            database_from_csv("PODS,2016,Rome\nPODS,2016,Paris\nKDD,2017,Rome\n", "C", 2).unwrap();
        assert_eq!(db.fact_count(), 3);
        assert_eq!(db.block_count(), 2);
        let rel = db.schema().relation_id("C").unwrap();
        assert_eq!(db.schema().relation(rel).arity(), 3);
        assert_eq!(db.schema().relation(rel).key_len(), 2);
        let years: Vec<&Value> = db.facts().map(|f| f.value(1)).collect();
        assert!(years.iter().all(|v| matches!(v, Value::Int(_))));
    }

    #[test]
    fn quoting_forces_strings_and_escapes_quotes() {
        let db = database_from_csv("\"123\",\"say \"\"hi\"\", x\",plain\n", "R", 1).unwrap();
        let fact = db.facts().next().unwrap();
        assert_eq!(fact.value(0), &Value::str("123"));
        assert_eq!(fact.value(1), &Value::str("say \"hi\", x"));
        assert_eq!(fact.value(2), &Value::str("plain"));
    }

    #[test]
    fn malformed_records_carry_line_numbers() {
        let unterminated = database_from_csv("a,b\nc,\"oops\n", "R", 1).unwrap_err();
        assert_eq!(unterminated.line, 2);
        let ragged = database_from_csv("a,b\nc\n", "R", 1).unwrap_err();
        assert_eq!(ragged.line, 2);
        let empty = database_from_csv("\n  \n", "R", 1).unwrap_err();
        assert!(empty.message.contains("no records"));
        let bad_key = database_from_csv("a,b\n", "R", 3).unwrap_err();
        assert!(bad_key.message.contains("key prefix"));
        let stray = database_from_csv("\"a\"b,c\n", "R", 1).unwrap_err();
        assert!(stray.message.contains("after closing quote"));
        let inner = database_from_csv("a\"b\n", "R", 1).unwrap_err();
        assert!(inner.message.contains("unquoted"));
    }

    #[test]
    fn duplicates_collapse_and_blocks_form() {
        let db = database_from_csv("k,1\nk,1\nk,2\n", "R", 1).unwrap();
        assert_eq!(db.fact_count(), 2);
        assert_eq!(db.block_count(), 1);
        assert_eq!(db.repair_count(), Some(2));
    }
}
