//! The Theorem 3 solver: weak, terminal attack cycles.
//!
//! If every cycle of the attack graph is weak **and terminal** (no attack
//! leaves a cycle), then `CERTAINTY(q)` is in P. The algorithm follows the
//! proof of Theorem 3:
//!
//! 1. purify the database (Lemma 1);
//! 2. while some atom is unattacked, eliminate it exactly as in the
//!    first-order rewriting (Corollary 8.11 of [Wijsen 2012] + Lemma 8);
//!    by Lemma 5 the substituted residual query still has only weak terminal
//!    cycles;
//! 3. otherwise every atom lies on a cycle; by Lemma 6 the attack graph is a
//!    disjoint union of weak 2-cycles `F_i ⇄ G_i`. Partition the facts of
//!    each pair of relations by the values of the variables shared with the
//!    other cycles (which, by Lemma 7, sit inside both keys), decide each
//!    partition with the two-atom solver, keep the certain partitions
//!    (`⌈db_i⌉` in the paper's notation), and finally check whether their
//!    union satisfies `q` (Sublemma 5).

use super::{rewriting::eliminate_unattacked_atom, CertaintySolver, TwoAtomSolver};
use crate::attack::{AttackGraph, CycleAnalysis};
use cqa_data::{Fact, FxHashMap, UncertainDatabase, Value};
use cqa_query::{eval, purify, ConjunctiveQuery, QueryError, Valuation, Variable};
use std::collections::BTreeSet;

/// Certainty solver for queries whose attack cycles are all weak and terminal.
pub struct TerminalCycleSolver {
    query: ConjunctiveQuery,
}

impl TerminalCycleSolver {
    /// Builds the solver. Fails if the query is not Boolean / has self-joins /
    /// is cyclic, or if its attack graph has a strong or non-terminal cycle
    /// (in which case Theorem 3 does not apply).
    pub fn new(query: &ConjunctiveQuery) -> Result<Self, QueryError> {
        query.require_boolean()?;
        query.require_self_join_free()?;
        let graph = AttackGraph::build(query)?;
        let cycles = CycleAnalysis::analyze(&graph);
        if cycles.has_strong_cycle() || !cycles.all_cycles_terminal() {
            return Err(QueryError::CyclicQuery);
        }
        Ok(TerminalCycleSolver {
            query: query.clone(),
        })
    }

    fn certain(query: &ConjunctiveQuery, db: &UncertainDatabase) -> bool {
        if query.is_empty() {
            return true;
        }
        let db = purify::purify(db, query);
        if db.is_empty() {
            return false;
        }
        let graph = AttackGraph::build(query)
            .expect("substitution and atom removal preserve acyclicity (Lemma 5)");
        if let Some(unattacked) = graph.unattacked_atoms().into_iter().next() {
            return eliminate_unattacked_atom(query, unattacked, &db, &Self::certain);
        }
        Self::base_case(query, &graph, &db)
    }

    /// Base case: every atom is attacked, so the attack graph is a disjoint
    /// union of weak 2-cycles (Lemma 6).
    fn base_case(query: &ConjunctiveQuery, graph: &AttackGraph, db: &UncertainDatabase) -> bool {
        let cycles = CycleAnalysis::analyze(graph);
        debug_assert!(cycles.all_cycles_weak() && cycles.all_cycles_terminal());
        let pairs = cycles.two_cycles();
        debug_assert_eq!(
            pairs
                .iter()
                .flat_map(|&(a, b)| [a, b])
                .collect::<BTreeSet<_>>()
                .len(),
            query.len(),
            "every atom lies on exactly one 2-cycle in the base case"
        );

        let mut kept_union: Vec<Fact> = Vec::new();
        for (idx, &(a, b)) in pairs.iter().enumerate() {
            let pair_query = query.restricted_to(&[a, b]);
            // Variables of this pair that also occur in some other pair
            // (the paper's x̄_i); by Lemma 7 they lie in both keys.
            let own_vars = pair_query.vars();
            let shared: Vec<Variable> = own_vars
                .iter()
                .filter(|v| {
                    pairs.iter().enumerate().any(|(j, &(c, d))| {
                        j != idx && (query.atom(c).contains_var(v) || query.atom(d).contains_var(v))
                    })
                })
                .cloned()
                .collect();

            // Partition the pair's facts by the value vector of the shared
            // variables, visiting only the two relations of the pair through
            // the index (the database also holds the other pairs' facts).
            let solver = TwoAtomSolver::new(&pair_query)
                .expect("pair queries are Boolean and self-join-free");
            let index = db.index();
            let mut partitions: FxHashMap<Vec<Value>, Vec<Fact>> = FxHashMap::default();
            for atom in [pair_query.atom(0), pair_query.atom(1)] {
                for fact in index.relation_facts(atom.relation()) {
                    let theta = Valuation::new()
                        .unify_with_fact(atom, fact, query.schema())
                        .expect("purified facts match their atom");
                    let vector = theta
                        .project(&shared)
                        .expect("shared variables occur in both atoms of the pair");
                    partitions.entry(vector).or_default().push(fact.clone());
                }
            }

            // ⌈db_i⌉: the union of the partitions that are certain for the pair query.
            for (_, facts) in partitions {
                let partition_db = db.with_facts(facts.iter().cloned());
                if solver.is_certain(&partition_db) {
                    kept_union.extend(facts);
                }
            }
        }

        // Sublemma 5: db ∈ CERTAINTY(q) iff the union of the kept partitions
        // satisfies q.
        let union_db = db.with_facts(kept_union);
        eval::satisfies(&union_db, query)
    }
}

impl CertaintySolver for TerminalCycleSolver {
    fn name(&self) -> &'static str {
        "terminal-cycles"
    }

    fn query(&self) -> &ConjunctiveQuery {
        &self.query
    }

    fn is_certain(&self, db: &UncertainDatabase) -> bool {
        Self::certain(&self.query, db)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solvers::oracle::ExactOracle;
    use cqa_query::catalog;

    #[test]
    fn applicability_matches_the_classification() {
        assert!(TerminalCycleSolver::new(&catalog::fig4().query).is_ok());
        assert!(TerminalCycleSolver::new(&catalog::c2_swap().query).is_ok());
        // Acyclic attack graphs are fine too (no cycles at all).
        assert!(TerminalCycleSolver::new(&catalog::fo_path2().query).is_ok());
        // Strong cycles and non-terminal cycles are rejected.
        assert!(TerminalCycleSolver::new(&catalog::q1().query).is_err());
        assert!(TerminalCycleSolver::new(&catalog::ac_k(3).query).is_err());
    }

    #[test]
    fn c2_matches_brute_force() {
        let q = catalog::c2_swap().query;
        let solver = TerminalCycleSolver::new(&q).unwrap();
        let oracle = ExactOracle::new(&q).unwrap();
        let schema = q.schema().clone();
        for seed in 0u64..60 {
            let mut db = UncertainDatabase::new(schema.clone());
            let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(3);
            let mut next = || {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 33) as usize
            };
            for _ in 0..(2 + seed as usize % 6) {
                db.insert_values(
                    "R1",
                    [format!("a{}", next() % 3), format!("b{}", next() % 3)],
                )
                .unwrap();
                db.insert_values(
                    "R2",
                    [format!("b{}", next() % 3), format!("a{}", next() % 3)],
                )
                .unwrap();
            }
            assert_eq!(
                solver.is_certain(&db),
                oracle.is_certain_bruteforce(&db),
                "seed {seed}\n{db}"
            );
        }
    }

    /// Random small instances for the Figure 4 query, checked against brute force.
    #[test]
    fn fig4_matches_brute_force_on_small_instances() {
        let q = catalog::fig4().query;
        let solver = TerminalCycleSolver::new(&q).unwrap();
        let oracle = ExactOracle::new(&q).unwrap();
        let schema = q.schema().clone();
        for seed in 0u64..25 {
            let mut db = UncertainDatabase::new(schema.clone());
            let mut state = seed.wrapping_mul(0x853C49E6748FEA9B).wrapping_add(13);
            let mut next = || {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 33) as usize
            };
            // Small domains keep the repair space enumerable for brute force.
            for _ in 0..3 {
                let x = format!("x{}", next() % 2);
                let y = format!("y{}", next() % 2);
                let z = format!("z{}", next() % 2);
                let u1 = format!("u{}", next() % 2);
                let u2 = format!("v{}", next() % 2);
                db.insert_values("R1", [x.clone(), u1.clone(), u2.clone(), z.clone()])
                    .unwrap();
                db.insert_values("R2", [x.clone(), u2.clone(), u1.clone(), z.clone()])
                    .unwrap();
                let u3 = format!("p{}", next() % 2);
                let u4 = format!("q{}", next() % 2);
                db.insert_values("R3", [x.clone(), y.clone(), u3.clone(), u4.clone()])
                    .unwrap();
                db.insert_values("R4", [x.clone(), y.clone(), u4, u3])
                    .unwrap();
                let u5 = format!("s{}", next() % 2);
                let u6 = format!("t{}", next() % 2);
                db.insert_values("R5", [y.clone(), u5.clone(), u6.clone()])
                    .unwrap();
                db.insert_values("R6", [y, u6, u5]).unwrap();
            }
            assert_eq!(
                solver.is_certain(&db),
                oracle.is_certain_bruteforce(&db),
                "seed {seed}\n{db}"
            );
        }
    }

    #[test]
    fn fig4_planted_certain_instance() {
        // A single fully consistent match is certainly satisfied.
        let q = catalog::fig4().query;
        let solver = TerminalCycleSolver::new(&q).unwrap();
        let schema = q.schema().clone();
        let mut db = UncertainDatabase::new(schema);
        db.insert_values("R1", ["x", "u1", "u2", "z"]).unwrap();
        db.insert_values("R2", ["x", "u2", "u1", "z"]).unwrap();
        db.insert_values("R3", ["x", "y", "u3", "u4"]).unwrap();
        db.insert_values("R4", ["x", "y", "u4", "u3"]).unwrap();
        db.insert_values("R5", ["y", "u5", "u6"]).unwrap();
        db.insert_values("R6", ["y", "u6", "u5"]).unwrap();
        assert!(solver.is_certain(&db));
        // Insert a conflicting R6 tuple that breaks the join: not certain any more.
        db.insert_values("R6", ["y", "u6", "other"]).unwrap();
        assert!(!solver.is_certain(&db));
    }
}
