//! # cqa-data
//!
//! The relational data model underlying *certain conjunctive query answering*
//! as defined in Section 3 ("Preliminaries") of
//!
//! > Jef Wijsen. *Charting the Tractability Frontier of Certain Conjunctive
//! > Query Answering*. PODS 2013.
//!
//! An **uncertain database** is a finite set of facts over a schema in which
//! every relation name carries a signature `[n, k]`: `n` is the arity and the
//! first `k` positions form the primary key. Primary keys *need not be
//! satisfied*: two distinct facts may agree on their key. A maximal set of
//! key-equal facts is a **block**; a **repair** (possible world) is obtained
//! by choosing exactly one fact from every block.
//!
//! This crate provides:
//!
//! * [`Value`] — constants (strings, integers, and the tuple values produced
//!   by the Theorem 2 reduction of the paper),
//! * [`Schema`], [`Relation`], [`Signature`] — relation names with `[n, k]`
//!   signatures,
//! * [`Fact`] and key-equality,
//! * [`UncertainDatabase`] with its block structure, consistency test and
//!   active domain,
//! * [`RepairIter`] / [`UncertainDatabase::repairs`] — enumeration and
//!   counting of repairs,
//! * [`DatabaseIndex`] — a cached secondary-index snapshot (dense fact ids,
//!   per-relation fact/block lists, hash indexes on arbitrary position
//!   subsets) that turns the solvers' join steps into hash probes,
//! * [`Snapshot`] — an owned, immutable, `Send + Sync` point-in-time view
//!   (database + index + epoch) that the parallel layer shares across threads,
//! * [`delta`] — the mutation log ([`ChangeSet`]) that lets
//!   [`DatabaseIndex::apply_delta`] patch a cached snapshot instead of
//!   rebuilding it,
//! * [`store`] — a durable chunked, dictionary-encoded on-disk format
//!   ([`store::save`] / [`store::load`]) so instances survive restarts,
//! * small utilities shared by the rest of the workspace.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod block;
pub mod columnar;
mod database;
pub mod delta;
mod error;
mod fact;
pub mod index;
mod repairs;
mod schema;
mod snapshot;
pub mod store;
mod value;

pub use block::{Block, BlockId};
pub use columnar::{CodeIndex, Columnar, Dictionary, RelationColumns};
pub use database::UncertainDatabase;
pub use delta::{ChangeSet, Delta, DEFAULT_DELTA_THRESHOLD};
pub use error::DataError;
pub use fact::Fact;
pub use index::{
    DatabaseIndex, FactId, PositionIndex, PositionSet, RelationStatistics, Statistics,
};
pub use repairs::{RepairIter, RepairSampler};
pub use schema::{Relation, RelationId, Schema, Signature};
pub use snapshot::Snapshot;
pub use store::{StoreError, StoreSummary};
pub use value::Value;

/// Convenience alias used across the workspace for fast hash maps.
pub type FxHashMap<K, V> = rustc_hash::FxHashMap<K, V>;
/// Convenience alias used across the workspace for fast hash sets.
pub type FxHashSet<T> = rustc_hash::FxHashSet<T>;
