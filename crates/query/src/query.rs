//! Conjunctive queries.

use crate::{Atom, AtomId, QueryError, Term, VarIndex, Variable};
use cqa_data::{RelationId, Schema};
use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

/// A conjunctive query `∃ū (R1(x̄1, ȳ1) ∧ ... ∧ Rn(x̄n, ȳn))`, possibly with
/// free variables.
///
/// The paper works with **Boolean** queries (no free variables) without
/// self-joins; both properties are exposed as predicates and checked by the
/// analyses that require them, but the type itself is more general so that
/// the library can also answer non-Boolean queries (certain answers) and
/// represent intermediate rewritings.
///
/// Queries are *sets* of atoms (duplicate atoms are collapsed); atoms are
/// addressed by their [`AtomId`], i.e. their index in [`Self::atoms`].
#[derive(Clone, PartialEq, Eq)]
pub struct ConjunctiveQuery {
    schema: Arc<Schema>,
    atoms: Vec<Atom>,
    free_vars: Vec<Variable>,
}

impl ConjunctiveQuery {
    /// Creates a Boolean conjunctive query.
    pub fn boolean(schema: Arc<Schema>, atoms: impl Into<Vec<Atom>>) -> Result<Self, QueryError> {
        Self::with_free_vars(schema, atoms, Vec::new())
    }

    /// Creates a conjunctive query with the given free variables.
    pub fn with_free_vars(
        schema: Arc<Schema>,
        atoms: impl Into<Vec<Atom>>,
        free_vars: Vec<Variable>,
    ) -> Result<Self, QueryError> {
        let mut atoms: Vec<Atom> = atoms.into();
        // Validate arities.
        for atom in &atoms {
            let rel = schema.relation(atom.relation());
            if atom.arity() != rel.arity() {
                return Err(QueryError::ArityMismatch {
                    relation: rel.name.clone(),
                    expected: rel.arity(),
                    actual: atom.arity(),
                });
            }
        }
        // Set semantics: drop duplicate atoms, keeping first occurrences.
        let mut seen: Vec<Atom> = Vec::with_capacity(atoms.len());
        atoms.retain(|a| {
            if seen.contains(a) {
                false
            } else {
                seen.push(a.clone());
                true
            }
        });
        let q = ConjunctiveQuery {
            schema,
            atoms,
            free_vars,
        };
        // Free variables must occur in some atom.
        for v in &q.free_vars {
            if !q.atoms.iter().any(|a| a.contains_var(v)) {
                return Err(QueryError::UnboundFreeVariable {
                    name: v.name().to_owned(),
                });
            }
        }
        // Ensure the variable count is representable (fails early and loudly).
        q.var_index()?;
        Ok(q)
    }

    /// Starts a [`QueryBuilder`] over the given schema.
    pub fn builder(schema: Arc<Schema>) -> QueryBuilder {
        QueryBuilder {
            schema,
            atoms: Vec::new(),
            free_vars: Vec::new(),
            error: None,
        }
    }

    /// The shared schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// The atoms of the query.
    pub fn atoms(&self) -> &[Atom] {
        &self.atoms
    }

    /// The atom with the given id.
    pub fn atom(&self, id: AtomId) -> &Atom {
        &self.atoms[id]
    }

    /// Number of atoms.
    pub fn len(&self) -> usize {
        self.atoms.len()
    }

    /// True iff the query has no atoms (the empty query is satisfied by every
    /// database, including the empty one).
    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }

    /// Iterates over `(AtomId, &Atom)` pairs.
    pub fn atoms_with_ids(&self) -> impl Iterator<Item = (AtomId, &Atom)> {
        self.atoms.iter().enumerate()
    }

    /// All atom ids.
    pub fn atom_ids(&self) -> impl Iterator<Item = AtomId> {
        0..self.atoms.len()
    }

    /// The free variables (empty for Boolean queries).
    pub fn free_vars(&self) -> &[Variable] {
        &self.free_vars
    }

    /// True iff the query is Boolean.
    pub fn is_boolean(&self) -> bool {
        self.free_vars.is_empty()
    }

    /// `vars(q)`: all variables occurring in the query.
    pub fn vars(&self) -> BTreeSet<Variable> {
        self.atoms.iter().flat_map(Atom::vars).collect()
    }

    /// The ids of the atoms in which `var` occurs.
    pub fn atoms_containing(&self, var: &Variable) -> Vec<AtomId> {
        self.atoms_with_ids()
            .filter(|(_, a)| a.contains_var(var))
            .map(|(i, _)| i)
            .collect()
    }

    /// `key(F)` for the atom with id `id`.
    pub fn key_vars(&self, id: AtomId) -> BTreeSet<Variable> {
        self.atoms[id].key_vars(&self.schema)
    }

    /// `vars(F)` for the atom with id `id`.
    pub fn vars_of(&self, id: AtomId) -> BTreeSet<Variable> {
        self.atoms[id].vars()
    }

    /// True iff some relation name occurs in more than one atom.
    pub fn has_self_join(&self) -> bool {
        self.self_joined_relation().is_some()
    }

    /// The first relation that occurs in more than one atom, if any.
    pub fn self_joined_relation(&self) -> Option<RelationId> {
        for (i, a) in self.atoms.iter().enumerate() {
            if self.atoms[i + 1..]
                .iter()
                .any(|b| b.relation() == a.relation())
            {
                return Some(a.relation());
            }
        }
        None
    }

    /// Fails with [`QueryError::SelfJoin`] if the query has a self-join.
    pub fn require_self_join_free(&self) -> Result<(), QueryError> {
        match self.self_joined_relation() {
            None => Ok(()),
            Some(rel) => Err(QueryError::SelfJoin {
                relation: self.schema.relation(rel).name.clone(),
            }),
        }
    }

    /// Fails with [`QueryError::NotBoolean`] if the query has free variables.
    pub fn require_boolean(&self) -> Result<(), QueryError> {
        if self.is_boolean() {
            Ok(())
        } else {
            Err(QueryError::NotBoolean)
        }
    }

    /// A [`VarIndex`] over the variables of this query, in a deterministic
    /// (first-occurrence) order.
    pub fn var_index(&self) -> Result<VarIndex, QueryError> {
        VarIndex::new(
            self.atoms
                .iter()
                .flat_map(|a| a.terms().iter())
                .filter_map(Term::as_var)
                .cloned(),
        )
    }

    /// The query `q \ {F}` where `F` is the atom with id `id`.
    ///
    /// Free variables that no longer occur in any atom are dropped.
    pub fn without_atom(&self, id: AtomId) -> ConjunctiveQuery {
        let atoms: Vec<Atom> = self
            .atoms
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != id)
            .map(|(_, a)| a.clone())
            .collect();
        let free_vars: Vec<Variable> = self
            .free_vars
            .iter()
            .filter(|v| atoms.iter().any(|a| a.contains_var(v)))
            .cloned()
            .collect();
        ConjunctiveQuery {
            schema: self.schema.clone(),
            atoms,
            free_vars,
        }
    }

    /// The sub-query consisting of the atoms with the given ids (in id order).
    pub fn restricted_to(&self, ids: &[AtomId]) -> ConjunctiveQuery {
        let mut ids: Vec<AtomId> = ids.to_vec();
        ids.sort_unstable();
        ids.dedup();
        let atoms: Vec<Atom> = ids.iter().map(|&i| self.atoms[i].clone()).collect();
        let free_vars: Vec<Variable> = self
            .free_vars
            .iter()
            .filter(|v| atoms.iter().any(|a| a.contains_var(v)))
            .cloned()
            .collect();
        ConjunctiveQuery {
            schema: self.schema.clone(),
            atoms,
            free_vars,
        }
    }

    /// Replaces the atom set wholesale (used by substitution); the schema and
    /// free variables are preserved where still meaningful.
    pub(crate) fn with_atoms(&self, atoms: Vec<Atom>, free_vars: Vec<Variable>) -> Self {
        ConjunctiveQuery {
            schema: self.schema.clone(),
            atoms,
            free_vars,
        }
    }
}

impl fmt::Display for ConjunctiveQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.free_vars.is_empty() {
            write!(f, "q()")?;
        } else {
            write!(f, "q(")?;
            for (i, v) in self.free_vars.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{v}")?;
            }
            write!(f, ")")?;
        }
        write!(f, " :- ")?;
        if self.atoms.is_empty() {
            write!(f, "true")?;
        }
        for (i, a) in self.atoms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", a.display(&self.schema))?;
        }
        Ok(())
    }
}

impl fmt::Debug for ConjunctiveQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

/// A fluent builder for conjunctive queries.
///
/// ```
/// use cqa_data::Schema;
/// use cqa_query::{ConjunctiveQuery, Term};
///
/// let schema = Schema::from_relations([("R", 2, 1), ("S", 2, 1)]).unwrap().into_shared();
/// let q = ConjunctiveQuery::builder(schema)
///     .atom("R", [Term::var("x"), Term::var("y")])
///     .atom("S", [Term::var("y"), Term::constant("Rome")])
///     .build()
///     .unwrap();
/// assert_eq!(q.len(), 2);
/// assert!(q.is_boolean());
/// ```
pub struct QueryBuilder {
    schema: Arc<Schema>,
    atoms: Vec<Atom>,
    free_vars: Vec<Variable>,
    error: Option<QueryError>,
}

impl QueryBuilder {
    /// Adds an atom by relation name.
    pub fn atom(mut self, relation: &str, terms: impl Into<Vec<Term>>) -> Self {
        if self.error.is_some() {
            return self;
        }
        match self.schema.relation_id(relation) {
            Some(rel) => self.atoms.push(Atom::new(rel, terms)),
            None => {
                self.error = Some(QueryError::UnknownRelation {
                    name: relation.to_owned(),
                })
            }
        }
        self
    }

    /// Declares free variables (answer variables) for a non-Boolean query.
    pub fn free(mut self, vars: impl IntoIterator<Item = Variable>) -> Self {
        self.free_vars.extend(vars);
        self
    }

    /// Finishes the query.
    pub fn build(self) -> Result<ConjunctiveQuery, QueryError> {
        if let Some(e) = self.error {
            return Err(e);
        }
        ConjunctiveQuery::with_free_vars(self.schema, self.atoms, self.free_vars)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Arc<Schema> {
        Schema::from_relations([("R", 2, 1), ("S", 3, 2), ("T", 2, 1)])
            .unwrap()
            .into_shared()
    }

    fn var(n: &str) -> Term {
        Term::var(n)
    }

    #[test]
    fn builder_builds_and_validates() {
        let q = ConjunctiveQuery::builder(schema())
            .atom("R", [var("x"), var("y")])
            .atom("S", [var("y"), var("z"), var("x")])
            .build()
            .unwrap();
        assert_eq!(q.len(), 2);
        assert!(q.is_boolean());
        assert!(!q.has_self_join());
        assert_eq!(q.vars().len(), 3);
        assert!(ConjunctiveQuery::builder(schema())
            .atom("Nope", [var("x")])
            .build()
            .is_err());
    }

    #[test]
    fn arity_is_checked() {
        let s = schema();
        let bad = Atom::new(s.relation_id("R").unwrap(), vec![var("x")]);
        assert!(matches!(
            ConjunctiveQuery::boolean(s, vec![bad]),
            Err(QueryError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn self_join_detection() {
        let q = ConjunctiveQuery::builder(schema())
            .atom("R", [var("x"), var("y")])
            .atom("R", [var("y"), var("x")])
            .build()
            .unwrap();
        assert!(q.has_self_join());
        assert!(q.require_self_join_free().is_err());
        let q2 = ConjunctiveQuery::builder(schema())
            .atom("R", [var("x"), var("y")])
            .atom("T", [var("y"), var("x")])
            .build()
            .unwrap();
        assert!(!q2.has_self_join());
        assert!(q2.require_self_join_free().is_ok());
    }

    #[test]
    fn duplicate_atoms_are_collapsed() {
        let q = ConjunctiveQuery::builder(schema())
            .atom("R", [var("x"), var("y")])
            .atom("R", [var("x"), var("y")])
            .build()
            .unwrap();
        assert_eq!(q.len(), 1);
        assert!(!q.has_self_join());
    }

    #[test]
    fn free_variables_must_be_bound() {
        let err = ConjunctiveQuery::builder(schema())
            .atom("R", [var("x"), var("y")])
            .free([Variable::new("z")])
            .build();
        assert!(matches!(err, Err(QueryError::UnboundFreeVariable { .. })));
        let ok = ConjunctiveQuery::builder(schema())
            .atom("R", [var("x"), var("y")])
            .free([Variable::new("y")])
            .build()
            .unwrap();
        assert!(!ok.is_boolean());
        assert!(ok.require_boolean().is_err());
    }

    #[test]
    fn without_atom_and_restriction() {
        let q = ConjunctiveQuery::builder(schema())
            .atom("R", [var("x"), var("y")])
            .atom("S", [var("y"), var("z"), var("x")])
            .atom("T", [var("z"), var("w")])
            .build()
            .unwrap();
        let q2 = q.without_atom(1);
        assert_eq!(q2.len(), 2);
        assert_eq!(q2.atom(0), q.atom(0));
        assert_eq!(q2.atom(1), q.atom(2));
        let q3 = q.restricted_to(&[2, 0, 2]);
        assert_eq!(q3.len(), 2);
        assert_eq!(q3.atom(0), q.atom(0));
        assert_eq!(q3.atom(1), q.atom(2));
    }

    #[test]
    fn atoms_containing_and_key_vars() {
        let q = ConjunctiveQuery::builder(schema())
            .atom("R", [var("x"), var("y")])
            .atom("S", [var("y"), var("z"), var("x")])
            .build()
            .unwrap();
        assert_eq!(q.atoms_containing(&Variable::new("x")), vec![0, 1]);
        assert_eq!(q.atoms_containing(&Variable::new("z")), vec![1]);
        assert_eq!(
            q.key_vars(1),
            [Variable::new("y"), Variable::new("z")]
                .into_iter()
                .collect()
        );
    }

    #[test]
    fn display_is_datalog_like() {
        let q = ConjunctiveQuery::builder(schema())
            .atom("R", [var("x"), var("y")])
            .atom("S", [var("y"), var("z"), Term::constant("Rome")])
            .build()
            .unwrap();
        assert_eq!(q.to_string(), "q() :- R(x; y), S(y, z; 'Rome')");
        let empty = ConjunctiveQuery::boolean(schema(), Vec::new()).unwrap();
        assert_eq!(empty.to_string(), "q() :- true");
    }

    #[test]
    fn empty_query_is_boolean_and_empty() {
        let q = ConjunctiveQuery::boolean(schema(), Vec::new()).unwrap();
        assert!(q.is_empty());
        assert!(q.is_boolean());
        assert!(q.vars().is_empty());
        assert_eq!(q.var_index().unwrap().len(), 0);
    }
}
