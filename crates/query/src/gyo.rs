//! The GYO (Graham / Yu–Özsoyoğlu) acyclicity test.
//!
//! An independent check of hypergraph acyclicity used to cross-validate the
//! maximum-spanning-tree join-tree construction of [`crate::join_tree`]:
//! repeatedly remove *ears* (an atom whose shared variables are covered by a
//! single other atom, or an atom sharing nothing); the query is acyclic iff
//! at most one atom remains.

use crate::{ConjunctiveQuery, Variable};
use std::collections::BTreeSet;

/// True iff the query's hypergraph is acyclic according to the GYO reduction.
pub fn is_acyclic_gyo(query: &ConjunctiveQuery) -> bool {
    let mut hyperedges: Vec<BTreeSet<Variable>> = query.atoms().iter().map(|a| a.vars()).collect();

    loop {
        if hyperedges.len() <= 1 {
            return true;
        }
        let mut removed = false;
        'search: for i in 0..hyperedges.len() {
            // Variables of edge i that occur in some *other* edge.
            let shared: BTreeSet<&Variable> = hyperedges[i]
                .iter()
                .filter(|v| {
                    hyperedges
                        .iter()
                        .enumerate()
                        .any(|(j, e)| j != i && e.contains(v))
                })
                .collect();
            // Edge i is an ear if its shared variables are contained in one
            // other edge (or it shares nothing at all).
            let is_ear = shared.is_empty()
                || hyperedges
                    .iter()
                    .enumerate()
                    .any(|(j, e)| j != i && shared.iter().all(|v| e.contains(*v)));
            if is_ear {
                hyperedges.remove(i);
                removed = true;
                break 'search;
            }
        }
        if !removed {
            return false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::join_tree::is_acyclic;
    use crate::{ConjunctiveQuery, Term};
    use cqa_data::Schema;

    fn path_query() -> ConjunctiveQuery {
        let schema = Schema::from_relations([("R", 2, 1), ("S", 2, 1), ("T", 2, 1)])
            .unwrap()
            .into_shared();
        ConjunctiveQuery::builder(schema)
            .atom("R", [Term::var("x"), Term::var("y")])
            .atom("S", [Term::var("y"), Term::var("z")])
            .atom("T", [Term::var("z"), Term::var("w")])
            .build()
            .unwrap()
    }

    fn triangle_query() -> ConjunctiveQuery {
        let schema = Schema::from_relations([("R1", 2, 1), ("R2", 2, 1), ("R3", 2, 1)])
            .unwrap()
            .into_shared();
        ConjunctiveQuery::builder(schema)
            .atom("R1", [Term::var("x1"), Term::var("x2")])
            .atom("R2", [Term::var("x2"), Term::var("x3")])
            .atom("R3", [Term::var("x3"), Term::var("x1")])
            .build()
            .unwrap()
    }

    #[test]
    fn gyo_agrees_with_join_tree_on_basic_queries() {
        let path = path_query();
        assert!(is_acyclic_gyo(&path));
        assert!(is_acyclic(&path));

        let triangle = triangle_query();
        assert!(!is_acyclic_gyo(&triangle));
        assert!(!is_acyclic(&triangle));
    }

    #[test]
    fn adding_an_all_variable_atom_breaks_the_cycle() {
        let schema =
            Schema::from_relations([("R1", 2, 1), ("R2", 2, 1), ("R3", 2, 1), ("S3", 3, 3)])
                .unwrap()
                .into_shared();
        let q = ConjunctiveQuery::builder(schema)
            .atom("R1", [Term::var("x1"), Term::var("x2")])
            .atom("R2", [Term::var("x2"), Term::var("x3")])
            .atom("R3", [Term::var("x3"), Term::var("x1")])
            .atom("S3", [Term::var("x1"), Term::var("x2"), Term::var("x3")])
            .build()
            .unwrap();
        assert!(is_acyclic_gyo(&q));
        assert!(is_acyclic(&q));
    }

    #[test]
    fn degenerate_queries_are_acyclic() {
        let schema = Schema::from_relations([("R", 2, 1)]).unwrap().into_shared();
        let empty = ConjunctiveQuery::boolean(schema.clone(), Vec::new()).unwrap();
        assert!(is_acyclic_gyo(&empty));
        let single = ConjunctiveQuery::builder(schema)
            .atom("R", [Term::var("x"), Term::var("y")])
            .build()
            .unwrap();
        assert!(is_acyclic_gyo(&single));
    }
}
