//! Tuning knobs for the parallel evaluation layer.

/// Configuration of the parallel entry points.
///
/// The defaults are deliberately conservative: parallelism only pays once a
/// problem's estimated work dwarfs the cost of queueing jobs and merging
/// results, and the `cqa-exec` cost model supplies exactly that estimate
/// ([`cqa_exec::QueryPlan::estimated_work`] /
/// [`cqa_exec::FoPlan::estimated_work`]).
#[derive(Clone, Debug)]
pub struct ParConfig {
    /// Evaluations whose cost-model estimate falls below this threshold run
    /// sequentially on the calling thread — sharding them would spend more
    /// on queueing and merging than the evaluation itself costs.
    pub sequential_cutoff: f64,
    /// Shard granularity: the candidate space is split into
    /// `threads × chunks_per_thread` chunks, so the work-stealing pool can
    /// rebalance when chunks turn out uneven (> 1 chunk per thread) without
    /// drowning in per-chunk overhead (bounded by this factor).
    pub chunks_per_thread: usize,
}

impl Default for ParConfig {
    fn default() -> Self {
        ParConfig {
            sequential_cutoff: 10_000.0,
            chunks_per_thread: 4,
        }
    }
}

impl ParConfig {
    /// A configuration that parallelizes unconditionally — every shardable
    /// evaluation goes through the pool regardless of its estimate. Used by
    /// the property suite (agreement must hold even where parallelism does
    /// not pay) and the scaling benchmark.
    pub fn always_parallel() -> Self {
        ParConfig {
            sequential_cutoff: 0.0,
            ..ParConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let config = ParConfig::default();
        assert!(config.sequential_cutoff > 0.0);
        assert!(config.chunks_per_thread >= 1);
        assert_eq!(ParConfig::always_parallel().sequential_cutoff, 0.0);
    }
}
