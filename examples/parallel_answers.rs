//! The parallel batch certainty engine, end to end.
//!
//! Generates a few thousand uncertain conference facts, freezes them into a
//! snapshot, and then exercises the whole `cqa-par` surface:
//!
//! 1. `certain_answers_par` — the candidate-answer space of a non-Boolean
//!    query sharded across a work-stealing pool, with the guarantee that
//!    the result is identical to the sequential path at every thread count;
//! 2. `ParallelEngine` — Boolean certainty with the compiled Theorem 1
//!    rewriting's root scan sharded across the pool;
//! 3. `BatchEngine` — many queries answered concurrently over one frozen
//!    snapshot, results in input order (the `certainty serve` story).
//!
//! Run with `cargo run --release --example parallel_answers`.

use cqa::core::answers::certain_answers;
use cqa::gen::{GeneratorConfig, UncertainDbGenerator};
use cqa::par::{certain_answers_par, BatchEngine, ParConfig, ParPool, ParallelEngine};
use cqa::query::{catalog, ConjunctiveQuery, Term, Variable};

fn main() {
    // The Figure 1 conference query, scaled up: ~600 match groups with
    // planted key violations.
    let boolean = catalog::conference().query;
    let mut db = UncertainDbGenerator::new(
        &boolean,
        GeneratorConfig {
            seed: 7,
            matches: 600,
            domain_per_variable: 300,
            extra_block_facts: 1,
            alternative_join_probability: 0.9,
        },
    )
    .generate();
    // The generator's planted key violations make every generated answer
    // merely possible; a few hand-planted *consistent* conferences are
    // certainly in Rome with rank A — the certain answers to find below.
    for i in 0..3 {
        db.insert_values("C", [format!("sure{i}"), "2026".into(), "Rome".into()])
            .expect("fresh facts insert");
        db.insert_values("R", [format!("sure{i}"), "A".into()])
            .expect("fresh facts insert");
    }
    println!(
        "generated {} facts in {} blocks",
        db.fact_count(),
        db.block_count()
    );

    // Freeze the data: every parallel evaluation below sees this exact
    // state, however the writer mutates `db` afterwards.
    let snapshot = db.snapshot();
    let pool = ParPool::with_available_parallelism();
    println!("pool: {} worker threads", pool.thread_count());

    // -- 1. Parallel certain answers of a non-Boolean query. ------------
    let which = ConjunctiveQuery::builder(boolean.schema().clone())
        .atom(
            "C",
            [Term::var("x"), Term::var("y"), Term::constant("Rome")],
        )
        .atom("R", [Term::var("x"), Term::constant("A")])
        .free([Variable::new("x")])
        .build()
        .expect("valid query");
    let parallel = certain_answers_par(&which, &snapshot, &pool, &ParConfig::default())
        .expect("answerable query");
    println!(
        "which(x): {} certain of {} possible answers",
        parallel.certain.len(),
        parallel.possible.len()
    );
    // The contract: byte-identical to the sequential path.
    let sequential = certain_answers(&which, &db).expect("answerable query");
    assert_eq!(parallel, sequential);

    // -- 2. Boolean certainty with a sharded root scan. ------------------
    let engine =
        ParallelEngine::new(&boolean, pool.clone(), ParConfig::default()).expect("Theorem 1 query");
    println!(
        "rome certain? {} (solver: {}, classified as {})",
        engine.is_certain(&snapshot),
        engine.engine().solver_name(),
        engine.engine().classification().class,
    );

    // -- 3. A batch of queries over one snapshot. -------------------------
    let batch_engine = BatchEngine::new(snapshot, pool);
    let batch: Vec<(String, ConjunctiveQuery)> = vec![
        ("rome".into(), boolean.clone()),
        ("which".into(), which.clone()),
        ("rome-again".into(), boolean.clone()), // hits the engine cache
    ];
    for result in batch_engine.run(batch) {
        println!("batch {}: {:?}", result.name, summarize(&result.outcome));
    }
    println!(
        "classified engines memoized: {}",
        batch_engine.cached_engine_count()
    );
}

fn summarize(outcome: &cqa::par::BatchOutcome) -> String {
    match outcome {
        cqa::par::BatchOutcome::Boolean {
            certain, solver, ..
        } => format!("certain={certain} via {solver}"),
        cqa::par::BatchOutcome::Answers(sets) => {
            format!("{}/{} certain", sets.certain.len(), sets.possible.len())
        }
        cqa::par::BatchOutcome::Error(e) => format!("error: {e}"),
    }
}
