//! Runtime tuning knobs, read from the environment **once** and validated
//! loudly.
//!
//! Each knob defaults to its compile-time constant in [`crate::vec`] and
//! can be overridden by an environment variable of the same name
//! (`FO_VEC_CUTOFF`, `QUERY_VEC_CUTOFF`, `QUERY_VEC_MAX`,
//! `TUPLE_BATCH_MIN`) or `CQA_EXEC_MODE` for the executor choice. A set
//! but unparsable value used to be silently ignored; now it warns on
//! stderr and is counted in the metrics registry under
//! `config.env.invalid`, so a fleet-wide typo shows up in `certainty
//! stats` instead of silently running on defaults.

use crate::vec::ExecMode;
use std::sync::OnceLock;

/// Parses `raw` (as read from `name`) falling back to `default`; the
/// second component reports whether a set value was invalid. Pure, so the
/// warn-and-fall-back policy is unit-testable without touching the
/// process environment.
fn parse_value<T>(name: &str, raw: Option<&str>, default: T) -> (T, bool)
where
    T: std::str::FromStr + Copy + std::fmt::Display,
{
    match raw {
        None => (default, false),
        Some(text) => match text.trim().parse::<T>() {
            Ok(value) => (value, false),
            Err(_) => {
                eprintln!(
                    "warning: ignoring invalid {name}={text:?} (expected a number); \
                     using default {default}"
                );
                (default, true)
            }
        },
    }
}

/// Reads, parses and (on invalid values) warns + counts, once per knob.
fn env_knob<T>(name: &'static str, default: T) -> T
where
    T: std::str::FromStr + Copy + std::fmt::Display,
{
    let raw = match std::env::var(name) {
        Ok(text) => Some(text),
        Err(std::env::VarError::NotPresent) => None,
        Err(std::env::VarError::NotUnicode(_)) => Some(String::from("\u{FFFD}")),
    };
    let (value, invalid) = parse_value(name, raw.as_deref(), default);
    if invalid {
        cqa_obs::count!("config.env.invalid");
    }
    value
}

/// [`crate::vec::FO_VEC_CUTOFF`], overridable via `FO_VEC_CUTOFF`.
pub fn fo_vec_cutoff() -> f64 {
    static KNOB: OnceLock<f64> = OnceLock::new();
    *KNOB.get_or_init(|| env_knob("FO_VEC_CUTOFF", crate::vec::FO_VEC_CUTOFF))
}

/// [`crate::vec::QUERY_VEC_CUTOFF`], overridable via `QUERY_VEC_CUTOFF`.
pub fn query_vec_cutoff() -> f64 {
    static KNOB: OnceLock<f64> = OnceLock::new();
    *KNOB.get_or_init(|| env_knob("QUERY_VEC_CUTOFF", crate::vec::QUERY_VEC_CUTOFF))
}

/// [`crate::vec::QUERY_VEC_MAX`], overridable via `QUERY_VEC_MAX`.
pub fn query_vec_max() -> f64 {
    static KNOB: OnceLock<f64> = OnceLock::new();
    *KNOB.get_or_init(|| env_knob("QUERY_VEC_MAX", crate::vec::QUERY_VEC_MAX))
}

/// [`crate::vec::TUPLE_BATCH_MIN`], overridable via `TUPLE_BATCH_MIN`.
pub fn tuple_batch_min() -> usize {
    static KNOB: OnceLock<usize> = OnceLock::new();
    *KNOB.get_or_init(|| env_knob("TUPLE_BATCH_MIN", crate::vec::TUPLE_BATCH_MIN))
}

/// Parses a `CQA_EXEC_MODE` value; the second component reports whether a
/// set value was invalid.
fn parse_mode(raw: Option<&str>) -> (ExecMode, bool) {
    match raw {
        None => (ExecMode::Auto, false),
        Some("row") | Some("row-at-a-time") => (ExecMode::RowAtATime, false),
        Some("vec") | Some("vectorized") => (ExecMode::Vectorized, false),
        Some("auto") => (ExecMode::Auto, false),
        Some(other) => {
            eprintln!(
                "warning: ignoring invalid CQA_EXEC_MODE={other:?} \
                 (expected row|row-at-a-time|vec|vectorized|auto); using auto"
            );
            (ExecMode::Auto, true)
        }
    }
}

/// The process-wide default [`ExecMode`]: `CQA_EXEC_MODE`, read once.
pub fn exec_mode() -> ExecMode {
    static KNOB: OnceLock<ExecMode> = OnceLock::new();
    *KNOB.get_or_init(|| {
        let raw = std::env::var("CQA_EXEC_MODE").ok();
        let (mode, invalid) = parse_mode(raw.as_deref());
        if invalid {
            cqa_obs::count!("config.env.invalid");
        }
        mode
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unset_knobs_keep_their_defaults() {
        assert_eq!(parse_value("K", None, 42.0), (42.0, false));
        assert_eq!(parse_value("K", None, 7usize), (7, false));
        assert_eq!(parse_mode(None), (ExecMode::Auto, false));
    }

    #[test]
    fn valid_overrides_parse() {
        assert_eq!(parse_value("K", Some("1024"), 42.0), (1024.0, false));
        assert_eq!(parse_value("K", Some(" 16 "), 7usize), (16, false));
        assert_eq!(parse_mode(Some("row")), (ExecMode::RowAtATime, false));
        assert_eq!(
            parse_mode(Some("row-at-a-time")),
            (ExecMode::RowAtATime, false)
        );
        assert_eq!(parse_mode(Some("vec")), (ExecMode::Vectorized, false));
        assert_eq!(
            parse_mode(Some("vectorized")),
            (ExecMode::Vectorized, false)
        );
        assert_eq!(parse_mode(Some("auto")), (ExecMode::Auto, false));
    }

    #[test]
    fn invalid_overrides_fall_back_and_are_flagged() {
        assert_eq!(parse_value("K", Some("fast"), 42.0), (42.0, true));
        assert_eq!(parse_value("K", Some(""), 7usize), (7, true));
        // The historical silent failure: `CQA_EXEC_MODE=Vec` (wrong case)
        // used to quietly mean auto; it still means auto, loudly.
        assert_eq!(parse_mode(Some("Vec")), (ExecMode::Auto, true));
        assert_eq!(parse_mode(Some("rows")), (ExecMode::Auto, true));
    }

    #[test]
    fn knob_accessors_answer_consistently() {
        // Whatever the ambient environment, repeated reads are stable
        // (parse-once) and the accessors do not panic.
        assert_eq!(fo_vec_cutoff().to_bits(), fo_vec_cutoff().to_bits());
        assert_eq!(query_vec_cutoff().to_bits(), query_vec_cutoff().to_bits());
        assert!(query_vec_max() >= query_vec_cutoff() || query_vec_max() < query_vec_cutoff());
        assert_eq!(tuple_batch_min(), tuple_batch_min());
        assert_eq!(exec_mode(), exec_mode());
    }
}
