//! Naive vs indexed conjunctive-query evaluation, measured on `cqa-gen`
//! workloads and recorded in `BENCH_eval.json` at the workspace root.
//!
//! For every workload the runner times
//!
//! * `satisfies` — the early-exit decision `db |= q`,
//! * `all_valuations` — full enumeration of the satisfying valuations
//!   (the access pattern of certain-answer computation),
//!
//! once with the retained nested-loop reference evaluator
//! (`cqa_query::eval::naive`) and once with the indexed join, both *cold*
//! (the run pays for building the index snapshot) and *warm* (the snapshot
//! is cached on the database, the steady state inside every solver loop).
//! Each measurement is the minimum of several runs.
//!
//! Run with `cargo run --release -p cqa-bench --bin bench_eval`.

use cqa_bench::{json_escape, scaled_instance, time_min, write_bench_json};
use cqa_data::UncertainDatabase;
use cqa_query::eval::{self, naive};
use cqa_query::{catalog, ConjunctiveQuery};
use std::fmt::Write as _;
use std::time::{Duration, Instant};

const RUNS: usize = 3;

/// A clone whose index cache is invalidated, so the next evaluation pays the
/// full snapshot-build cost ("cold").
fn cold_copy(db: &UncertainDatabase) -> UncertainDatabase {
    let mut copy = db.clone();
    let relation = db
        .schema()
        .iter()
        .next()
        .map(|(id, _)| id)
        .expect("workload schemas are non-empty");
    let arity = db.schema().relation(relation).arity();
    let probe = cqa_data::Fact::new(
        relation,
        (0..arity)
            .map(|i| cqa_data::Value::str(format!("__bench_cold_{i}")))
            .collect::<Vec<_>>(),
    );
    copy.insert(probe.clone())
        .expect("probe fact is schema-valid");
    copy.remove_fact(&probe);
    copy
}

struct Measurement {
    naive: Duration,
    indexed_cold: Duration,
    indexed_warm: Duration,
}

impl Measurement {
    fn speedup_cold(&self) -> f64 {
        self.naive.as_secs_f64() / self.indexed_cold.as_secs_f64().max(1e-9)
    }

    fn speedup_warm(&self) -> f64 {
        self.naive.as_secs_f64() / self.indexed_warm.as_secs_f64().max(1e-9)
    }

    fn to_json(&self) -> String {
        format!(
            "{{ \"naive_ms\": {:.3}, \"indexed_cold_ms\": {:.3}, \"indexed_warm_ms\": {:.3}, \"speedup_cold\": {:.1}, \"speedup_warm\": {:.1} }}",
            self.naive.as_secs_f64() * 1e3,
            self.indexed_cold.as_secs_f64() * 1e3,
            self.indexed_warm.as_secs_f64() * 1e3,
            self.speedup_cold(),
            self.speedup_warm(),
        )
    }
}

fn measure(
    db: &UncertainDatabase,
    query: &ConjunctiveQuery,
    naive_run: impl Fn(&UncertainDatabase) -> usize,
    indexed_run: impl Fn(&UncertainDatabase) -> usize,
) -> (Measurement, usize) {
    let result = indexed_run(db);
    assert_eq!(
        result,
        naive_run(db),
        "indexed and naive evaluation disagree on {query}"
    );
    let naive_time = time_min(RUNS, || naive_run(db));
    // Cold runs pay the index-snapshot build but not the database clone: the
    // copy is prepared outside the timed section.
    let indexed_cold = {
        let mut best = Duration::MAX;
        for _ in 0..RUNS {
            let cold = cold_copy(db);
            let start = Instant::now();
            std::hint::black_box(indexed_run(&cold));
            best = best.min(start.elapsed());
        }
        best
    };
    let warm = db.clone();
    indexed_run(&warm); // populate the snapshot cache
    let indexed_warm = time_min(RUNS.max(10), || indexed_run(&warm));
    (
        Measurement {
            naive: naive_time,
            indexed_cold,
            indexed_warm,
        },
        result,
    )
}

fn main() {
    let workloads = [
        ("path3", catalog::fo_path3().query, 2200usize, 11u64),
        ("conference", catalog::conference().query, 2600, 13),
        ("fig4", catalog::fig4().query, 900, 17),
    ];

    let mut entries = Vec::new();
    for (name, query, n, seed) in workloads {
        let db = scaled_instance(&query, n, seed);
        eprintln!(
            "workload {name}: {} atoms, {} facts, {} blocks",
            query.len(),
            db.fact_count(),
            db.block_count()
        );

        let (sat, _) = measure(
            &db,
            &query,
            |d| naive::satisfies(d, &query) as usize,
            |d| eval::satisfies(d, &query) as usize,
        );
        eprintln!(
            "  satisfies       naive {:9.3} ms   indexed cold {:9.3} ms ({:>7.1}x)   warm {:9.3} ms ({:>7.1}x)",
            sat.naive.as_secs_f64() * 1e3,
            sat.indexed_cold.as_secs_f64() * 1e3,
            sat.speedup_cold(),
            sat.indexed_warm.as_secs_f64() * 1e3,
            sat.speedup_warm(),
        );

        let (enumerate, matches) = measure(
            &db,
            &query,
            |d| naive::all_valuations(d, &query).len(),
            |d| eval::all_valuations(d, &query).len(),
        );
        eprintln!(
            "  all_valuations  naive {:9.3} ms   indexed cold {:9.3} ms ({:>7.1}x)   warm {:9.3} ms ({:>7.1}x)   [{matches} matches]",
            enumerate.naive.as_secs_f64() * 1e3,
            enumerate.indexed_cold.as_secs_f64() * 1e3,
            enumerate.speedup_cold(),
            enumerate.indexed_warm.as_secs_f64() * 1e3,
            enumerate.speedup_warm(),
        );

        let mut entry = String::new();
        write!(
            entry,
            "    {{\n      \"name\": \"{name}\",\n      \"query\": \"{}\",\n      \"atoms\": {},\n      \"facts\": {},\n      \"blocks\": {},\n      \"matches\": {matches},\n      \"satisfies\": {},\n      \"all_valuations\": {}\n    }}",
            json_escape(&query.to_string()),
            query.len(),
            db.fact_count(),
            db.block_count(),
            sat.to_json(),
            enumerate.to_json(),
        )
        .expect("writing to a String cannot fail");
        entries.push(entry);
    }

    let json = format!(
        "{{\n  \"benchmark\": \"naive nested-loop join vs hash-indexed bind-aware join\",\n  \"generated_by\": \"cargo run --release -p cqa-bench --bin bench_eval\",\n  \"runs_per_measurement\": {RUNS},\n  \"times\": \"minimum over runs; cold = includes index-snapshot build, warm = snapshot cached\",\n  \"workloads\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );

    let out = write_bench_json("BENCH_eval.json", &json);
    eprintln!("wrote {}", out.display());
    print!("{json}");
}
