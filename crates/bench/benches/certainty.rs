//! Criterion micro-benchmarks, one group per experiment family of
//! `EXPERIMENTS.md` (E7–E12). Absolute numbers are machine-dependent; the
//! quantity of interest is the *shape*: the polynomial solvers must scale
//! smoothly in the input size while the exact oracle degrades exponentially
//! with the number of violated blocks, and the safe probability plan must
//! stay flat where possible-world enumeration explodes.

use cqa_bench::{scaled_cycle_instance, scaled_instance};
use cqa_core::attack::AttackGraph;
use cqa_core::fo::{certain_rewriting, eval::evaluate_sentence};
use cqa_core::reductions::Theorem2Reduction;
use cqa_core::solvers::{
    CertaintySolver, CycleQuerySolver, ExactOracle, RewritingSolver, TerminalCycleSolver,
};
use cqa_gen::q0_instance;
use cqa_prob::eval::{probability_exact, probability_safe};
use cqa_prob::BidDatabase;
use cqa_query::eval::{self, naive};
use cqa_query::{catalog, purify};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

/// The join engine itself: the naive nested-loop reference evaluator against
/// the hash-indexed bind-aware join, on generator workloads of a 3-atom
/// chain query. (`bench_eval` runs the same comparison at larger scale and
/// records `BENCH_eval.json`.)
fn bench_eval_join(c: &mut Criterion) {
    let q = catalog::fo_path3().query;
    let mut group = c.benchmark_group("eval_naive_vs_indexed");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for n in [32usize, 128, 512] {
        let db = scaled_instance(&q, n, 11);
        group.bench_with_input(BenchmarkId::new("naive", n), &db, |b, db| {
            b.iter(|| naive::all_valuations(db, &q).len())
        });
        group.bench_with_input(BenchmarkId::new("indexed", n), &db, |b, db| {
            b.iter(|| eval::all_valuations(db, &q).len())
        });
    }
    group.finish();
}

/// E8 / Theorem 1 region: the rewriting-based solver on acyclic-attack-graph
/// queries, against the exact oracle on the sizes the oracle can still handle.
fn bench_rewriting(c: &mut Criterion) {
    let q = catalog::fo_path3().query;
    let solver = RewritingSolver::new(&q).unwrap();
    let oracle = ExactOracle::new(&q).unwrap();
    let mut group = c.benchmark_group("rewriting_path3");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for n in [4usize, 16, 32] {
        let db = scaled_instance(&q, n, 11);
        group.bench_with_input(BenchmarkId::new("rewriting", n), &db, |b, db| {
            b.iter(|| solver.is_certain(db))
        });
        if db.repair_count_log2() < 18.0 {
            group.bench_with_input(BenchmarkId::new("exact_oracle", n), &db, |b, db| {
                b.iter(|| oracle.is_certain(db))
            });
        }
    }
    group.finish();
}

/// E8: the Theorem 3 solver on the Figure 4 query.
fn bench_terminal_cycles(c: &mut Criterion) {
    let q = catalog::fig4().query;
    let solver = TerminalCycleSolver::new(&q).unwrap();
    let mut group = c.benchmark_group("theorem3_fig4");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for n in [4usize, 16, 32] {
        let db = scaled_instance(&q, n, 13);
        group.bench_with_input(BenchmarkId::from_parameter(n), &db, |b, db| {
            b.iter(|| solver.is_certain(db))
        });
    }
    group.finish();
}

/// E9: the Theorem 4 solver on AC(3) cycle-graph instances.
fn bench_cycle_query(c: &mut Criterion) {
    let q = catalog::ac_k(3).query;
    let solver = CycleQuerySolver::new(&q).unwrap();
    let mut group = c.benchmark_group("theorem4_ac3");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for n in [8usize, 32, 128] {
        let db = scaled_cycle_instance(3, true, n, 17);
        group.bench_with_input(BenchmarkId::from_parameter(n), &db, |b, db| {
            b.iter(|| solver.is_certain(db))
        });
    }
    group.finish();
}

/// E7: the coNP region — the exact oracle on reduced q0 instances.
fn bench_conp_oracle(c: &mut Criterion) {
    let target = catalog::q1().query;
    let reduction = Theorem2Reduction::new(&target).unwrap();
    let oracle = ExactOracle::new(&target).unwrap();
    let mut group = c.benchmark_group("theorem2_reduction_oracle");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for n in [2usize, 4, 6] {
        let db0 = q0_instance(n as u64, n, 2, 0.8);
        let db = reduction.apply(&db0);
        group.bench_with_input(BenchmarkId::new("reduce", n), &db0, |b, db0| {
            b.iter(|| reduction.apply(db0))
        });
        group.bench_with_input(BenchmarkId::new("solve_reduced", n), &db, |b, db| {
            b.iter(|| oracle.is_certain(db))
        });
    }
    group.finish();
}

/// E12: attack-graph construction and FO-rewriting evaluation.
fn bench_attack_graph(c: &mut Criterion) {
    let mut group = c.benchmark_group("attack_graph_build");
    group.sample_size(20);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for entry in [catalog::q1(), catalog::fig4(), catalog::ac_k(4)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(entry.name.clone()),
            &entry.query,
            |b, q| b.iter(|| AttackGraph::build(q).unwrap()),
        );
    }
    group.finish();

    let q = catalog::conference().query;
    let rewriting = certain_rewriting(&q).unwrap();
    let db = scaled_instance(&q, 16, 19);
    let mut group = c.benchmark_group("fo_rewriting_eval");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    group.bench_function("conference_16", |b| {
        b.iter(|| evaluate_sentence(&rewriting, &db))
    });
    group.finish();
}

/// E10: safe-plan probability evaluation vs. possible-world enumeration.
fn bench_probability(c: &mut Criterion) {
    let q = catalog::conference().query;
    let mut group = c.benchmark_group("probability_conference");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for n in [2usize, 4, 16] {
        let db = scaled_instance(&q, n, 23);
        let bid = BidDatabase::uniform_over_repairs(&db);
        group.bench_with_input(BenchmarkId::new("safe_plan", n), &bid, |b, bid| {
            b.iter(|| probability_safe(bid, &q).unwrap())
        });
        if db.repair_count_log2() < 14.0 {
            group.bench_with_input(BenchmarkId::new("exhaustive", n), &bid, |b, bid| {
                b.iter(|| probability_exact(bid, &q))
            });
        }
    }
    group.finish();
}

/// Lemma 1: purification cost on scaled instances.
fn bench_purification(c: &mut Criterion) {
    let q = catalog::fig4().query;
    let mut group = c.benchmark_group("purification_fig4");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for n in [8usize, 32] {
        let db = scaled_instance(&q, n, 29);
        group.bench_with_input(BenchmarkId::from_parameter(n), &db, |b, db| {
            b.iter(|| purify::purify(db, &q))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_eval_join,
    bench_rewriting,
    bench_terminal_cycles,
    bench_cycle_query,
    bench_conp_oracle,
    bench_attack_graph,
    bench_probability,
    bench_purification
);
criterion_main!(benches);
