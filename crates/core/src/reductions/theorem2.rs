//! The `θ̂` reduction from the proof of Theorem 2.
//!
//! Let `q` be an acyclic self-join-free Boolean conjunctive query whose
//! attack graph contains a strong cycle. By Lemma 4 there are atoms
//! `F ⇄ G` with the attack `F ⇝ G` strong. The proof of Theorem 2 reduces
//! `CERTAINTY(q0)` — with `q0 = {R0(x, y), S0(y, z, x)}`, coNP-complete by
//! Kolaitis and Pema — to `CERTAINTY(q)`:
//!
//! for every valuation `θ` of `{x, y, z}` that embeds `q0` into the
//! (purified) input database `db0`, and for every atom `H ∈ q`, a fact
//! `θ̂(H)` is emitted, where `θ̂(u)` depends only on which region of the
//! Venn diagram of `F^{+,q}`, `G^{+,q}`, `F^{⊞,q}` the variable `u` lies in
//! (Figure 3):
//!
//! | region | `θ̂(u)` |
//! |---|---|
//! | `F⁺ ∩ G⁺` | the fixed constant `d` |
//! | `F⁺ ∖ G⁺` | `θ(x)` |
//! | `G⁺ ∖ F^⊞` | `⟨θ(y), θ(z)⟩` |
//! | `(G⁺ ∩ F^⊞) ∖ F⁺` | `θ(y)` |
//! | `F^⊞ ∖ (F⁺ ∪ G⁺)` | `⟨θ(x), θ(y)⟩` |
//! | outside `F^⊞ ∪ G⁺` | `⟨θ(x), θ(y), θ(z)⟩` |
//!
//! The reduction is a bijection between repairs (Sublemma 4) and preserves
//! (non-)certainty; the integration tests check this against the exact
//! oracle on small instances, and the benchmark harness uses it to produce
//! hard instances for arbitrary strong-cycle queries.

use crate::attack::{AttackGraph, CycleAnalysis};
use cqa_data::{Fact, UncertainDatabase, Value};
use cqa_query::{catalog, eval, purify, ConjunctiveQuery, QueryError, Valuation, Variable};

/// The Theorem 2 reduction for a fixed target query `q`.
pub struct Theorem2Reduction {
    target: ConjunctiveQuery,
    q0: ConjunctiveQuery,
    /// Variables of the six Venn regions, precomputed.
    region_of: Vec<(Variable, Region)>,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Region {
    /// `F⁺ ∩ G⁺` → the constant `d`.
    Both,
    /// `F⁺ ∖ G⁺` → `θ(x)`.
    FPlusOnly,
    /// `G⁺ ∖ F^⊞` → `⟨θ(y), θ(z)⟩`.
    GPlusOutsideFBox,
    /// `(G⁺ ∩ F^⊞) ∖ F⁺` → `θ(y)`.
    GPlusInsideFBox,
    /// `F^⊞ ∖ (F⁺ ∪ G⁺)` → `⟨θ(x), θ(y)⟩`.
    FBoxOnly,
    /// outside `F^⊞ ∪ G⁺` → `⟨θ(x), θ(y), θ(z)⟩`.
    Outside,
}

impl Theorem2Reduction {
    /// Prepares the reduction to `CERTAINTY(target)`.
    ///
    /// Fails unless the target query is acyclic, self-join-free, Boolean and
    /// has a strong cycle in its attack graph (the premise of Theorem 2).
    pub fn new(target: &ConjunctiveQuery) -> Result<Self, QueryError> {
        target.require_boolean()?;
        target.require_self_join_free()?;
        let graph = AttackGraph::build(target)?;
        let analysis = CycleAnalysis::analyze(&graph);
        let Some((f, g)) = analysis.strong_two_cycle(&graph) else {
            return Err(QueryError::Unsupported {
                reason: "Theorem 2 reduction requires a strong cycle in the attack graph".into(),
            });
        };
        let closures = graph.closures();
        let f_plus = closures.plus(f);
        let g_plus = closures.plus(g);
        let f_box = closures.boxed(f);
        let index = closures.var_index();
        let region_of = target
            .vars()
            .into_iter()
            .map(|u| {
                let bit = index.position(&u).expect("query variable is indexed");
                let in_f_plus = f_plus.contains(bit);
                let in_g_plus = g_plus.contains(bit);
                let in_f_box = f_box.contains(bit);
                let region = if in_f_plus && in_g_plus {
                    Region::Both
                } else if in_f_plus {
                    Region::FPlusOnly
                } else if in_g_plus && !in_f_box {
                    Region::GPlusOutsideFBox
                } else if in_g_plus {
                    Region::GPlusInsideFBox
                } else if in_f_box {
                    Region::FBoxOnly
                } else {
                    Region::Outside
                };
                (u, region)
            })
            .collect();
        Ok(Theorem2Reduction {
            target: target.clone(),
            q0: catalog::q0().query,
            region_of,
        })
    }

    /// The source query `q0 = {R0(x, y), S0(y, z, x)}`.
    pub fn source_query(&self) -> &ConjunctiveQuery {
        &self.q0
    }

    /// The target query `q`.
    pub fn target_query(&self) -> &ConjunctiveQuery {
        &self.target
    }

    /// `θ̂`: lifts a valuation of `{x, y, z}` to a valuation of `vars(q)`.
    fn lift(&self, theta: &Valuation) -> Valuation {
        let x = theta.get(&Variable::new("x")).expect("x bound").clone();
        let y = theta.get(&Variable::new("y")).expect("y bound").clone();
        let z = theta.get(&Variable::new("z")).expect("z bound").clone();
        let d = Value::str("d");
        Valuation::from_pairs(self.region_of.iter().map(|(u, region)| {
            let value = match region {
                Region::Both => d.clone(),
                Region::FPlusOnly => x.clone(),
                Region::GPlusOutsideFBox => Value::pair(y.clone(), z.clone()),
                Region::GPlusInsideFBox => y.clone(),
                Region::FBoxOnly => Value::pair(x.clone(), y.clone()),
                Region::Outside => Value::triple(x.clone(), y.clone(), z.clone()),
            };
            (u.clone(), value)
        }))
    }

    /// Applies the reduction to an instance of `CERTAINTY(q0)`, producing an
    /// instance of `CERTAINTY(target)` with the same (non-)membership.
    pub fn apply(&self, db0: &UncertainDatabase) -> UncertainDatabase {
        // The construction assumes a purified source instance (Lemma 1).
        let db0 = purify::purify(db0, &self.q0);
        let valuations = eval::all_valuations(&db0, &self.q0);
        let mut facts: Vec<Fact> = Vec::new();
        for theta in &valuations {
            let lifted = self.lift(theta);
            for atom in self.target.atoms() {
                facts.push(lifted.apply_atom(atom).expect("θ̂ is total on vars(q)"));
            }
        }
        UncertainDatabase::from_facts(self.target.schema().clone(), facts)
            .expect("reduction facts are schema-valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solvers::{CertaintySolver, ExactOracle};
    use cqa_query::catalog;

    fn q0_db(pairs: &[(&str, &str)], triples: &[(&str, &str, &str)]) -> UncertainDatabase {
        let q0 = catalog::q0().query;
        let mut db = UncertainDatabase::new(q0.schema().clone());
        for &(a, b) in pairs {
            db.insert_values("R0", [a, b]).unwrap();
        }
        for &(a, b, c) in triples {
            db.insert_values("S0", [a, b, c]).unwrap();
        }
        db
    }

    #[test]
    fn requires_a_strong_cycle() {
        assert!(Theorem2Reduction::new(&catalog::q1().query).is_ok());
        assert!(Theorem2Reduction::new(&catalog::q0().query).is_ok());
        assert!(Theorem2Reduction::new(&catalog::fig4().query).is_err());
        assert!(Theorem2Reduction::new(&catalog::conference().query).is_err());
        assert!(Theorem2Reduction::new(&catalog::ac_k(3).query).is_err());
    }

    #[test]
    fn reduction_to_q1_preserves_certainty_on_small_instances() {
        let target = catalog::q1().query;
        let reduction = Theorem2Reduction::new(&target).unwrap();
        let source_oracle = ExactOracle::new(reduction.source_query()).unwrap();
        let target_oracle = ExactOracle::new(&target).unwrap();

        let instances = [
            // Certain: single consistent match.
            q0_db(&[("a", "b")], &[("b", "c", "a")]),
            // Not certain: R0(a, ·) has an escape value.
            q0_db(&[("a", "b"), ("a", "e")], &[("b", "c", "a")]),
            // Certain again: both choices of R0(a, ·) are covered by S0 facts.
            q0_db(
                &[("a", "b"), ("a", "e")],
                &[("b", "c", "a"), ("e", "c", "a")],
            ),
            // Uncertainty on the S0 side.
            q0_db(&[("a", "b")], &[("b", "c", "a"), ("b", "c", "a2")]),
            // Mixed, two independent key groups.
            q0_db(
                &[("a", "b"), ("a2", "b2"), ("a2", "b3")],
                &[("b", "c", "a"), ("b2", "c2", "a2"), ("b3", "c2", "a2")],
            ),
        ];
        for (i, db0) in instances.iter().enumerate() {
            let expected = source_oracle.is_certain_bruteforce(db0);
            let db = reduction.apply(db0);
            let actual = target_oracle.is_certain(&db);
            assert_eq!(
                actual, expected,
                "instance {i}\nsource:\n{db0}\ntarget:\n{db}"
            );
        }
    }

    #[test]
    fn reduction_output_size_is_linear_in_the_number_of_valuations() {
        let target = catalog::q1().query;
        let reduction = Theorem2Reduction::new(&target).unwrap();
        let db0 = q0_db(
            &[("a", "b"), ("a", "e"), ("a2", "b")],
            &[("b", "c", "a"), ("e", "c", "a"), ("b", "c", "a2")],
        );
        let purified = purify::purify(&db0, reduction.source_query());
        let valuations = eval::all_valuations(&purified, reduction.source_query());
        let db = reduction.apply(&db0);
        // At most |V| facts per atom of the target query.
        assert!(db.fact_count() <= valuations.len() * target.len());
        assert!(db.fact_count() > 0);
    }

    #[test]
    fn tuple_constants_keep_the_reduction_injective() {
        // The θ̂ construction must not conflate distinct (y, z) pairs: the
        // pair and triple values are first-class tuple constants.
        let target = catalog::q0().query; // q0 itself has a strong cycle
        let reduction = Theorem2Reduction::new(&target).unwrap();
        let db0 = q0_db(&[("a", "b")], &[("b", "c1", "a"), ("b", "c2", "a")]);
        let db = reduction.apply(&db0);
        // Two S0-source facts → two distinct valuations → the reduced database
        // must keep them apart (otherwise certainty would flip).
        let oracle_src = ExactOracle::new(reduction.source_query()).unwrap();
        let oracle_tgt = ExactOracle::new(&target).unwrap();
        assert_eq!(
            oracle_src.is_certain_bruteforce(&db0),
            oracle_tgt.is_certain(&db)
        );
    }
}
