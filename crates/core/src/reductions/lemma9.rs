//! The all-key padding reduction of Lemma 9.
//!
//! If `q' ⊆ q` and every atom of `q \ q'` is all-key, then
//! `db ∈ CERTAINTY(q')` iff `f(db) ∈ CERTAINTY(q)`, where `f(db)` extends
//! `db` with **every** tuple over the active domain for each all-key
//! relation of `q \ q'`. All-key relations are consistent by construction,
//! so they do not add any repair choice; they merely make the extra atoms of
//! `q` vacuously satisfiable.
//!
//! The paper instantiates this with `q' = C(k)` and `q = AC(k)` to settle the
//! complexity of `CERTAINTY(C(k))` (Corollary 1).

use cqa_data::{DataError, Fact, UncertainDatabase, Value};
use cqa_query::{ConjunctiveQuery, QueryError};

/// Applies the Lemma 9 reduction: pads `db` (an instance for the sub-query
/// `sub`) with all tuples over its active domain for every relation of
/// `full` that is not mentioned in `sub`.
///
/// Fails if some padded relation is not all-key (the lemma's premise) or the
/// two queries disagree on their schema.
pub fn pad_with_all_key_atoms(
    db: &UncertainDatabase,
    sub: &ConjunctiveQuery,
    full: &ConjunctiveQuery,
) -> Result<UncertainDatabase, QueryError> {
    let schema = full.schema();
    // Relations of `full` that do not occur in `sub`.
    let extra: Vec<_> = full
        .atoms()
        .iter()
        .filter(|a| !sub.atoms().iter().any(|b| b.relation() == a.relation()))
        .collect();
    for atom in &extra {
        if !schema.relation(atom.relation()).is_all_key() {
            return Err(QueryError::Unsupported {
                reason: format!(
                    "Lemma 9 requires the padded atom over `{}` to be all-key",
                    schema.relation(atom.relation()).name
                ),
            });
        }
    }

    let domain: Vec<Value> = db.active_domain().into_iter().collect();
    let mut padded = UncertainDatabase::new(schema.clone());
    for fact in db.facts() {
        padded
            .insert(fact.clone())
            .map_err(|e: DataError| QueryError::Unsupported {
                reason: format!("schema mismatch while padding: {e}"),
            })?;
    }
    for atom in extra {
        let arity = schema.relation(atom.relation()).arity();
        // Every tuple over the active domain (|D|^arity facts).
        let mut counters = vec![0usize; arity];
        if domain.is_empty() {
            continue;
        }
        loop {
            let values: Vec<Value> = counters.iter().map(|&i| domain[i].clone()).collect();
            padded
                .insert(Fact::new(atom.relation(), values))
                .map_err(|e| QueryError::Unsupported {
                    reason: format!("schema mismatch while padding: {e}"),
                })?;
            // Advance the odometer.
            let mut pos = arity;
            loop {
                if pos == 0 {
                    break;
                }
                pos -= 1;
                counters[pos] += 1;
                if counters[pos] < domain.len() {
                    break;
                }
                counters[pos] = 0;
            }
            if counters.iter().all(|&c| c == 0) {
                break;
            }
        }
    }
    Ok(padded)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solvers::{CertaintySolver, CycleQuerySolver, ExactOracle};
    use cqa_query::catalog;

    /// Builds a C(k) instance and an AC(k)-schema copy of it (same R facts).
    fn ck_instance_on_ack_schema(
        k: usize,
        edges: &[(usize, &str, &str)],
    ) -> (UncertainDatabase, UncertainDatabase) {
        let ck = catalog::c_k(k).query;
        let ack = catalog::ac_k(k).query;
        let mut db_c = UncertainDatabase::new(ck.schema().clone());
        let mut db_a = UncertainDatabase::new(ack.schema().clone());
        for &(i, a, b) in edges {
            db_c.insert_values(&format!("R{i}"), [a, b]).unwrap();
            db_a.insert_values(&format!("R{i}"), [a, b]).unwrap();
        }
        (db_c, db_a)
    }

    #[test]
    fn corollary1_reduction_preserves_certainty() {
        // A forced 3-cycle: certain for C(3).
        let edges = [(1usize, "a", "b"), (2, "b", "c"), (3, "c", "a")];
        let (db_c, db_a) = ck_instance_on_ack_schema(3, &edges);
        let c3 = catalog::c_k(3).query;
        let ac3 = catalog::ac_k(3).query;
        let oracle_c3 = ExactOracle::new(&c3).unwrap();
        assert!(oracle_c3.is_certain_bruteforce(&db_c));

        let padded = pad_with_all_key_atoms(&db_a, &c3, &ac3).unwrap();
        // The padded database has |D|^3 S3 facts.
        let s3 = ac3.schema().relation_id("S3").unwrap();
        assert_eq!(padded.relation_facts(s3).count(), 27);
        let ac_solver = CycleQuerySolver::new(&ac3).unwrap();
        assert!(ac_solver.is_certain(&padded));

        // An instance with an escape: R1(a,·) may avoid the cycle.
        let edges2 = [
            (1usize, "a", "b"),
            (1, "a", "d"),
            (2, "b", "c"),
            (2, "d", "c"),
            (3, "c", "a"),
        ];
        let (db_c2, db_a2) = ck_instance_on_ack_schema(3, &edges2);
        // Both branches b and d reach c and close the cycle, so it is still certain;
        // check oracle and reduction agree whatever the truth value is.
        let truth = oracle_c3.is_certain_bruteforce(&db_c2);
        let padded2 = pad_with_all_key_atoms(&db_a2, &c3, &ac3).unwrap();
        assert_eq!(ac_solver.is_certain(&padded2), truth);
    }

    #[test]
    fn non_all_key_padding_is_rejected() {
        // Padding q0's S0 (which is not all-key) must be refused.
        let q0 = catalog::q0().query;
        let sub = q0.restricted_to(&[0]);
        let db = UncertainDatabase::new(q0.schema().clone());
        assert!(matches!(
            pad_with_all_key_atoms(&db, &sub, &q0),
            Err(QueryError::Unsupported { .. })
        ));
    }

    #[test]
    fn empty_database_pads_to_empty() {
        let c3 = catalog::c_k(3).query;
        let ac3 = catalog::ac_k(3).query;
        let db = UncertainDatabase::new(ac3.schema().clone());
        let padded = pad_with_all_key_atoms(&db, &c3, &ac3).unwrap();
        assert!(padded.is_empty());
    }
}
