//! Cross-crate integration tests: the full pipeline from text input through
//! classification, solving, rewriting, reductions and probabilities, checked
//! against the brute-force oracle on every step.

use cqa::core::answers::certain_answers;
use cqa::core::classify::{classify, ComplexityClass, PtimeReason};
use cqa::core::fo::{certain_rewriting, eval::evaluate_sentence, sql::to_sql};
use cqa::core::reductions::Theorem2Reduction;
use cqa::core::solvers::{CertaintyEngine, CertaintySolver, ExactOracle};
use cqa::gen::{figure6_database, q0_instance, GeneratorConfig, UncertainDbGenerator};
use cqa::parser::{dot, parse_document};
use cqa::prob::bridge::{probability_is_one, theorem6_holds};
use cqa::prob::counting::count_satisfying_repairs;
use cqa::prob::eval::{probability_exact, probability_over_repairs};
use cqa::prob::BidDatabase;
use cqa::query::catalog;

/// The Figure 1 document, in the text format, end to end through the parser.
const FIGURE1: &str = r#"
relation C(conf*, year*, city)
relation R(conf*, rank)
C(PODS, 2016, Rome)
C(PODS, 2016, Paris)
C(KDD, 2017, Rome)
R(PODS, A)
R(KDD, A)
R(KDD, B)
certain rome :- C(x, y, "Rome"), R(x, "A")
certain which(x) :- C(x, y, "Rome"), R(x, "A")
"#;

#[test]
fn figure1_pipeline_from_text_to_answers() {
    let doc = parse_document(FIGURE1).unwrap();
    assert_eq!(doc.database.repair_count(), Some(4));
    let (_, rome) = &doc.queries[0];

    // Classification, certainty, counting, probability — all consistent.
    let classification = classify(rome).unwrap();
    assert_eq!(classification.class, ComplexityClass::FirstOrderExpressible);
    let engine = CertaintyEngine::new(rome).unwrap();
    assert!(!engine.is_certain(&doc.database));
    let count = count_satisfying_repairs(&doc.database, rome);
    assert_eq!((count.satisfying, count.total), (3, 4));
    assert!((probability_over_repairs(&doc.database, rome) - 0.75).abs() < 1e-12);

    // The certain FO rewriting and its SQL translation exist and agree.
    let formula = certain_rewriting(rome).unwrap();
    assert!(!evaluate_sentence(&formula, &doc.database));
    let sql = to_sql(&formula, rome.schema()).unwrap();
    assert!(sql.contains("NOT EXISTS"));

    // The non-Boolean variant has two possible answers and no certain one.
    let (_, which) = &doc.queries[1];
    let answers = certain_answers(which, &doc.database).unwrap();
    assert_eq!(answers.possible.len(), 2);
    assert!(answers.certain.is_empty());

    // DOT export mentions every atom of the query.
    let graph = cqa::core::AttackGraph::build(rome).unwrap();
    let rendered = dot::attack_graph_to_dot(&graph);
    assert!(rendered.contains("C(") && rendered.contains("R("));
}

/// The dispatching engine must agree with the exact oracle on every catalog
/// query, over generated instances small enough for brute force.
#[test]
fn engine_agrees_with_brute_force_on_the_catalog() {
    for entry in catalog::all() {
        let query = &entry.query;
        let engine = CertaintyEngine::new(query).unwrap();
        let oracle = ExactOracle::new(query).unwrap();
        for seed in 0..6u64 {
            let db = UncertainDbGenerator::new(
                query,
                GeneratorConfig {
                    seed,
                    matches: 3,
                    domain_per_variable: 3,
                    extra_block_facts: 1,
                    alternative_join_probability: 0.6,
                },
            )
            .generate();
            if db.repair_count_log2() > 16.0 {
                continue; // keep brute force feasible
            }
            assert_eq!(
                engine.is_certain(&db),
                oracle.is_certain_bruteforce(&db),
                "query {} seed {seed}\n{db}",
                entry.name
            );
        }
    }
}

/// Classification of the whole catalog matches the paper (the frontier chart).
#[test]
fn catalog_classification_matches_the_paper() {
    use ComplexityClass::*;
    let expectations: Vec<(&str, ComplexityClass)> = vec![
        ("conference", FirstOrderExpressible),
        ("path2", FirstOrderExpressible),
        ("path3", FirstOrderExpressible),
        ("q1", CoNpComplete),
        ("q0", CoNpComplete),
        ("fig4", PolynomialTime(PtimeReason::WeakTerminalCycles)),
        ("C(2)", PolynomialTime(PtimeReason::WeakTerminalCycles)),
        ("AC(2)", PolynomialTime(PtimeReason::CycleQueryAc { k: 2 })),
        ("AC(3)", PolynomialTime(PtimeReason::CycleQueryAc { k: 3 })),
        ("AC(4)", PolynomialTime(PtimeReason::CycleQueryAc { k: 4 })),
        ("C(3)", PolynomialTime(PtimeReason::CycleQueryC { k: 3 })),
        ("C(4)", PolynomialTime(PtimeReason::CycleQueryC { k: 4 })),
    ];
    for (name, expected) in expectations {
        let entry = catalog::all().into_iter().find(|e| e.name == name).unwrap();
        assert_eq!(classify(&entry.query).unwrap().class, expected, "{name}");
    }
}

/// Figure 6 / Figure 7: the worked AC(3) instance, decided three ways.
#[test]
fn figure6_decided_three_ways() {
    let ac3 = catalog::ac_k(3).query;
    let db = figure6_database();
    let engine = CertaintyEngine::new(&ac3).unwrap();
    let oracle = ExactOracle::new(&ac3).unwrap();
    assert!(!engine.is_certain(&db));
    assert!(!oracle.is_certain(&db));
    assert!(!oracle.is_certain_bruteforce(&db));
    // Exactly two falsifying repairs, as shown in Figure 7.
    let falsifying = db
        .repairs()
        .filter(|r| !cqa::query::eval::satisfies(r, &ac3))
        .count();
    assert_eq!(falsifying, 2);
}

/// The Theorem 2 reduction maps (non-)certainty faithfully, with the target
/// instance solved by the dispatching engine rather than the raw oracle.
#[test]
fn theorem2_reduction_end_to_end() {
    let target = catalog::q1().query;
    let reduction = Theorem2Reduction::new(&target).unwrap();
    let source_engine = CertaintyEngine::new(reduction.source_query()).unwrap();
    let target_engine = CertaintyEngine::new(&target).unwrap();
    for seed in 0..10u64 {
        let db0 = q0_instance(seed, 4, 2, 0.75);
        let reduced = reduction.apply(&db0);
        assert_eq!(
            source_engine.is_certain(&db0),
            target_engine.is_certain(&reduced),
            "seed {seed}"
        );
    }
}

/// Section 7: Pr(q) = 1 iff the full-block restriction is certain, and
/// Theorem 6 holds, on generated BID instances.
#[test]
fn probability_bridge_on_generated_instances() {
    let query = catalog::conference().query;
    assert!(theorem6_holds(&query).unwrap());
    for seed in 0..10u64 {
        let db = UncertainDbGenerator::new(
            &query,
            GeneratorConfig {
                seed,
                matches: 3,
                domain_per_variable: 3,
                extra_block_facts: 1,
                alternative_join_probability: 0.5,
            },
        )
        .generate();
        if db.repair_count_log2() > 14.0 {
            continue;
        }
        let bid = BidDatabase::uniform_over_repairs(&db);
        let exact_is_one = (probability_exact(&bid, &query) - 1.0).abs() < 1e-9;
        assert_eq!(
            exact_is_one,
            probability_is_one(&bid, &query).unwrap(),
            "seed {seed}"
        );
    }
}

/// The CLI's input format and the library agree on a non-trivial document
/// with multiple queries of different classes.
#[test]
fn multi_query_document() {
    let text = r#"
relation R1(a*, b)
relation R2(a*, b)
relation S2(a*, b*)
R1(x, y)
R1(x, z)
R2(y, x)
R2(z, x)
S2(x, y)
S2(x, z)
certain swap :- R1(u, v), R2(v, u)
certain with_s :- R1(u, v), R2(v, u), S2(u, v)
"#;
    let doc = parse_document(text).unwrap();
    assert_eq!(doc.queries.len(), 2);
    let (_, swap) = &doc.queries[0];
    let (_, with_s) = &doc.queries[1];
    assert_eq!(
        classify(swap).unwrap().class,
        ComplexityClass::PolynomialTime(PtimeReason::WeakTerminalCycles)
    );
    assert_eq!(
        classify(with_s).unwrap().class,
        ComplexityClass::PolynomialTime(PtimeReason::CycleQueryAc { k: 2 })
    );
    let oracle_swap = ExactOracle::new(swap).unwrap();
    let engine_swap = CertaintyEngine::new(swap).unwrap();
    assert_eq!(
        engine_swap.is_certain(&doc.database),
        oracle_swap.is_certain_bruteforce(&doc.database)
    );
    let oracle_s = ExactOracle::new(with_s).unwrap();
    let engine_s = CertaintyEngine::new(with_s).unwrap();
    assert_eq!(
        engine_s.is_certain(&doc.database),
        oracle_s.is_certain_bruteforce(&doc.database)
    );
}
