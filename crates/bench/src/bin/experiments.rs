//! Regenerates every figure, worked example and theorem-level claim of
//!
//! > Wijsen, "Charting the Tractability Frontier of Certain Conjunctive
//! > Query Answering", PODS 2013
//!
//! as machine-checked output. Each section corresponds to one experiment of
//! `EXPERIMENTS.md` (E1–E12); the expected ("paper") value is printed next to
//! the measured one so the two can be diffed at a glance.
//!
//! Run with `cargo run --release -p cqa-bench --bin experiments`.

use cqa_bench::{micros, scaled_cycle_instance, scaled_instance, time_it};
use cqa_core::answers::certain_answers;
use cqa_core::attack::{AttackGraph, CycleAnalysis};
use cqa_core::classify::{classify, ComplexityClass};
use cqa_core::fo::{certain_rewriting, eval::evaluate_sentence, sql::to_sql};
use cqa_core::reductions::Theorem2Reduction;
use cqa_core::solvers::{
    CertaintyEngine, CertaintySolver, CycleQuerySolver, ExactOracle, RewritingSolver,
    TerminalCycleSolver,
};
use cqa_gen::{figure6_database, q0_instance, random_acyclic_query};
use cqa_prob::bridge::{corollary2_holds, probability_is_one, theorem6_holds};
use cqa_prob::counting::count_satisfying_repairs;
use cqa_prob::eval::{probability_exact, probability_over_repairs, probability_safe};
use cqa_prob::{is_safe, BidDatabase};
use cqa_query::{catalog, eval};

fn header(id: &str, title: &str) {
    println!("\n==================================================================");
    println!("{id}  {title}");
    println!("==================================================================");
}

fn check(label: &str, expected: impl std::fmt::Display, measured: impl std::fmt::Display) {
    let expected = expected.to_string();
    let measured = measured.to_string();
    let status = if expected == measured {
        "ok "
    } else {
        "MISMATCH"
    };
    println!("  [{status}] {label:<58} paper: {expected:<18} measured: {measured}");
}

/// E1 — Figure 1 and the Section 1 example.
fn e1() {
    header(
        "E1",
        "Figure 1: conference planning database, 4 repairs, query true in 3",
    );
    let q = catalog::conference().query;
    let db = catalog::conference_database();
    check("number of facts", 6, db.fact_count());
    check("number of blocks", 4, db.block_count());
    check("number of repairs", 4, db.repair_count().unwrap());
    let count = count_satisfying_repairs(&db, &q);
    check("repairs satisfying the query", 3, count.satisfying);
    check(
        "CERTAINTY(q) on Figure 1",
        false,
        CertaintyEngine::new(&q).unwrap().is_certain(&db),
    );
    check(
        "Pr(q) under uniform repairs",
        0.75,
        probability_over_repairs(&db, &q),
    );
}

/// E2 — Figure 2 and Examples 2–4: q1's join tree, closures and attack graph.
fn e2() {
    header(
        "E2",
        "Figure 2 / Examples 2-4: attack graph of q1, closures, weak/strong attacks",
    );
    let q = catalog::q1().query;
    let graph = AttackGraph::build(&q).unwrap();
    let closures = graph.closures();
    let names = ["F = R(u,'a',x)", "G = S(y,x,z)", "H = T(x,y)", "I = P(x,z)"];
    let expected_plus = ["{u}", "{x, z}", "{x, y, z}", "{y}"]; // F, H, I, G reported below in atom order
    let _ = expected_plus;
    let plus_expect = ["u", "y", "x z", "x y z"];
    let boxed_expect = ["u x y z", "x y z", "x y z", "x y z"];
    for atom in 0..4 {
        let plus: Vec<String> = closures
            .plus_vars(atom)
            .iter()
            .map(|v| v.to_string())
            .collect();
        let boxed: Vec<String> = closures
            .boxed_vars(atom)
            .iter()
            .map(|v| v.to_string())
            .collect();
        check(
            &format!("{}^+  ({})", names[atom], "Definition 2"),
            plus_expect[atom],
            plus.join(" "),
        );
        check(
            &format!("{}^⊞ ({})", names[atom], "Definition 5"),
            boxed_expect[atom],
            boxed.join(" "),
        );
    }
    check(
        "attack F -> G exists and is weak",
        "weak",
        graph
            .strength(0, 1)
            .map(|s| s.to_string())
            .unwrap_or_else(|| "absent".into()),
    );
    check(
        "attack G -> F exists and is strong",
        "strong",
        graph
            .strength(1, 0)
            .map(|s| s.to_string())
            .unwrap_or_else(|| "absent".into()),
    );
    let strong_count = graph
        .edges()
        .iter()
        .filter(|e| e.strength == cqa_core::AttackStrength::Strong)
        .count();
    check("number of strong attacks in q1", 1, strong_count);
    let analysis = CycleAnalysis::analyze(&graph);
    check(
        "attack graph of q1 has a strong cycle",
        true,
        analysis.has_strong_cycle(),
    );
    check(
        "classification of q1 (Theorem 2)",
        "coNP-complete",
        classify(&q).unwrap().class,
    );
    println!("\n  attack graph edges:\n{}", indent(&graph.render()));
}

/// E3 — Figure 4 / Example 5.
fn e3() {
    header(
        "E3",
        "Figure 4 / Example 5: all attack cycles weak and terminal => in P (Theorem 3)",
    );
    let q = catalog::fig4().query;
    let graph = AttackGraph::build(&q).unwrap();
    let analysis = CycleAnalysis::analyze(&graph);
    check("number of attack cycles", 3, analysis.cycles().len());
    check("all cycles weak", true, analysis.all_cycles_weak());
    check("all cycles terminal", true, analysis.all_cycles_terminal());
    check(
        "all cycles have length 2 (Lemma 6)",
        true,
        analysis.cycles().iter().all(|c| c.len() == 2),
    );
    check(
        "classification (Theorem 3)",
        "in P (weak terminal cycles, Theorem 3), not FO",
        classify(&q).unwrap().class,
    );
}

/// E4 — Figure 5 / Example 6.
fn e4() {
    header(
        "E4",
        "Figure 5 / Example 6: AC(3) has only weak, non-terminal cycles",
    );
    let q = catalog::ac_k(3).query;
    let graph = AttackGraph::build(&q).unwrap();
    let analysis = CycleAnalysis::analyze(&graph);
    check("every Ri attacks every other atom", true, {
        (0..3).all(|i| (0..4).filter(|&j| j != i).all(|j| graph.attacks(i, j)))
    });
    check("S3 attacks nothing", true, graph.attacked_by(3).is_empty());
    check("all cycles weak", true, analysis.all_cycles_weak());
    check(
        "no cycle terminal",
        true,
        analysis.cycles().iter().all(|c| !c.terminal),
    );
    check(
        "classification (Theorem 4)",
        "in P (AC(3), Theorem 4), not FO",
        classify(&q).unwrap().class,
    );
}

/// E5 — Figures 6 and 7: the worked AC(3) instance.
fn e5() {
    header(
        "E5",
        "Figures 6/7: the AC(3) instance admits falsifying repairs",
    );
    let q = catalog::ac_k(3).query;
    let db = figure6_database();
    check("facts in the Figure 6 instance", 12, db.fact_count());
    check(
        "repairs of the Figure 6 instance",
        8,
        db.repair_count().unwrap(),
    );
    let solver = CycleQuerySolver::new(&q).unwrap();
    let oracle = ExactOracle::new(&q).unwrap();
    check(
        "CERTAINTY(AC(3)) by Theorem 4 algorithm",
        false,
        solver.is_certain(&db),
    );
    check(
        "CERTAINTY(AC(3)) by brute force",
        false,
        oracle.is_certain_bruteforce(&db),
    );
    let falsifying = db
        .repairs()
        .filter(|r| !eval::naive::satisfies(r, &q))
        .count();
    check("falsifying repairs (Figure 7 shows two)", 2, falsifying);
}

/// E6 — the tractability-frontier chart over the query catalog.
fn e6() {
    header(
        "E6",
        "Theorems 1-4: classification of the query catalog (the frontier chart)",
    );
    let expected: &[(&str, &str)] = &[
        ("conference", "first-order expressible"),
        ("path2", "first-order expressible"),
        ("path3", "first-order expressible"),
        ("q1", "coNP-complete"),
        ("q0", "coNP-complete"),
        ("fig4", "in P (weak terminal cycles, Theorem 3), not FO"),
        ("C(2)", "in P (weak terminal cycles, Theorem 3), not FO"),
        ("AC(2)", "in P (AC(2), Theorem 4), not FO"),
        ("AC(3)", "in P (AC(3), Theorem 4), not FO"),
        ("AC(4)", "in P (AC(4), Theorem 4), not FO"),
        ("C(3)", "in P (C(3), Corollary 1)"),
        ("C(4)", "in P (C(4), Corollary 1)"),
    ];
    for (name, want) in expected {
        let entry = catalog::all()
            .into_iter()
            .find(|e| e.name == *name)
            .unwrap_or_else(|| panic!("catalog entry {name}"));
        let got = classify(&entry.query).unwrap().class;
        check(&format!("CERTAINTY({name})"), want, got);
    }
    // Safety (Section 7) alongside, anticipating E10's Theorem 6 check.
    println!("\n  query        safe?   FO-expressible?");
    for entry in catalog::all() {
        if !cqa_query::join_tree::is_acyclic(&entry.query) {
            continue;
        }
        let safe = is_safe(&entry.query);
        let fo = matches!(
            classify(&entry.query).unwrap().class,
            ComplexityClass::FirstOrderExpressible
        );
        println!("  {:<12} {:<7} {}", entry.name, safe, fo);
    }
}

/// E7 — the Theorem 2 reduction.
fn e7() {
    header(
        "E7",
        "Theorem 2: the θ̂ reduction from CERTAINTY(q0) to CERTAINTY(q1)",
    );
    let target = catalog::q1().query;
    let reduction = Theorem2Reduction::new(&target).unwrap();
    let src_oracle = ExactOracle::new(reduction.source_query()).unwrap();
    let tgt_oracle = ExactOracle::new(&target).unwrap();
    let mut agreements = 0;
    let mut total = 0;
    for seed in 0..20 {
        let db0 = q0_instance(seed, 4, 2, 0.7);
        let reduced = reduction.apply(&db0);
        let expected = src_oracle.is_certain(&db0);
        let got = tgt_oracle.is_certain(&reduced);
        total += 1;
        if expected == got {
            agreements += 1;
        }
    }
    check(
        "reduction preserves (non-)certainty on 20 random instances",
        "20/20",
        format!("{agreements}/{total}"),
    );
    // Scaling of the reduction itself (polynomial-time construction).
    for &n in &[50usize, 100, 200] {
        let db0 = q0_instance(1, n, 2, 0.7);
        let (reduced, elapsed) = time_it(|| reduction.apply(&db0));
        println!(
            "  |db0| = {:>5} facts  ->  |db| = {:>6} facts   construction {}",
            db0.fact_count(),
            reduced.fact_count(),
            micros(elapsed)
        );
    }
}

/// E8 — Theorem 3 scaling: polynomial solver vs. exponential baseline.
fn e8() {
    header(
        "E8",
        "Theorem 3: weak terminal cycles in P (fig4 query), vs. brute-force baseline",
    );
    let q = catalog::fig4().query;
    let solver = TerminalCycleSolver::new(&q).unwrap();
    let oracle = ExactOracle::new(&q).unwrap();
    println!("  n(matches)   facts   terminal-cycles    exact-oracle      agree");
    for &n in &[2usize, 4, 8, 16, 32, 64] {
        let db = scaled_instance(&q, n, 42);
        let (a, ta) = time_it(|| solver.is_certain(&db));
        // The oracle is exponential; only run it while the repair space is small.
        if db.repair_count_log2() < 22.0 {
            let (b, tb) = time_it(|| oracle.is_certain(&db));
            println!(
                "  {:>10}   {:>5}   {:>14}   {:>13}   {}",
                n,
                db.fact_count(),
                micros(ta),
                micros(tb),
                a == b
            );
        } else {
            println!(
                "  {:>10}   {:>5}   {:>14}   {:>13}   (skipped: 2^{:.0} repairs)",
                n,
                db.fact_count(),
                micros(ta),
                "-",
                db.repair_count_log2()
            );
        }
    }
    println!("  expected shape: the Theorem 3 solver scales polynomially; the oracle blows up.");
}

/// E9 — Theorem 4 / Corollary 1 scaling.
fn e9() {
    header(
        "E9",
        "Theorem 4 / Corollary 1: AC(k) and C(k) certainty at scale",
    );
    for k in 2..=4usize {
        let ac = catalog::ac_k(k).query;
        let solver = CycleQuerySolver::new(&ac).unwrap();
        for &n in &[10usize, 40, 160] {
            let db = scaled_cycle_instance(k, true, n, 7);
            let (verdict, elapsed) = time_it(|| solver.is_certain(&db));
            println!(
                "  AC({k})  layer size {:>4}  facts {:>6}  certain = {:<5}  {}",
                n,
                db.fact_count(),
                verdict,
                micros(elapsed)
            );
        }
    }
    let c3 = catalog::c_k(3).query;
    let c_solver = CycleQuerySolver::new(&c3).unwrap();
    let oracle = ExactOracle::new(&c3).unwrap();
    let mut agree = 0;
    for seed in 0..15 {
        let db = scaled_cycle_instance(3, false, 3, seed);
        if c_solver.is_certain(&db) == oracle.is_certain(&db) {
            agree += 1;
        }
    }
    check(
        "C(3): Theorem 4 algorithm agrees with the oracle (15 seeds)",
        "15/15",
        format!("{agree}/15"),
    );
}

/// E10 — Section 7: IsSafe, safe-plan evaluation, Theorem 6.
fn e10() {
    header(
        "E10",
        "Section 7: IsSafe, PROBABILITY(q) evaluation, Theorem 6 / Corollary 2",
    );
    let safe_expected: &[(&str, bool)] = &[
        ("conference", true),
        ("path2", false),
        ("q0", false),
        ("q1", false),
        ("AC(3)", false),
        ("fig4", false),
    ];
    for (name, want) in safe_expected {
        let entry = catalog::all()
            .into_iter()
            .find(|e| e.name == *name)
            .unwrap();
        check(&format!("IsSafe({name})"), want, is_safe(&entry.query));
    }
    let mut t6 = true;
    let mut c2 = true;
    for entry in catalog::all() {
        if !cqa_query::join_tree::is_acyclic(&entry.query) {
            continue;
        }
        t6 &= theorem6_holds(&entry.query).unwrap();
        c2 &= corollary2_holds(&entry.query).unwrap();
    }
    check("Theorem 6 (safe => FO) holds on the catalog", true, t6);
    check(
        "Corollary 2 (not FO => unsafe) holds on the catalog",
        true,
        c2,
    );

    // Safe-plan vs. exhaustive evaluation on Figure 1.
    let q = catalog::conference().query;
    let db = catalog::conference_database();
    let bid = BidDatabase::uniform_over_repairs(&db);
    let (exact, t_exact) = time_it(|| probability_exact(&bid, &q));
    let (safe, t_safe) = time_it(|| probability_safe(&bid, &q).unwrap());
    check("Pr(q) on Figure 1 (exhaustive)", 0.75, exact);
    check("Pr(q) on Figure 1 (safe plan)", 0.75, safe);
    // Scaling: the safe plan must keep working where enumeration explodes.
    for &n in &[8usize, 16, 64] {
        let db = scaled_instance(&q, n, 3);
        let bid = BidDatabase::uniform_over_repairs(&db);
        let (p, t) = time_it(|| probability_safe(&bid, &q).unwrap());
        println!(
            "  safe plan, {:>3} match groups ({:>4} facts): Pr = {:.4}   {}  (exhaustive would need 2^{:.0} worlds)",
            n,
            db.fact_count(),
            p,
            micros(t),
            db.repair_count_log2()
        );
    }
    println!(
        "  Figure 1 timings: exhaustive {} vs safe plan {}",
        micros(t_exact),
        micros(t_safe)
    );
}

/// E11 — Proposition 1.
fn e11() {
    header(
        "E11",
        "Proposition 1: Pr(q) = 1  <=>  restriction to full blocks is certain",
    );
    let q = catalog::conference().query;
    let mut agreement = 0;
    let total = 25;
    for seed in 0..total {
        let db = scaled_instance(&q, 4, seed);
        let bid = BidDatabase::uniform_over_repairs(&db);
        let via_prob = (probability_exact(&bid, &q) - 1.0).abs() < 1e-9;
        let via_certainty = probability_is_one(&bid, &q).unwrap();
        if via_prob == via_certainty {
            agreement += 1;
        }
    }
    check(
        "Pr(q)=1 agrees with CERTAINTY on the full-block restriction",
        format!("{total}/{total}"),
        format!("{agreement}/{total}"),
    );
}

/// E12 — attack-graph construction cost and rewriting artifacts.
fn e12() {
    header(
        "E12",
        "Attack-graph construction (Section 4: quadratic time) and FO rewritings",
    );
    let sized_queries = vec![
        catalog::conference(),
        catalog::q1(),
        catalog::fig4(),
        catalog::ac_k(7),
    ];
    for entry in sized_queries {
        let (graph, elapsed) = time_it(|| AttackGraph::build(&entry.query).unwrap());
        println!(
            "  {:<12} {:>2} atoms: {:>3} attacks, built in {}",
            entry.name,
            entry.query.len(),
            graph.edges().len(),
            micros(elapsed)
        );
    }
    for atoms in [3usize, 6] {
        let q = random_acyclic_query(atoms as u64, atoms, 4);
        let (graph, elapsed) = time_it(|| AttackGraph::build(&q).unwrap());
        println!(
            "  random acyclic query with {:>2} atoms: {:>3} attacks, built in {}",
            q.len(),
            graph.edges().len(),
            micros(elapsed)
        );
    }
    let q = catalog::conference().query;
    let rewriting = certain_rewriting(&q).unwrap();
    let db = catalog::conference_database();
    check(
        "FO rewriting of the conference query agrees with the solver",
        RewritingSolver::new(&q).unwrap().is_certain(&db),
        evaluate_sentence(&rewriting, &db),
    );
    println!(
        "\n  certain rewriting of the conference query:\n    {}",
        rewriting.display(q.schema())
    );
    println!(
        "\n  SQL translation:\n    {}",
        to_sql(&rewriting, q.schema()).unwrap()
    );
    // Certain answers for the non-Boolean variant.
    let schema = q.schema().clone();
    let open = cqa_query::ConjunctiveQuery::builder(schema)
        .atom(
            "C",
            [
                cqa_query::Term::var("x"),
                cqa_query::Term::var("y"),
                cqa_query::Term::constant("Rome"),
            ],
        )
        .atom(
            "R",
            [cqa_query::Term::var("x"), cqa_query::Term::constant("A")],
        )
        .free([cqa_query::Variable::new("x")])
        .build()
        .unwrap();
    let sets = certain_answers(&open, &db).unwrap();
    check("certain answers to q(x) on Figure 1", 0, sets.certain.len());
    check(
        "possible answers to q(x) on Figure 1",
        2,
        sets.possible.len(),
    );
}

fn indent(text: &str) -> String {
    text.lines()
        .map(|l| format!("    {l}"))
        .collect::<Vec<_>>()
        .join("\n")
}

fn main() {
    println!("certainty-rs experiment harness — reproducing Wijsen, PODS 2013");
    e1();
    e2();
    e3();
    e4();
    e5();
    e6();
    e7();
    e8();
    e9();
    e10();
    e11();
    e12();
    println!("\nAll experiment sections completed.");
}
