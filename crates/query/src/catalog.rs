//! A catalog of the queries used in the paper.
//!
//! Every worked example, figure and query family of the paper is available
//! here as a ready-made [`ConjunctiveQuery`] (with its schema), so that the
//! experiment harness, the examples and the tests all speak about exactly the
//! same objects:
//!
//! * [`conference`] — the introduction's conference-planning query over the
//!   Figure 1 database;
//! * [`q1`] — the query of Figure 2 / Examples 2–4;
//! * [`q0`] — the two-atom query `{R0(x, y), S0(y, z, x)}` whose
//!   `CERTAINTY` problem is coNP-complete (used in the proof of Theorem 2);
//! * [`fig4`] — the Example 5 query whose attack graph has three weak
//!   terminal cycles (Figure 4);
//! * [`c_k`] / [`ac_k`] — the cycle query families of Definition 8
//!   (Figure 5 shows `AC(3)`);
//! * a few auxiliary queries (paths, Cartesian products, …) used by tests
//!   and benchmarks.

use crate::{ConjunctiveQuery, Term, Variable};
use cqa_data::Schema;

/// A named query from the paper, with a human-readable description.
#[derive(Clone, Debug)]
pub struct CatalogQuery {
    /// Short name, e.g. `"q1"` or `"AC(3)"`.
    pub name: String,
    /// Where the query appears in the paper and what it illustrates.
    pub description: String,
    /// The query itself (its schema is reachable via [`ConjunctiveQuery::schema`]).
    pub query: ConjunctiveQuery,
}

fn v(name: &str) -> Term {
    Term::var(name)
}

/// The introduction's query over the Figure 1 conference database:
/// `∃x∃y (C(x, y, 'Rome') ∧ R(x, 'A'))` — "Will Rome host some A conference?".
pub fn conference() -> CatalogQuery {
    let schema = Schema::from_relations([("C", 3, 2), ("R", 2, 1)])
        .expect("valid schema")
        .into_shared();
    let query = ConjunctiveQuery::builder(schema)
        .atom("C", [v("x"), v("y"), Term::constant("Rome")])
        .atom("R", [v("x"), Term::constant("A")])
        .build()
        .expect("valid query");
    CatalogQuery {
        name: "conference".into(),
        description: "Figure 1 / Section 1: will Rome host some A conference?".into(),
        query,
    }
}

/// The Figure 1 conference-planning database that goes with [`conference`].
pub fn conference_database() -> cqa_data::UncertainDatabase {
    let schema = conference().query.schema().clone();
    let mut db = cqa_data::UncertainDatabase::new(schema);
    db.insert_values("C", ["PODS", "2016", "Rome"]).unwrap();
    db.insert_values("C", ["PODS", "2016", "Paris"]).unwrap();
    db.insert_values("C", ["KDD", "2017", "Rome"]).unwrap();
    db.insert_values("R", ["PODS", "A"]).unwrap();
    db.insert_values("R", ["KDD", "A"]).unwrap();
    db.insert_values("R", ["KDD", "B"]).unwrap();
    db
}

/// The query `q1 = {R(u, 'a', x), S(y, x, z), T(x, y), P(x, z)}` of Figure 2
/// and Examples 2–4. Its attack graph has a strong cycle, so
/// `CERTAINTY(q1)` is coNP-complete (Theorem 2).
pub fn q1() -> CatalogQuery {
    let schema = Schema::from_relations([("R", 3, 1), ("S", 3, 1), ("T", 2, 1), ("P", 2, 1)])
        .expect("valid schema")
        .into_shared();
    let query = ConjunctiveQuery::builder(schema)
        .atom("R", [v("u"), Term::constant("a"), v("x")])
        .atom("S", [v("y"), v("x"), v("z")])
        .atom("T", [v("x"), v("y")])
        .atom("P", [v("x"), v("z")])
        .build()
        .expect("valid query");
    CatalogQuery {
        name: "q1".into(),
        description: "Figure 2 / Examples 2-4: attack graph with a strong cycle (coNP-complete)"
            .into(),
        query,
    }
}

/// The query `q0 = {R0(x, y), S0(y, z, x)}` with signatures `[2,1]` and
/// `[3,2]`, used as the coNP-hard seed of the Theorem 2 reduction
/// (its hardness is due to Kolaitis and Pema).
pub fn q0() -> CatalogQuery {
    let schema = Schema::from_relations([("R0", 2, 1), ("S0", 3, 2)])
        .expect("valid schema")
        .into_shared();
    let query = ConjunctiveQuery::builder(schema)
        .atom("R0", [v("x"), v("y")])
        .atom("S0", [v("y"), v("z"), v("x")])
        .build()
        .expect("valid query");
    CatalogQuery {
        name: "q0".into(),
        description: "Section 5: the two-atom coNP-complete query {R0(x,y), S0(y,z,x)}".into(),
        query,
    }
}

/// The Example 5 / Figure 4 query
/// `{R1(x,u1,u2,z), R2(x,u2,u1,z), R3(x,y,u3,u4), R4(x,y,u4,u3), R5(y,u5,u6), R6(y,u6,u5)}`
/// whose attack graph consists of three weak **terminal** cycles, so
/// `CERTAINTY` is in P (Theorem 3) but not first-order expressible.
///
/// The primary keys (underlines in the paper's figure) are chosen so that the
/// claims of Example 5 hold: `R1`/`R2` have key length 2, `R3`/`R4` key
/// length 3, `R5`/`R6` key length 2; `cqa-core`'s tests verify the resulting
/// attack graph shape.
pub fn fig4() -> CatalogQuery {
    let schema = Schema::from_relations([
        ("R1", 4, 2),
        ("R2", 4, 2),
        ("R3", 4, 3),
        ("R4", 4, 3),
        ("R5", 3, 2),
        ("R6", 3, 2),
    ])
    .expect("valid schema")
    .into_shared();
    let query = ConjunctiveQuery::builder(schema)
        .atom("R1", [v("x"), v("u1"), v("u2"), v("z")])
        .atom("R2", [v("x"), v("u2"), v("u1"), v("z")])
        .atom("R3", [v("x"), v("y"), v("u3"), v("u4")])
        .atom("R4", [v("x"), v("y"), v("u4"), v("u3")])
        .atom("R5", [v("y"), v("u5"), v("u6")])
        .atom("R6", [v("y"), v("u6"), v("u5")])
        .build()
        .expect("valid query");
    CatalogQuery {
        name: "fig4".into(),
        description: "Figure 4 / Example 5: three weak terminal attack cycles; in P but not FO"
            .into(),
        query,
    }
}

/// The cycle query `C(k) = {R1(x1,x2), ..., Rk-1(xk-1,xk), Rk(xk,x1)}` of
/// Definition 8 (all signatures `[2,1]`). Acyclic iff `k = 2`;
/// `CERTAINTY(C(k))` is in P for every `k >= 2` (Corollary 1).
///
/// # Panics
/// Panics if `k < 2`.
pub fn c_k(k: usize) -> CatalogQuery {
    assert!(k >= 2, "C(k) is defined for k >= 2");
    let mut schema = Schema::new();
    for i in 1..=k {
        schema
            .add_relation(format!("R{i}"), 2, 1)
            .expect("distinct relation names");
    }
    let schema = schema.into_shared();
    let mut builder = ConjunctiveQuery::builder(schema);
    for i in 1..=k {
        let next = if i == k { 1 } else { i + 1 };
        builder = builder.atom(
            &format!("R{i}"),
            [
                Term::Var(Variable::indexed("x", i)),
                Term::Var(Variable::indexed("x", next)),
            ],
        );
    }
    CatalogQuery {
        name: format!("C({k})"),
        description: format!(
            "Definition 8: cycle query with {k} binary relations; in P (Corollary 1)"
        ),
        query: builder.build().expect("valid query"),
    }
}

/// The query `AC(k) = C(k) ∪ {Sk(x1, ..., xk)}` of Definition 8, where `Sk`
/// is all-key. Acyclic for every `k`; its attack graph has only weak,
/// non-terminal cycles (Figure 5 shows `AC(3)`), and `CERTAINTY(AC(k))` is in
/// P by Theorem 4.
///
/// # Panics
/// Panics if `k < 2`.
pub fn ac_k(k: usize) -> CatalogQuery {
    assert!(k >= 2, "AC(k) is defined for k >= 2");
    let mut schema = Schema::new();
    for i in 1..=k {
        schema
            .add_relation(format!("R{i}"), 2, 1)
            .expect("distinct relation names");
    }
    schema
        .add_relation(format!("S{k}"), k, k)
        .expect("distinct relation names");
    let schema = schema.into_shared();
    let mut builder = ConjunctiveQuery::builder(schema);
    for i in 1..=k {
        let next = if i == k { 1 } else { i + 1 };
        builder = builder.atom(
            &format!("R{i}"),
            [
                Term::Var(Variable::indexed("x", i)),
                Term::Var(Variable::indexed("x", next)),
            ],
        );
    }
    let all_vars: Vec<Term> = (1..=k)
        .map(|i| Term::Var(Variable::indexed("x", i)))
        .collect();
    builder = builder.atom(&format!("S{k}"), all_vars);
    CatalogQuery {
        name: format!("AC({k})"),
        description: format!(
            "Definition 8: C({k}) plus the all-key atom S{k}; weak non-terminal cycles, in P (Theorem 4)"
        ),
        query: builder.build().expect("valid query"),
    }
}

/// A simple path query `{R(x, y), S(y, z)}` whose attack graph is acyclic, so
/// `CERTAINTY` is first-order expressible (Theorem 1). Used as the baseline
/// "easy" query in benchmarks and examples.
pub fn fo_path2() -> CatalogQuery {
    let schema = Schema::from_relations([("R", 2, 1), ("S", 2, 1)])
        .expect("valid schema")
        .into_shared();
    let query = ConjunctiveQuery::builder(schema)
        .atom("R", [v("x"), v("y")])
        .atom("S", [v("y"), v("z")])
        .build()
        .expect("valid query");
    CatalogQuery {
        name: "path2".into(),
        description: "Acyclic attack graph: {R(x;y), S(y;z)} is first-order rewritable".into(),
        query,
    }
}

/// A three-atom chain `{R(x, y), S(y, z), T(z, w)}`, also first-order
/// rewritable; exercises deeper rewriting recursion.
pub fn fo_path3() -> CatalogQuery {
    let schema = Schema::from_relations([("R", 2, 1), ("S", 2, 1), ("T", 2, 1)])
        .expect("valid schema")
        .into_shared();
    let query = ConjunctiveQuery::builder(schema)
        .atom("R", [v("x"), v("y")])
        .atom("S", [v("y"), v("z")])
        .atom("T", [v("z"), v("w")])
        .build()
        .expect("valid query");
    CatalogQuery {
        name: "path3".into(),
        description: "Three-atom chain with acyclic attack graph (first-order rewritable)".into(),
        query,
    }
}

/// The two-atom query `{R(x, y), S(y, x)}` = `C(2)`: its attack graph is a
/// single weak (terminal) cycle, so `CERTAINTY` is in P but **not**
/// first-order expressible — the first such query identified in the
/// literature (see Section 2).
pub fn c2_swap() -> CatalogQuery {
    let mut c = c_k(2);
    c.name = "C(2)".into();
    c.description =
        "Wijsen 2010: in P but not first-order expressible (weak terminal 2-cycle)".into();
    c
}

/// Every catalog query, for exhaustive sweeps in tests, benchmarks and the
/// experiment harness.
pub fn all() -> Vec<CatalogQuery> {
    vec![
        conference(),
        q1(),
        q0(),
        fig4(),
        c2_swap(),
        c_k(3),
        c_k(4),
        ac_k(2),
        ac_k(3),
        ac_k(4),
        fo_path2(),
        fo_path3(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::join_tree::is_acyclic;

    #[test]
    fn catalog_queries_are_well_formed() {
        for entry in all() {
            assert!(!entry.name.is_empty());
            assert!(entry.query.require_boolean().is_ok(), "{}", entry.name);
            assert!(
                entry.query.require_self_join_free().is_ok(),
                "{} must be self-join free",
                entry.name
            );
        }
    }

    #[test]
    fn acyclicity_matches_the_paper() {
        assert!(is_acyclic(&conference().query));
        assert!(is_acyclic(&q1().query));
        assert!(is_acyclic(&q0().query));
        assert!(is_acyclic(&fig4().query));
        // C(2) is acyclic, C(k) for k >= 3 is cyclic (Section 6.2).
        assert!(is_acyclic(&c_k(2).query));
        assert!(!is_acyclic(&c_k(3).query));
        assert!(!is_acyclic(&c_k(5).query));
        // AC(k) is acyclic for every k (the Sk atom contains all variables).
        for k in 2..=5 {
            assert!(is_acyclic(&ac_k(k).query), "AC({k})");
        }
    }

    #[test]
    fn ck_and_ack_have_the_right_shape() {
        let c4 = c_k(4).query;
        assert_eq!(c4.len(), 4);
        assert_eq!(c4.vars().len(), 4);
        let ac4 = ac_k(4).query;
        assert_eq!(ac4.len(), 5);
        assert_eq!(ac4.vars().len(), 4);
        // The Sk atom is all-key.
        let sk = ac4.atom(4);
        assert!(ac4.schema().relation(sk.relation()).is_all_key());
    }

    #[test]
    fn conference_database_matches_figure1() {
        let db = conference_database();
        assert_eq!(db.fact_count(), 6);
        assert_eq!(db.repair_count(), Some(4));
        assert!(crate::eval::satisfies(&db, &conference().query));
    }

    #[test]
    #[should_panic(expected = "k >= 2")]
    fn ck_requires_k_at_least_two() {
        let _ = c_k(1);
    }
}
