//! Block-independent-disjoint probabilistic databases (Definitions 9–11).

use cqa_data::{Fact, FxHashMap, UncertainDatabase};
use std::error::Error;
use std::fmt;

/// Numerical tolerance for probability sums.
pub const EPSILON: f64 = 1e-9;

/// Errors raised while building a BID database.
#[derive(Debug, Clone, PartialEq)]
pub enum BidError {
    /// A probability outside `[0, 1]` was supplied.
    InvalidProbability {
        /// The offending value.
        value: f64,
    },
    /// The probabilities of one block sum to more than 1.
    BlockSumExceedsOne {
        /// The sum that was found.
        sum: f64,
    },
    /// A probability was supplied for a fact that is not in the database.
    UnknownFact,
}

impl fmt::Display for BidError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BidError::InvalidProbability { value } => {
                write!(f, "probability {value} is outside [0, 1]")
            }
            BidError::BlockSumExceedsOne { sum } => {
                write!(f, "block probabilities sum to {sum} > 1")
            }
            BidError::UnknownFact => write!(f, "probability given for a fact not in the database"),
        }
    }
}

impl Error for BidError {}

/// A BID probabilistic database: an uncertain database plus a probability for
/// every fact, such that the facts of one block are disjoint events (their
/// probabilities sum to at most 1) and distinct blocks are independent.
///
/// The efficient encoding of Section 7.1 is used: only the marginal
/// probability of each fact is stored; by Dalvi–Suciu (Theorem 2.4 of \[8\])
/// this determines the distribution over possible worlds uniquely.
#[derive(Clone, Debug)]
pub struct BidDatabase {
    db: UncertainDatabase,
    probabilities: FxHashMap<Fact, f64>,
}

impl BidDatabase {
    /// Builds a BID database from an uncertain database and per-fact
    /// probabilities. Facts without an explicit probability default to the
    /// uniform probability `1 / |block|`.
    pub fn new(
        db: UncertainDatabase,
        probabilities: impl IntoIterator<Item = (Fact, f64)>,
    ) -> Result<Self, BidError> {
        let mut probs: FxHashMap<Fact, f64> = FxHashMap::default();
        for (fact, p) in probabilities {
            if !(0.0..=1.0 + EPSILON).contains(&p) {
                return Err(BidError::InvalidProbability { value: p });
            }
            if !db.contains(&fact) {
                return Err(BidError::UnknownFact);
            }
            probs.insert(fact, p.min(1.0));
        }
        // Default the remaining facts to uniform-within-block.
        for block in db.blocks() {
            let len = block.len() as f64;
            for fact in block.facts() {
                probs.entry(fact.clone()).or_insert(1.0 / len);
            }
        }
        let bid = BidDatabase {
            db,
            probabilities: probs,
        };
        for block in bid.db.blocks() {
            let sum = bid.block_sum(block.facts());
            if sum > 1.0 + 1e-6 {
                return Err(BidError::BlockSumExceedsOne { sum });
            }
        }
        Ok(bid)
    }

    /// The **uniform-repair** BID database of an uncertain database: every
    /// fact gets probability `1 / |block|`, so all repairs are equally likely
    /// and their probabilities sum to 1 (the view used in Section 1 and
    /// Section 7 to connect the two semantics).
    pub fn uniform_over_repairs(db: &UncertainDatabase) -> Self {
        BidDatabase::new(db.clone(), std::iter::empty()).expect("uniform probabilities are valid")
    }

    /// The underlying uncertain database.
    pub fn database(&self) -> &UncertainDatabase {
        &self.db
    }

    /// The probability of one fact (0 if the fact is absent).
    pub fn probability(&self, fact: &Fact) -> f64 {
        self.probabilities.get(fact).copied().unwrap_or(0.0)
    }

    /// Sum of the probabilities of the given facts.
    pub fn block_sum(&self, facts: &[Fact]) -> f64 {
        facts.iter().map(|f| self.probability(f)).sum()
    }

    /// Iterates over `(fact, probability)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&Fact, f64)> {
        self.db.facts().map(move |f| (f, self.probability(f)))
    }

    /// The blocks whose probabilities sum to (numerically) 1 — the sub-database
    /// `db'` of Proposition 1.
    pub fn full_blocks_database(&self) -> UncertainDatabase {
        let facts: Vec<Fact> = self
            .db
            .blocks()
            .filter(|b| (self.block_sum(b.facts()) - 1.0).abs() <= 1e-6)
            .flat_map(|b| b.facts().iter().cloned())
            .collect();
        self.db.with_facts(facts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_data::{Schema, Value};

    fn db() -> UncertainDatabase {
        let schema = Schema::from_relations([("R", 2, 1)]).unwrap().into_shared();
        let mut db = UncertainDatabase::new(schema);
        db.insert_values("R", ["a", "1"]).unwrap();
        db.insert_values("R", ["a", "2"]).unwrap();
        db.insert_values("R", ["b", "1"]).unwrap();
        db
    }

    fn fact(db: &UncertainDatabase, a: &str, b: &str) -> Fact {
        Fact::new(
            db.schema().relation_id("R").unwrap(),
            vec![Value::str(a), Value::str(b)],
        )
    }

    #[test]
    fn uniform_probabilities_sum_to_one_per_block() {
        let db = db();
        let bid = BidDatabase::uniform_over_repairs(&db);
        assert!((bid.probability(&fact(&db, "a", "1")) - 0.5).abs() < EPSILON);
        assert!((bid.probability(&fact(&db, "b", "1")) - 1.0).abs() < EPSILON);
        for block in bid.database().blocks() {
            assert!((bid.block_sum(block.facts()) - 1.0).abs() < EPSILON);
        }
        assert_eq!(bid.full_blocks_database().fact_count(), 3);
    }

    #[test]
    fn explicit_probabilities_and_partial_blocks() {
        let db = db();
        let bid = BidDatabase::new(
            db.clone(),
            [
                (fact(&db, "a", "1"), 0.3),
                (fact(&db, "a", "2"), 0.2),
                (fact(&db, "b", "1"), 0.9),
            ],
        )
        .unwrap();
        assert!((bid.probability(&fact(&db, "a", "1")) - 0.3).abs() < EPSILON);
        // The block of `b` does not sum to 1, so it is excluded from db'.
        assert_eq!(bid.full_blocks_database().fact_count(), 0);
        assert_eq!(bid.probability(&fact(&db, "z", "9")), 0.0);
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        let db = db();
        assert!(matches!(
            BidDatabase::new(db.clone(), [(fact(&db, "a", "1"), 1.5)]),
            Err(BidError::InvalidProbability { .. })
        ));
        assert!(matches!(
            BidDatabase::new(db.clone(), [(fact(&db, "z", "z"), 0.5)]),
            Err(BidError::UnknownFact)
        ));
        assert!(matches!(
            BidDatabase::new(
                db.clone(),
                [(fact(&db, "a", "1"), 0.8), (fact(&db, "a", "2"), 0.8)]
            ),
            Err(BidError::BlockSumExceedsOne { .. })
        ));
    }
}
