//! The planner's cost model.
//!
//! Estimates follow the textbook independence assumptions: a relation scan
//! yields its cardinality, and each probed position divides the estimate by
//! the number of distinct values in that column (uniformity). The numbers
//! come from [`cqa_data::Statistics`] — exact for the snapshot they were
//! computed on — or fall back to neutral defaults when a plan is compiled
//! before any data exists. Estimates only pick join orders and guard atoms
//! and annotate `explain` output; execution never consults them, so a stale
//! estimate can cost speed, never correctness.

use cqa_data::{PositionSet, RelationId, Statistics};

/// Default cardinality assumed for a relation when no statistics are given.
const DEFAULT_CARDINALITY: f64 = 1024.0;
/// Default number of distinct values per column without statistics.
const DEFAULT_DISTINCT: f64 = 32.0;

/// A thin, copyable view over optional statistics.
#[derive(Clone, Copy)]
pub struct CostModel<'a> {
    stats: Option<&'a Statistics>,
}

impl<'a> CostModel<'a> {
    /// Builds a cost model over optional statistics.
    pub fn new(stats: Option<&'a Statistics>) -> Self {
        CostModel { stats }
    }

    /// Estimated number of facts of the relation.
    pub fn cardinality(&self, relation: RelationId) -> f64 {
        match self.stats {
            Some(s) => s.relation(relation).fact_count() as f64,
            None => DEFAULT_CARDINALITY,
        }
    }

    /// Estimated number of distinct values in one column (at least 1).
    pub fn distinct(&self, relation: RelationId, position: usize) -> f64 {
        let d = match self.stats {
            Some(s) => s
                .relation(relation)
                .distinct_count(position)
                .map(|d| d as f64)
                .unwrap_or(DEFAULT_DISTINCT),
            None => DEFAULT_DISTINCT,
        };
        d.max(1.0)
    }

    /// Estimated candidates per probe of `relation` on `probed` positions:
    /// `|R| / Π distinct(p)` under independence and uniformity.
    pub fn estimate_rows(&self, relation: RelationId, probed: PositionSet) -> f64 {
        let mut estimate = self.cardinality(relation);
        for pos in probed.iter() {
            estimate /= self.distinct(relation, pos);
        }
        estimate
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_data::{Schema, UncertainDatabase};

    #[test]
    fn statistics_drive_the_estimates() {
        let schema = Schema::from_relations([("R", 2, 1)]).unwrap().into_shared();
        let mut db = UncertainDatabase::new(schema);
        for i in 0..8 {
            db.insert_values("R", [format!("k{}", i % 4), format!("v{i}")])
                .unwrap();
        }
        let index = db.index();
        let r = db.schema().relation_id("R").unwrap();
        let cost = CostModel::new(Some(index.statistics()));
        assert_eq!(cost.cardinality(r), 8.0);
        assert_eq!(cost.distinct(r, 0), 4.0);
        let probe = cost.estimate_rows(r, PositionSet::single(0));
        assert!((probe - 2.0).abs() < 1e-9);
        // Without statistics the defaults still order probes before scans.
        let neutral = CostModel::new(None);
        assert!(
            neutral.estimate_rows(r, PositionSet::single(0))
                < neutral.estimate_rows(r, PositionSet::empty())
        );
    }
}
