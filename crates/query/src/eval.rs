//! Query evaluation over (uncertain) databases.
//!
//! `db |= q` holds iff there is a valuation `θ` over `vars(q)` with
//! `θ(q) ⊆ db` (Section 3). Evaluation here treats the uncertain database as
//! a plain relational instance — certainty semantics (truth in *every*
//! repair) is implemented on top of this by `cqa-core`.

use crate::{ConjunctiveQuery, Valuation};
use cqa_data::{UncertainDatabase, Value};
use std::collections::BTreeSet;

/// Chooses an evaluation order for the atoms: smaller relations first, then
/// greedily preferring atoms connected to already-placed atoms (a simple
/// greedy join order that avoids Cartesian products when possible).
fn atom_order(db: &UncertainDatabase, query: &ConjunctiveQuery) -> Vec<usize> {
    let n = query.len();
    let sizes: Vec<usize> = query
        .atoms()
        .iter()
        .map(|a| db.relation_facts(a.relation()).count())
        .collect();
    let mut remaining: Vec<usize> = (0..n).collect();
    let mut order = Vec::with_capacity(n);
    let mut bound_vars: BTreeSet<crate::Variable> = BTreeSet::new();
    while !remaining.is_empty() {
        // Prefer atoms sharing a variable with what is already bound, then
        // smaller relations, then lower atom id (determinism).
        let (pos, &best) = remaining
            .iter()
            .enumerate()
            .min_by_key(|(_, &i)| {
                let connected = query.atom(i).vars().iter().any(|v| bound_vars.contains(v));
                // Sort key: connected atoms first, then smaller relations, then atom id.
                (!(order.is_empty() || connected), sizes[i], i)
            })
            .expect("remaining is non-empty");
        order.push(best);
        bound_vars.extend(query.atom(best).vars());
        remaining.remove(pos);
    }
    order
}

/// Backtracking join. Calls `on_match` for every valuation `θ` over `vars(q)`
/// with `θ(q) ⊆ db` that extends `base`; stops early if `on_match` returns
/// `true` and reports whether it did.
fn search<F>(
    db: &UncertainDatabase,
    query: &ConjunctiveQuery,
    order: &[usize],
    depth: usize,
    current: &Valuation,
    on_match: &mut F,
) -> bool
where
    F: FnMut(&Valuation) -> bool,
{
    if depth == order.len() {
        return on_match(current);
    }
    let atom = query.atom(order[depth]);
    let schema = query.schema();
    for fact in db.relation_facts(atom.relation()) {
        if let Some(extended) = current.unify_with_fact(atom, fact, schema) {
            if search(db, query, order, depth + 1, &extended, on_match) {
                return true;
            }
        }
    }
    false
}

/// True iff `db |= q`, i.e. some valuation maps every atom of `q` into `db`.
pub fn satisfies(db: &UncertainDatabase, query: &ConjunctiveQuery) -> bool {
    satisfies_with(db, query, &Valuation::new())
}

/// True iff some valuation *extending `base`* maps every atom of `q` into `db`.
pub fn satisfies_with(
    db: &UncertainDatabase,
    query: &ConjunctiveQuery,
    base: &Valuation,
) -> bool {
    let order = atom_order(db, query);
    search(db, query, &order, 0, base, &mut |_| true)
}

/// Finds one satisfying valuation, if any.
pub fn find_valuation(db: &UncertainDatabase, query: &ConjunctiveQuery) -> Option<Valuation> {
    let order = atom_order(db, query);
    let mut found = None;
    search(db, query, &order, 0, &Valuation::new(), &mut |v| {
        found = Some(v.clone());
        true
    });
    found
}

/// Enumerates **all** valuations `θ` over `vars(q)` with `θ(q) ⊆ db`.
///
/// The result is deduplicated (the same total valuation cannot be produced
/// twice by the backtracking join, but callers should not rely on order).
pub fn all_valuations(db: &UncertainDatabase, query: &ConjunctiveQuery) -> Vec<Valuation> {
    let order = atom_order(db, query);
    let mut out = Vec::new();
    search(db, query, &order, 0, &Valuation::new(), &mut |v| {
        out.push(v.clone());
        false
    });
    out
}

/// The answers to a (possibly non-Boolean) query on `db`: the set of tuples
/// of constants for the free variables under some satisfying valuation.
///
/// For a Boolean query this returns `{[]}` if `db |= q` and `{}` otherwise.
pub fn answers(db: &UncertainDatabase, query: &ConjunctiveQuery) -> BTreeSet<Vec<Value>> {
    let mut out = BTreeSet::new();
    let order = atom_order(db, query);
    search(db, query, &order, 0, &Valuation::new(), &mut |v| {
        if let Some(tuple) = v.project(query.free_vars()) {
            out.insert(tuple);
        }
        false
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Term, Variable};
    use cqa_data::Schema;
    use std::sync::Arc;

    fn conference_db() -> (Arc<Schema>, UncertainDatabase) {
        let schema = Schema::from_relations([("C", 3, 2), ("R", 2, 1)])
            .unwrap()
            .into_shared();
        let mut db = UncertainDatabase::new(schema.clone());
        db.insert_values("C", ["PODS", "2016", "Rome"]).unwrap();
        db.insert_values("C", ["PODS", "2016", "Paris"]).unwrap();
        db.insert_values("C", ["KDD", "2017", "Rome"]).unwrap();
        db.insert_values("R", ["PODS", "A"]).unwrap();
        db.insert_values("R", ["KDD", "A"]).unwrap();
        db.insert_values("R", ["KDD", "B"]).unwrap();
        (schema, db)
    }

    /// The Section 1 query: ∃x∃y (C(x, y, 'Rome') ∧ R(x, 'A')).
    fn rome_query(schema: &Arc<Schema>) -> ConjunctiveQuery {
        ConjunctiveQuery::builder(schema.clone())
            .atom(
                "C",
                [Term::var("x"), Term::var("y"), Term::constant("Rome")],
            )
            .atom("R", [Term::var("x"), Term::constant("A")])
            .build()
            .unwrap()
    }

    #[test]
    fn satisfaction_on_the_conference_database() {
        let (schema, db) = conference_db();
        let q = rome_query(&schema);
        assert!(satisfies(&db, &q));
        // Two witnesses: PODS 2016 Rome and KDD 2017 Rome (both rank A rows join).
        let vals = all_valuations(&db, &q);
        assert_eq!(vals.len(), 2);
        for v in &vals {
            assert!(v.is_total_on(&q.vars()));
            let facts = v.apply_query(&q).unwrap();
            assert!(facts.iter().all(|f| db.contains(f)));
        }
    }

    #[test]
    fn unsatisfied_query() {
        let (schema, db) = conference_db();
        let q = ConjunctiveQuery::builder(schema)
            .atom(
                "C",
                [Term::var("x"), Term::var("y"), Term::constant("Tokyo")],
            )
            .build()
            .unwrap();
        assert!(!satisfies(&db, &q));
        assert!(find_valuation(&db, &q).is_none());
        assert!(all_valuations(&db, &q).is_empty());
    }

    #[test]
    fn empty_query_is_always_satisfied() {
        let (schema, db) = conference_db();
        let q = ConjunctiveQuery::boolean(schema.clone(), Vec::new()).unwrap();
        assert!(satisfies(&db, &q));
        let empty_db = UncertainDatabase::new(schema);
        assert!(satisfies(&empty_db, &q));
        assert_eq!(all_valuations(&empty_db, &q).len(), 1);
    }

    #[test]
    fn answers_project_free_variables() {
        let (schema, db) = conference_db();
        let q = ConjunctiveQuery::builder(schema)
            .atom(
                "C",
                [Term::var("x"), Term::var("y"), Term::constant("Rome")],
            )
            .atom("R", [Term::var("x"), Term::constant("A")])
            .free([Variable::new("x")])
            .build()
            .unwrap();
        let ans = answers(&db, &q);
        let expected: BTreeSet<Vec<Value>> =
            [vec![Value::str("PODS")], vec![Value::str("KDD")]].into_iter().collect();
        assert_eq!(ans, expected);
    }

    #[test]
    fn boolean_answers_are_the_empty_tuple() {
        let (schema, db) = conference_db();
        let q = rome_query(&schema);
        let ans = answers(&db, &q);
        assert_eq!(ans.len(), 1);
        assert!(ans.contains(&Vec::new()));
    }

    #[test]
    fn satisfies_with_respects_partial_bindings() {
        let (schema, db) = conference_db();
        let q = rome_query(&schema);
        let mut base = Valuation::new();
        base.bind(Variable::new("x"), Value::str("KDD"));
        assert!(satisfies_with(&db, &q, &base));
        let mut base2 = Valuation::new();
        base2.bind(Variable::new("x"), Value::str("ICML"));
        assert!(!satisfies_with(&db, &q, &base2));
    }

    #[test]
    fn repeated_variables_join_within_an_atom() {
        let schema = Schema::from_relations([("E", 2, 1)]).unwrap().into_shared();
        let mut db = UncertainDatabase::new(schema.clone());
        db.insert_values("E", ["a", "a"]).unwrap();
        db.insert_values("E", ["b", "c"]).unwrap();
        let q = ConjunctiveQuery::builder(schema)
            .atom("E", [Term::var("x"), Term::var("x")])
            .build()
            .unwrap();
        let vals = all_valuations(&db, &q);
        assert_eq!(vals.len(), 1);
        assert_eq!(vals[0].get(&Variable::new("x")), Some(&Value::str("a")));
    }

    #[test]
    fn cartesian_products_are_still_correct() {
        // Two atoms with disjoint variables: the join degenerates to a product.
        let schema = Schema::from_relations([("A", 1, 1), ("B", 1, 1)])
            .unwrap()
            .into_shared();
        let mut db = UncertainDatabase::new(schema.clone());
        db.insert_values("A", ["1"]).unwrap();
        db.insert_values("A", ["2"]).unwrap();
        db.insert_values("B", ["x"]).unwrap();
        let q = ConjunctiveQuery::builder(schema)
            .atom("A", [Term::var("u")])
            .atom("B", [Term::var("v")])
            .build()
            .unwrap();
        assert_eq!(all_valuations(&db, &q).len(), 2);
    }
}
