//! The worker pool handle and the deterministic fan-out/merge primitives.
//!
//! Everything in this crate funnels through two shapes of parallelism:
//!
//! * [`par_map`] — run a closure over a list of items on the pool and
//!   return the results **in item order**, whatever order the workers
//!   finished in (the property that makes every merge in this crate
//!   deterministic);
//! * [`par_any`] — a short-circuiting disjunction: workers that start
//!   after some chunk already answered `true` observe a cancellation flag
//!   and return immediately.
//!
//! Jobs must be `'static`, so callers capture [`cqa_data::Snapshot`]s and
//! `Arc`s rather than borrows — the price of keeping the vendored pool
//! safe-only (no scoped-thread lifetime erasure).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};

/// A cheaply cloneable handle onto a work-stealing worker pool
/// (`vendor/workpool`). All parallel entry points of this crate take one;
/// build it once per process (or per service) and share it.
#[derive(Clone)]
pub struct ParPool {
    pool: Arc<workpool::ThreadPool>,
}

impl ParPool {
    /// A pool with `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> ParPool {
        ParPool {
            pool: Arc::new(workpool::ThreadPool::new(threads)),
        }
    }

    /// A pool sized to the machine: one worker per hardware thread.
    pub fn with_available_parallelism() -> ParPool {
        ParPool::new(workpool::available_parallelism())
    }

    /// Number of worker threads.
    pub fn thread_count(&self) -> usize {
        self.pool.thread_count()
    }

    /// Number of jobs stolen so far: claimed by a worker from another
    /// worker's deque (monotone, eventually consistent).
    pub fn steals(&self) -> usize {
        self.pool.steals()
    }

    /// Publishes the pool's state into the global metrics registry: the
    /// `par.pool.threads` and `par.pool.steals` gauges. Call before taking a
    /// snapshot (gauges are sampled, not streamed).
    pub fn record_metrics(&self) {
        cqa_obs::gauge_set!("par.pool.threads", self.thread_count() as i64);
        cqa_obs::gauge_set!("par.pool.steals", self.steals() as i64);
    }

    /// Runs `job` on the pool, fire-and-forget. This is the raw dispatch
    /// primitive the serving layer (`cqa-serve`) uses to run one query per
    /// job with its own cancellation token; prefer the structured
    /// [`BatchEngine`](crate::BatchEngine) / `par_*` entry points when the
    /// results must be merged. A panicking job is confined to itself: the
    /// worker survives and keeps taking jobs.
    pub fn spawn(&self, job: impl FnOnce() + Send + 'static) {
        self.execute(job);
    }

    pub(crate) fn execute(&self, job: impl FnOnce() + Send + 'static) {
        cqa_obs::count!("par.tasks");
        self.pool.execute(job);
    }
}

impl std::fmt::Debug for ParPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ParPool({} threads)", self.thread_count())
    }
}

/// Runs `f(index, item)` for every item on the pool and returns the
/// results in **item order**, with `None` marking items whose job panicked
/// (the pool survives a panicking job; its result slot simply never
/// arrives). Callers decide what a hole means — the deterministic-merge
/// primitive either way: however the workers interleave, the caller sees
/// the same `Vec`.
pub(crate) fn par_map_opt<T, R, F>(pool: &ParPool, items: Vec<T>, f: F) -> Vec<Option<R>>
where
    T: Send + 'static,
    R: Send + 'static,
    F: Fn(usize, T) -> R + Send + Sync + 'static,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let f = Arc::new(f);
    let (tx, rx) = mpsc::channel();
    for (i, item) in items.into_iter().enumerate() {
        let f = f.clone();
        let tx = tx.clone();
        pool.execute(move || {
            let started = std::time::Instant::now();
            let result = f(i, item);
            cqa_obs::observe_duration!("par.chunk_nanos", started.elapsed());
            let _ = tx.send((i, result));
        });
    }
    drop(tx);
    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    for (i, result) in rx {
        slots[i] = Some(result);
    }
    slots
}

/// `par_map_opt` for merges where every chunk's result is load-bearing
/// (sharded answer sets, sharded verdicts): a hole would silently corrupt
/// the recombined answer, so a panicked chunk propagates as a panic on the
/// calling thread instead.
///
/// Public because downstream shard-and-merge consumers (`cqa-stream`'s
/// retouched-candidate re-decision) need exactly this deterministic
/// item-order guarantee: however the workers interleave, the merged `Vec`
/// is byte-identical to the sequential map.
pub fn par_map<T, R, F>(pool: &ParPool, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send + 'static,
    R: Send + 'static,
    F: Fn(usize, T) -> R + Send + Sync + 'static,
{
    par_map_opt(pool, items, f)
        .into_iter()
        .map(|r| r.expect("a pool job panicked and dropped its result"))
        .collect()
}

/// True iff `f` answers `true` for some item. Chunks that start after a
/// positive answer was already found observe the cancellation flag and
/// return without working; the verdict (a disjunction) is deterministic
/// regardless.
///
/// A `true` verdict is correct however the other chunks fared, but a
/// `false` one is only correct if **every** chunk reported in — so, as in
/// [`par_map`], a panicked chunk with no witness found propagates as a
/// panic rather than masquerading as `false`.
pub(crate) fn par_any<T, F>(pool: &ParPool, items: Vec<T>, f: F) -> bool
where
    T: Send + 'static,
    F: Fn(T) -> bool + Send + Sync + 'static,
{
    let n = items.len();
    if n == 0 {
        return false;
    }
    let f = Arc::new(f);
    let cancel = Arc::new(AtomicBool::new(false));
    let (tx, rx) = mpsc::channel();
    for item in items {
        let f = f.clone();
        let tx = tx.clone();
        let cancel = cancel.clone();
        pool.execute(move || {
            let verdict = !cancel.load(Ordering::Relaxed) && f(item);
            if verdict {
                cancel.store(true, Ordering::Relaxed);
            }
            let _ = tx.send(verdict);
        });
    }
    drop(tx);
    // Drain until a positive verdict; later sends hit a closed channel,
    // which the jobs ignore.
    let mut received = 0usize;
    for verdict in rx {
        received += 1;
        if verdict {
            return true;
        }
    }
    assert_eq!(
        received, n,
        "a pool job panicked and dropped its verdict; `false` would be unsound"
    );
    false
}

/// Splits `0..width` into at most `chunks` contiguous, equally sized (±1)
/// ranges, in ascending order. The partition property is what the shard
/// hooks of `cqa-exec` recombine over.
pub(crate) fn chunk_ranges(width: usize, chunks: usize) -> Vec<std::ops::Range<usize>> {
    if width == 0 {
        return Vec::new();
    }
    let chunks = chunks.clamp(1, width);
    let per = width.div_ceil(chunks);
    (0..chunks)
        .map(|c| c * per..((c + 1) * per).min(width))
        .filter(|r| !r.is_empty())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_item_order() {
        let pool = ParPool::new(4);
        let squares = par_map(&pool, (0..100u64).collect(), |_, i| i * i);
        assert_eq!(squares, (0..100u64).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_opt_marks_panicked_jobs_with_holes() {
        let pool = ParPool::new(2);
        let results = par_map_opt(&pool, (0..8u32).collect(), |_, i| {
            assert!(i != 3, "planted panic");
            i * 10
        });
        for (i, slot) in results.iter().enumerate() {
            if i == 3 {
                assert_eq!(*slot, None);
            } else {
                assert_eq!(*slot, Some(i as u32 * 10));
            }
        }
    }

    #[test]
    fn par_any_finds_a_witness_and_short_circuits() {
        let pool = ParPool::new(2);
        assert!(par_any(&pool, (0..64).collect(), |i| i == 63));
        assert!(!par_any(&pool, (0..64).collect(), |_| false));
        assert!(!par_any(&pool, Vec::<usize>::new(), |_| true));
    }

    #[test]
    #[should_panic(expected = "dropped its verdict")]
    fn par_any_refuses_to_answer_false_after_a_panicked_chunk() {
        let pool = ParPool::new(2);
        // No witness exists and one chunk panics: answering `false` would
        // be indistinguishable from a sound all-false merge, so panic.
        par_any(&pool, (0..8u32).collect(), |i| {
            assert!(i != 3, "planted panic");
            false
        });
    }

    #[test]
    fn chunk_ranges_partition_the_width() {
        for width in [0usize, 1, 5, 64, 100] {
            for chunks in [1usize, 2, 7, 200] {
                let ranges = chunk_ranges(width, chunks);
                let mut covered = Vec::new();
                for r in &ranges {
                    assert!(!r.is_empty());
                    covered.extend(r.clone());
                }
                assert_eq!(covered, (0..width).collect::<Vec<_>>(), "{width}/{chunks}");
            }
        }
    }
}
