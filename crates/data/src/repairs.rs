//! Enumeration of repairs.
//!
//! A repair of an uncertain database is a maximal consistent subset, i.e. a
//! choice of exactly one fact per block (Section 3). The number of repairs is
//! the product of the block sizes, so exhaustive enumeration is exponential in
//! the number of violated blocks; [`RepairIter`] exists for the brute-force
//! oracle, for tests, and for the possible-world semantics of Section 7.

use crate::{Fact, UncertainDatabase};

/// Iterator over all repairs of an uncertain database, in a deterministic
/// (odometer) order.
pub struct RepairIter<'a> {
    db: &'a UncertainDatabase,
    /// Facts of every block, captured once.
    blocks: Vec<&'a [Fact]>,
    /// Current choice per block; `None` once exhausted.
    cursor: Option<Vec<usize>>,
}

impl<'a> RepairIter<'a> {
    pub(crate) fn new(db: &'a UncertainDatabase) -> Self {
        let blocks: Vec<&[Fact]> = db.blocks().map(|b| b.facts()).collect();
        // An empty database still has exactly one repair: the empty set.
        let cursor = Some(vec![0; blocks.len()]);
        RepairIter { db, blocks, cursor }
    }

    /// The facts selected by the current cursor.
    fn current_facts(&self) -> Option<Vec<Fact>> {
        let cursor = self.cursor.as_ref()?;
        Some(
            cursor
                .iter()
                .zip(&self.blocks)
                .map(|(&i, facts)| facts[i].clone())
                .collect(),
        )
    }

    /// Advances the odometer; sets `cursor` to `None` when exhausted.
    fn advance(&mut self) {
        let Some(cursor) = self.cursor.as_mut() else {
            return;
        };
        for (i, slot) in cursor.iter_mut().enumerate().rev() {
            *slot += 1;
            if *slot < self.blocks[i].len() {
                return;
            }
            *slot = 0;
        }
        self.cursor = None;
    }
}

impl Iterator for RepairIter<'_> {
    type Item = UncertainDatabase;

    fn next(&mut self) -> Option<Self::Item> {
        let facts = self.current_facts()?;
        self.advance();
        Some(self.db.with_facts(facts))
    }
}

/// Draws pseudo-random repairs using a caller-provided choice function.
///
/// The data crate deliberately has no dependency on a random-number
/// generator; callers (e.g. the Monte-Carlo estimator in `cqa-prob`) supply
/// `choose(block_size) -> index`.
pub struct RepairSampler<'a> {
    db: &'a UncertainDatabase,
}

impl<'a> RepairSampler<'a> {
    /// Creates a sampler over the given database.
    pub fn new(db: &'a UncertainDatabase) -> Self {
        RepairSampler { db }
    }

    /// Builds one repair, calling `choose` once per block with the block size.
    pub fn sample<F>(&self, mut choose: F) -> UncertainDatabase
    where
        F: FnMut(usize) -> usize,
    {
        self.db
            .repair_by(|block| choose(block.len()) % block.len().max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Schema, UncertainDatabase, Value};
    use std::collections::BTreeSet;

    fn two_blocks() -> UncertainDatabase {
        let schema = Schema::from_relations([("R", 2, 1)]).unwrap().into_shared();
        let mut db = UncertainDatabase::new(schema);
        db.insert_values("R", ["a", "1"]).unwrap();
        db.insert_values("R", ["a", "2"]).unwrap();
        db.insert_values("R", ["a", "3"]).unwrap();
        db.insert_values("R", ["b", "1"]).unwrap();
        db.insert_values("R", ["b", "2"]).unwrap();
        db
    }

    #[test]
    fn enumerates_the_full_product() {
        let db = two_blocks();
        assert_eq!(db.repair_count(), Some(6));
        let repairs: Vec<_> = db.repairs().collect();
        assert_eq!(repairs.len(), 6);
        // All repairs are distinct.
        let distinct: BTreeSet<Vec<_>> = repairs.iter().map(|r| r.sorted_facts()).collect();
        assert_eq!(distinct.len(), 6);
        // Each repair picks exactly one fact per block and is maximal.
        for r in &repairs {
            assert!(r.is_consistent());
            assert_eq!(r.fact_count(), 2);
            assert_eq!(r.block_count(), db.block_count());
        }
    }

    #[test]
    fn repairs_are_maximal_not_just_consistent() {
        // {} and {R(a,1)} are consistent subsets but not repairs.
        let db = two_blocks();
        for r in db.repairs() {
            // Every block of the original database is represented.
            for block in db.blocks() {
                assert!(
                    block.facts().iter().any(|f| r.contains(f)),
                    "repair misses block {:?}",
                    block.key()
                );
            }
        }
    }

    #[test]
    fn sampler_respects_choice_function() {
        let db = two_blocks();
        let sampler = RepairSampler::new(&db);
        let always_first = sampler.sample(|_| 0);
        assert!(always_first.is_consistent());
        assert!(always_first.contains(&Fact::new(
            db.schema().relation_id("R").unwrap(),
            vec![Value::str("a"), Value::str("1")],
        )));
    }
}
