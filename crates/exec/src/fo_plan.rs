//! Compiled physical plans for first-order formulas.
//!
//! [`FoPlan::compile`] lowers a [`FoFormula`] — in practice the certain
//! rewritings of Theorem 1, whose shape is
//!
//! ```text
//! ∃ vars(F) [ R(x̄, ȳ) ∧ ∀ w̄ ( R(x̄, w̄) → ( equalities ∧ rest ) ) ]
//! ```
//!
//! — into a tree of physical operators over a register file:
//!
//! * **`∃-scan`** — an existential quantifier whose variables occur in a
//!   positive conjunct atom iterates that atom's facts (an index probe on
//!   the already-bound positions) instead of the active domain;
//! * **`∀-block`** — the ∀-over-block shape above iterates the facts of the
//!   guard atom's probe bucket (for a rewriting: the facts of one block)
//!   instead of sweeping `|adom|^|w̄|` assignments — the operator that makes
//!   compiled rewriting evaluation fast;
//! * **`∃-column` / `∃-domain` / `∀-domain`** — quantified variables not
//!   covered by a guard atom fall back to a distinct-column scan (the
//!   compiled form of the interpreter's restricted domains) or the active
//!   domain;
//! * **`lookup`** — a fully-bound atom is a single hash probe;
//! * **`¬`** — complement; `¬` over a scan is the anti-join form in which
//!   negation executes.
//!
//! Quantifier variables are **alpha-renamed to fresh slots** at compile
//! time, so shadowing is resolved once and runtime binding is a plain
//! register write with scoped undo.
//!
//! `cqa_core::fo::eval` remains the reference semantics; the property suite
//! checks observational equality on randomized instances.

use crate::cost::CostModel;
use crate::probe::{KeySource, ProbeSpec, Registers, Slot, SlotState};
use cqa_data::{
    DatabaseIndex, FactId, PositionIndex, PositionSet, RelationId, Schema, Statistics,
    UncertainDatabase, Value,
};
use cqa_obs::TraceSink;
use cqa_query::fo_formula::FoFormula;
use cqa_query::{Term, Variable};
use rustc_hash::FxHashMap;
use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

/// A physical operator of a compiled formula plan.
pub(crate) enum FoOp {
    /// A constant verdict.
    Bool(bool),
    /// Membership test of a fully-bound atom: one index probe.
    Lookup(ProbeSpec),
    /// Equality of two bound sources (`false` if either is unbound, the
    /// interpreter's convention for open formulas).
    Eq(KeySource, KeySource),
    /// Complement (negation / anti-join when the child is a scan).
    Not(Box<FoOp>),
    /// Conjunction, cheap operators first (compile-time reordering).
    All(Vec<FoOp>),
    /// Disjunction.
    Any(Vec<FoOp>),
    /// ∃ over the facts of a guard atom: probe, bind, try the body.
    ExistsScan { spec: ProbeSpec, body: Box<FoOp> },
    /// ∀ over the facts of a guard atom (the block-quantified operator):
    /// every unifying candidate must satisfy the body.
    ForallBlock { spec: ProbeSpec, body: Box<FoOp> },
    /// ∃ over the distinct values of one column (restricted domain).
    ExistsColumn {
        relation: RelationId,
        position: usize,
        slot: Slot,
        probe_id: usize,
        body: Box<FoOp>,
    },
    /// ∃ over the active domain (no restriction found).
    ExistsDomain {
        slot: Slot,
        /// Trace-cell id (shares the probe-id space so one sink indexes
        /// every traced operator of the plan; no index handle is resolved
        /// for it).
        trace_id: usize,
        body: Box<FoOp>,
    },
    /// ∀ over the active domain.
    ForallDomain {
        slot: Slot,
        /// Trace-cell id (same id space as `ExistsDomain::trace_id`).
        trace_id: usize,
        body: Box<FoOp>,
    },
}

impl FoOp {
    /// True iff evaluating the operator may iterate (scan/quantify) rather
    /// than answer in O(1)/one probe — used to order conjuncts cheap-first.
    fn has_scan(&self) -> bool {
        match self {
            FoOp::Bool(_) | FoOp::Lookup(_) | FoOp::Eq(_, _) => false,
            FoOp::Not(inner) => inner.has_scan(),
            FoOp::All(parts) | FoOp::Any(parts) => parts.iter().any(FoOp::has_scan),
            FoOp::ExistsScan { .. }
            | FoOp::ForallBlock { .. }
            | FoOp::ExistsColumn { .. }
            | FoOp::ExistsDomain { .. }
            | FoOp::ForallDomain { .. } => true,
        }
    }
}

/// A compiled, immutable, shareable plan for one first-order formula over
/// one schema. Compile once; [`FoPlan::prepare`] binds it to a
/// [`DatabaseIndex`] snapshot for execution.
pub struct FoPlan {
    pub(crate) schema: Arc<Schema>,
    pub(crate) root: FoOp,
    /// Slot → display name. Quantifier occurrences are alpha-renamed, so
    /// two scopes reusing a variable name own distinct slots.
    pub(crate) slots: Vec<Variable>,
    /// Free variables of the formula and their root slots (empty for the
    /// sentences produced by `certain_rewriting`).
    pub(crate) free: Vec<(Variable, Slot)>,
    probe_count: usize,
    /// Cost-model estimate of the operator-visit count of one evaluation
    /// (see [`FoPlan::estimated_work`]).
    estimated_work: f64,
}

impl FoPlan {
    /// Compiles `formula` over `schema`. Statistics guide guard-atom and
    /// column choices; they affect speed only, never the verdict.
    pub fn compile(
        formula: &FoFormula,
        schema: &Arc<Schema>,
        stats: Option<&Statistics>,
    ) -> FoPlan {
        let mut lowerer = Lowerer {
            cost: CostModel::new(stats),
            slots: Vec::new(),
            bound: Vec::new(),
            scope: Vec::new(),
            probe_count: 0,
        };
        let mut free_vars = BTreeSet::new();
        collect_free_vars(formula, &mut Vec::new(), &mut free_vars);
        let free: Vec<(Variable, Slot)> = free_vars
            .into_iter()
            .map(|v| {
                let slot = lowerer.alloc(&v);
                lowerer.scope.push((v.clone(), slot));
                lowerer.bound[slot] = true;
                (v, slot)
            })
            .collect();
        let root = lowerer.lower(formula);
        // Active-domain size proxy for the unguarded quantifier fallbacks:
        // every domain value appears in some fact, so the total cardinality
        // bounds it.
        let adom_estimate: f64 = schema
            .iter()
            .map(|(id, _)| lowerer.cost.cardinality(id))
            .sum();
        let estimated_work = estimated_op_work(&root, &lowerer.cost, adom_estimate);
        FoPlan {
            schema: schema.clone(),
            root,
            slots: lowerer.slots,
            free,
            probe_count: lowerer.probe_count,
            estimated_work,
        }
    }

    /// Cost-model estimate of how many operator visits one evaluation
    /// costs: scan and quantifier fan-outs multiply down the tree,
    /// conjunctions and disjunctions add up. An *estimate*, never consulted
    /// for correctness — `cqa-par` compares it against its sequential
    /// cutoff before sharding an evaluation across threads.
    pub fn estimated_work(&self) -> f64 {
        self.estimated_work
    }

    /// Binds the plan to an index snapshot, resolving every probe handle.
    /// The execution path defaults to [`crate::vec::default_mode`]; override
    /// it per instance with [`PreparedFo::with_mode`].
    pub fn prepare<'p>(&'p self, index: &Arc<DatabaseIndex>) -> PreparedFo<'p> {
        let mut handles: Vec<Option<Arc<PositionIndex>>> = vec![None; self.probe_count];
        resolve_probes(&self.root, index, &mut handles);
        let mode = crate::vec::default_mode();
        let vec = (mode != crate::vec::ExecMode::RowAtATime)
            .then(|| crate::vec::VecFo::build(&self.root, index, self.slots.len()));
        PreparedFo {
            plan: self,
            index: index.clone(),
            handles,
            mode,
            vec,
            trace: None,
        }
    }

    /// Convenience: evaluates the plan as a sentence on `db`.
    pub fn eval(&self, db: &UncertainDatabase) -> bool {
        self.prepare(&db.index()).eval()
    }

    /// Convenience: evaluates with bindings for the formula's free
    /// variables (unbound free variables make atoms and equalities false,
    /// the interpreter's convention).
    pub fn eval_with(&self, db: &UncertainDatabase, env: &FxHashMap<Variable, Value>) -> bool {
        self.prepare(&db.index()).eval_with(env)
    }

    /// Number of trace cells a [`cqa_obs::TraceSink`] for this plan needs:
    /// one per probing/scanning operator (probe ids and domain trace ids
    /// share the space).
    pub fn trace_ops(&self) -> usize {
        self.probe_count
    }

    /// Renders the operator tree, one operator per line, with probe
    /// patterns and cost-model estimates.
    pub fn explain(&self) -> String {
        self.render_with(None)
    }

    /// [`FoPlan::explain`] plus the **actuals** a traced execution
    /// recorded: per-operator invocation/row/match counts (and waves /
    /// row-fallback rows where they occurred) next to the estimates, and a
    /// header line with wall time and the executor path taken.
    pub fn explain_analyze(&self, trace: &TraceSink) -> String {
        self.render_with(Some(trace))
    }

    fn render_with(&self, trace: Option<&TraceSink>) -> String {
        let mut out = String::new();
        let cutoff = crate::tuning::fo_vec_cutoff();
        let path = if self.estimated_work >= cutoff {
            "vectorized"
        } else {
            "row-at-a-time"
        };
        let _ = writeln!(
            out,
            "  exec: est work ≈ {:.0} vs auto cutoff {cutoff:.0} → {path} path \
             (operators marked [vec]/[row])",
            self.estimated_work,
        );
        if let Some(sink) = trace {
            let _ = writeln!(
                out,
                "  actual: {} vectorized + {} row run(s), wall {:.3} ms",
                sink.vec_runs(),
                sink.row_runs(),
                sink.wall().as_secs_f64() * 1e3,
            );
        }
        self.render(&self.root, 1, trace, &mut out);
        out
    }

    fn render(&self, op: &FoOp, depth: usize, trace: Option<&TraceSink>, out: &mut String) {
        let pad = "  ".repeat(depth);
        let mark = crate::vec::fo_op_marker(op);
        let act = trace_suffix(trace, fo_op_trace_id(op));
        match op {
            FoOp::Bool(b) => {
                let _ = writeln!(out, "{pad}{b} {mark}");
            }
            FoOp::Lookup(spec) => {
                let _ = writeln!(
                    out,
                    "{pad}lookup {} {mark}{act}",
                    spec.render(&self.schema, &self.slots)
                );
            }
            FoOp::Eq(a, b) => {
                let name = |src: &KeySource| match src {
                    KeySource::Const(c) => format!("{c:?}"),
                    KeySource::Slot(s) => self.slots[*s].to_string(),
                };
                let _ = writeln!(out, "{pad}{} = {} {mark}", name(a), name(b));
            }
            FoOp::Not(inner) => {
                let _ = writeln!(out, "{pad}¬ {mark}");
                self.render(inner, depth + 1, trace, out);
            }
            FoOp::All(parts) => {
                let _ = writeln!(out, "{pad}all {mark}");
                for p in parts {
                    self.render(p, depth + 1, trace, out);
                }
            }
            FoOp::Any(parts) => {
                let _ = writeln!(out, "{pad}any {mark}");
                for p in parts {
                    self.render(p, depth + 1, trace, out);
                }
            }
            FoOp::ExistsScan { spec, body } => {
                let _ = writeln!(
                    out,
                    "{pad}∃-scan {:<40} est ≈ {:.1} rows {mark}{act}",
                    spec.render(&self.schema, &self.slots),
                    spec.estimated_rows
                );
                self.render(body, depth + 1, trace, out);
            }
            FoOp::ForallBlock { spec, body } => {
                let _ = writeln!(
                    out,
                    "{pad}∀-block {:<39} est ≈ {:.1} rows {mark}{act}",
                    spec.render(&self.schema, &self.slots),
                    spec.estimated_rows
                );
                self.render(body, depth + 1, trace, out);
            }
            FoOp::ExistsColumn {
                relation,
                position,
                slot,
                body,
                ..
            } => {
                let _ = writeln!(
                    out,
                    "{pad}∃-column {} ∈ {}.{position} {mark}{act}",
                    self.slots[*slot],
                    self.schema.relation(*relation).name
                );
                self.render(body, depth + 1, trace, out);
            }
            FoOp::ExistsDomain { slot, body, .. } => {
                let _ = writeln!(out, "{pad}∃-domain {} {mark}{act}", self.slots[*slot]);
                self.render(body, depth + 1, trace, out);
            }
            FoOp::ForallDomain { slot, body, .. } => {
                let _ = writeln!(out, "{pad}∀-domain {} {mark}{act}", self.slots[*slot]);
                self.render(body, depth + 1, trace, out);
            }
        }
    }
}

/// The trace-cell id of one operator, `None` for operators that are not
/// traced (constant-time combinators).
pub(crate) fn fo_op_trace_id(op: &FoOp) -> Option<usize> {
    match op {
        FoOp::Bool(_) | FoOp::Eq(_, _) | FoOp::Not(_) | FoOp::All(_) | FoOp::Any(_) => None,
        FoOp::Lookup(spec) | FoOp::ExistsScan { spec, .. } | FoOp::ForallBlock { spec, .. } => {
            Some(spec.probe_id)
        }
        FoOp::ExistsColumn { probe_id, .. } => Some(*probe_id),
        FoOp::ExistsDomain { trace_id, .. } | FoOp::ForallDomain { trace_id, .. } => {
            Some(*trace_id)
        }
    }
}

/// The `| act: …` suffix of one explain-analyze line: what the traced
/// execution actually did at this operator.
pub(crate) fn trace_suffix(trace: Option<&TraceSink>, id: Option<usize>) -> String {
    let (Some(sink), Some(id)) = (trace, id) else {
        return String::new();
    };
    let cell = sink.op(id);
    if cell.is_empty() {
        return "  | act: not visited".to_owned();
    }
    let mut out = format!(
        "  | act: {} inv, {} rows, {} hit",
        cell.invocations(),
        cell.rows(),
        cell.matches(),
    );
    if cell.waves() > 0 {
        let _ = write!(out, ", {} waves", cell.waves());
    }
    if cell.fallback_rows() > 0 {
        let _ = write!(out, ", {} row-fallback", cell.fallback_rows());
    }
    out
}

/// Collects the free variables of a formula (those evaluated from the
/// caller's environment).
fn collect_free_vars<'f>(
    formula: &'f FoFormula,
    quantified: &mut Vec<&'f Variable>,
    out: &mut BTreeSet<Variable>,
) {
    match formula {
        FoFormula::True | FoFormula::False => {}
        FoFormula::Atom { terms, .. } => {
            for t in terms {
                if let Term::Var(v) = t {
                    if !quantified.contains(&v) {
                        out.insert(v.clone());
                    }
                }
            }
        }
        FoFormula::Equals(a, b) => {
            for t in [a, b] {
                if let Term::Var(v) = t {
                    if !quantified.contains(&v) {
                        out.insert(v.clone());
                    }
                }
            }
        }
        FoFormula::Not(f) => collect_free_vars(f, quantified, out),
        FoFormula::And(parts) | FoFormula::Or(parts) => {
            for p in parts {
                collect_free_vars(p, quantified, out);
            }
        }
        FoFormula::Implies(a, b) => {
            collect_free_vars(a, quantified, out);
            collect_free_vars(b, quantified, out);
        }
        FoFormula::Exists(vars, body) | FoFormula::Forall(vars, body) => {
            let before = quantified.len();
            quantified.extend(vars.iter());
            collect_free_vars(body, quantified, out);
            quantified.truncate(before);
        }
    }
}

/// Walks the operator tree resolving each probe site's index handle.
fn resolve_probes(
    op: &FoOp,
    index: &Arc<DatabaseIndex>,
    handles: &mut Vec<Option<Arc<PositionIndex>>>,
) {
    let mut resolve_spec = |spec: &ProbeSpec| {
        if !spec.positions.is_empty() {
            handles[spec.probe_id] = Some(index.position_index(spec.relation, spec.positions));
        }
    };
    match op {
        FoOp::Bool(_) | FoOp::Eq(_, _) => {}
        FoOp::Lookup(spec) => resolve_spec(spec),
        FoOp::Not(inner) => resolve_probes(inner, index, handles),
        FoOp::All(parts) | FoOp::Any(parts) => {
            for p in parts {
                resolve_probes(p, index, handles);
            }
        }
        FoOp::ExistsScan { spec, body } | FoOp::ForallBlock { spec, body } => {
            resolve_spec(spec);
            resolve_probes(body, index, handles);
        }
        FoOp::ExistsColumn {
            relation,
            position,
            probe_id,
            body,
            ..
        } => {
            handles[*probe_id] =
                Some(index.position_index(*relation, PositionSet::single(*position)));
            resolve_probes(body, index, handles);
        }
        FoOp::ExistsDomain { body, .. } | FoOp::ForallDomain { body, .. } => {
            resolve_probes(body, index, handles);
        }
    }
}

/// Compile-time state of the lowering pass.
struct Lowerer<'a> {
    cost: CostModel<'a>,
    slots: Vec<Variable>,
    bound: Vec<bool>,
    /// Scope stack (variable → slot); lookups scan from the back, which
    /// implements shadowing, and each quantifier allocates fresh slots
    /// (alpha-renaming).
    scope: Vec<(Variable, Slot)>,
    probe_count: usize,
}

impl Lowerer<'_> {
    fn alloc(&mut self, v: &Variable) -> Slot {
        self.slots.push(v.clone());
        self.bound.push(false);
        self.slots.len() - 1
    }

    fn slot_lookup(&self, v: &Variable) -> Option<Slot> {
        self.scope
            .iter()
            .rev()
            .find(|(name, _)| name == v)
            .map(|&(_, slot)| slot)
    }

    fn next_probe(&mut self) -> usize {
        self.probe_count += 1;
        self.probe_count - 1
    }

    /// The slot of a term when it resolves to a *bound* source.
    fn bound_source(&self, term: &Term) -> Option<KeySource> {
        match term {
            Term::Const(c) => Some(KeySource::Const(c.clone())),
            Term::Var(v) => {
                let slot = self.slot_lookup(v)?;
                self.bound[slot].then_some(KeySource::Slot(slot))
            }
        }
    }

    /// Builds the probe spec of one atom with the current scope/bound state.
    fn atom_spec(&mut self, relation: RelationId, terms: &[Term]) -> ProbeSpec {
        let probe_id = self.next_probe();
        let scope = &self.scope;
        let bound = &self.bound;
        let mut spec = ProbeSpec::build(
            relation,
            terms,
            &mut |v| {
                let slot = scope
                    .iter()
                    .rev()
                    .find(|(name, _)| name == v)
                    .map(|&(_, slot)| slot)
                    .expect("atom_spec requires resolvable variables");
                if bound[slot] {
                    SlotState::Bound(slot)
                } else {
                    SlotState::Unbound(slot)
                }
            },
            probe_id,
        );
        spec.estimated_rows = self.cost.estimate_rows(relation, spec.positions);
        spec
    }

    fn lower(&mut self, formula: &FoFormula) -> FoOp {
        match formula {
            FoFormula::True => FoOp::Bool(true),
            FoFormula::False => FoOp::Bool(false),
            FoFormula::Atom { relation, terms } => {
                // All variables must be bound here: a quantified variable is
                // bound by its scan/domain operator before its body lowers,
                // so an unresolvable or unbound variable means an open
                // formula, which the interpreter evaluates to false.
                let all_bound = terms.iter().all(|t| self.bound_source(t).is_some());
                if !all_bound {
                    return FoOp::Bool(false);
                }
                FoOp::Lookup(self.atom_spec(*relation, terms))
            }
            FoFormula::Equals(a, b) => {
                match (self.bound_source(a), self.bound_source(b)) {
                    (Some(a), Some(b)) => FoOp::Eq(a, b),
                    // An unbound side never equals anything (interpreter
                    // convention for open formulas).
                    _ => FoOp::Bool(false),
                }
            }
            FoFormula::Not(inner) => FoOp::Not(Box::new(self.lower(inner))),
            FoFormula::And(parts) => {
                Self::ordered_all(parts.iter().map(|p| self.lower(p)).collect())
            }
            FoFormula::Or(parts) => FoOp::Any(parts.iter().map(|p| self.lower(p)).collect()),
            FoFormula::Implies(a, b) => {
                let guard = self.lower(a);
                let conclusion = self.lower(b);
                FoOp::Any(vec![FoOp::Not(Box::new(guard)), conclusion])
            }
            FoFormula::Exists(vars, body) => self.lower_exists(vars, body),
            FoFormula::Forall(vars, body) => self.lower_forall(vars, body),
        }
    }

    /// Conjunction with cheap (probe/equality) operators ahead of scans.
    fn ordered_all(parts: Vec<FoOp>) -> FoOp {
        let mut cheap = Vec::new();
        let mut scans = Vec::new();
        for p in parts {
            if p.has_scan() {
                scans.push(p);
            } else {
                cheap.push(p);
            }
        }
        cheap.extend(scans);
        match cheap.len() {
            0 => FoOp::Bool(true),
            1 => cheap.pop().expect("len checked"),
            _ => FoOp::All(cheap),
        }
    }

    fn lower_exists(&mut self, vars: &[Variable], body: &FoFormula) -> FoOp {
        let scope_base = self.scope.len();
        let var_slots: Vec<Slot> = vars
            .iter()
            .map(|v| {
                let slot = self.alloc(v);
                self.scope.push((v.clone(), slot));
                slot
            })
            .collect();
        let conjuncts: Vec<&FoFormula> = flatten_and(body);
        let mut consumed = vec![false; conjuncts.len()];
        let mut layers: Vec<Layer> = Vec::new();
        loop {
            let unbound: Vec<Slot> = var_slots
                .iter()
                .copied()
                .filter(|&s| !self.bound[s])
                .collect();
            if unbound.is_empty() {
                break;
            }
            // Best guard: the positive conjunct atom binding the most still-
            // unbound quantified variables, then the cheapest probe.
            let mut best: Option<(usize, usize, f64)> = None;
            for (i, conjunct) in conjuncts.iter().enumerate() {
                if consumed[i] {
                    continue;
                }
                let FoFormula::Atom { relation, terms } = conjunct else {
                    continue;
                };
                let Some((newly, probed)) = self.guard_shape(terms) else {
                    continue;
                };
                if newly == 0 {
                    continue;
                }
                let est = self.cost.estimate_rows(*relation, probed);
                let better = match best {
                    None => true,
                    Some((_, best_newly, best_est)) => {
                        newly > best_newly || (newly == best_newly && est < best_est)
                    }
                };
                if better {
                    best = Some((i, newly, est));
                }
            }
            match best {
                Some((i, _, _)) => {
                    consumed[i] = true;
                    let FoFormula::Atom { relation, terms } = conjuncts[i] else {
                        unreachable!("guards are atoms");
                    };
                    let spec = self.atom_spec(*relation, terms);
                    for slot in spec.bound_slots() {
                        self.bound[slot] = true;
                    }
                    layers.push(Layer::Scan(spec));
                }
                None => {
                    // No guard binds anything new: fall back to a restricted
                    // column (some atom the body cannot hold without) or the
                    // active domain for the first unbound variable.
                    let slot = unbound[0];
                    let var = self.slots[slot].clone();
                    match self.find_column(&var, body) {
                        Some((relation, position)) => layers.push(Layer::Column {
                            relation,
                            position,
                            slot,
                            probe_id: self.next_probe(),
                        }),
                        None => layers.push(Layer::Domain {
                            slot,
                            trace_id: self.next_probe(),
                        }),
                    }
                    self.bound[slot] = true;
                }
            }
        }
        let inner: Vec<FoOp> = conjuncts
            .iter()
            .zip(&consumed)
            .filter(|(_, &c)| !c)
            .map(|(p, _)| self.lower(p))
            .collect();
        let mut op = Self::ordered_all(inner);
        for layer in layers.into_iter().rev() {
            op = match layer {
                Layer::Scan(spec) => FoOp::ExistsScan {
                    spec,
                    body: Box::new(op),
                },
                Layer::Column {
                    relation,
                    position,
                    slot,
                    probe_id,
                } => FoOp::ExistsColumn {
                    relation,
                    position,
                    slot,
                    probe_id,
                    body: Box::new(op),
                },
                Layer::Domain { slot, trace_id } => FoOp::ExistsDomain {
                    slot,
                    trace_id,
                    body: Box::new(op),
                },
            };
        }
        self.scope.truncate(scope_base);
        for slot in var_slots {
            self.bound[slot] = false;
        }
        op
    }

    fn lower_forall(&mut self, vars: &[Variable], body: &FoFormula) -> FoOp {
        let scope_base = self.scope.len();
        let var_slots: Vec<Slot> = vars
            .iter()
            .map(|v| {
                let slot = self.alloc(v);
                self.scope.push((v.clone(), slot));
                slot
            })
            .collect();
        // The Theorem 1 shape ∀w̄ (R(x̄, w̄) → body): iterate the guard's
        // probe bucket — for a rewriting, exactly one block — instead of
        // |adom|^|w̄| assignments. Quantified variables missing from the
        // guard (if any) cannot affect it, so they become ∀-domain loops
        // *inside* the implication: ∀x̄r̄(A(x̄)→B) ≡ ∀x̄(A(x̄)→∀r̄ B).
        let block_guard = match body {
            FoFormula::Implies(guard, inner) => match &**guard {
                FoFormula::Atom { relation, terms }
                    if terms
                        .iter()
                        .all(|t| !matches!(t, Term::Var(v) if self.slot_lookup(v).is_none())) =>
                {
                    Some((*relation, terms, inner))
                }
                _ => None,
            },
            _ => None,
        };
        let op = match block_guard {
            Some((relation, terms, inner)) => {
                let spec = self.atom_spec(relation, terms);
                for slot in spec.bound_slots() {
                    self.bound[slot] = true;
                }
                let rest: Vec<Slot> = var_slots
                    .iter()
                    .copied()
                    .filter(|&s| !self.bound[s])
                    .collect();
                for &slot in &rest {
                    self.bound[slot] = true;
                }
                let mut body_op = self.lower(inner);
                for &slot in rest.iter().rev() {
                    body_op = FoOp::ForallDomain {
                        slot,
                        trace_id: self.next_probe(),
                        body: Box::new(body_op),
                    };
                }
                FoOp::ForallBlock {
                    spec,
                    body: Box::new(body_op),
                }
            }
            None => {
                for &slot in &var_slots {
                    self.bound[slot] = true;
                }
                let mut op = self.lower(body);
                for &slot in var_slots.iter().rev() {
                    op = FoOp::ForallDomain {
                        slot,
                        trace_id: self.next_probe(),
                        body: Box::new(op),
                    };
                }
                op
            }
        };
        self.scope.truncate(scope_base);
        for slot in var_slots {
            self.bound[slot] = false;
        }
        op
    }

    /// For a guard candidate: how many still-unbound variables the atom
    /// would bind, and which positions its probe could use. `None` when the
    /// atom mentions an unresolvable variable.
    fn guard_shape(&self, terms: &[Term]) -> Option<(usize, PositionSet)> {
        let mut newly: Vec<Slot> = Vec::new();
        let mut probed = PositionSet::empty();
        for (pos, term) in terms.iter().enumerate() {
            match term {
                Term::Const(_) => {
                    if pos < PositionSet::MAX_POSITIONS {
                        probed.insert(pos);
                    }
                }
                Term::Var(v) => {
                    let slot = self.slot_lookup(v)?;
                    if self.bound[slot] {
                        if pos < PositionSet::MAX_POSITIONS {
                            probed.insert(pos);
                        }
                    } else if !newly.contains(&slot) {
                        newly.push(slot);
                    }
                }
            }
        }
        Some((newly.len(), probed))
    }

    /// A column whose distinct values must contain every satisfying value
    /// of `var`: `var`'s position in an atom that is *necessary* for `body`
    /// (the body itself, conjuncts of conjunctions, bodies of nested
    /// existentials that do not shadow `var`). Picks the column with the
    /// fewest distinct values. Mirrors the interpreter's
    /// `restricted_domain`.
    fn find_column(&self, var: &Variable, body: &FoFormula) -> Option<(RelationId, usize)> {
        let mut best: Option<(RelationId, usize, f64)> = None;
        self.collect_columns(var, body, &mut best);
        best.map(|(relation, position, _)| (relation, position))
    }

    fn collect_columns(
        &self,
        var: &Variable,
        formula: &FoFormula,
        best: &mut Option<(RelationId, usize, f64)>,
    ) {
        match formula {
            FoFormula::Atom { relation, terms } => {
                for (pos, term) in terms.iter().enumerate().take(PositionSet::MAX_POSITIONS) {
                    if term.as_var() != Some(var) {
                        continue;
                    }
                    let distinct = self.cost.distinct(*relation, pos);
                    if best.as_ref().is_none_or(|&(_, _, d)| distinct < d) {
                        *best = Some((*relation, pos, distinct));
                    }
                }
            }
            FoFormula::And(parts) => {
                for p in parts {
                    self.collect_columns(var, p, best);
                }
            }
            FoFormula::Exists(vars, inner) if !vars.contains(var) => {
                self.collect_columns(var, inner, best);
            }
            _ => {}
        }
    }
}

/// One existential layer accumulated by [`Lowerer::lower_exists`].
enum Layer {
    Scan(ProbeSpec),
    Column {
        relation: RelationId,
        position: usize,
        slot: Slot,
        probe_id: usize,
    },
    Domain {
        slot: Slot,
        trace_id: usize,
    },
}

/// The conjuncts of a top-level conjunction (or the formula itself).
fn flatten_and(formula: &FoFormula) -> Vec<&FoFormula> {
    match formula {
        FoFormula::And(parts) => parts.iter().collect(),
        other => vec![other],
    }
}

/// Cost-model estimate of the operator visits one evaluation of `op`
/// costs: constant-time operators count 1, scans and quantifiers multiply
/// their estimated fan-out into their body, `all`/`any` sum their parts.
/// `adom` is the active-domain size proxy for unguarded domain loops.
fn estimated_op_work(op: &FoOp, cost: &CostModel, adom: f64) -> f64 {
    match op {
        FoOp::Bool(_) | FoOp::Lookup(_) | FoOp::Eq(_, _) => 1.0,
        FoOp::Not(inner) => estimated_op_work(inner, cost, adom),
        FoOp::All(parts) | FoOp::Any(parts) => parts
            .iter()
            .map(|p| estimated_op_work(p, cost, adom))
            .sum::<f64>()
            .max(1.0),
        FoOp::ExistsScan { spec, body } | FoOp::ForallBlock { spec, body } => {
            spec.estimated_rows.max(1.0) * estimated_op_work(body, cost, adom)
        }
        FoOp::ExistsColumn {
            relation,
            position,
            body,
            ..
        } => cost.distinct(*relation, *position).max(1.0) * estimated_op_work(body, cost, adom),
        FoOp::ExistsDomain { body, .. } | FoOp::ForallDomain { body, .. } => {
            adom.max(1.0) * estimated_op_work(body, cost, adom)
        }
    }
}

/// An [`FoPlan`] resolved against one [`DatabaseIndex`] snapshot.
pub struct PreparedFo<'p> {
    pub(crate) plan: &'p FoPlan,
    pub(crate) index: Arc<DatabaseIndex>,
    pub(crate) handles: Vec<Option<Arc<PositionIndex>>>,
    pub(crate) mode: crate::vec::ExecMode,
    pub(crate) vec: Option<crate::vec::VecFo<'p>>,
    pub(crate) trace: Option<Arc<TraceSink>>,
}

impl PreparedFo<'_> {
    /// Overrides the execution-path choice for this prepared instance (the
    /// property suites pin each path explicitly; a global knob would race
    /// across in-process test threads).
    pub fn with_mode(mut self, mode: crate::vec::ExecMode) -> Self {
        self.mode = mode;
        if mode != crate::vec::ExecMode::RowAtATime && self.vec.is_none() {
            self.vec = Some(crate::vec::VecFo::build(
                &self.plan.root,
                &self.index,
                self.plan.slots.len(),
            ));
        }
        self
    }

    /// Installs a trace sink: every subsequent evaluation records its
    /// per-operator events into it (shareable across threads, so `cqa-par`
    /// shards can report into one sink). Tracing never changes verdicts.
    ///
    /// # Panics
    /// If the sink was not sized with [`FoPlan::trace_ops`].
    pub fn with_trace(mut self, sink: Arc<TraceSink>) -> Self {
        assert_eq!(
            sink.op_count(),
            self.plan.trace_ops(),
            "trace sink sized for a different plan"
        );
        self.trace = Some(sink);
        self
    }

    /// The execution mode this prepared instance runs under.
    pub fn mode(&self) -> crate::vec::ExecMode {
        self.mode
    }

    /// True iff sentence-level entry points take the batch path.
    fn use_vec(&self) -> bool {
        match self.mode {
            crate::vec::ExecMode::RowAtATime => false,
            crate::vec::ExecMode::Vectorized => self.vec.is_some(),
            crate::vec::ExecMode::Auto => {
                self.vec.is_some() && self.plan.estimated_work >= crate::tuning::fo_vec_cutoff()
            }
        }
    }

    /// Records path choice and wall time of one entry-point run into the
    /// installed trace sink (a no-op without one).
    fn entry_point<T>(&self, vectorized: bool, run: impl FnOnce() -> T) -> T {
        let Some(sink) = &self.trace else {
            return run();
        };
        if vectorized {
            sink.count_vec_run();
        } else {
            sink.count_row_run();
        }
        let started = Instant::now();
        let out = run();
        sink.add_wall(started.elapsed());
        out
    }

    /// Evaluates the plan as a sentence.
    pub fn eval(&self) -> bool {
        let vectorized = self.use_vec();
        if vectorized {
            cqa_obs::count!("exec.fo.eval.vec");
        } else {
            cqa_obs::count!("exec.fo.eval.row");
        }
        self.entry_point(vectorized, || {
            if vectorized {
                crate::vec::eval_sentence(self)
            } else {
                let mut regs = Registers::new(self.plan.slots.len());
                self.eval_op(&self.plan.root, &mut regs)
            }
        })
    }

    /// Evaluates with bindings for the formula's free variables.
    pub fn eval_with(&self, env: &FxHashMap<Variable, Value>) -> bool {
        cqa_obs::count!("exec.fo.eval.row");
        self.entry_point(false, || {
            let mut regs = Registers::new(self.plan.slots.len());
            for (var, slot) in &self.plan.free {
                if let Some(value) = env.get(var) {
                    regs.set(*slot, value.clone());
                }
            }
            self.eval_op(&self.plan.root, &mut regs)
        })
    }

    /// Row-path evaluation of one `vars ↦ tuple` binding (positional
    /// [`PreparedFo::eval_with`] without the map allocation).
    pub(crate) fn eval_tuple_row(&self, vars: &[Variable], tuple: &[Value]) -> bool {
        let mut regs = Registers::new(self.plan.slots.len());
        for (var, value) in vars.iter().zip(tuple) {
            if let Some(&(_, slot)) = self.plan.free.iter().find(|(fv, _)| fv == var) {
                regs.set(slot, value.clone());
            }
        }
        self.eval_op(&self.plan.root, &mut regs)
    }

    /// Batch-evaluates the open formula under `vars ↦ tuples[i]` for every
    /// tuple, returning one verdict per tuple (positionally). Equivalent to
    /// [`PreparedFo::eval_with`] in a loop; under `Auto`/`Vectorized` the
    /// batch runs through the vectorized kernels — the entry point
    /// `certain_answers` batches its candidate tuples through.
    pub fn eval_tuples(&self, vars: &[Variable], tuples: &[Vec<Value>]) -> Vec<bool> {
        let use_vec = match self.mode {
            crate::vec::ExecMode::RowAtATime => false,
            crate::vec::ExecMode::Vectorized => self.vec.is_some(),
            crate::vec::ExecMode::Auto => {
                self.vec.is_some() && tuples.len() >= crate::tuning::tuple_batch_min()
            }
        };
        cqa_obs::observe!("exec.fo.batch_tuples", tuples.len() as u64);
        if use_vec {
            cqa_obs::count!("exec.fo.eval_tuples.vec");
        } else {
            cqa_obs::count!("exec.fo.eval_tuples.row");
        }
        self.entry_point(use_vec, || {
            if use_vec {
                crate::vec::eval_tuples(self, vars, tuples)
            } else {
                tuples
                    .iter()
                    .map(|tuple| self.eval_tuple_row(vars, tuple))
                    .collect()
            }
        })
    }

    /// The width of the plan's **root candidate space**, when the root
    /// operator is an existential scan of a sentence: the number of
    /// candidate facts the root `∃-scan` iterates (for a Theorem 1
    /// rewriting, the facts of the first eliminated atom's relation). The
    /// search below each candidate is independent, so the disjunction of
    /// [`PreparedFo::eval_root_shard`] over any partition of
    /// `0..root_shard_width()` equals [`PreparedFo::eval`] — the axis
    /// `cqa-par` shards `is_certain` on.
    ///
    /// `None` when the root is not an `∃-scan` or the formula has free
    /// variables; callers must then evaluate sequentially.
    pub fn root_shard_width(&self) -> Option<usize> {
        if !self.plan.free.is_empty() {
            return None;
        }
        let FoOp::ExistsScan { spec, .. } = &self.plan.root else {
            return None;
        };
        let regs = Registers::new(self.plan.slots.len());
        let candidates =
            spec.candidates(&self.index, self.handles[spec.probe_id].as_ref(), &regs)?;
        Some(candidates.ids().len())
    }

    /// Evaluates the sentence with the root `∃-scan`'s candidate iteration
    /// restricted to `shard` (an index range into the root candidate list,
    /// see [`PreparedFo::root_shard_width`]); out-of-range bounds are
    /// clamped. If the root is not shardable the whole evaluation counts as
    /// the shard containing index 0, so the disjunction over a partition
    /// still equals [`PreparedFo::eval`].
    pub fn eval_root_shard(&self, shard: std::ops::Range<usize>) -> bool {
        let vectorized = self.use_vec();
        self.entry_point(vectorized, || {
            if vectorized {
                return crate::vec::eval_root_shard(self, shard.clone());
            }
            let mut regs = Registers::new(self.plan.slots.len());
            let FoOp::ExistsScan { spec, body } = &self.plan.root else {
                return shard.start == 0 && self.eval_op(&self.plan.root, &mut regs);
            };
            let Some(candidates) =
                spec.candidates(&self.index, self.handles[spec.probe_id].as_ref(), &regs)
            else {
                return false;
            };
            let ids = candidates.ids();
            let lo = shard.start.min(ids.len());
            let hi = shard.end.min(ids.len());
            let mut writes = Vec::new();
            let mut found = false;
            let mut scanned = 0u64;
            let mut unified = 0u64;
            for &fid in &ids[lo..hi] {
                regs.undo(&mut writes);
                scanned += 1;
                let fact = self.index.fact(FactId::from_index(fid as usize));
                if spec.apply(fact, &mut regs, &mut writes) {
                    unified += 1;
                    if self.eval_op(body, &mut regs) {
                        found = true;
                        break;
                    }
                }
            }
            if let Some(sink) = &self.trace {
                let cell = sink.op(spec.probe_id);
                cell.add_invocations(1);
                cell.add_rows(scanned);
                cell.add_matches(unified);
            }
            found
        })
    }

    /// Flushes one operator visit's locally-counted events to the trace
    /// sink (the single `Option` branch a traceless run pays per visit).
    #[inline]
    fn flush_op(&self, id: usize, scanned: u64, matched: u64) {
        if let Some(sink) = &self.trace {
            let cell = sink.op(id);
            cell.add_invocations(1);
            cell.add_rows(scanned);
            cell.add_matches(matched);
        }
    }

    pub(crate) fn eval_op(&self, op: &FoOp, regs: &mut Registers) -> bool {
        match op {
            FoOp::Bool(b) => *b,
            FoOp::Lookup(spec) => {
                let Some(candidates) =
                    spec.candidates(&self.index, self.handles[spec.probe_id].as_ref(), regs)
                else {
                    self.flush_op(spec.probe_id, 0, 0);
                    return false;
                };
                let mut no_writes = Vec::new();
                let mut scanned = 0u64;
                let mut hit = false;
                for &fid in candidates.ids() {
                    scanned += 1;
                    let fact = self.index.fact(FactId::from_index(fid as usize));
                    if spec.apply(fact, regs, &mut no_writes) {
                        hit = true;
                        break;
                    }
                }
                self.flush_op(spec.probe_id, scanned, u64::from(hit));
                hit
            }
            FoOp::Eq(a, b) => match (a.resolve(regs), b.resolve(regs)) {
                (Some(x), Some(y)) => x == y,
                _ => false,
            },
            FoOp::Not(inner) => !self.eval_op(inner, regs),
            FoOp::All(parts) => parts.iter().all(|p| self.eval_op(p, regs)),
            FoOp::Any(parts) => parts.iter().any(|p| self.eval_op(p, regs)),
            FoOp::ExistsScan { spec, body } => {
                let Some(candidates) =
                    spec.candidates(&self.index, self.handles[spec.probe_id].as_ref(), regs)
                else {
                    // An unbound outer register: no fact can match.
                    self.flush_op(spec.probe_id, 0, 0);
                    return false;
                };
                let mut writes = Vec::new();
                let mut found = false;
                let mut scanned = 0u64;
                let mut unified = 0u64;
                for &fid in candidates.ids() {
                    regs.undo(&mut writes);
                    scanned += 1;
                    let fact = self.index.fact(FactId::from_index(fid as usize));
                    if spec.apply(fact, regs, &mut writes) {
                        unified += 1;
                        if self.eval_op(body, regs) {
                            found = true;
                            break;
                        }
                    }
                }
                regs.undo(&mut writes);
                self.flush_op(spec.probe_id, scanned, unified);
                found
            }
            FoOp::ForallBlock { spec, body } => {
                let Some(candidates) =
                    spec.candidates(&self.index, self.handles[spec.probe_id].as_ref(), regs)
                else {
                    // An unbound outer register: the guard can never hold,
                    // so the implication is vacuously true.
                    self.flush_op(spec.probe_id, 0, 0);
                    return true;
                };
                let mut writes = Vec::new();
                let mut holds = true;
                let mut scanned = 0u64;
                let mut unified = 0u64;
                for &fid in candidates.ids() {
                    regs.undo(&mut writes);
                    scanned += 1;
                    let fact = self.index.fact(FactId::from_index(fid as usize));
                    // A candidate the guard does not unify with (repeated-
                    // variable mismatch) corresponds to no assignment:
                    // vacuous, skip.
                    if spec.apply(fact, regs, &mut writes) {
                        unified += 1;
                        if !self.eval_op(body, regs) {
                            holds = false;
                            break;
                        }
                    }
                }
                regs.undo(&mut writes);
                self.flush_op(spec.probe_id, scanned, unified);
                holds
            }
            FoOp::ExistsColumn {
                slot,
                probe_id,
                body,
                ..
            } => {
                let column = self.handles[*probe_id]
                    .as_ref()
                    .expect("column probes always resolve");
                let mut found = false;
                let mut scanned = 0u64;
                for key in column.keys() {
                    scanned += 1;
                    regs.set(*slot, key[0].clone());
                    if self.eval_op(body, regs) {
                        found = true;
                        break;
                    }
                }
                regs.clear(*slot);
                self.flush_op(*probe_id, scanned, u64::from(found));
                found
            }
            FoOp::ExistsDomain {
                slot,
                trace_id,
                body,
            } => {
                let mut found = false;
                let mut scanned = 0u64;
                for value in self.index.active_domain().iter() {
                    scanned += 1;
                    regs.set(*slot, value.clone());
                    if self.eval_op(body, regs) {
                        found = true;
                        break;
                    }
                }
                regs.clear(*slot);
                self.flush_op(*trace_id, scanned, u64::from(found));
                found
            }
            FoOp::ForallDomain {
                slot,
                trace_id,
                body,
            } => {
                let mut holds = true;
                let mut scanned = 0u64;
                for value in self.index.active_domain().iter() {
                    scanned += 1;
                    regs.set(*slot, value.clone());
                    if !self.eval_op(body, regs) {
                        holds = false;
                        break;
                    }
                }
                regs.clear(*slot);
                self.flush_op(*trace_id, scanned, u64::from(holds));
                holds
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_data::Schema;

    fn db() -> UncertainDatabase {
        let schema = Schema::from_relations([("R", 2, 1)]).unwrap().into_shared();
        let mut db = UncertainDatabase::new(schema);
        db.insert_values("R", ["a", "1"]).unwrap();
        db.insert_values("R", ["a", "2"]).unwrap();
        db.insert_values("R", ["b", "1"]).unwrap();
        db
    }

    fn rel(db: &UncertainDatabase) -> RelationId {
        db.schema().relation_id("R").unwrap()
    }

    fn compile(formula: &FoFormula, db: &UncertainDatabase) -> FoPlan {
        let index = db.index();
        let stats = index.statistics().clone();
        FoPlan::compile(formula, db.schema(), Some(&stats))
    }

    #[test]
    fn lookups_and_equalities() {
        let db = db();
        let r = rel(&db);
        let present = FoFormula::atom(r, vec![Term::constant("a"), Term::constant("1")]);
        let absent = FoFormula::atom(r, vec![Term::constant("b"), Term::constant("2")]);
        assert!(compile(&present, &db).eval(&db));
        assert!(!compile(&absent, &db).eval(&db));
        let eq = FoFormula::Equals(Term::constant("x"), Term::constant("x"));
        let ne = FoFormula::Equals(Term::constant("x"), Term::constant("y"));
        assert!(compile(&eq, &db).eval(&db));
        assert!(!compile(&ne, &db).eval(&db));
    }

    #[test]
    fn root_shards_recombine_to_the_full_verdict() {
        let db = db();
        let r = rel(&db);
        // ∃x∃y (R(x, y) ∧ y = '2') — a root ∃-scan over all three R facts.
        let sentence = FoFormula::exists(
            vec![Variable::new("x"), Variable::new("y")],
            FoFormula::and(vec![
                FoFormula::atom(r, vec![Term::var("x"), Term::var("y")]),
                FoFormula::Equals(Term::var("y"), Term::constant("2")),
            ]),
        );
        let plan = compile(&sentence, &db);
        let index = db.index();
        let prepared = plan.prepare(&index);
        let width = prepared.root_shard_width().expect("root is an ∃-scan");
        assert_eq!(width, 3);
        assert!(prepared.eval());
        for shards in [1usize, 2, 3, 5] {
            let per = width.div_ceil(shards);
            let any =
                (0..shards).any(|s| prepared.eval_root_shard(s * per..((s + 1) * per).min(width)));
            assert_eq!(any, prepared.eval(), "{shards} shards");
        }
        // A non-shardable root (a plain lookup) still honours the
        // partition convention: everything lives in the shard holding 0.
        let lookup = FoFormula::atom(r, vec![Term::constant("a"), Term::constant("1")]);
        let plan = compile(&lookup, &db);
        let prepared = plan.prepare(&index);
        assert_eq!(prepared.root_shard_width(), None);
        assert!(prepared.eval_root_shard(0..1));
        assert!(!prepared.eval_root_shard(1..9));
        assert!(plan.estimated_work() >= 1.0);
    }

    #[test]
    fn existential_scans_and_block_foralls() {
        let db = db();
        let r = rel(&db);
        // ∃x R(x, '1') — compiled to a single ∃-scan.
        let exists = FoFormula::exists(
            vec![Variable::new("x")],
            FoFormula::atom(r, vec![Term::var("x"), Term::constant("1")]),
        );
        let plan = compile(&exists, &db);
        assert!(plan.explain().contains("∃-scan"));
        assert!(plan.eval(&db));
        // ∀y (R('a', y) → y = '1') — false: R(a, 2) exists. Compiled to a
        // ∀-block over the 'a' block.
        let forall = FoFormula::forall(
            vec![Variable::new("y")],
            FoFormula::Implies(
                Box::new(FoFormula::atom(
                    r,
                    vec![Term::constant("a"), Term::var("y")],
                )),
                Box::new(FoFormula::Equals(Term::var("y"), Term::constant("1"))),
            ),
        );
        let plan = compile(&forall, &db);
        assert!(plan.explain().contains("∀-block"));
        assert!(!plan.eval(&db));
        // ∀y (R('b', y) → y = '1') — true: the b block is {R(b, 1)}.
        let forall_b = FoFormula::forall(
            vec![Variable::new("y")],
            FoFormula::Implies(
                Box::new(FoFormula::atom(
                    r,
                    vec![Term::constant("b"), Term::var("y")],
                )),
                Box::new(FoFormula::Equals(Term::var("y"), Term::constant("1"))),
            ),
        );
        assert!(compile(&forall_b, &db).eval(&db));
    }

    #[test]
    fn shadowed_quantifiers_get_fresh_slots() {
        let db = db();
        let r = rel(&db);
        // ∃x (R(x,'2') ∧ ∃x R(x,'1')): the inner x shadows the outer.
        let inner = FoFormula::exists(
            vec![Variable::new("x")],
            FoFormula::atom(r, vec![Term::var("x"), Term::constant("1")]),
        );
        let outer = FoFormula::exists(
            vec![Variable::new("x")],
            FoFormula::and(vec![
                FoFormula::atom(r, vec![Term::var("x"), Term::constant("2")]),
                inner,
            ]),
        );
        let plan = compile(&outer, &db);
        assert!(plan.eval(&db));
        // Two distinct slots were allocated for the two x scopes.
        assert_eq!(plan.slots.iter().filter(|v| v.name() == "x").count(), 2);
    }

    #[test]
    fn unguarded_quantifiers_fall_back_to_domains() {
        let db = db();
        let r = rel(&db);
        // ∀x ¬R(x, x) — no implication guard: ∀-domain + complement.
        let no_diag = FoFormula::forall(
            vec![Variable::new("x")],
            FoFormula::Not(Box::new(FoFormula::atom(
                r,
                vec![Term::var("x"), Term::var("x")],
            ))),
        );
        let plan = compile(&no_diag, &db);
        assert!(plan.explain().contains("∀-domain"));
        assert!(plan.eval(&db));
        // ∃x ¬R(x, '1') — negated body: domain/column scan, not a guard scan.
        let some_without = FoFormula::exists(
            vec![Variable::new("x")],
            FoFormula::Not(Box::new(FoFormula::atom(
                r,
                vec![Term::var("x"), Term::constant("1")],
            ))),
        );
        let plan = compile(&some_without, &db);
        assert!(plan.eval(&db), "x = '2' (or any non-key value) witnesses");
    }

    #[test]
    fn empty_databases_follow_quantifier_conventions() {
        let schema = Schema::from_relations([("R", 2, 1)]).unwrap().into_shared();
        let empty = UncertainDatabase::new(schema.clone());
        let r = empty.schema().relation_id("R").unwrap();
        let exists = FoFormula::exists(
            vec![Variable::new("x")],
            FoFormula::atom(r, vec![Term::var("x"), Term::var("x")]),
        );
        let forall = FoFormula::forall(vec![Variable::new("x")], FoFormula::False);
        assert!(!FoPlan::compile(&exists, &schema, None).eval(&empty));
        assert!(
            FoPlan::compile(&forall, &schema, None).eval(&empty),
            "∀ over the empty domain is true"
        );
    }

    #[test]
    fn free_variables_come_from_the_environment() {
        let db = db();
        let r = rel(&db);
        let open = FoFormula::atom(r, vec![Term::var("x"), Term::constant("1")]);
        let plan = compile(&open, &db);
        assert_eq!(plan.free.len(), 1);
        let mut env = FxHashMap::default();
        env.insert(Variable::new("x"), Value::str("a"));
        assert!(plan.eval_with(&db, &env));
        env.insert(Variable::new("x"), Value::str("z"));
        assert!(!plan.eval_with(&db, &env));
        // Unbound free variables make atoms false (interpreter convention).
        assert!(!plan.eval(&db));
    }
}
