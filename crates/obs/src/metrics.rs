//! The metric primitives: relaxed-atomic counters and gauges, and a
//! fixed-bucket log-scale histogram with percentile extraction.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::time::Duration;

/// A monotonically increasing event counter. All operations are relaxed
/// atomics: increments from any thread, no ordering guarantees between
/// metrics — snapshots are statistical, not transactional.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter at zero.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-write-wins instantaneous value (thread counts, queue depths,
/// pool steal totals published periodically).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Sets the value.
    #[inline]
    pub fn set(&self, value: i64) {
        self.value.store(value, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: one per bit width of a `u64` plus one for
/// zero, so every value has a bucket and recording never branches on range.
pub const BUCKETS: usize = 65;

/// The bucket a value lands in: 0 for 0, otherwise the value's bit width
/// (`64 - leading_zeros`). Bucket `b ≥ 1` therefore holds
/// `[2^(b-1), 2^b - 1]` — fixed log-scale (power-of-two) buckets.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// The inclusive `[low, high]` value range of bucket `index` (the inverse
/// of [`bucket_index`]). Panics if `index >= BUCKETS`.
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    assert!(index < BUCKETS, "bucket index out of range");
    match index {
        0 => (0, 0),
        64 => (1u64 << 63, u64::MAX),
        b => (1u64 << (b - 1), (1u64 << b) - 1),
    }
}

/// A fixed-bucket log-scale histogram. Recording is two relaxed
/// `fetch_add`s plus one on the value's bucket — no locks, no allocation,
/// safe from any thread. Percentiles are extracted from a
/// [`HistogramSnapshot`]; their error is bounded by the bucket width (at
/// most a factor of 2, tightened by linear interpolation within the
/// bucket).
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Histogram(count={}, sum={})",
            self.count.load(Ordering::Relaxed),
            self.sum.load(Ordering::Relaxed)
        )
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, value: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// Records a duration as nanoseconds (saturating on the absurd).
    #[inline]
    pub fn record_duration(&self, duration: Duration) {
        self.record(duration.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Number of observations recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the histogram's state. Buckets are read
    /// individually with relaxed loads; concurrent recorders may make the
    /// copy internally off by the in-flight observations — fine for
    /// statistics, which is all a histogram is for.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// A point-in-time copy of a [`Histogram`], with percentile extraction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Per-bucket observation counts ([`BUCKETS`] entries, see
    /// [`bucket_index`]).
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// An empty snapshot.
    pub fn empty() -> HistogramSnapshot {
        HistogramSnapshot {
            count: 0,
            sum: 0,
            buckets: vec![0; BUCKETS],
        }
    }

    /// The mean observed value (0 for the empty histogram).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The estimated `p`-th percentile (`0 < p ≤ 100`): the value at rank
    /// `⌈p/100 · count⌉`, located by walking the cumulative bucket counts
    /// and linearly interpolated within its bucket. The estimate always
    /// lies inside the [bucket](bucket_bounds) holding the true rank
    /// value, so the relative error is below the bucket's factor-of-2
    /// width. Returns 0 for the empty histogram.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut cumulative = 0u64;
        for (index, &in_bucket) in self.buckets.iter().enumerate() {
            if in_bucket == 0 {
                continue;
            }
            if cumulative + in_bucket >= rank {
                let (low, high) = bucket_bounds(index);
                let within = (rank - cumulative - 1) as f64 / in_bucket as f64;
                return low + ((high - low) as f64 * within) as u64;
            }
            cumulative += in_bucket;
        }
        // Unreachable when count equals the bucket total; tolerate racy
        // snapshots by answering the top of the populated range.
        bucket_bounds(
            self.buckets
                .iter()
                .rposition(|&c| c > 0)
                .unwrap_or(BUCKETS - 1),
        )
        .1
    }

    /// The median ([`percentile`](HistogramSnapshot::percentile) 50).
    pub fn p50(&self) -> u64 {
        self.percentile(50.0)
    }

    /// The 90th percentile.
    pub fn p90(&self) -> u64 {
        self.percentile(90.0)
    }

    /// The 99th percentile.
    pub fn p99(&self) -> u64 {
        self.percentile(99.0)
    }

    /// This snapshot minus an `earlier` one, bucket-wise (saturating, so a
    /// reset or a mismatched pair degrades to zeros instead of nonsense).
    pub fn diff(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
            buckets: self
                .buckets
                .iter()
                .zip(&earlier.buckets)
                .map(|(a, b)| a.saturating_sub(*b))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_do_arithmetic() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        let g = Gauge::new();
        g.set(10);
        g.add(-3);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn bucket_index_matches_bucket_bounds() {
        for index in 0..BUCKETS {
            let (low, high) = bucket_bounds(index);
            assert_eq!(bucket_index(low), index, "low bound of {index}");
            assert_eq!(bucket_index(high), index, "high bound of {index}");
        }
        // Spot checks of the boundaries.
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
    }

    /// The scalar reference: exact percentile over the sorted raw values
    /// (value at rank ⌈p/100·n⌉, the same nearest-rank convention the
    /// histogram approximates).
    fn scalar_percentile(sorted: &[u64], p: f64) -> u64 {
        let rank = ((p / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize;
        sorted[rank - 1]
    }

    #[test]
    fn percentiles_track_a_scalar_reference_within_bucket_error() {
        // Deterministic pseudo-random values spanning many buckets.
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut values: Vec<u64> = (0..10_000)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                // Skew towards small values, like latencies: scale by a
                // random bit width.
                let width = (state >> 58) % 40;
                (state >> 20) & ((1u64 << width) - 1).max(1)
            })
            .collect();
        let hist = Histogram::new();
        for &v in &values {
            hist.record(v);
        }
        values.sort_unstable();
        let snap = hist.snapshot();
        assert_eq!(snap.count, values.len() as u64);
        assert_eq!(snap.sum, values.iter().sum::<u64>());
        for p in [1.0, 10.0, 50.0, 90.0, 99.0, 99.9, 100.0] {
            let exact = scalar_percentile(&values, p);
            let approx = snap.percentile(p);
            // The estimate must land in the same log-scale bucket as the
            // exact nearest-rank value: relative error < 2x by design.
            assert_eq!(
                bucket_index(approx),
                bucket_index(exact),
                "p{p}: approx {approx} vs exact {exact}"
            );
        }
    }

    #[test]
    fn percentile_edge_cases() {
        let empty = HistogramSnapshot::empty();
        assert_eq!(empty.percentile(50.0), 0);
        assert_eq!(empty.mean(), 0.0);

        let hist = Histogram::new();
        hist.record(7);
        let snap = hist.snapshot();
        // A single observation answers every percentile from its bucket.
        for p in [0.001, 50.0, 100.0] {
            assert_eq!(bucket_index(snap.percentile(p)), bucket_index(7));
        }

        // All-equal observations: every percentile in the value's bucket.
        let hist = Histogram::new();
        for _ in 0..100 {
            hist.record(1000);
        }
        let snap = hist.snapshot();
        assert_eq!(bucket_index(snap.p50()), bucket_index(1000));
        assert_eq!(bucket_index(snap.p99()), bucket_index(1000));
        assert_eq!(snap.mean(), 1000.0);
    }

    #[test]
    fn snapshot_diff_subtracts_bucketwise() {
        let hist = Histogram::new();
        hist.record(5);
        hist.record(100);
        let earlier = hist.snapshot();
        hist.record(100);
        hist.record(7000);
        let later = hist.snapshot();
        let delta = later.diff(&earlier);
        assert_eq!(delta.count, 2);
        assert_eq!(delta.sum, 7100);
        assert_eq!(delta.buckets[bucket_index(100)], 1);
        assert_eq!(delta.buckets[bucket_index(7000)], 1);
        assert_eq!(delta.buckets[bucket_index(5)], 0);
    }

    #[test]
    fn durations_record_as_nanoseconds() {
        let hist = Histogram::new();
        hist.record_duration(Duration::from_micros(3));
        assert_eq!(hist.count(), 1);
        assert_eq!(hist.snapshot().sum, 3_000);
    }
}
