//! Durable storage: a chunked, dictionary-encoded on-disk format for
//! [`UncertainDatabase`] instances.
//!
//! The format reuses the coding of the in-memory [`Columnar`] view: all
//! values are collected into one sorted dictionary and every fact position
//! becomes a column of dense `u32` codes, written in fixed-size chunks. A
//! database therefore serializes as
//!
//! ```text
//! ┌──────────────────────────────────────────────────────────────────┐
//! │ "CQDB"  magic                                                    │
//! │ u32     format version (1)                                       │
//! │ schema manifest: u32 count, then per relation                    │
//! │   u32 name-len + UTF-8 name, u32 arity, u32 key_len              │
//! │ dictionary: u64 count, then tagged values                        │
//! │   0x00 str   (u32 len + UTF-8 bytes)                             │
//! │   0x01 int   (i64)                                               │
//! │   0x02 tuple (u32 len + recursive values)                        │
//! │ per relation: u64 row count, then per position                   │
//! │   code chunks: u32 chunk-len + chunk-len × u32 codes             │
//! │   (chunks of ≤ 4096 codes until the row count is covered)        │
//! │ u64     total fact count                                         │
//! │ u64     FNV-1a-64 checksum over every preceding byte             │
//! │ "CQDE"  end magic                                                │
//! └──────────────────────────────────────────────────────────────────┘
//! ```
//!
//! All integers are little-endian. Rows follow
//! [`DatabaseIndex::relation_fact_ids`](crate::DatabaseIndex::relation_fact_ids)
//! order, and [`load`] re-inserts them relation by relation in that order —
//! which makes `save ∘ load` byte-stable: saving a just-loaded database
//! reproduces the input file exactly (the property the format-pinning
//! fixture test relies on).
//!
//! [`Columnar`]: crate::Columnar

use crate::{DataError, Schema, UncertainDatabase, Value};
use std::fmt;
use std::path::Path;
use std::sync::Arc;

/// Leading magic bytes of the format.
const MAGIC: &[u8; 4] = b"CQDB";
/// Trailing magic bytes (after the checksum).
const END_MAGIC: &[u8; 4] = b"CQDE";
/// Current format version.
const VERSION: u32 = 1;
/// Maximum number of codes per column chunk.
const CHUNK: usize = 4096;

/// Value-encoding tags.
const TAG_STR: u8 = 0;
const TAG_INT: u8 = 1;
const TAG_TUPLE: u8 = 2;

/// Errors produced by [`save`] and [`load`].
#[derive(Debug)]
pub enum StoreError {
    /// An underlying filesystem error.
    Io(std::io::Error),
    /// The bytes do not form a valid store file (truncation, bad magic,
    /// checksum mismatch, malformed payload...).
    Format(String),
    /// The file uses a format version this build does not understand.
    Version(u32),
    /// The decoded contents violate the data model (e.g. a manifest with an
    /// invalid signature).
    Data(DataError),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store i/o error: {e}"),
            StoreError::Format(what) => write!(f, "malformed store file: {what}"),
            StoreError::Version(found) => {
                write!(
                    f,
                    "unsupported store format version {found} (expected {VERSION})"
                )
            }
            StoreError::Data(e) => write!(f, "store contents invalid: {e}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Data(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<DataError> for StoreError {
    fn from(e: DataError) -> Self {
        StoreError::Data(e)
    }
}

/// What a [`save`] wrote (or a [`load`] read): sizes for reporting.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StoreSummary {
    /// Number of relations in the schema manifest.
    pub relations: usize,
    /// Total number of facts.
    pub facts: usize,
    /// Number of distinct dictionary values.
    pub dictionary: usize,
    /// Size of the encoded file in bytes.
    pub bytes: u64,
}

impl fmt::Display for StoreSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} facts, {} relations, {} dictionary values, {} bytes",
            self.facts, self.relations, self.dictionary, self.bytes
        )
    }
}

// ---- FNV-1a-64 ---------------------------------------------------------

/// The 64-bit FNV-1a hash of `bytes` — small, dependency-free, and plenty to
/// detect truncation and bit rot (this is an integrity check, not a
/// cryptographic seal).
fn fnv1a64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

// ---- encoding ----------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_value(out: &mut Vec<u8>, value: &Value) {
    match value {
        Value::Str(s) => {
            out.push(TAG_STR);
            put_str(out, s);
        }
        Value::Int(i) => {
            out.push(TAG_INT);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Tuple(items) => {
            out.push(TAG_TUPLE);
            put_u32(out, items.len() as u32);
            for item in items.iter() {
                put_value(out, item);
            }
        }
    }
}

/// Serializes `db` into the store format, in memory.
pub fn save_to_vec(db: &UncertainDatabase) -> Vec<u8> {
    let index = db.index();
    let columnar = index.columnar();
    let dictionary = columnar.dictionary_values();

    let mut out = Vec::with_capacity(64 + db.fact_count() * 16);
    out.extend_from_slice(MAGIC);
    put_u32(&mut out, VERSION);

    // Schema manifest.
    let schema = db.schema();
    put_u32(&mut out, schema.len() as u32);
    for (_, relation) in schema.iter() {
        put_str(&mut out, &relation.name);
        put_u32(&mut out, relation.arity() as u32);
        put_u32(&mut out, relation.key_len() as u32);
    }

    // Dictionary.
    put_u64(&mut out, dictionary.len() as u64);
    for value in dictionary.iter() {
        put_value(&mut out, value);
    }

    // Per-relation chunked code columns.
    for (rel, relation) in schema.iter() {
        let columns = columnar.relation(rel);
        put_u64(&mut out, columns.row_count() as u64);
        for pos in 0..relation.arity() {
            for chunk in columns.column(pos).chunks(CHUNK.max(1)) {
                put_u32(&mut out, chunk.len() as u32);
                for &code in chunk {
                    put_u32(&mut out, code);
                }
            }
        }
    }

    put_u64(&mut out, db.fact_count() as u64);
    let checksum = fnv1a64(&out);
    put_u64(&mut out, checksum);
    out.extend_from_slice(END_MAGIC);
    out
}

/// Saves `db` to `path` in the store format, returning what was written.
pub fn save(db: &UncertainDatabase, path: impl AsRef<Path>) -> Result<StoreSummary, StoreError> {
    let started = std::time::Instant::now();
    let bytes = save_to_vec(db);
    std::fs::write(path, &bytes)?;
    cqa_obs::observe_duration!("store.save_nanos", started.elapsed());
    Ok(StoreSummary {
        relations: db.schema().len(),
        facts: db.fact_count(),
        dictionary: db.index().columnar().dictionary().len(),
        bytes: bytes.len() as u64,
    })
}

// ---- decoding ----------------------------------------------------------

/// A bounds-checked little-endian reader over the file bytes.
struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        let end = self
            .at
            .checked_add(n)
            .filter(|&end| end <= self.bytes.len())
            .ok_or_else(|| {
                StoreError::Format(format!("unexpected end of file at byte {}", self.at))
            })?;
        let slice = &self.bytes[self.at..end];
        self.at = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, StoreError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, StoreError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, StoreError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn i64(&mut self) -> Result<i64, StoreError> {
        Ok(i64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn str(&mut self) -> Result<&'a str, StoreError> {
        let len = self.u32()? as usize;
        std::str::from_utf8(self.take(len)?)
            .map_err(|_| StoreError::Format("string payload is not UTF-8".into()))
    }

    fn value(&mut self, depth: usize) -> Result<Value, StoreError> {
        if depth > 16 {
            return Err(StoreError::Format("tuple nesting deeper than 16".into()));
        }
        match self.u8()? {
            TAG_STR => Ok(Value::str(self.str()?)),
            TAG_INT => Ok(Value::Int(self.i64()?)),
            TAG_TUPLE => {
                let len = self.u32()? as usize;
                if len > 1 << 20 {
                    return Err(StoreError::Format("implausible tuple length".into()));
                }
                let mut items = Vec::with_capacity(len);
                for _ in 0..len {
                    items.push(self.value(depth + 1)?);
                }
                Ok(Value::tuple(items))
            }
            tag => Err(StoreError::Format(format!("unknown value tag {tag:#04x}"))),
        }
    }
}

/// Deserializes a database from store-format bytes.
pub fn load_from_slice(bytes: &[u8]) -> Result<UncertainDatabase, StoreError> {
    // Footer first: trailing magic, then the checksum over everything that
    // precedes it — so corruption anywhere in the payload is caught before
    // any payload parsing can trip over it.
    if bytes.len() < MAGIC.len() + END_MAGIC.len() + 8 {
        return Err(StoreError::Format("file too short".into()));
    }
    let (payload_and_sum, end_magic) = bytes.split_at(bytes.len() - END_MAGIC.len());
    if end_magic != END_MAGIC {
        return Err(StoreError::Format(
            "missing end magic (truncated file?)".into(),
        ));
    }
    let (payload, sum_bytes) = payload_and_sum.split_at(payload_and_sum.len() - 8);
    let stored = u64::from_le_bytes(sum_bytes.try_into().expect("8 bytes"));
    let actual = fnv1a64(payload);
    if stored != actual {
        return Err(StoreError::Format(format!(
            "checksum mismatch (stored {stored:#018x}, computed {actual:#018x})"
        )));
    }

    let mut r = Reader {
        bytes: payload,
        at: 0,
    };
    if r.take(MAGIC.len())? != MAGIC {
        return Err(StoreError::Format("bad magic (not a store file)".into()));
    }
    let version = r.u32()?;
    if version != VERSION {
        return Err(StoreError::Version(version));
    }

    // Schema manifest.
    let relation_count = r.u32()? as usize;
    let mut schema = Schema::new();
    let mut arities = Vec::with_capacity(relation_count);
    for _ in 0..relation_count {
        let name = r.str()?.to_owned();
        let arity = r.u32()? as usize;
        let key_len = r.u32()? as usize;
        schema.add_relation(name, arity, key_len)?;
        arities.push(arity);
    }
    let schema = schema.into_shared();

    // Dictionary.
    let dict_len = r.u64()? as usize;
    let mut dictionary: Vec<Value> = Vec::with_capacity(dict_len.min(1 << 24));
    for _ in 0..dict_len {
        dictionary.push(r.value(0)?);
    }
    let dictionary: Arc<[Value]> = dictionary.into();

    // Per-relation columns → facts, re-inserted in row order.
    let mut db = UncertainDatabase::new(schema.clone());
    let mut total_expected: u64 = 0;
    for (rel_index, &arity) in arities.iter().enumerate() {
        let rows = r.u64()? as usize;
        total_expected += rows as u64;
        let mut columns: Vec<Vec<u32>> = Vec::with_capacity(arity);
        for _ in 0..arity {
            let mut column = Vec::with_capacity(rows);
            while column.len() < rows {
                let chunk_len = r.u32()? as usize;
                if chunk_len == 0 || column.len() + chunk_len > rows {
                    return Err(StoreError::Format(format!(
                        "bad chunk length {chunk_len} in relation #{rel_index}"
                    )));
                }
                for _ in 0..chunk_len {
                    column.push(r.u32()?);
                }
            }
            columns.push(column);
        }
        let rel = crate::RelationId::from_index(rel_index);
        for row in 0..rows {
            let mut values = Vec::with_capacity(arity);
            for column in &columns {
                let code = column[row] as usize;
                let value = dictionary.get(code).ok_or_else(|| {
                    StoreError::Format(format!("code {code} outside the dictionary"))
                })?;
                values.push(value.clone());
            }
            if !db.insert(crate::Fact::new(rel, values))? {
                return Err(StoreError::Format(format!(
                    "duplicate row {row} in relation #{rel_index}"
                )));
            }
        }
    }
    let recorded_total = r.u64()?;
    if recorded_total != total_expected || db.fact_count() as u64 != total_expected {
        return Err(StoreError::Format(format!(
            "fact-count mismatch (recorded {recorded_total}, decoded {total_expected})"
        )));
    }
    if r.at != payload.len() {
        return Err(StoreError::Format(format!(
            "{} trailing bytes after the payload",
            payload.len() - r.at
        )));
    }
    Ok(db)
}

/// Loads a database previously written by [`save`].
pub fn load(path: impl AsRef<Path>) -> Result<UncertainDatabase, StoreError> {
    let started = std::time::Instant::now();
    let bytes = std::fs::read(path)?;
    let db = load_from_slice(&bytes)?;
    cqa_obs::observe_duration!("store.load_nanos", started.elapsed());
    Ok(db)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure1() -> UncertainDatabase {
        let schema = Schema::from_relations([("C", 3, 2), ("R", 2, 1)])
            .unwrap()
            .into_shared();
        let mut db = UncertainDatabase::new(schema);
        db.insert_values("C", ["PODS", "2016", "Rome"]).unwrap();
        db.insert_values("C", ["PODS", "2016", "Paris"]).unwrap();
        db.insert_values("C", ["KDD", "2017", "Rome"]).unwrap();
        db.insert_values("R", ["PODS", "A"]).unwrap();
        db.insert_values("R", ["KDD", "A"]).unwrap();
        db.insert_values("R", ["KDD", "B"]).unwrap();
        db
    }

    #[test]
    fn round_trip_preserves_contents_and_blocks() {
        let db = figure1();
        let bytes = save_to_vec(&db);
        let loaded = load_from_slice(&bytes).unwrap();
        assert_eq!(loaded, db);
        assert_eq!(loaded.block_count(), db.block_count());
        assert_eq!(loaded.schema().len(), 2);
        assert_eq!(
            loaded
                .schema()
                .relation(loaded.schema().relation_id("C").unwrap())
                .key_len(),
            2
        );
    }

    #[test]
    fn save_of_a_loaded_database_is_byte_stable() {
        let db = figure1();
        let first = save_to_vec(&db);
        let second = save_to_vec(&load_from_slice(&first).unwrap());
        assert_eq!(first, second);
    }

    #[test]
    fn mixed_value_kinds_survive() {
        let schema = Schema::from_relations([("R", 2, 1)]).unwrap().into_shared();
        let mut db = UncertainDatabase::new(schema);
        db.insert_values("R", [Value::int(-7), Value::str("x")])
            .unwrap();
        db.insert_values(
            "R",
            [Value::pair(Value::int(1), Value::str("y")), Value::int(0)],
        )
        .unwrap();
        let loaded = load_from_slice(&save_to_vec(&db)).unwrap();
        assert_eq!(loaded, db);
    }

    #[test]
    fn corruption_is_detected() {
        let db = figure1();
        let good = save_to_vec(&db);
        // Flip one payload byte: the checksum catches it.
        let mut bad = good.clone();
        bad[good.len() / 2] ^= 0x40;
        assert!(matches!(
            load_from_slice(&bad),
            Err(StoreError::Format(msg)) if msg.contains("checksum")
        ));
        // Truncation is caught before the checksum is even compared.
        assert!(load_from_slice(&good[..good.len() - 3]).is_err());
        // Bad version.
        let mut versioned = good.clone();
        versioned[4] = 99;
        let err = load_from_slice(&versioned).unwrap_err();
        // (The checksum catches the edit first; a legitimately re-signed
        // future-version file would hit `StoreError::Version`.)
        assert!(err.to_string().contains("checksum") || err.to_string().contains("version"));
        // Wrong leading magic.
        let mut magicless = good;
        magicless[0] = b'X';
        assert!(load_from_slice(&magicless).is_err());
    }

    #[test]
    fn files_round_trip_on_disk() {
        let db = figure1();
        let dir = std::env::temp_dir().join(format!("cqa-store-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("figure1.cqdb");
        let summary = save(&db, &path).unwrap();
        assert_eq!(summary.facts, 6);
        assert_eq!(summary.relations, 2);
        assert!(summary.bytes > 0);
        let loaded = load(&path).unwrap();
        assert_eq!(loaded, db);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn large_relations_span_multiple_chunks() {
        let schema = Schema::from_relations([("R", 2, 1)]).unwrap().into_shared();
        let mut db = UncertainDatabase::new(schema);
        for i in 0..(super::CHUNK as i64 + 100) {
            db.insert_values("R", [Value::int(i), Value::int(i % 17)])
                .unwrap();
        }
        let loaded = load_from_slice(&save_to_vec(&db)).unwrap();
        assert_eq!(loaded, db);
        assert_eq!(loaded.fact_count(), super::CHUNK + 100);
    }
}
