//! Functional dependencies arising from primary keys (Definition 1).
//!
//! For every atom `F` of a query `q`, the primary key of `F` induces the
//! functional dependency `key(F) → vars(F)` over the variables of the query.
//! The set of all such dependencies is `K(q)`; attribute closures with
//! respect to `K(q \ {F})` and `K(q)` define `F^{+,q}` (Definition 2) and
//! `F^{⊞,q}` (Definition 5) respectively — those closures are computed in
//! `cqa-core`, on top of the generic machinery here.

use crate::{AtomId, ConjunctiveQuery, VarIndex, VarSet};
use std::fmt;

/// A functional dependency `lhs → rhs` over variable positions.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FunctionalDependency {
    /// Left-hand side (determinant).
    pub lhs: VarSet,
    /// Right-hand side (dependent set).
    pub rhs: VarSet,
}

/// A set of functional dependencies over the variables of one query,
/// indexed by a shared [`VarIndex`].
#[derive(Clone, Default, Debug)]
pub struct FdSet {
    deps: Vec<FunctionalDependency>,
}

impl FdSet {
    /// The empty set of dependencies.
    pub fn new() -> Self {
        FdSet::default()
    }

    /// Adds a dependency.
    pub fn add(&mut self, lhs: VarSet, rhs: VarSet) {
        self.deps.push(FunctionalDependency { lhs, rhs });
    }

    /// The dependencies.
    pub fn dependencies(&self) -> &[FunctionalDependency] {
        &self.deps
    }

    /// `K(q)`: one dependency `key(F) → vars(F)` per atom of `q`
    /// (Definition 1).
    pub fn of_query(query: &ConjunctiveQuery, index: &VarIndex) -> FdSet {
        Self::of_atoms(query, query.atom_ids(), index)
    }

    /// `K(q')` for the sub-query consisting of the listed atoms; with
    /// `q' = q \ {F}` this is the dependency set of Definition 2.
    pub fn of_atoms(
        query: &ConjunctiveQuery,
        atoms: impl IntoIterator<Item = AtomId>,
        index: &VarIndex,
    ) -> FdSet {
        let mut set = FdSet::new();
        for id in atoms {
            let key = index.set_of(&query.key_vars(id));
            let vars = index.set_of(&query.vars_of(id));
            set.add(key, vars);
        }
        set
    }

    /// The attribute closure of `start` with respect to this dependency set:
    /// the least superset `X ⊇ start` such that `lhs ⊆ X` implies `rhs ⊆ X`
    /// for every dependency.
    pub fn closure(&self, start: VarSet) -> VarSet {
        let mut closure = start;
        let mut changed = true;
        while changed {
            changed = false;
            for dep in &self.deps {
                if dep.lhs.is_subset_of(&closure) && !dep.rhs.is_subset_of(&closure) {
                    closure = closure.union(dep.rhs);
                    changed = true;
                }
            }
        }
        closure
    }

    /// True iff the dependency set entails `lhs → rhs`.
    pub fn implies(&self, lhs: VarSet, rhs: VarSet) -> bool {
        rhs.is_subset_of(&self.closure(lhs))
    }
}

impl fmt::Display for FdSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, dep) in self.deps.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{:?}→{:?}", dep.lhs, dep.rhs)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ConjunctiveQuery, Term, Variable};
    use cqa_data::Schema;

    /// The query q1 of Example 2: {R(u, 'a', x), S(y, x, z), T(x, y), P(x, z)}.
    fn q1() -> ConjunctiveQuery {
        let schema = Schema::from_relations([("R", 3, 1), ("S", 3, 1), ("T", 2, 1), ("P", 2, 1)])
            .unwrap()
            .into_shared();
        ConjunctiveQuery::builder(schema)
            .atom("R", [Term::var("u"), Term::constant("a"), Term::var("x")])
            .atom("S", [Term::var("y"), Term::var("x"), Term::var("z")])
            .atom("T", [Term::var("x"), Term::var("y")])
            .atom("P", [Term::var("x"), Term::var("z")])
            .build()
            .unwrap()
    }

    fn set(index: &VarIndex, vars: &[&str]) -> VarSet {
        index.set_of(&vars.iter().map(Variable::new).collect::<Vec<_>>())
    }

    #[test]
    fn example2_closures_without_each_atom() {
        // Reproduces the closure computations of Example 2 of the paper.
        let q = q1();
        let index = q.var_index().unwrap();
        let f = 0usize; // R(u, 'a', x)
        let g = 1usize; // S(y, x, z)
        let h = 2usize; // T(x, y)
        let i = 3usize; // P(x, z)

        // F^{+,q1} = {u}.
        let without_f = FdSet::of_atoms(&q, [g, h, i], &index);
        assert_eq!(without_f.closure(set(&index, &["u"])), set(&index, &["u"]));
        // G^{+,q1} = {y}.
        let without_g = FdSet::of_atoms(&q, [f, h, i], &index);
        assert_eq!(without_g.closure(set(&index, &["y"])), set(&index, &["y"]));
        // H^{+,q1} = {x, z}.
        let without_h = FdSet::of_atoms(&q, [f, g, i], &index);
        assert_eq!(
            without_h.closure(set(&index, &["x"])),
            set(&index, &["x", "z"])
        );
        // I^{+,q1} = {x, y, z}.
        let without_i = FdSet::of_atoms(&q, [f, g, h], &index);
        assert_eq!(
            without_i.closure(set(&index, &["x"])),
            set(&index, &["x", "y", "z"])
        );
    }

    #[test]
    fn example4_closures_with_all_atoms() {
        // K(q1) closures of Example 4: F^{⊞} = {u,x,y,z}, G^{⊞} = H^{⊞} = I^{⊞} = {x,y,z}.
        let q = q1();
        let index = q.var_index().unwrap();
        let k_q = FdSet::of_query(&q, &index);
        assert_eq!(
            k_q.closure(set(&index, &["u"])),
            set(&index, &["u", "x", "y", "z"])
        );
        assert_eq!(
            k_q.closure(set(&index, &["y"])),
            set(&index, &["x", "y", "z"])
        );
        assert_eq!(
            k_q.closure(set(&index, &["x"])),
            set(&index, &["x", "y", "z"])
        );
    }

    #[test]
    fn implies_uses_transitivity() {
        let q = q1();
        let index = q.var_index().unwrap();
        let k_q = FdSet::of_query(&q, &index);
        // u → x (directly) and u → y (via x → y), but not y → u.
        assert!(k_q.implies(set(&index, &["u"]), set(&index, &["x"])));
        assert!(k_q.implies(set(&index, &["u"]), set(&index, &["y"])));
        assert!(!k_q.implies(set(&index, &["y"]), set(&index, &["u"])));
        // Reflexivity: X → X always holds.
        assert!(k_q.implies(set(&index, &["z"]), set(&index, &["z"])));
    }

    #[test]
    fn constants_do_not_contribute_attributes() {
        // key(R) = {u} even though position 2 holds the constant 'a'.
        let q = q1();
        let index = q.var_index().unwrap();
        let k = FdSet::of_atoms(&q, [0], &index);
        assert_eq!(k.dependencies().len(), 1);
        assert_eq!(k.dependencies()[0].lhs, set(&index, &["u"]));
        assert_eq!(k.dependencies()[0].rhs, set(&index, &["u", "x"]));
    }

    #[test]
    fn empty_fd_set_closure_is_identity() {
        let q = q1();
        let index = q.var_index().unwrap();
        let empty = FdSet::new();
        let x = set(&index, &["x", "y"]);
        assert_eq!(empty.closure(x), x);
    }
}
