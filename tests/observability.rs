//! Observability must never change answers: tracing and the metrics toggle
//! are observers, not participants. These properties run randomly generated
//! queries and databases through every executor mode with and without a
//! [`TraceSink`] attached and demand byte-identical results, and pin the
//! facade-level metrics API (`Registry`, `Snapshot`, `hit_rate`).

use cqa::core::solvers::RewritingSolver;
use cqa::exec::{ExecMode, FoPlan, QueryPlan};
use cqa::gen::{random_acyclic_query, GeneratorConfig, UncertainDbGenerator};
use cqa::obs::TraceSink;
use cqa::query::catalog;
use proptest::prelude::*;
use std::sync::Arc;

const MODES: [ExecMode; 3] = [ExecMode::Auto, ExecMode::Vectorized, ExecMode::RowAtATime];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// A traced join-plan execution returns exactly the answers of the
    /// untraced one, in every executor mode, and fills every operator cell
    /// it promised (`trace_ops`).
    #[test]
    fn traced_join_plans_answer_identically(seed in 0u64..3_000, atoms in 1usize..5) {
        let q = random_acyclic_query(seed, atoms, 3);
        let db = UncertainDbGenerator::new(&q, GeneratorConfig {
            seed: seed ^ 0x9e37,
            matches: 12,
            domain_per_variable: 6,
            extra_block_facts: 1,
            alternative_join_probability: 0.5,
        }).generate();
        let index = db.index();
        let plan = QueryPlan::compile(&q, Some(index.statistics()));
        for mode in MODES {
            let plain = plan.prepare(&index).with_mode(mode);
            let sink = Arc::new(TraceSink::new(plan.trace_ops()));
            let traced = plan.prepare(&index).with_mode(mode).with_trace(sink.clone());
            prop_assert_eq!(traced.answers(), plain.answers(), "mode {:?}", mode);
            prop_assert_eq!(traced.satisfies(), plain.satisfies(), "mode {:?}", mode);
            prop_assert_eq!(sink.op_count(), plan.trace_ops());
        }
    }

    /// A traced certain-rewriting execution returns the verdict of the
    /// untraced one, in every executor mode, whenever the random query
    /// classifies as first-order expressible.
    #[test]
    fn traced_rewritings_answer_identically(seed in 0u64..3_000, atoms in 1usize..5) {
        let q = random_acyclic_query(seed, atoms, 3);
        let Ok(solver) = RewritingSolver::new(&q) else {
            return; // outside the Theorem 1 FO region: nothing to trace
        };
        let db = UncertainDbGenerator::new(&q, GeneratorConfig {
            seed: seed ^ 0x51f,
            matches: 10,
            domain_per_variable: 5,
            extra_block_facts: 1,
            alternative_join_probability: 0.5,
        }).generate();
        let index = db.index();
        let plan = FoPlan::compile(solver.formula(), q.schema(), Some(index.statistics()));
        for mode in MODES {
            let plain = plan.prepare(&index).with_mode(mode);
            let sink = Arc::new(TraceSink::new(plan.trace_ops()));
            let traced = plan.prepare(&index).with_mode(mode).with_trace(sink.clone());
            prop_assert_eq!(traced.eval(), plain.eval(), "mode {:?}", mode);
            prop_assert_eq!(sink.op_count(), plan.trace_ops());
        }
    }
}

/// Flipping the process-wide metrics switch must not change any verdict or
/// answer set — and with the switch back on, the facade's registry snapshot
/// reports the recorded events. One test (not a proptest fan-out, not split)
/// because the switch and the registry are global: concurrent tests toggling
/// or observing them would race.
#[test]
fn metrics_toggle_does_not_change_results() {
    use cqa::core::answers::certain_answers;
    use cqa::core::solvers::{CertaintyEngine, CertaintySolver};
    use cqa::prelude::Registry;
    use cqa::query::{ConjunctiveQuery, Term, Variable};

    let boolean = catalog::conference().query;
    let db = catalog::conference_database();
    let free = ConjunctiveQuery::builder(boolean.schema().clone())
        .atom(
            "C",
            [Term::var("x"), Term::var("y"), Term::constant("Rome")],
        )
        .atom("R", [Term::var("x"), Term::constant("A")])
        .free([Variable::new("x")])
        .build()
        .unwrap();

    let engine = CertaintyEngine::new(&boolean).unwrap();
    cqa::obs::set_enabled(false);
    let certain_off = engine.is_certain(&db);
    let possible_off = engine.is_possible(&db);
    let answers_off = certain_answers(&free, &db).unwrap();
    cqa::obs::set_enabled(true);
    let certain_on = engine.is_certain(&db);
    let possible_on = engine.is_possible(&db);
    let answers_on = certain_answers(&free, &db).unwrap();

    assert_eq!(certain_on, certain_off);
    assert_eq!(possible_on, possible_off);
    assert_eq!(answers_on.certain, answers_off.certain);
    assert_eq!(answers_on.possible, answers_off.possible);

    // With metrics back on, the facade registry reports the recorded
    // events: classification happened above while the switch was on.
    let snapshot = Registry::global().snapshot();
    assert!(!snapshot.is_empty());
    assert!(snapshot.counter("core.classify.fo") >= 1);
    if let Some(rate) = snapshot.hit_rate("data.index.cache") {
        assert!((0.0..=1.0).contains(&rate));
    }
    assert!(snapshot.render().contains("core.classify.fo"));
}
