//! MVCC-lite epoch management: frozen reader epochs, delta-built writers,
//! and materialized views published atomically with the epoch swap.
//!
//! The manager owns the **master** [`UncertainDatabase`] plus the
//! registered [`MaterializedView`]s (behind one writer mutex — views must
//! repair in lockstep with the data) and publishes the **current epoch** as
//! a single `Published` pair — the `Arc<`[`BatchEngine`]`>` over a frozen
//! [`cqa_data::Snapshot`] *and* the per-view frozen [`ViewReading`]s —
//! behind an `RwLock` that is only ever held for a pointer clone or a
//! pointer swap:
//!
//! * **Readers** ([`EpochManager::current`], [`EpochManager::view`]) clone
//!   out of one `Published`; a concurrent publish cannot tear their view,
//!   and because engine and view readings swap **together**, a `\view`
//!   response can never lag (or lead) the epoch a concurrent query
//!   observes.
//! * **Writers** ([`EpochManager::apply_write`]) serialize on the master
//!   mutex, mutate the database while recording the exact [`ChangeSet`],
//!   freeze the next snapshot — flushing the delta log through the
//!   incremental index patcher — repair every registered view from the
//!   changeset ([`ViewMaintainer::repair`]), fork the next engine with
//!   [`BatchEngine::with_snapshot`], and swap the published pair. Old
//!   epochs die when their last in-flight reader drops its `Arc`; until
//!   then they are counted by the `serve.epochs.pinned` gauge.
//!
//! No-op writes (duplicate insert, absent removal, absent block removal)
//! publish nothing: the epoch number a client observes increments exactly
//! on effective mutations, mirroring [`UncertainDatabase::epoch`].

use crate::protocol::{self, WriteOp};
use cqa_core::answers::CertainAnswersEngine;
use cqa_data::{ChangeSet, Delta, Fact, UncertainDatabase};
use cqa_exec::cache::fingerprint;
use cqa_par::{BatchEngine, BatchOutcome, BatchResult, ParPool};
use cqa_stream::{MaterializedView, ViewMaintainer};
use rustc_hash::FxHashMap;
use std::sync::{Arc, Mutex, PoisonError, RwLock, Weak};

/// What a write did: whether it changed anything, and the epoch the caller
/// now observes (the new epoch if `changed`, the unchanged one otherwise).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WriteOutcome {
    /// True iff the mutation was effective (a fresh insert, a present
    /// removal) and a new epoch was published.
    pub changed: bool,
    /// The epoch after the write.
    pub epoch: u64,
}

/// One frozen reading of a registered view, published with (and only with)
/// its epoch's engine.
#[derive(Clone, Debug)]
pub struct ViewReading {
    /// The view's name.
    pub name: String,
    /// The epoch this reading reflects — always the epoch of the engine it
    /// was published with.
    pub epoch: u64,
    /// Number of certain answers.
    pub certain: usize,
    /// Number of possible answers.
    pub possible: usize,
    /// The pre-rendered protocol response line (`name: N certain / M
    /// possible; certain: ...`), byte-identical to what a fresh query for
    /// the same answer sets would render.
    pub line: String,
}

/// The atomically-swapped unit of publication: engine and view readings of
/// one epoch.
struct Published {
    engine: Arc<BatchEngine>,
    views: Arc<FxHashMap<String, Arc<ViewReading>>>,
}

/// The writer-side state: the master database and the live views it
/// maintains, mutated together under one lock.
struct MasterState {
    db: UncertainDatabase,
    views: FxHashMap<String, MaterializedView>,
}

/// The server's shared epoch state: master database + published engine and
/// views + the cross-epoch memo of open-rewriting answer engines.
pub struct EpochManager {
    master: Mutex<MasterState>,
    current: RwLock<Published>,
    /// Memoized [`CertainAnswersEngine`]s per `(schema, query)`
    /// fingerprint, shared across epochs — classification and rewriting
    /// shape are data-independent, and the compiled open plan re-checks
    /// statistics drift itself. This is the non-Boolean counterpart of the
    /// [`BatchEngine`]'s classified-engine memo.
    answer_engines: Mutex<FxHashMap<String, Arc<CertainAnswersEngine>>>,
    maintainer: ViewMaintainer,
    /// Weak handles on previously published engines: the ones still
    /// upgradable are old epochs pinned by slow readers
    /// ([`pinned_epochs`](Self::pinned_epochs)).
    history: Mutex<Vec<Weak<BatchEngine>>>,
}

impl EpochManager {
    /// Freezes `db` as epoch zero's snapshot and publishes its engine.
    pub fn new(db: UncertainDatabase, pool: ParPool) -> EpochManager {
        let engine = Arc::new(BatchEngine::new(db.snapshot(), pool.clone()));
        EpochManager {
            master: Mutex::new(MasterState {
                db,
                views: FxHashMap::default(),
            }),
            current: RwLock::new(Published {
                engine,
                views: Arc::new(FxHashMap::default()),
            }),
            answer_engines: Mutex::new(FxHashMap::default()),
            maintainer: ViewMaintainer::with_pool(pool),
            history: Mutex::new(Vec::new()),
        }
    }

    /// The current epoch's engine. The returned `Arc` pins the epoch: the
    /// caller's whole query runs against this one frozen snapshot no matter
    /// how many writes publish newer epochs meanwhile.
    pub fn current(&self) -> Arc<BatchEngine> {
        self.current
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .engine
            .clone()
    }

    /// The published epoch number.
    pub fn epoch(&self) -> u64 {
        self.current().epoch()
    }

    /// The current reading of the named view, frozen with the current
    /// epoch. A reading whose epoch disagrees with its engine's would be a
    /// torn publish; it is counted (`stream.view.stale_reads`) and the
    /// concurrency suite asserts the counter stays zero.
    pub fn view(&self, name: &str) -> Option<Arc<ViewReading>> {
        let published = self.current.read().unwrap_or_else(PoisonError::into_inner);
        let reading = published.views.get(name)?.clone();
        if reading.epoch != published.engine.epoch() {
            cqa_obs::count!("stream.view.stale_reads");
        }
        Some(reading)
    }

    /// Number of registered views.
    pub fn view_count(&self) -> usize {
        self.current
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .views
            .len()
    }

    /// Number of old epochs still pinned by slow readers: previously
    /// published engines whose `Arc` is still held somewhere. This is the
    /// `serve.epochs.pinned` gauge.
    pub fn pinned_epochs(&self) -> usize {
        let mut history = self.history.lock().unwrap_or_else(PoisonError::into_inner);
        history.retain(|weak| weak.strong_count() > 0);
        history.len()
    }

    /// Registers (or replaces) the view `name` over `query`, decided
    /// against the current epoch and published immediately — under the
    /// master lock, so registration serializes with writers and the
    /// published reading always matches the published engine's epoch.
    pub fn subscribe(
        &self,
        name: &str,
        query: &cqa_query::ConjunctiveQuery,
    ) -> Result<Arc<ViewReading>, String> {
        let mut master = self.master.lock().unwrap_or_else(PoisonError::into_inner);
        let mut view = MaterializedView::new(name, query)?;
        self.maintainer
            .initialize(&mut view, &master.db.snapshot())?;
        let reading = Arc::new(render_reading(&view));
        master.views.insert(name.to_string(), view);
        {
            let mut current = self.current.write().unwrap_or_else(PoisonError::into_inner);
            let mut views = (*current.views).clone();
            views.insert(name.to_string(), reading.clone());
            current.views = Arc::new(views);
        }
        cqa_obs::count!("stream.view.subscriptions");
        cqa_obs::gauge_set!("serve.views.registered", master.views.len() as i64);
        Ok(reading)
    }

    /// Applies one write to the master database and — iff it was effective —
    /// repairs every registered view from the recorded changeset and
    /// publishes the next epoch. Writers serialize on the master mutex, so
    /// epochs are published in write order; the publish itself is a single
    /// swap of the engine-plus-views pair under the write lock, never
    /// blocking readers for longer than a pointer clone takes.
    pub fn apply_write(&self, op: &WriteOp) -> Result<WriteOutcome, String> {
        let mut master = self.master.lock().unwrap_or_else(PoisonError::into_inner);
        let mut changes = ChangeSet::new();
        let changed = record_write(&mut master.db, op, &mut changes)?;
        if !changed {
            return Ok(WriteOutcome {
                changed: false,
                epoch: master.db.epoch(),
            });
        }
        cqa_obs::count!("serve.writes_effective");
        // Freezing the snapshot flushes the pending delta log through the
        // incremental index patcher (rebuild past CQA_DELTA_THRESHOLD).
        let snapshot = master.db.snapshot();
        let epoch = snapshot.epoch();
        let mut readings = FxHashMap::default();
        for (name, view) in master.views.iter_mut() {
            // A repair error is unreachable for a validated query; if it
            // ever fires, re-decide from scratch rather than publishing a
            // stale reading.
            if self.maintainer.repair(view, &snapshot, &changes).is_err() {
                cqa_obs::count!("stream.view.repair_errors");
                self.maintainer.initialize(view, &snapshot)?;
            }
            readings.insert(name.clone(), Arc::new(render_reading(view)));
        }
        let next = Arc::new(self.current().with_snapshot(snapshot));
        {
            let mut current = self.current.write().unwrap_or_else(PoisonError::into_inner);
            let old = std::mem::replace(&mut current.engine, next);
            current.views = Arc::new(readings);
            let mut history = self.history.lock().unwrap_or_else(PoisonError::into_inner);
            history.retain(|weak| weak.strong_count() > 0);
            history.push(Arc::downgrade(&old));
        }
        cqa_obs::count!("serve.epochs_published");
        Ok(WriteOutcome {
            changed: true,
            epoch,
        })
    }

    /// The memoized open-rewriting answer engine for `query`, classifying
    /// and compiling on first sight of the shape. Counted as
    /// `serve.answer_engine.{hit,miss}`.
    pub fn answer_engine(
        &self,
        query: &cqa_query::ConjunctiveQuery,
    ) -> Result<Arc<CertainAnswersEngine>, String> {
        let key = fingerprint(query);
        if let Some(engine) = self
            .answer_engines
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(&key)
        {
            cqa_obs::count!("serve.answer_engine.hit");
            return Ok(engine.clone());
        }
        cqa_obs::count!("serve.answer_engine.miss");
        // Classify outside the lock; a racing duplicate loses the entry
        // race harmlessly (both engines answer alike).
        let engine = Arc::new(CertainAnswersEngine::new(query).map_err(|e| e.to_string())?);
        Ok(self
            .answer_engines
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .entry(key)
            .or_insert(engine)
            .clone())
    }

    /// Number of memoized answer engines (tests pin memo reuse).
    pub fn answer_engine_count(&self) -> usize {
        self.answer_engines
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }
}

/// Applies `op` to `db`, recording the exact deltas into `changes` —
/// including the per-fact removals of a whole-block removal, which the
/// database's own pending log nets out internally. Returns whether the
/// write was effective.
fn record_write(
    db: &mut UncertainDatabase,
    op: &WriteOp,
    changes: &mut ChangeSet,
) -> Result<bool, String> {
    Ok(match op {
        WriteOp::Insert(fact) => {
            let inserted = db.insert(fact.clone()).map_err(|e| e.to_string())?;
            if inserted {
                changes.record(Delta::Inserted(fact.clone()));
            }
            inserted
        }
        WriteOp::RemoveFact(fact) => {
            let emptied = db.block_of(fact).is_some_and(cqa_data::Block::is_singleton);
            let removed = db.remove_fact(fact);
            if removed {
                changes.record(Delta::Removed {
                    fact: fact.clone(),
                    emptied_block: emptied,
                });
            }
            removed
        }
        WriteOp::RemoveBlock(fact) => {
            // Capture the block's facts *before* removal: the whole block
            // disappears, and every member is a delta the views must see.
            let schema = db.schema().clone();
            let members: Vec<Fact> = db
                .block_with_key(fact.relation(), fact.key(&schema))
                .map(|block| block.facts().to_vec())
                .unwrap_or_default();
            let removed = db.remove_block_of(fact);
            if removed {
                let last = members.len();
                for (i, member) in members.into_iter().enumerate() {
                    changes.record(Delta::Removed {
                        fact: member,
                        emptied_block: i + 1 == last,
                    });
                }
            }
            removed
        }
    })
}

/// Freezes one view's current answer into the published reading shape. The
/// line is rendered through the same [`protocol::render_result`] as a query
/// response, so `\view name` and a fresh query over the same answer sets
/// are byte-identical.
fn render_reading(view: &MaterializedView) -> ViewReading {
    let sets = view.answer_sets();
    let certain = sets.certain.len();
    let possible = sets.possible.len();
    let line = protocol::render_result(&BatchResult {
        name: view.name().to_string(),
        outcome: BatchOutcome::Answers(sets),
    });
    ViewReading {
        name: view.name().to_string(),
        epoch: view.epoch(),
        certain,
        possible,
        line,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_data::{Fact, Schema, Value};
    use cqa_query::{ConjunctiveQuery, Term, Variable};

    fn manager() -> EpochManager {
        let schema = Schema::from_relations([("R", 2, 1)]).unwrap().into_shared();
        let mut db = UncertainDatabase::new(schema);
        db.insert_values("R", ["a", "1"]).unwrap();
        EpochManager::new(db, ParPool::new(2))
    }

    fn fact(schema: &Arc<Schema>, key: &str, value: i64) -> Fact {
        let rel = schema.relation_id("R").unwrap();
        Fact::checked(schema, rel, vec![Value::str(key), Value::Int(value)]).unwrap()
    }

    fn open_query(schema: &Arc<Schema>) -> ConjunctiveQuery {
        ConjunctiveQuery::builder(schema.clone())
            .atom("R", [Term::var("x"), Term::var("y")])
            .free([Variable::new("x")])
            .build()
            .unwrap()
    }

    #[test]
    fn effective_writes_publish_new_epochs_and_noops_do_not() {
        let manager = manager();
        let schema = manager.current().snapshot().schema().clone();
        let before = manager.epoch();
        let reader_pin = manager.current();

        let outcome = manager
            .apply_write(&WriteOp::Insert(fact(&schema, "b", 2)))
            .unwrap();
        assert!(outcome.changed);
        assert!(outcome.epoch > before);
        assert_eq!(manager.epoch(), outcome.epoch);
        // A pinned reader epoch stays frozen across the publish.
        assert_eq!(reader_pin.snapshot().fact_count(), 1);
        assert_eq!(manager.current().snapshot().fact_count(), 2);

        // Duplicate insert and absent removals are no-ops: same epoch.
        for op in [
            WriteOp::Insert(fact(&schema, "b", 2)),
            WriteOp::RemoveFact(fact(&schema, "zzz", 9)),
            WriteOp::RemoveBlock(fact(&schema, "zzz", 9)),
        ] {
            let noop = manager.apply_write(&op).unwrap();
            assert!(!noop.changed);
            assert_eq!(noop.epoch, outcome.epoch);
        }

        // Removal publishes again.
        let removed = manager
            .apply_write(&WriteOp::RemoveFact(fact(&schema, "b", 2)))
            .unwrap();
        assert!(removed.changed);
        assert!(removed.epoch > outcome.epoch);
        assert_eq!(manager.current().snapshot().fact_count(), 1);
    }

    #[test]
    fn answer_engines_are_memoized_across_epochs() {
        let manager = manager();
        let schema = manager.current().snapshot().schema().clone();
        let query = ConjunctiveQuery::builder(schema.clone())
            .atom("R", [Term::var("x"), Term::var("y")])
            .free([Variable::new("x")])
            .build()
            .unwrap();
        let first = manager.answer_engine(&query).unwrap();
        manager
            .apply_write(&WriteOp::Insert(fact(&schema, "c", 3)))
            .unwrap();
        let second = manager.answer_engine(&query).unwrap();
        assert!(Arc::ptr_eq(&first, &second), "memo survives epochs");
        assert_eq!(manager.answer_engine_count(), 1);
    }

    #[test]
    fn views_publish_atomically_with_the_epoch() {
        let manager = manager();
        let schema = manager.current().snapshot().schema().clone();
        let reading = manager
            .subscribe("keys", &open_query(&schema))
            .expect("subscribe");
        assert_eq!(reading.epoch, manager.epoch());
        assert_eq!((reading.certain, reading.possible), (1, 1));
        assert!(reading.line.starts_with("keys: 1 certain / 1 possible"));
        assert_eq!(manager.view_count(), 1);

        // An effective write repairs and republishes the view in the same
        // swap: reading epoch always equals the engine epoch.
        let outcome = manager
            .apply_write(&WriteOp::Insert(fact(&schema, "b", 2)))
            .unwrap();
        let reading = manager.view("keys").expect("published view");
        assert_eq!(reading.epoch, outcome.epoch);
        assert_eq!((reading.certain, reading.possible), (2, 2));

        // A no-op write leaves the published reading untouched.
        manager
            .apply_write(&WriteOp::RemoveFact(fact(&schema, "zzz", 9)))
            .unwrap();
        assert_eq!(manager.view("keys").unwrap().epoch, outcome.epoch);
        assert!(manager.view("nope").is_none());
        assert_eq!(
            cqa_obs::Registry::global()
                .snapshot()
                .counter("stream.view.stale_reads"),
            0
        );
    }

    #[test]
    fn whole_block_removal_repairs_views_through_the_recorded_deltas() {
        let manager = manager();
        let schema = manager.current().snapshot().schema().clone();
        manager
            .apply_write(&WriteOp::Insert(fact(&schema, "a", 2)))
            .unwrap();
        manager.subscribe("keys", &open_query(&schema)).unwrap();
        assert_eq!(manager.view("keys").unwrap().possible, 1);
        // Remove the whole two-fact block (naming a member that exists).
        let outcome = manager
            .apply_write(&WriteOp::RemoveBlock(fact(&schema, "a", 1)))
            .unwrap();
        assert!(outcome.changed);
        let reading = manager.view("keys").unwrap();
        assert_eq!((reading.certain, reading.possible), (0, 0));
        assert_eq!(reading.epoch, outcome.epoch);
    }

    #[test]
    fn pinned_epoch_gauge_counts_slow_readers() {
        let manager = manager();
        let schema = manager.current().snapshot().schema().clone();
        assert_eq!(manager.pinned_epochs(), 0);
        let pin = manager.current();
        manager
            .apply_write(&WriteOp::Insert(fact(&schema, "b", 2)))
            .unwrap();
        assert_eq!(manager.pinned_epochs(), 1, "the old epoch is pinned");
        manager
            .apply_write(&WriteOp::Insert(fact(&schema, "c", 3)))
            .unwrap();
        // The intermediate epoch died unpinned; the original is still held.
        assert_eq!(manager.pinned_epochs(), 1);
        drop(pin);
        assert_eq!(manager.pinned_epochs(), 0);
    }
}
