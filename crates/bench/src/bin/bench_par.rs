//! Sequential vs parallel certainty evaluation, measured on `cqa-gen`
//! workloads and recorded in `BENCH_par.json` at the workspace root.
//!
//! Two parallel entry points are measured against their sequential
//! counterparts, at 1/2/4/8 worker threads:
//!
//! * **certain answers** — the candidate-answer space of
//!   `cqa_core::answers::certain_answers` sharded by
//!   `cqa_par::certain_answers_par` (per-candidate grounding + Boolean
//!   certainty on worker threads, ordered-set merge);
//! * **certainty** — the compiled Theorem 1 rewriting's root scan sharded
//!   by `cqa_par::ParallelEngine::is_certain`.
//!
//! Every parallel result is asserted **identical** to the sequential one
//! before anything is timed — the determinism contract of `cqa-par`.
//!
//! The recorded `host_cpus` matters when reading the numbers: thread counts
//! beyond the machine's hardware parallelism time-slice one core and cannot
//! speed anything up, so on a 1-CPU container every speedup is ≈ 1×. The
//! scaling story needs a multi-core host; the determinism story does not.
//!
//! Run with `cargo run --release -p cqa-bench --bin bench_par`
//! (`--quick` shrinks the instances for CI smoke runs).

use cqa_bench::{json_escape, quick_flag, scaled_instance, time_min, write_bench_json};
use cqa_core::answers::certain_answers;
use cqa_core::solvers::{CertaintyEngine, CertaintySolver};
use cqa_par::{certain_answers_par, ParConfig, ParPool, ParallelEngine};
use cqa_query::{catalog, ConjunctiveQuery, Variable};
use std::fmt::Write as _;
use std::time::Duration;

/// The thread counts of the scaling curve.
const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// The catalog query with its first variable freed: the non-Boolean variant
/// whose candidate space the parallel layer shards.
fn free_first_variable(query: &ConjunctiveQuery, var: &str) -> ConjunctiveQuery {
    ConjunctiveQuery::with_free_vars(
        query.schema().clone(),
        query.atoms().to_vec(),
        vec![Variable::new(var)],
    )
    .expect("freeing a variable of a valid query stays valid")
}

struct ScalingPoint {
    threads: usize,
    elapsed: Duration,
    speedup: f64,
}

fn points_json(sequential: Duration, points: &[ScalingPoint]) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "\"sequential_ms\": {:.3}, \"threads\": [",
        sequential.as_secs_f64() * 1e3
    );
    for (i, p) in points.iter().enumerate() {
        let _ = write!(
            out,
            "{}{{ \"threads\": {}, \"ms\": {:.3}, \"speedup\": {:.2}, \"identical_result\": true }}",
            if i == 0 { " " } else { ", " },
            p.threads,
            p.elapsed.as_secs_f64() * 1e3,
            p.speedup,
        );
    }
    out.push_str(" ]");
    out
}

fn main() {
    let quick = quick_flag();
    let host_cpus = workpool_cpus();
    let runs = if quick { 1 } else { 2 };
    if host_cpus == 1 {
        eprintln!(
            "WARNING: this host reports 1 CPU. Every thread count time-slices a single core, \
             so the curve below measures parallelization overhead, not speedup — expect ~1x \
             everywhere. The determinism assertions still hold; re-run on a multi-core host \
             for the scaling story."
        );
    }

    // The acceptance workload: the 3-atom chain at n = 2200 (~13k facts),
    // with x freed so the candidate-answer space is ~n tuples; plus the
    // Figure 1 conference shape at a comparable scale.
    let workloads: Vec<(&str, ConjunctiveQuery, &str, usize, u64)> = vec![
        (
            "path3",
            catalog::fo_path3().query,
            "x",
            if quick { 150 } else { 2200 },
            11,
        ),
        (
            "conference",
            catalog::conference().query,
            "x",
            if quick { 200 } else { 2600 },
            13,
        ),
    ];

    let mut entries = Vec::new();
    for (name, boolean_query, freed, n, seed) in workloads {
        let db = scaled_instance(&boolean_query, n, seed);
        let snapshot = db.snapshot();
        let query = free_first_variable(&boolean_query, freed);
        eprintln!(
            "workload {name}: {} atoms, {} facts, {} blocks",
            query.len(),
            db.fact_count(),
            db.block_count(),
        );

        // -- certain answers: sequential baseline, then the scaling curve.
        let reference = certain_answers(&query, &db).expect("workload queries are answerable");
        let answers_seq = time_min(runs, || certain_answers(&query, &db).expect("answerable"));
        let mut answer_points = Vec::new();
        for threads in THREAD_COUNTS {
            let pool = ParPool::new(threads);
            let par = certain_answers_par(&query, &snapshot, &pool, &ParConfig::default())
                .expect("answerable");
            assert_eq!(
                par, reference,
                "parallel certain_answers diverged at {threads} threads on {name}"
            );
            let elapsed = time_min(runs, || {
                certain_answers_par(&query, &snapshot, &pool, &ParConfig::default())
                    .expect("answerable")
            });
            answer_points.push(ScalingPoint {
                threads,
                elapsed,
                speedup: answers_seq.as_secs_f64() / elapsed.as_secs_f64().max(1e-9),
            });
        }
        for p in &answer_points {
            eprintln!(
                "  certain_answers {} threads: {:9.3} ms ({:>5.2}x vs sequential {:.3} ms)",
                p.threads,
                p.elapsed.as_secs_f64() * 1e3,
                p.speedup,
                answers_seq.as_secs_f64() * 1e3,
            );
        }

        // -- Boolean certainty: root-scan sharding of the rewriting plan.
        let engine = CertaintyEngine::new(&boolean_query).expect("Theorem 1 queries classify");
        let verdict = engine.is_certain(&db);
        let certain_seq = time_min(runs.max(3), || engine.is_certain(&db));
        let mut certain_points = Vec::new();
        for threads in THREAD_COUNTS {
            let par = ParallelEngine::new(
                &boolean_query,
                ParPool::new(threads),
                ParConfig::always_parallel(),
            )
            .expect("Theorem 1 queries classify");
            assert_eq!(
                par.is_certain(&snapshot),
                verdict,
                "parallel is_certain diverged at {threads} threads on {name}"
            );
            let elapsed = time_min(runs.max(3), || par.is_certain(&snapshot));
            certain_points.push(ScalingPoint {
                threads,
                elapsed,
                speedup: certain_seq.as_secs_f64() / elapsed.as_secs_f64().max(1e-9),
            });
        }
        for p in &certain_points {
            eprintln!(
                "  is_certain      {} threads: {:9.3} ms ({:>5.2}x vs sequential {:.3} ms)",
                p.threads,
                p.elapsed.as_secs_f64() * 1e3,
                p.speedup,
                certain_seq.as_secs_f64() * 1e3,
            );
        }

        let mut entry = String::new();
        write!(
            entry,
            "    {{\n      \"name\": \"{name}\",\n      \"query\": \"{}\",\n      \"facts\": {},\n      \"blocks\": {},\n      \"candidate_answers\": {},\n      \"certain_answers\": {{ {} }},\n      \"is_certain\": {{ \"verdict\": {verdict}, {} }}\n    }}",
            json_escape(&query.to_string()),
            db.fact_count(),
            db.block_count(),
            reference.possible.len(),
            points_json(answers_seq, &answer_points),
            points_json(certain_seq, &certain_points),
        )
        .expect("writing to a String cannot fail");
        entries.push(entry);
    }

    let caveat = if host_cpus == 1 {
        "\n  \"caveat\": \"host_cpus == 1: all thread counts time-slice a single core, so these speedups measure parallelization overhead, not multi-core scaling\","
    } else {
        ""
    };
    let json = format!(
        "{{\n  \"benchmark\": \"sequential vs work-stealing parallel certainty evaluation\",\n  \"generated_by\": \"cargo run --release -p cqa-bench --bin bench_par\",\n  \"quick\": {quick},\n  \"host_cpus\": {host_cpus},{caveat}\n  \"note\": \"every parallel result is asserted byte-identical to the sequential one before timing; speedups above 1x require host_cpus > 1 (thread counts beyond host_cpus time-slice one core)\",\n  \"workloads\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );

    let out = write_bench_json("BENCH_par.json", &json);
    eprintln!("wrote {}", out.display());
    print!("{json}");
}

/// The machine's hardware parallelism, as the pool sizes itself by default.
fn workpool_cpus() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}
