//! The view maintainer: delta-driven incremental repair with a damage
//! threshold and optional sharding of the retouched-candidate set.

use crate::view::{provenance_of, BlockKey, MaterializedView, Provenance};
use cqa_core::answers::possible_answers;
use cqa_core::answers::CertainAnswersEngine;
use cqa_data::{ChangeSet, Snapshot, Value};
use cqa_exec::QueryPlan;
use cqa_par::{par_map, ParPool};
use cqa_query::eval::satisfies_with;
use cqa_query::substitute::ground_with;
use cqa_query::{ConjunctiveQuery, Valuation, Variable};
use std::collections::BTreeSet;
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Default damage threshold: repairs that would re-decide more candidates
/// than this fall back to a full re-evaluation. Overridable per maintainer
/// via [`ViewMaintainer::with_threshold`] and process-wide via the
/// `CQA_VIEW_THRESHOLD` environment variable (mirroring
/// `CQA_DELTA_THRESHOLD`, which plays the same role for index patching).
pub const DEFAULT_VIEW_THRESHOLD: usize = 256;

/// The process-wide view damage threshold: `CQA_VIEW_THRESHOLD` when set
/// and valid (parsed once), [`DEFAULT_VIEW_THRESHOLD`] otherwise. Invalid
/// values are reported loudly on stderr and counted as `config.env.invalid`,
/// matching the other tuning knobs.
pub fn view_threshold() -> usize {
    static CELL: OnceLock<usize> = OnceLock::new();
    *CELL.get_or_init(|| match std::env::var("CQA_VIEW_THRESHOLD") {
        Ok(raw) => match raw.trim().parse::<usize>() {
            Ok(value) => value,
            Err(_) => {
                eprintln!(
                    "warning: ignoring invalid CQA_VIEW_THRESHOLD={raw:?} \
                     (expected a non-negative integer); using {DEFAULT_VIEW_THRESHOLD}"
                );
                cqa_obs::count!("config.env.invalid");
                DEFAULT_VIEW_THRESHOLD
            }
        },
        Err(_) => DEFAULT_VIEW_THRESHOLD,
    })
}

/// Default minimum retouched-candidate count before the re-decision is
/// sharded onto the pool: below it, the fan-out overhead dominates.
const DEFAULT_SHARD_CUTOFF: usize = 64;

/// What one repair did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RepairOutcome {
    /// The epoch the view now reflects.
    pub epoch: u64,
    /// Candidates re-decided because their provenance intersected a
    /// touched block or an inserted fact matched their pattern.
    pub retouched: usize,
    /// Candidates newly discovered from inserted facts.
    pub discovered: usize,
    /// True iff the damage exceeded the threshold and the view was rebuilt
    /// from scratch instead of repaired.
    pub full_recompute: bool,
}

/// Repairs [`MaterializedView`]s from [`ChangeSet`]s.
///
/// Stateless apart from its knobs, so one maintainer serves any number of
/// views. Attach a [`ParPool`] to shard the re-decision of large retouched
/// sets; the merge is in candidate order, so the repaired view is
/// byte-identical at every thread count.
#[derive(Clone, Debug)]
pub struct ViewMaintainer {
    pool: Option<ParPool>,
    threshold: usize,
    shard_cutoff: usize,
}

impl Default for ViewMaintainer {
    fn default() -> Self {
        ViewMaintainer::new()
    }
}

/// Everything a sharded decision job needs, behind one `Arc`.
struct DecideCtx {
    engine: Arc<CertainAnswersEngine>,
    query: ConjunctiveQuery,
    free: Vec<Variable>,
}

impl ViewMaintainer {
    /// A sequential maintainer with the process-wide damage threshold.
    pub fn new() -> ViewMaintainer {
        ViewMaintainer {
            pool: None,
            threshold: view_threshold(),
            shard_cutoff: DEFAULT_SHARD_CUTOFF,
        }
    }

    /// A maintainer that shards large retouched sets onto `pool`.
    pub fn with_pool(pool: ParPool) -> ViewMaintainer {
        ViewMaintainer {
            pool: Some(pool),
            ..ViewMaintainer::new()
        }
    }

    /// Overrides the damage threshold (tests force the fallback path).
    pub fn with_threshold(mut self, threshold: usize) -> ViewMaintainer {
        self.threshold = threshold;
        self
    }

    /// Overrides the sharding cutoff (tests force sharding on small sets).
    pub fn with_shard_cutoff(mut self, cutoff: usize) -> ViewMaintainer {
        self.shard_cutoff = cutoff.max(1);
        self
    }

    /// The damage threshold in effect.
    pub fn threshold(&self) -> usize {
        self.threshold
    }

    /// Decides the view from scratch against `snapshot`: possible answers,
    /// batch certainty, and fresh provenance for every candidate. Used at
    /// registration and as the past-threshold fallback.
    pub fn initialize(
        &self,
        view: &mut MaterializedView,
        snapshot: &Snapshot,
    ) -> Result<(), String> {
        let db = snapshot.database();
        let possible = possible_answers(view.query(), db).map_err(|e| e.to_string())?;
        let tuples: Vec<Vec<Value>> = possible.into_iter().collect();
        let verdicts = view
            .engine()
            .verdicts(db, &tuples)
            .map_err(|e| e.to_string())?;
        let provs = self.provenances(view, snapshot, &tuples);
        view.clear();
        for ((tuple, certain), prov) in tuples.into_iter().zip(verdicts).zip(provs) {
            view.install(tuple, certain, prov);
        }
        view.set_epoch(snapshot.epoch());
        Ok(())
    }

    /// Repairs the view from the mutations in `changes`, which must be the
    /// exact delta between the view's current epoch and `snapshot`.
    ///
    /// The damage set is the union of (a) candidates whose provenance
    /// intersects a touched block, (b) candidates an inserted fact
    /// pattern-matches, and (c) candidates newly discovered from inserted
    /// facts through a compiled plan of the partially grounded query. Past
    /// [`threshold`](Self::threshold) re-decided candidates, the repair
    /// falls back to [`initialize`](Self::initialize).
    pub fn repair(
        &self,
        view: &mut MaterializedView,
        snapshot: &Snapshot,
        changes: &ChangeSet,
    ) -> Result<RepairOutcome, String> {
        let started = Instant::now();
        cqa_obs::count!("stream.view.repairs");
        if changes.is_empty() {
            view.set_epoch(snapshot.epoch());
            return Ok(RepairOutcome {
                epoch: snapshot.epoch(),
                retouched: 0,
                discovered: 0,
                full_recompute: false,
            });
        }
        let schema = snapshot.schema().clone();

        // (a) Provenance-intersection retouches: every candidate depending
        // on a block some mutated fact belongs to — through a block-level
        // edge or a relation-wide entry. Sound and complete for removals —
        // a fact leaving a block outside every candidate's provenance is,
        // by the provenance invariant, in a block with no matching fact,
        // which no verdict reads.
        let mut retouch: BTreeSet<Vec<Value>> = BTreeSet::new();
        for fact in changes.removed().iter().chain(changes.inserted()) {
            let key = BlockKey::of(fact, &schema);
            if let Some(deps) = view.dependents_of(&key) {
                retouch.extend(deps.iter().cloned());
            }
            if let Some(deps) = view.relation_dependents_of(fact.relation()) {
                retouch.extend(deps.iter().cloned());
            }
        }

        // (b) + (c) Inserted facts: an insert can make a block relevant
        // that provenance has never seen, so pattern-match the fact against
        // the (unique, by self-join freedom) atom of its relation.
        let mut discovered: BTreeSet<Vec<Value>> = BTreeSet::new();
        for fact in changes.inserted() {
            let Some(atom) = view
                .query()
                .atoms()
                .iter()
                .find(|a| a.relation() == fact.relation())
            else {
                continue;
            };
            let Some(theta) = Valuation::new().unify_with_fact(atom, fact, &schema) else {
                continue;
            };
            // (b) Existing candidates the fact matches: those agreeing with
            // the unifier on the free coordinates the atom constrains.
            let constraints: Vec<(usize, Value)> = view
                .free_vars()
                .iter()
                .enumerate()
                .filter_map(|(i, var)| theta.get(var).map(|value| (i, value.clone())))
                .collect();
            retouch.extend(
                view.possible()
                    .iter()
                    .filter(|t| constraints.iter().all(|(i, value)| &t[*i] == value))
                    .cloned(),
            );
            // (c) Brand-new candidates: any answer that became possible
            // through this insert has a witness using the fact at this atom
            // (conjunctive queries are monotone), so evaluate the query
            // grounded by the unifier through a compiled plan.
            let grounded = ground_with(view.query(), &theta);
            let plan = QueryPlan::compile(&grounded, Some(snapshot.index().statistics()));
            let rest = plan.prepare(snapshot.index()).answers();
            for partial in rest {
                let mut full = Vec::with_capacity(view.free_vars().len());
                let mut remaining = partial.iter();
                for var in view.free_vars() {
                    match theta.get(var) {
                        Some(value) => full.push(value.clone()),
                        None => full.push(
                            remaining
                                .next()
                                .expect("grounded answers cover the unbound free variables")
                                .clone(),
                        ),
                    }
                }
                if !view.possible().contains(&full) {
                    discovered.insert(full);
                }
            }
        }
        let discovered_count = discovered.len();
        retouch.append(&mut discovered);
        let damage = retouch.len();
        cqa_obs::count!("stream.view.candidates_retouched", damage as u64);

        if damage > self.threshold {
            cqa_obs::count!("stream.view.full_recomputes");
            self.initialize(view, snapshot)?;
            cqa_obs::observe_duration!("stream.view.repair_nanos", started.elapsed());
            return Ok(RepairOutcome {
                epoch: snapshot.epoch(),
                retouched: damage - discovered_count,
                discovered: discovered_count,
                full_recompute: true,
            });
        }

        let candidates: Vec<Vec<Value>> = retouch.into_iter().collect();
        let decisions = self.decide(view, snapshot, candidates.clone())?;
        for (tuple, decision) in candidates.into_iter().zip(decisions) {
            match decision {
                None => view.evict(&tuple),
                Some((certain, prov)) => view.install(tuple, certain, prov),
            }
        }
        view.set_epoch(snapshot.epoch());
        cqa_obs::observe_duration!("stream.view.repair_nanos", started.elapsed());
        Ok(RepairOutcome {
            epoch: snapshot.epoch(),
            retouched: damage - discovered_count,
            discovered: discovered_count,
            full_recompute: false,
        })
    }

    /// Re-decides each candidate: `None` if it is no longer a possible
    /// answer, otherwise its certainty verdict and fresh provenance.
    /// Sharded onto the pool in candidate order when the set is large.
    fn decide(
        &self,
        view: &MaterializedView,
        snapshot: &Snapshot,
        candidates: Vec<Vec<Value>>,
    ) -> Result<Vec<Option<(bool, Provenance)>>, String> {
        let ctx = Arc::new(DecideCtx {
            engine: view.engine().clone(),
            query: view.query().clone(),
            free: view.free_vars().to_vec(),
        });
        match self.shards(candidates.len()) {
            None => decide_chunk(&ctx, snapshot, candidates),
            Some((pool, shards)) => {
                let chunk_size = candidates.len().div_ceil(shards);
                let chunks: Vec<Vec<Vec<Value>>> =
                    candidates.chunks(chunk_size).map(|c| c.to_vec()).collect();
                let snapshot = snapshot.clone();
                let results = par_map(&pool, chunks, move |_, chunk| {
                    decide_chunk(&ctx, &snapshot, chunk)
                });
                let mut merged = Vec::new();
                for result in results {
                    merged.extend(result?);
                }
                Ok(merged)
            }
        }
    }

    /// Computes fresh provenance for each tuple, sharded when large.
    fn provenances(
        &self,
        view: &MaterializedView,
        snapshot: &Snapshot,
        tuples: &[Vec<Value>],
    ) -> Vec<Provenance> {
        let query = view.query().clone();
        let free = view.free_vars().to_vec();
        match self.shards(tuples.len()) {
            None => tuples
                .iter()
                .map(|t| provenance_of(&query, &free, t, snapshot))
                .collect(),
            Some((pool, shards)) => {
                let chunk_size = tuples.len().div_ceil(shards);
                let chunks: Vec<Vec<Vec<Value>>> =
                    tuples.chunks(chunk_size).map(|c| c.to_vec()).collect();
                let snapshot = snapshot.clone();
                par_map(&pool, chunks, move |_, chunk: Vec<Vec<Value>>| {
                    chunk
                        .iter()
                        .map(|t| provenance_of(&query, &free, t, &snapshot))
                        .collect::<Vec<_>>()
                })
                .into_iter()
                .flatten()
                .collect()
            }
        }
    }

    /// Whether (and how wide) to shard `n` candidates.
    fn shards(&self, n: usize) -> Option<(ParPool, usize)> {
        let pool = self.pool.as_ref()?;
        if pool.thread_count() < 2 || n < self.shard_cutoff.max(2) {
            return None;
        }
        Some((pool.clone(), pool.thread_count().min(n)))
    }
}

/// The per-chunk decision kernel: possible-membership through the
/// interpreter's `satisfies_with` (one grounded satisfaction probe, no
/// compile), certainty through the view's batch engine, provenance through
/// the position-index probes.
fn decide_chunk(
    ctx: &DecideCtx,
    snapshot: &Snapshot,
    chunk: Vec<Vec<Value>>,
) -> Result<Vec<Option<(bool, Provenance)>>, String> {
    let db = snapshot.database();
    let alive: Vec<bool> = chunk
        .iter()
        .map(|tuple| {
            let base = Valuation::from_pairs(ctx.free.iter().cloned().zip(tuple.iter().cloned()));
            satisfies_with(db, &ctx.query, &base)
        })
        .collect();
    let alive_tuples: Vec<Vec<Value>> = chunk
        .iter()
        .zip(&alive)
        .filter(|(_, a)| **a)
        .map(|(t, _)| t.clone())
        .collect();
    let verdicts = ctx
        .engine
        .verdicts(db, &alive_tuples)
        .map_err(|e| e.to_string())?;
    let mut verdicts = verdicts.into_iter();
    Ok(chunk
        .iter()
        .zip(&alive)
        .map(|(tuple, alive)| {
            if !*alive {
                return None;
            }
            let certain = verdicts.next().expect("one verdict per alive candidate");
            let prov = provenance_of(&ctx.query, &ctx.free, tuple, snapshot);
            Some((certain, prov))
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_core::answers::certain_answers;
    use cqa_data::{Delta, Fact, UncertainDatabase};
    use cqa_query::{ConjunctiveQuery, Term, Variable};

    fn schema() -> std::sync::Arc<cqa_data::Schema> {
        cqa_data::Schema::from_relations([("R", 2, 1), ("S", 2, 1)])
            .unwrap()
            .into_shared()
    }

    fn query(schema: &std::sync::Arc<cqa_data::Schema>) -> ConjunctiveQuery {
        ConjunctiveQuery::builder(schema.clone())
            .atom("R", [Term::var("x"), Term::var("y")])
            .atom("S", [Term::var("y"), Term::var("z")])
            .free([Variable::new("x")])
            .build()
            .unwrap()
    }

    fn fact(schema: &cqa_data::Schema, rel: &str, a: &str, b: &str) -> Fact {
        Fact::checked(
            schema,
            schema.relation_id(rel).unwrap(),
            vec![Value::str(a), Value::str(b)],
        )
        .unwrap()
    }

    /// Applies one insert to both the database and a changeset.
    fn insert(db: &mut UncertainDatabase, cs: &mut ChangeSet, fact: Fact) {
        assert!(db.insert(fact.clone()).unwrap());
        cs.record(Delta::Inserted(fact));
    }

    /// Applies one removal to both the database and a changeset.
    fn remove(db: &mut UncertainDatabase, cs: &mut ChangeSet, fact: Fact) {
        let emptied = db.block_of(&fact).is_some_and(|b| b.is_singleton());
        assert!(db.remove_fact(&fact));
        cs.record(Delta::Removed {
            fact,
            emptied_block: emptied,
        });
    }

    fn assert_matches_reference(view: &MaterializedView, db: &UncertainDatabase) {
        let reference = certain_answers(view.query(), db).unwrap();
        assert_eq!(view.certain(), &reference.certain, "certain diverged");
        assert_eq!(view.possible(), &reference.possible, "possible diverged");
    }

    #[test]
    fn spoiler_removal_flips_certainty_through_block_provenance() {
        let schema = schema();
        let query = query(&schema);
        let mut db = UncertainDatabase::new(schema.clone());
        // Block R(a, ·) = {R(a,1), R(a,2)}; only R(a,1) joins S. The
        // spoiler R(a,2) does not match the candidate's S-join, yet its
        // removal must flip (a) from merely possible to certain.
        db.insert(fact(&schema, "R", "a", "1")).unwrap();
        db.insert(fact(&schema, "R", "a", "2")).unwrap();
        db.insert(fact(&schema, "S", "1", "p")).unwrap();
        let maintainer = ViewMaintainer::new();
        let mut view = MaterializedView::new("v", &query).unwrap();
        maintainer.initialize(&mut view, &db.snapshot()).unwrap();
        let a = vec![Value::str("a")];
        assert!(view.possible().contains(&a) && !view.certain().contains(&a));

        let mut cs = ChangeSet::new();
        remove(&mut db, &mut cs, fact(&schema, "R", "a", "2"));
        let outcome = maintainer.repair(&mut view, &db.snapshot(), &cs).unwrap();
        assert!(!outcome.full_recompute);
        assert_eq!(outcome.retouched, 1);
        assert!(view.certain().contains(&a), "spoiler removal → certain");
        assert_matches_reference(&view, &db);
    }

    #[test]
    fn inserts_discover_new_candidates_and_new_spoilers() {
        let schema = schema();
        let query = query(&schema);
        let mut db = UncertainDatabase::new(schema.clone());
        db.insert(fact(&schema, "R", "a", "1")).unwrap();
        db.insert(fact(&schema, "S", "1", "p")).unwrap();
        let maintainer = ViewMaintainer::new();
        let mut view = MaterializedView::new("v", &query).unwrap();
        maintainer.initialize(&mut view, &db.snapshot()).unwrap();
        assert!(view.certain().contains(&vec![Value::str("a")]));

        // A brand-new candidate appears through a fresh R block.
        let mut cs = ChangeSet::new();
        insert(&mut db, &mut cs, fact(&schema, "R", "b", "1"));
        let outcome = maintainer.repair(&mut view, &db.snapshot(), &cs).unwrap();
        assert_eq!(outcome.discovered, 1);
        assert!(view.certain().contains(&vec![Value::str("b")]));
        assert_matches_reference(&view, &db);

        // A non-joining spoiler lands in R(b)'s block: the block may now
        // resolve to R(b,9), which has no S partner, so (b) loses
        // certainty while (a) keeps it.
        let mut cs = ChangeSet::new();
        insert(&mut db, &mut cs, fact(&schema, "R", "b", "9"));
        maintainer.repair(&mut view, &db.snapshot(), &cs).unwrap();
        assert_matches_reference(&view, &db);
        assert!(view.certain().contains(&vec![Value::str("a")]));
        assert!(!view.certain().contains(&vec![Value::str("b")]));
        assert!(view.possible().contains(&vec![Value::str("b")]));

        // Removing the whole R(b) block evicts its candidate.
        let mut cs = ChangeSet::new();
        remove(&mut db, &mut cs, fact(&schema, "R", "b", "1"));
        remove(&mut db, &mut cs, fact(&schema, "R", "b", "9"));
        maintainer.repair(&mut view, &db.snapshot(), &cs).unwrap();
        assert!(!view.possible().contains(&vec![Value::str("b")]));
        assert_matches_reference(&view, &db);
    }

    #[test]
    fn past_threshold_repairs_fall_back_to_full_recompute() {
        let schema = schema();
        let query = query(&schema);
        let mut db = UncertainDatabase::new(schema.clone());
        for i in 0..8 {
            db.insert(fact(&schema, "R", &format!("k{i}"), "1"))
                .unwrap();
        }
        let maintainer = ViewMaintainer::new().with_threshold(0);
        let mut view = MaterializedView::new("v", &query).unwrap();
        maintainer.initialize(&mut view, &db.snapshot()).unwrap();
        let mut cs = ChangeSet::new();
        insert(&mut db, &mut cs, fact(&schema, "S", "1", "p"));
        let outcome = maintainer.repair(&mut view, &db.snapshot(), &cs).unwrap();
        assert!(
            outcome.full_recompute,
            "threshold 0 must force the fallback"
        );
        assert_matches_reference(&view, &db);
        assert_eq!(view.certain().len(), 8);
    }

    #[test]
    fn empty_changesets_only_advance_the_epoch() {
        let schema = schema();
        let query = query(&schema);
        let db = UncertainDatabase::new(schema);
        let maintainer = ViewMaintainer::new();
        let mut view = MaterializedView::new("v", &query).unwrap();
        maintainer.initialize(&mut view, &db.snapshot()).unwrap();
        let outcome = maintainer
            .repair(&mut view, &db.snapshot(), &ChangeSet::new())
            .unwrap();
        assert_eq!(outcome.retouched + outcome.discovered, 0);
        assert!(!outcome.full_recompute);
    }
}
