//! The materialized view: decided answer sets plus block-level provenance.

use cqa_core::answers::{AnswerSets, CertainAnswersEngine};
use cqa_data::{Fact, FactId, PositionSet, RelationId, Schema, Snapshot, Value};
use cqa_exec::ExecMode;
use cqa_query::{ConjunctiveQuery, Term, Valuation, Variable};
use rustc_hash::{FxHashMap, FxHashSet};
use std::collections::BTreeSet;
use std::sync::Arc;

/// The identity of one block — the relation and its primary-key value.
///
/// Block *ids* are positional and reshuffle when a block is removed
/// (`swap_remove`), so provenance is keyed by this stable identity instead.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockKey {
    relation: RelationId,
    key: Vec<Value>,
}

impl BlockKey {
    /// The block key of `fact` under `schema`'s primary keys.
    pub fn of(fact: &Fact, schema: &Schema) -> BlockKey {
        BlockKey {
            relation: fact.relation(),
            key: fact.key(schema).to_vec(),
        }
    }

    /// Builds a block key from its parts.
    pub fn new(relation: RelationId, key: Vec<Value>) -> BlockKey {
        BlockKey { relation, key }
    }

    /// The relation the block belongs to.
    pub fn relation(&self) -> RelationId {
        self.relation
    }

    /// The primary-key value shared by the block's facts.
    pub fn key(&self) -> &[Value] {
        &self.key
    }
}

/// What one candidate's verdict depends on: a set of individual blocks
/// plus, for atoms whose pattern fixes no position at all, whole relations.
///
/// The relation-wide component keeps provenance **compact**: an atom like
/// `S(y, z)` with both positions bound by join variables matches every
/// block of `S`, and materializing one edge per block would make each
/// candidate's provenance (and every install/unlink) scale with the size
/// of the relation. One `RelationId` entry carries the same information.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Provenance {
    pub(crate) blocks: FxHashSet<BlockKey>,
    pub(crate) relations: FxHashSet<RelationId>,
}

impl Provenance {
    /// The individually tracked blocks.
    pub fn blocks(&self) -> &FxHashSet<BlockKey> {
        &self.blocks
    }

    /// The relations the candidate depends on in their entirety.
    pub fn relations(&self) -> &FxHashSet<RelationId> {
        &self.relations
    }

    /// Number of stored edges (block-level plus relation-wide).
    pub fn edges(&self) -> usize {
        self.blocks.len() + self.relations.len()
    }

    /// Whether a mutation inside the block identified by `key` can affect
    /// a candidate with this provenance.
    pub fn covers(&self, key: &BlockKey) -> bool {
        self.relations.contains(&key.relation) || self.blocks.contains(key)
    }
}

/// A materialized certain-answer view: the current certain and possible
/// answers of one registered conjunctive query, plus the per-candidate
/// provenance that makes incremental repair sound.
///
/// **Provenance invariant**: for every possible answer `t`,
/// [`provenance`](Self::provenance) covers every block that contains at
/// least one fact matching some atom pattern of `q(t)` — a pattern fixes
/// the positions holding constants or `t`-bound free variables and
/// wildcards the rest; an atom whose pattern fixes nothing is recorded as
/// one relation-wide dependency instead of one edge per block. The verdict
/// of `t` (possible? certain?) is a function of the contents of the
/// covered blocks only, so a mutation that touches none of them cannot
/// change the verdict. The reverse indexes
/// ([`dependents_of`](Self::dependents_of) and
/// [`relation_dependents_of`](Self::relation_dependents_of)) turn a
/// touched block into the candidate set to re-decide.
pub struct MaterializedView {
    name: String,
    query: ConjunctiveQuery,
    free: Vec<Variable>,
    engine: Arc<CertainAnswersEngine>,
    certain: BTreeSet<Vec<Value>>,
    possible: BTreeSet<Vec<Value>>,
    provenance: FxHashMap<Vec<Value>, Provenance>,
    dependents: FxHashMap<BlockKey, FxHashSet<Vec<Value>>>,
    relation_dependents: FxHashMap<RelationId, FxHashSet<Vec<Value>>>,
    epoch: u64,
}

impl MaterializedView {
    /// Registers a view for `query` under `name`. Classifies the query once
    /// (the engine decides every future candidate through the same compiled
    /// open rewriting, or the classified per-candidate fallback outside the
    /// first-order region). Fails only on malformed queries (self-joins).
    pub fn new(name: impl Into<String>, query: &ConjunctiveQuery) -> Result<Self, String> {
        let engine = CertainAnswersEngine::new(query).map_err(|e| e.to_string())?;
        Ok(MaterializedView {
            name: name.into(),
            query: query.clone(),
            free: query.free_vars().to_vec(),
            engine: Arc::new(engine),
            certain: BTreeSet::new(),
            possible: BTreeSet::new(),
            provenance: FxHashMap::default(),
            dependents: FxHashMap::default(),
            relation_dependents: FxHashMap::default(),
            epoch: 0,
        })
    }

    /// Pins the executor mode of the certainty engine (the benchmark and
    /// property suites run every mode against each other).
    pub fn with_mode(mut self, mode: ExecMode) -> Result<Self, String> {
        let engine = CertainAnswersEngine::new(&self.query)
            .map_err(|e| e.to_string())?
            .with_mode(mode);
        self.engine = Arc::new(engine);
        Ok(self)
    }

    /// The view's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The registered query.
    pub fn query(&self) -> &ConjunctiveQuery {
        &self.query
    }

    /// The query's free variables (answer-tuple coordinates, in order).
    pub fn free_vars(&self) -> &[Variable] {
        &self.free
    }

    /// The shared certainty engine deciding this view's candidates.
    pub(crate) fn engine(&self) -> &Arc<CertainAnswersEngine> {
        &self.engine
    }

    /// The epoch of the database state the view currently reflects.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    pub(crate) fn set_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
    }

    /// The current certain answers.
    pub fn certain(&self) -> &BTreeSet<Vec<Value>> {
        &self.certain
    }

    /// The current possible answers (the certainty candidates).
    pub fn possible(&self) -> &BTreeSet<Vec<Value>> {
        &self.possible
    }

    /// Both answer sets, cloned into the shape the render layer consumes.
    pub fn answer_sets(&self) -> AnswerSets {
        AnswerSets {
            certain: self.certain.clone(),
            possible: self.possible.clone(),
        }
    }

    /// The provenance of one candidate, if it is a possible answer.
    pub fn provenance(&self, tuple: &[Value]) -> Option<&Provenance> {
        self.provenance.get(tuple)
    }

    /// The candidates whose verdict depends on the specific block `key`
    /// (reverse provenance, block-level edges only — pair with
    /// [`relation_dependents_of`](Self::relation_dependents_of)).
    pub fn dependents_of(&self, key: &BlockKey) -> Option<&FxHashSet<Vec<Value>>> {
        self.dependents.get(key)
    }

    /// The candidates whose verdict depends on `relation` in its entirety.
    pub fn relation_dependents_of(&self, relation: RelationId) -> Option<&FxHashSet<Vec<Value>>> {
        self.relation_dependents.get(&relation)
    }

    /// Number of tracked provenance edges (block-level plus relation-wide)
    /// — tests pin that repair keeps the provenance index tight.
    pub fn provenance_edges(&self) -> usize {
        self.provenance.values().map(Provenance::edges).sum()
    }

    /// Installs the verdict of one candidate: present in `possible`,
    /// optionally in `certain`, with `prov` as its provenance. Replaces any
    /// previous verdict.
    pub(crate) fn install(&mut self, tuple: Vec<Value>, certain: bool, prov: Provenance) {
        self.unlink(&tuple);
        for key in &prov.blocks {
            self.dependents
                .entry(key.clone())
                .or_default()
                .insert(tuple.clone());
        }
        for &relation in &prov.relations {
            self.relation_dependents
                .entry(relation)
                .or_default()
                .insert(tuple.clone());
        }
        self.possible.insert(tuple.clone());
        if certain {
            self.certain.insert(tuple.clone());
        } else {
            self.certain.remove(&tuple);
        }
        self.provenance.insert(tuple, prov);
    }

    /// Removes a candidate that is no longer a possible answer.
    pub(crate) fn evict(&mut self, tuple: &[Value]) {
        self.unlink(tuple);
        self.possible.remove(tuple);
        self.certain.remove(tuple);
    }

    /// Drops the candidate's provenance edges (both directions).
    fn unlink(&mut self, tuple: &[Value]) {
        if let Some(old) = self.provenance.remove(tuple) {
            for key in &old.blocks {
                if let Some(deps) = self.dependents.get_mut(key) {
                    deps.remove(tuple);
                    if deps.is_empty() {
                        self.dependents.remove(key);
                    }
                }
            }
            for relation in &old.relations {
                if let Some(deps) = self.relation_dependents.get_mut(relation) {
                    deps.remove(tuple);
                    if deps.is_empty() {
                        self.relation_dependents.remove(relation);
                    }
                }
            }
        }
    }

    /// Forgets every decided candidate (the full-recompute path rebuilds
    /// from scratch).
    pub(crate) fn clear(&mut self) {
        self.certain.clear();
        self.possible.clear();
        self.provenance.clear();
        self.dependents.clear();
        self.relation_dependents.clear();
    }
}

impl std::fmt::Debug for MaterializedView {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MaterializedView")
            .field("name", &self.name)
            .field("epoch", &self.epoch)
            .field("certain", &self.certain.len())
            .field("possible", &self.possible.len())
            .field("blocks", &self.dependents.len())
            .field("relations", &self.relation_dependents.len())
            .finish()
    }
}

/// Computes the provenance of candidate `tuple`: a cover of every block
/// holding at least one fact that matches some atom pattern of the grounded
/// query.
///
/// Matching facts are found through the snapshot's position-index probes on
/// the pattern's fixed positions (constants and `tuple`-bound free
/// variables). Repeated-bound-variable constraints are deliberately
/// ignored: the result is a superset of the exact matching-block set, which
/// is sound — over-approximation only retouches more candidates, never
/// fewer. An atom with no fixed position (all positions are bound
/// variables) depends on its whole relation, recorded as **one**
/// relation-wide entry rather than an edge per block, so provenance size —
/// and with it the cost of a single-candidate re-decision — stays
/// independent of the relation's block count.
pub(crate) fn provenance_of(
    query: &ConjunctiveQuery,
    free: &[Variable],
    tuple: &[Value],
    snapshot: &Snapshot,
) -> Provenance {
    let db = snapshot.database();
    let index = snapshot.index();
    let schema = db.schema();
    let base = Valuation::from_pairs(free.iter().cloned().zip(tuple.iter().cloned()));
    let mut prov = Provenance::default();
    for atom in query.atoms() {
        let mut bound = PositionSet::empty();
        let mut key = Vec::new();
        for (pos, term) in atom
            .terms()
            .iter()
            .enumerate()
            .take(PositionSet::MAX_POSITIONS)
        {
            match term {
                Term::Const(c) => {
                    bound.insert(pos);
                    key.push(c.clone());
                }
                Term::Var(v) => {
                    if let Some(value) = base.get(v) {
                        bound.insert(pos);
                        key.push(value.clone());
                    }
                }
            }
        }
        if bound.is_empty() {
            prov.relations.insert(atom.relation());
        } else {
            let ids = index
                .position_index(atom.relation(), bound)
                .candidates_shared(&key);
            for &id in ids.iter() {
                let fact = index.fact(FactId::from_index(id as usize));
                prov.blocks.insert(BlockKey::of(fact, schema));
            }
        }
    }
    prov
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_data::UncertainDatabase;

    fn setup() -> (ConjunctiveQuery, UncertainDatabase) {
        let schema = cqa_data::Schema::from_relations([("R", 2, 1), ("S", 2, 1)])
            .unwrap()
            .into_shared();
        let query = ConjunctiveQuery::builder(schema.clone())
            .atom("R", [Term::var("x"), Term::var("y")])
            .atom("S", [Term::var("y"), Term::var("z")])
            .free([Variable::new("x")])
            .build()
            .unwrap();
        let mut db = UncertainDatabase::new(schema);
        db.insert_values("R", ["a", "1"]).unwrap();
        db.insert_values("R", ["a", "2"]).unwrap();
        db.insert_values("S", ["1", "p"]).unwrap();
        db.insert_values("S", ["2", "p"]).unwrap();
        (query, db)
    }

    #[test]
    fn provenance_covers_matching_blocks_only() {
        let (query, mut db) = setup();
        // A block irrelevant to the candidate (different R key).
        db.insert_values("R", ["b", "9"]).unwrap();
        let snapshot = db.snapshot();
        let schema = db.schema();
        let free = query.free_vars().to_vec();
        let prov = provenance_of(&query, &free, &[Value::str("a")], &snapshot);
        let r = schema.relation_id("R").unwrap();
        let s = schema.relation_id("S").unwrap();
        assert!(prov.covers(&BlockKey::new(r, vec![Value::str("a")])));
        // The wildcard pattern S(_, _) is one relation-wide entry covering
        // every S block, not an edge per block.
        assert!(prov.relations().contains(&s));
        assert!(prov.covers(&BlockKey::new(s, vec![Value::str("1")])));
        assert!(prov.covers(&BlockKey::new(s, vec![Value::str("2")])));
        assert_eq!(prov.edges(), 2, "one R block edge + one S relation entry");
        // The unrelated R block is not provenance of candidate (a).
        assert!(!prov.covers(&BlockKey::new(r, vec![Value::str("b")])));
    }

    #[test]
    fn install_and_evict_keep_the_reverse_index_tight() {
        let (query, db) = setup();
        let mut view = MaterializedView::new("v", &query).unwrap();
        let snapshot = db.snapshot();
        let tuple = vec![Value::str("a")];
        let prov = provenance_of(&query, &view.free.clone(), &tuple, &snapshot);
        let edges = prov.edges();
        view.install(tuple.clone(), true, prov);
        assert_eq!(view.provenance_edges(), edges);
        assert!(view.certain().contains(&tuple));
        view.evict(&tuple);
        assert_eq!(view.provenance_edges(), 0);
        assert!(view.dependents.is_empty(), "no dangling reverse edges");
        assert!(
            view.relation_dependents.is_empty(),
            "no dangling relation-wide edges"
        );
        assert!(view.certain().is_empty() && view.possible().is_empty());
    }
}
