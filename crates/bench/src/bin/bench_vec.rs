//! Row-at-a-time vs vectorized block-at-a-time execution, measured on
//! `cqa-gen` workloads and recorded in `BENCH_vec.json` at the workspace
//! root.
//!
//! Three operator classes are measured, before/after, on the same scaled
//! instances as `bench_par` (path3 at n = 2200, conference at n = 2600):
//!
//! * **certain answers** — the headline: the per-candidate path (ground the
//!   query with each candidate, classify + compile + evaluate from scratch —
//!   what `certain_answers` did before the compile-once engine) vs the
//!   [`CertainAnswersEngine`] batch path with the row-at-a-time and the
//!   vectorized executor;
//! * **certain rewriting** — Boolean `CERTAINTY(q)` through the compiled
//!   Theorem 1 plan: row-at-a-time backtracking vs vectorized ∃-scan /
//!   ∀-block / lookup kernels, forced both ways through the mode knob;
//! * **join answers** — the possible-answer join (`QueryPlan`): row-at-a-time
//!   bind-aware backtracking vs the batch hash-probe pipeline.
//!
//! At **every** measured point the two executors' results are asserted
//! identical (`BTreeSet` equality — byte-identical projections — for answer
//! sets, verdict equality for sentences) before anything is timed.
//!
//! Run with `cargo run --release -p cqa-bench --bin bench_vec`
//! (`--quick` shrinks the instances for CI smoke runs).

use cqa_bench::{json_escape, ms, quick_flag, scaled_instance, time_min, write_bench_json};
use cqa_core::answers::{possible_answers, tuple_is_certain, CertainAnswersEngine};
use cqa_core::solvers::RewritingSolver;
use cqa_exec::{ExecMode, FoPlan, QueryPlan};
use cqa_query::{catalog, ConjunctiveQuery, Variable};
use std::collections::BTreeSet;
use std::fmt::Write as _;

fn free_first_variable(query: &ConjunctiveQuery, var: &str) -> ConjunctiveQuery {
    ConjunctiveQuery::with_free_vars(
        query.schema().clone(),
        query.atoms().to_vec(),
        vec![Variable::new(var)],
    )
    .expect("freeing a variable of a valid query stays valid")
}

fn main() {
    let quick = quick_flag();
    let runs = if quick { 1 } else { 5 };

    let workloads: Vec<(&str, ConjunctiveQuery, &str, usize, u64)> = vec![
        (
            "path3",
            catalog::fo_path3().query,
            "x",
            if quick { 150 } else { 2200 },
            11,
        ),
        (
            "conference",
            catalog::conference().query,
            "x",
            if quick { 200 } else { 2600 },
            13,
        ),
    ];

    let mut entries = Vec::new();
    for (name, boolean_query, freed, n, seed) in workloads {
        let db = scaled_instance(&boolean_query, n, seed);
        let index = db.index();
        let query = free_first_variable(&boolean_query, freed);
        eprintln!(
            "workload {name}: {} atoms, {} facts, {} blocks",
            query.len(),
            db.fact_count(),
            db.block_count(),
        );

        // -- certain answers: per-candidate (the pre-engine path) vs the
        //    compile-once engine with the row and vectorized executors.
        let candidates = possible_answers(&query, &db).expect("workload queries are answerable");
        let free = query.free_vars().to_vec();
        let per_candidate_reference: BTreeSet<Vec<cqa_data::Value>> = candidates
            .iter()
            .filter(|t| tuple_is_certain(&query, &free, t, &db).expect("answerable"))
            .cloned()
            .collect();
        let row_engine = CertainAnswersEngine::new(&query)
            .expect("answerable")
            .with_mode(ExecMode::RowAtATime);
        let vec_engine = CertainAnswersEngine::new(&query)
            .expect("answerable")
            .with_mode(ExecMode::Vectorized);
        assert_eq!(
            row_engine.certain_of(&db, &candidates).expect("answerable"),
            per_candidate_reference,
            "batched row-at-a-time certain answers diverged on {name}"
        );
        assert_eq!(
            vec_engine.certain_of(&db, &candidates).expect("answerable"),
            per_candidate_reference,
            "batched vectorized certain answers diverged on {name}"
        );
        let per_candidate = time_min(runs.min(3), || {
            let mut certain = BTreeSet::new();
            for tuple in &candidates {
                if tuple_is_certain(&query, &free, tuple, &db).expect("answerable") {
                    certain.insert(tuple.clone());
                }
            }
            certain
        });
        let batched_row = time_min(runs, || {
            row_engine.certain_of(&db, &candidates).expect("answerable")
        });
        let batched_vec = time_min(runs, || {
            vec_engine.certain_of(&db, &candidates).expect("answerable")
        });
        eprintln!(
            "  certain_answers   per-candidate {:9.3} ms | batched row {:9.3} ms | batched vec {:9.3} ms ({:.1}x end to end)",
            ms(per_candidate),
            ms(batched_row),
            ms(batched_vec),
            ms(per_candidate) / ms(batched_vec).max(1e-9),
        );

        // -- Boolean certain rewriting: the compiled plan, both executors.
        let solver = RewritingSolver::new(&boolean_query).expect("Theorem 1 queries classify");
        let fo_plan = FoPlan::compile(
            solver.formula(),
            boolean_query.schema(),
            Some(index.statistics()),
        );
        let fo_row = fo_plan.prepare(&index).with_mode(ExecMode::RowAtATime);
        let fo_vec = fo_plan.prepare(&index).with_mode(ExecMode::Vectorized);
        let verdict = fo_row.eval();
        assert_eq!(
            fo_vec.eval(),
            verdict,
            "vectorized certain-rewriting verdict diverged on {name}"
        );
        let rewriting_row = time_min(runs, || fo_row.eval());
        let rewriting_vec = time_min(runs, || fo_vec.eval());
        eprintln!(
            "  certain_rewriting row {:9.3} ms | vec {:9.3} ms ({:.1}x)",
            ms(rewriting_row),
            ms(rewriting_vec),
            ms(rewriting_row) / ms(rewriting_vec).max(1e-9),
        );

        // -- Possible-answer join: the compiled query plan, both executors.
        let join_plan = QueryPlan::compile(&query, Some(index.statistics()));
        let join_row = join_plan.prepare(&index).with_mode(ExecMode::RowAtATime);
        let join_vec = join_plan.prepare(&index).with_mode(ExecMode::Vectorized);
        assert_eq!(
            join_vec.answers(),
            join_row.answers(),
            "vectorized join answers diverged on {name}"
        );
        let answers_row = time_min(runs, || join_row.answers());
        let answers_vec = time_min(runs, || join_vec.answers());
        eprintln!(
            "  join_answers      row {:9.3} ms | vec {:9.3} ms ({:.1}x)",
            ms(answers_row),
            ms(answers_vec),
            ms(answers_row) / ms(answers_vec).max(1e-9),
        );

        let mut entry = String::new();
        write!(
            entry,
            "    {{\n      \"name\": \"{name}\",\n      \"query\": \"{}\",\n      \"facts\": {},\n      \"blocks\": {},\n      \"candidate_answers\": {},\n      \"certain_answers\": {{ \"per_candidate_ms\": {:.3}, \"batched_row_ms\": {:.3}, \"batched_vec_ms\": {:.3}, \"speedup_vec_vs_per_candidate\": {:.1}, \"identical_results\": true }},\n      \"certain_rewriting\": {{ \"verdict\": {verdict}, \"row_ms\": {:.3}, \"vec_ms\": {:.3}, \"speedup\": {:.1}, \"identical_results\": true }},\n      \"join_answers\": {{ \"row_ms\": {:.3}, \"vec_ms\": {:.3}, \"speedup\": {:.1}, \"identical_results\": true }}\n    }}",
            json_escape(&query.to_string()),
            db.fact_count(),
            db.block_count(),
            candidates.len(),
            ms(per_candidate),
            ms(batched_row),
            ms(batched_vec),
            ms(per_candidate) / ms(batched_vec).max(1e-9),
            ms(rewriting_row),
            ms(rewriting_vec),
            ms(rewriting_row) / ms(rewriting_vec).max(1e-9),
            ms(answers_row),
            ms(answers_vec),
            ms(answers_row) / ms(answers_vec).max(1e-9),
        )
        .expect("writing to a String cannot fail");
        entries.push(entry);
    }

    let json = format!(
        "{{\n  \"benchmark\": \"row-at-a-time vs vectorized block-at-a-time execution\",\n  \"generated_by\": \"cargo run --release -p cqa-bench --bin bench_vec\",\n  \"quick\": {quick},\n  \"note\": \"per_candidate is the pre-engine certain_answers path (classify + compile per candidate); batched paths share one compiled open rewriting; results asserted identical at every measured point before timing. For context: the pre-engine BENCH_par.json recorded path3 certain_answers end to end at 74.5 ms on this container\",\n  \"workloads\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );

    let out = write_bench_json("BENCH_vec.json", &json);
    eprintln!("wrote {}", out.display());
    print!("{json}");
}
