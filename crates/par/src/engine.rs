//! The parallel certainty engine for Boolean queries.
//!
//! `CERTAINTY(q)` is a data-complexity problem: the query is fixed, the
//! instance is large. Once the [`CertaintyEngine`] has compiled its plans,
//! evaluating them is a loop over a **root candidate space** — the facts of
//! the first join step ([`cqa_exec::QueryPlan`]) or of the rewriting's
//! first eliminated atom ([`cqa_exec::FoPlan`]) — and the search below each
//! candidate is independent of the others. [`ParallelEngine`] shards that
//! loop across the worker pool and merges with a plain disjunction, which
//! is associative and commutative: the verdict is identical at every thread
//! count.
//!
//! Queries outside the Theorem 1 region have no compiled rewriting to
//! shard; their `is_certain` falls back to the sequential solver (the
//! candidate-space parallelism of
//! [`certain_answers_par`](crate::certain_answers_par) still applies to
//! their non-Boolean variants).

use crate::pool::{chunk_ranges, par_any, ParPool};
use crate::ParConfig;
use cqa_core::solvers::{CertaintyEngine, CertaintySolver};
use cqa_data::Snapshot;
use cqa_query::{ConjunctiveQuery, QueryError};
use std::sync::Arc;

/// A [`CertaintyEngine`] plus a worker pool: the same classification and
/// compiled plans, with the plan executions sharded across threads when the
/// cost model says the problem is big enough.
pub struct ParallelEngine {
    engine: Arc<CertaintyEngine>,
    pool: ParPool,
    config: ParConfig,
}

impl ParallelEngine {
    /// Classifies `query` (see [`CertaintyEngine::new`]) and attaches the
    /// pool the sharded evaluations will run on.
    pub fn new(
        query: &ConjunctiveQuery,
        pool: ParPool,
        config: ParConfig,
    ) -> Result<Self, QueryError> {
        Ok(ParallelEngine {
            engine: Arc::new(CertaintyEngine::new(query)?),
            pool,
            config,
        })
    }

    /// The wrapped sequential engine (classification, solver name,
    /// `explain`, …).
    pub fn engine(&self) -> &CertaintyEngine {
        &self.engine
    }

    /// The pool sharded evaluations run on.
    pub fn pool(&self) -> &ParPool {
        &self.pool
    }

    /// True iff **every repair** of the snapshot satisfies the query —
    /// [`CertaintyEngine::is_certain`], with the compiled rewriting's root
    /// scan sharded across the pool when the query is in the Theorem 1
    /// region and the cost model clears the sequential cutoff. The verdict
    /// is identical to the sequential engine's at every thread count.
    pub fn is_certain(&self, snapshot: &Snapshot) -> bool {
        let db = snapshot.database();
        let width = self.engine.rewriting_plan(db).and_then(|plan| {
            if plan.estimated_work() < self.config.sequential_cutoff {
                return None;
            }
            plan.prepare(snapshot.index()).root_shard_width()
        });
        let Some(width) = width else {
            cqa_obs::count!("par.cutoff.sequential");
            return self.engine.is_certain(db);
        };
        let chunks = chunk_ranges(
            width,
            self.pool.thread_count() * self.config.chunks_per_thread,
        );
        if chunks.len() <= 1 {
            cqa_obs::count!("par.cutoff.sequential");
            return self.engine.is_certain(db);
        }
        cqa_obs::count!("par.cutoff.parallel");
        let engine = self.engine.clone();
        let snapshot = snapshot.clone();
        par_any(&self.pool, chunks, move |range| {
            let plan = engine
                .rewriting_plan(snapshot.database())
                .expect("the rewriting plan was compiled before sharding");
            plan.prepare(snapshot.index()).eval_root_shard(range)
        })
    }

    /// True iff **some repair** satisfies the query —
    /// [`CertaintyEngine::is_possible`], with the satisfaction join plan's
    /// first step sharded across the pool past the cutoff. Identical to the
    /// sequential verdict at every thread count.
    pub fn is_possible(&self, snapshot: &Snapshot) -> bool {
        let db = snapshot.database();
        let plan = self.engine.satisfaction_plan(db);
        let width = if plan.estimated_work() < self.config.sequential_cutoff {
            None
        } else {
            plan.prepare(snapshot.index()).root_width()
        };
        let Some(width) = width else {
            cqa_obs::count!("par.cutoff.sequential");
            return self.engine.is_possible(db);
        };
        let chunks = chunk_ranges(
            width,
            self.pool.thread_count() * self.config.chunks_per_thread,
        );
        if chunks.len() <= 1 {
            cqa_obs::count!("par.cutoff.sequential");
            return self.engine.is_possible(db);
        }
        cqa_obs::count!("par.cutoff.parallel");
        let engine = self.engine.clone();
        let snapshot = snapshot.clone();
        par_any(&self.pool, chunks, move |range| {
            engine
                .satisfaction_plan(snapshot.database())
                .prepare(snapshot.index())
                .satisfies_shard(range)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_query::catalog;

    fn snapshot() -> Snapshot {
        catalog::conference_database().snapshot()
    }

    #[test]
    fn parallel_verdicts_match_the_sequential_engine() {
        let q = catalog::conference().query;
        let snap = snapshot();
        let sequential = CertaintyEngine::new(&q).unwrap();
        for threads in [1usize, 2, 7] {
            let par = ParallelEngine::new(&q, ParPool::new(threads), ParConfig::always_parallel())
                .unwrap();
            assert_eq!(
                par.is_certain(&snap),
                sequential.is_certain(snap.database()),
                "{threads} threads"
            );
            assert_eq!(
                par.is_possible(&snap),
                sequential.is_possible(snap.database()),
                "{threads} threads"
            );
        }
    }

    #[test]
    fn below_the_cutoff_the_sequential_path_answers() {
        let q = catalog::conference().query;
        let snap = snapshot();
        let par = ParallelEngine::new(
            &q,
            ParPool::new(2),
            ParConfig {
                sequential_cutoff: f64::INFINITY,
                ..ParConfig::default()
            },
        )
        .unwrap();
        assert!(!par.is_certain(&snap));
        assert!(par.is_possible(&snap));
        assert_eq!(par.engine().solver_name(), "rewriting");
        assert!(par.pool().thread_count() >= 1);
    }

    #[test]
    fn non_rewriting_solvers_fall_back_sequentially() {
        // q1 dispatches to the exact oracle: no rewriting plan to shard.
        let entry = catalog::q1();
        let db = cqa_data::UncertainDatabase::new(entry.query.schema().clone());
        let snap = db.snapshot();
        let par = ParallelEngine::new(&entry.query, ParPool::new(2), ParConfig::always_parallel())
            .unwrap();
        assert_eq!(par.engine().solver_name(), "exact-oracle");
        // An empty database satisfies nothing, and certainty of a
        // non-empty query fails on it.
        assert!(!par.is_certain(&snap));
        assert!(!par.is_possible(&snap));
    }
}
