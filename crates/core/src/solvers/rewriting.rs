//! Certainty via unattacked-atom elimination (the Theorem 1 region).
//!
//! When the attack graph of `q` is acyclic, `CERTAINTY(q)` has a certain
//! first-order rewriting ([Wijsen 2012], restated as Theorem 1). The solver
//! here evaluates that rewriting directly against the database by the
//! recursion the paper uses in the proof of Theorem 3 (Corollary 8.11 of
//! \[23\] combined with Lemma 8):
//!
//! > if `F` is an unattacked atom of `q`, then `db ∈ CERTAINTY(q)` iff there
//! > is a block `b` of `F`'s relation whose key matches `key(F)` such that
//! > **every** fact of `b` matches `F` and, for every fact `A ∈ b`,
//! > `db ∈ CERTAINTY((q \ {F})[vars(F) ↦ A])`.
//!
//! The same recursion, carried out symbolically, produces the explicit
//! first-order formula in [`crate::fo::rewrite`].
//!
//! Since the rewriting is fixed once the query is, the solver **compiles**
//! it: construction builds `φ_q`, the first `is_certain` call lowers it into
//! a [`cqa_exec::FoPlan`] (using the statistics of the first database seen
//! to pick guard atoms), and every later call executes the cached plan
//! against the database's index snapshot. The direct recursion is retained
//! as [`RewritingSolver::is_certain_interpreted`] — the reference semantics
//! the compiled plan is property-tested against.
//!
//! The recursion step is also exposed as [`eliminate_unattacked_atom`] so the
//! Theorem 3 solver can reuse it.

use super::CertaintySolver;
use crate::attack::AttackGraph;
use crate::fo::{certain_rewriting, FoFormula};
use cqa_data::{Block, UncertainDatabase, Value};
use cqa_exec::FoPlan;
use cqa_query::{substitute, AtomId, ConjunctiveQuery, QueryError, Term, Valuation};
use std::sync::OnceLock;

/// Certainty solver for queries whose attack graph is acyclic.
pub struct RewritingSolver {
    query: ConjunctiveQuery,
    formula: FoFormula,
    plan: OnceLock<FoPlan>,
}

impl RewritingSolver {
    /// Builds the solver. Fails if the query is not Boolean, not self-join
    /// free, is cyclic, or its attack graph has a cycle (in which case no
    /// certain first-order rewriting exists, by Theorem 1).
    pub fn new(query: &ConjunctiveQuery) -> Result<Self, QueryError> {
        // `certain_rewriting` performs the full precondition ladder (Boolean,
        // self-join free, acyclic, acyclic attack graph); its `Unsupported`
        // error is produced exactly for a cyclic attack graph, which this
        // solver has always reported as `CyclicQuery`.
        let formula = match certain_rewriting(query) {
            Ok(formula) => formula,
            Err(QueryError::Unsupported { .. }) => return Err(QueryError::CyclicQuery),
            Err(other) => return Err(other),
        };
        Ok(RewritingSolver {
            query: query.clone(),
            formula,
            plan: OnceLock::new(),
        })
    }

    /// The certain first-order rewriting `φ_q` this solver evaluates.
    pub fn formula(&self) -> &FoFormula {
        &self.formula
    }

    /// The compiled physical plan of the rewriting, compiled on first use
    /// (`db` supplies the statistics that pick guard atoms and columns) and
    /// cached for the lifetime of the solver.
    pub fn plan(&self, db: &UncertainDatabase) -> &FoPlan {
        self.plan.get_or_init(|| {
            let index = db.index();
            FoPlan::compile(&self.formula, self.query.schema(), Some(index.statistics()))
        })
    }

    /// The reference implementation: the unattacked-atom elimination
    /// recursion, interpreted directly on the database. The compiled plan
    /// must stay observationally identical to this (and to the generic
    /// model checker on `φ_q`); `tests/properties.rs` enforces it.
    pub fn is_certain_interpreted(&self, db: &UncertainDatabase) -> bool {
        Self::certain(&self.query, db)
    }

    fn certain(query: &ConjunctiveQuery, db: &UncertainDatabase) -> bool {
        if query.is_empty() {
            return true;
        }
        let graph = AttackGraph::build(query).expect("substitution preserves acyclicity");
        let unattacked = graph
            .unattacked_atoms()
            .into_iter()
            .next()
            .expect("acyclic attack graphs have an unattacked atom");
        eliminate_unattacked_atom(query, unattacked, db, &Self::certain)
    }
}

/// One elimination step of the rewriting recursion: see the module
/// documentation. `recurse` decides certainty of the substituted residual
/// query (`(q \ {F})[vars(F) ↦ A]`) on the same database.
///
/// The step is sound for *any* query (the "if" direction of the rule needs no
/// assumptions); it is complete when `atom` is unattacked in an acyclic-
/// attack-graph query, or more generally whenever the paper's Corollary 8.11
/// + Lemma 8 argument applies (e.g. inside the Theorem 3 recursion).
pub fn eliminate_unattacked_atom(
    query: &ConjunctiveQuery,
    atom: AtomId,
    db: &UncertainDatabase,
    recurse: &dyn Fn(&ConjunctiveQuery, &UncertainDatabase) -> bool,
) -> bool {
    let schema = query.schema();
    let f = query.atom(atom);
    let residual = query.without_atom(atom);

    // Only blocks of F's relation can host a witness; when F's key terms are
    // all constants (the recursion grounds key variables, so this is the
    // common case below the top level) the single candidate block is a hash
    // probe away, and otherwise the index's per-relation block list avoids
    // scanning the blocks of every other relation.
    let constant_key: Option<Vec<Value>> = f
        .key_terms(schema)
        .iter()
        .map(|t| match t {
            Term::Const(c) => Some(c.clone()),
            Term::Var(_) => None,
        })
        .collect();
    let index = db.index();
    let blocks: Vec<&Block> = match constant_key {
        Some(key) => db.block_with_key(f.relation(), &key).into_iter().collect(),
        None => index.relation_blocks(db, f.relation()).collect(),
    };

    'blocks: for block in blocks {
        // Every fact of the block must match F (constants, repeated
        // variables); collect the induced bindings.
        let mut bindings: Vec<Valuation> = Vec::with_capacity(block.len());
        for fact in block.facts() {
            match Valuation::new().unify_with_fact(f, fact, schema) {
                Some(theta) => bindings.push(theta),
                None => continue 'blocks,
            }
        }
        // For every fact of the block, the residual query grounded with that
        // fact's bindings must itself be certain.
        if bindings
            .iter()
            .all(|theta| recurse(&substitute::ground_with(&residual, theta), db))
        {
            return true;
        }
    }
    false
}

impl CertaintySolver for RewritingSolver {
    fn name(&self) -> &'static str {
        "rewriting"
    }

    fn query(&self) -> &ConjunctiveQuery {
        &self.query
    }

    fn is_certain(&self, db: &UncertainDatabase) -> bool {
        self.plan(db).eval(db)
    }

    fn explain_plan(&self, db: &UncertainDatabase) -> Option<String> {
        Some(self.plan(db).explain())
    }

    fn rewriting_plan(&self, db: &UncertainDatabase) -> Option<&FoPlan> {
        Some(self.plan(db))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solvers::oracle::ExactOracle;
    use cqa_data::{Schema, UncertainDatabase};
    use cqa_query::catalog;

    #[test]
    fn conference_example_not_certain_then_certain() {
        let q = catalog::conference().query;
        let solver = RewritingSolver::new(&q).unwrap();
        let db = catalog::conference_database();
        assert!(!solver.is_certain(&db));
        let mut fixed = db.clone();
        let c = fixed.schema().relation_id("C").unwrap();
        fixed.remove_fact(&cqa_data::Fact::new(
            c,
            vec![
                cqa_data::Value::str("PODS"),
                cqa_data::Value::str("2016"),
                cqa_data::Value::str("Paris"),
            ],
        ));
        assert!(solver.is_certain(&fixed));
    }

    #[test]
    fn rejects_queries_with_cyclic_attack_graphs() {
        assert!(RewritingSolver::new(&catalog::q1().query).is_err());
        assert!(RewritingSolver::new(&catalog::c2_swap().query).is_err());
        assert!(RewritingSolver::new(&catalog::fo_path3().query).is_ok());
    }

    #[test]
    fn agrees_with_the_oracle_on_path_queries() {
        // Deterministic sweep of small instances of {R(x;y), S(y;z)}.
        let q = catalog::fo_path2().query;
        let solver = RewritingSolver::new(&q).unwrap();
        let oracle = ExactOracle::new(&q).unwrap();
        let schema = q.schema().clone();
        for seed in 0u64..60 {
            let mut db = UncertainDatabase::new(schema.clone());
            let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
            let mut next = || {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 33) as usize
            };
            for _ in 0..5 {
                db.insert_values(
                    "R",
                    [format!("a{}", next() % 3), format!("b{}", next() % 3)],
                )
                .unwrap();
                db.insert_values(
                    "S",
                    [format!("b{}", next() % 3), format!("c{}", next() % 2)],
                )
                .unwrap();
            }
            assert_eq!(
                solver.is_certain(&db),
                oracle.is_certain_bruteforce(&db),
                "seed {seed}\n{db}"
            );
        }
    }

    #[test]
    fn agrees_with_the_oracle_on_three_atom_chains() {
        let q = catalog::fo_path3().query;
        let solver = RewritingSolver::new(&q).unwrap();
        let oracle = ExactOracle::new(&q).unwrap();
        let schema = q.schema().clone();
        for seed in 0u64..40 {
            let mut db = UncertainDatabase::new(schema.clone());
            let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) ^ 0xABCD;
            let mut next = || {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 33) as usize
            };
            for _ in 0..4 {
                db.insert_values(
                    "R",
                    [format!("a{}", next() % 2), format!("b{}", next() % 2)],
                )
                .unwrap();
                db.insert_values(
                    "S",
                    [format!("b{}", next() % 2), format!("c{}", next() % 2)],
                )
                .unwrap();
                db.insert_values(
                    "T",
                    [format!("c{}", next() % 2), format!("d{}", next() % 2)],
                )
                .unwrap();
            }
            assert_eq!(
                solver.is_certain(&db),
                oracle.is_certain_bruteforce(&db),
                "seed {seed}\n{db}"
            );
        }
    }

    #[test]
    fn constants_in_key_positions_are_respected() {
        // q = {R('k'; y), S(y; 'v')}: only the R-block with key 'k' matters.
        let schema = Schema::from_relations([("R", 2, 1), ("S", 2, 1)])
            .unwrap()
            .into_shared();
        let q = ConjunctiveQuery::builder(schema.clone())
            .atom(
                "R",
                [cqa_query::Term::constant("k"), cqa_query::Term::var("y")],
            )
            .atom(
                "S",
                [cqa_query::Term::var("y"), cqa_query::Term::constant("v")],
            )
            .build()
            .unwrap();
        let solver = RewritingSolver::new(&q).unwrap();
        let mut db = UncertainDatabase::new(schema.clone());
        db.insert_values("R", ["k", "b1"]).unwrap();
        db.insert_values("R", ["k", "b2"]).unwrap();
        db.insert_values("S", ["b1", "v"]).unwrap();
        db.insert_values("S", ["b2", "v"]).unwrap();
        assert!(solver.is_certain(&db));
        // Make one of the S rows uncertain about its value: no longer certain.
        db.insert_values("S", ["b2", "w"]).unwrap();
        let oracle = ExactOracle::new(&q).unwrap();
        assert_eq!(solver.is_certain(&db), oracle.is_certain_bruteforce(&db));
        assert!(!solver.is_certain(&db));
    }

    #[test]
    fn compiled_plan_agrees_with_the_interpreted_recursion() {
        let q = catalog::fo_path2().query;
        let solver = RewritingSolver::new(&q).unwrap();
        let schema = q.schema().clone();
        for seed in 0u64..40 {
            let mut db = UncertainDatabase::new(schema.clone());
            let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) ^ 0x5EED;
            let mut next = || {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 33) as usize
            };
            for _ in 0..5 {
                db.insert_values(
                    "R",
                    [format!("a{}", next() % 3), format!("b{}", next() % 3)],
                )
                .unwrap();
                db.insert_values(
                    "S",
                    [format!("b{}", next() % 3), format!("c{}", next() % 2)],
                )
                .unwrap();
            }
            assert_eq!(
                solver.is_certain(&db),
                solver.is_certain_interpreted(&db),
                "seed {seed}\n{}\n{db}",
                solver.plan(&db).explain()
            );
        }
    }

    #[test]
    fn the_compiled_plan_uses_block_quantified_operators() {
        let q = catalog::conference().query;
        let solver = RewritingSolver::new(&q).unwrap();
        let db = catalog::conference_database();
        let explain = solver.plan(&db).explain();
        assert!(explain.contains("∃-scan"), "{explain}");
        assert!(explain.contains("∀-block"), "{explain}");
        // The plan is compiled once and reused.
        assert!(std::ptr::eq(solver.plan(&db), solver.plan(&db)));
    }

    #[test]
    fn empty_databases_are_certain_only_for_the_empty_query() {
        let q = catalog::fo_path2().query;
        let solver = RewritingSolver::new(&q).unwrap();
        let empty = UncertainDatabase::new(q.schema().clone());
        assert!(!solver.is_certain(&empty));
        let empty_query = ConjunctiveQuery::boolean(q.schema().clone(), Vec::new()).unwrap();
        let trivial = RewritingSolver::new(&empty_query).unwrap();
        assert!(trivial.is_certain(&empty));
    }
}
