//! Purification of uncertain databases (Lemma 1).
//!
//! A database is *purified relative to `q`* if every fact participates in
//! some valuation image `θ(q) ⊆ db`. Lemma 1 shows that any database can be
//! purified in polynomial time without changing membership in
//! `CERTAINTY(q)`: repeatedly pick a fact `A` that belongs to no valuation
//! image and remove the **entire block** of `A`.
//!
//! All solvers in `cqa-core` purify their input first, exactly as the
//! paper's proofs assume.

use crate::{eval, ConjunctiveQuery, Valuation};
use cqa_data::{Fact, UncertainDatabase};

/// The anchoring shared by [`supports`] and [`supports_naive`]: some atom of
/// the query unifies with `fact`, and the induced partial valuation extends
/// to a full satisfying one (decided by `satisfies_with`).
fn supports_by<F>(query: &ConjunctiveQuery, fact: &Fact, satisfies_with: F) -> bool
where
    F: Fn(&Valuation) -> bool,
{
    let schema = query.schema();
    for atom in query.atoms() {
        if atom.relation() != fact.relation() {
            continue;
        }
        if let Some(partial) = Valuation::new().unify_with_fact(atom, fact, schema) {
            if satisfies_with(&partial) {
                return true;
            }
        }
    }
    false
}

/// True iff `fact` is *relevant* for the query on `db`: some valuation `θ`
/// over `vars(q)` satisfies `fact ∈ θ(q) ⊆ db`.
pub fn supports(db: &UncertainDatabase, query: &ConjunctiveQuery, fact: &Fact) -> bool {
    supports_by(query, fact, |partial| {
        eval::satisfies_with(db, query, partial)
    })
}

/// [`supports`] decided by the naive nested-loop evaluator instead of the
/// indexed join — the right choice when `db` is tiny or freshly mutated at
/// every probe, where building an index snapshot would dominate (e.g. the
/// exact oracle's per-node pruning).
pub fn supports_naive(db: &UncertainDatabase, query: &ConjunctiveQuery, fact: &Fact) -> bool {
    supports_by(query, fact, |partial| {
        eval::naive::satisfies_with(db, query, partial)
    })
}

/// True iff `db` is purified relative to `query`.
pub fn is_purified(db: &UncertainDatabase, query: &ConjunctiveQuery) -> bool {
    db.facts().all(|f| supports(db, query, f))
}

/// Purifies `db` relative to `query` (Lemma 1): repeatedly removes the block
/// of any fact that participates in no valuation image, until the database is
/// purified. Membership in `CERTAINTY(q)` is preserved.
pub fn purify(db: &UncertainDatabase, query: &ConjunctiveQuery) -> UncertainDatabase {
    let mut current = db.clone();
    loop {
        let doomed: Option<Fact> = current
            .facts()
            .find(|f| !supports(&current, query, f))
            .cloned();
        match doomed {
            Some(fact) => {
                current.remove_block_of(&fact);
            }
            None => return current,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ConjunctiveQuery, Term};
    use cqa_data::Schema;
    use std::sync::Arc;

    fn schema() -> Arc<Schema> {
        Schema::from_relations([("R", 2, 1), ("S", 2, 1)])
            .unwrap()
            .into_shared()
    }

    /// The query {R(x, y), S(y, x)} of Example 1.
    fn example1_query() -> ConjunctiveQuery {
        ConjunctiveQuery::builder(schema())
            .atom("R", [Term::var("x"), Term::var("y")])
            .atom("S", [Term::var("y"), Term::var("x")])
            .build()
            .unwrap()
    }

    #[test]
    fn example1_database_is_not_purified() {
        // {R(a,b), S(b,a), S(b,c)} is not purified: no R-fact joins with S(b,c).
        let mut db = UncertainDatabase::new(schema());
        db.insert_values("R", ["a", "b"]).unwrap();
        db.insert_values("S", ["b", "a"]).unwrap();
        db.insert_values("S", ["b", "c"]).unwrap();
        let q = example1_query();
        assert!(!is_purified(&db, &q));
        let s = db.schema().relation_id("S").unwrap();
        let offending = Fact::new(
            s,
            vec![cqa_data::Value::str("b"), cqa_data::Value::str("c")],
        );
        assert!(!supports(&db, &q, &offending));
        // S(b,a) itself does join with R(a,b).
        let fine = Fact::new(
            s,
            vec![cqa_data::Value::str("b"), cqa_data::Value::str("a")],
        );
        assert!(supports(&db, &q, &fine));
    }

    #[test]
    fn purification_removes_whole_blocks() {
        // Removing S(b,c) means removing its entire block {S(b,a), S(b,c)},
        // which in turn makes R(a,b) irrelevant: everything disappears.
        let mut db = UncertainDatabase::new(schema());
        db.insert_values("R", ["a", "b"]).unwrap();
        db.insert_values("S", ["b", "a"]).unwrap();
        db.insert_values("S", ["b", "c"]).unwrap();
        let q = example1_query();
        let purified = purify(&db, &q);
        assert!(purified.is_empty());
        assert!(is_purified(&purified, &q));
    }

    #[test]
    fn purification_keeps_relevant_facts() {
        let mut db = UncertainDatabase::new(schema());
        db.insert_values("R", ["a", "b"]).unwrap();
        db.insert_values("S", ["b", "a"]).unwrap();
        // An unrelated, irrelevant R block.
        db.insert_values("R", ["z", "z"]).unwrap();
        let q = example1_query();
        let purified = purify(&db, &q);
        assert_eq!(purified.fact_count(), 2);
        assert!(is_purified(&purified, &q));
        // The relevant pair survived.
        let r = purified.schema().relation_id("R").unwrap();
        assert!(purified.contains(&Fact::new(
            r,
            vec![cqa_data::Value::str("a"), cqa_data::Value::str("b")]
        )));
    }

    #[test]
    fn purified_database_is_a_fixpoint() {
        let mut db = UncertainDatabase::new(schema());
        db.insert_values("R", ["a", "b"]).unwrap();
        db.insert_values("R", ["a", "c"]).unwrap();
        db.insert_values("S", ["b", "a"]).unwrap();
        db.insert_values("S", ["c", "a"]).unwrap();
        let q = example1_query();
        let once = purify(&db, &q);
        assert_eq!(once, db, "already purified databases are unchanged");
        let twice = purify(&once, &q);
        assert_eq!(once, twice);
    }

    #[test]
    fn purification_preserves_certainty_brute_force() {
        // Cross-check Lemma 1 on a small instance by enumerating repairs.
        let mut db = UncertainDatabase::new(schema());
        db.insert_values("R", ["a", "b"]).unwrap();
        db.insert_values("R", ["a", "c"]).unwrap(); // same block as R(a,b)
        db.insert_values("S", ["b", "a"]).unwrap();
        db.insert_values("S", ["d", "d"]).unwrap(); // irrelevant singleton block
        let q = example1_query();
        let purified = purify(&db, &q);

        let certain = |d: &UncertainDatabase| d.repairs().all(|r| eval::satisfies(&r, &q));
        assert_eq!(certain(&db), certain(&purified));
    }

    #[test]
    fn ground_atoms_and_constants_in_queries() {
        // Purification must respect constants in the query: only facts that
        // can actually be the image of an atom survive.
        let schema = Schema::from_relations([("R", 2, 1)]).unwrap().into_shared();
        let mut db = UncertainDatabase::new(schema.clone());
        db.insert_values("R", ["a", "hit"]).unwrap();
        db.insert_values("R", ["b", "miss"]).unwrap();
        let q = ConjunctiveQuery::builder(schema)
            .atom("R", [Term::var("x"), Term::constant("hit")])
            .build()
            .unwrap();
        let purified = purify(&db, &q);
        assert_eq!(purified.fact_count(), 1);
    }
}
