//! Strongly connected components (Tarjan) and condensation.
//!
//! Used by the attack-graph cycle classification (Sections 5–6) and by the
//! cycle-query solver of Theorem 4, whose proof decomposes the k-partite
//! constant graph into strong components.

use crate::{DiGraph, NodeId};

/// The strongly connected components of a graph, in reverse topological order
/// of the condensation (Tarjan's output order).
#[derive(Clone, Debug)]
pub struct SccDecomposition {
    /// The vertex sets of the components.
    pub components: Vec<Vec<NodeId>>,
    /// Maps each node to the index of its component in `components`.
    pub component_of: Vec<usize>,
}

impl SccDecomposition {
    /// Number of components.
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// True iff the graph had no nodes.
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// The component index of a node.
    pub fn component_of(&self, node: NodeId) -> usize {
        self.component_of[node.index()]
    }

    /// True iff the component contains a cycle: it has more than one vertex,
    /// or its single vertex has a self-loop in `graph`.
    pub fn is_nontrivial<N>(&self, idx: usize, graph: &DiGraph<N>) -> bool {
        let comp = &self.components[idx];
        comp.len() > 1 || (comp.len() == 1 && graph.has_edge(comp[0], comp[0]))
    }

    /// Indices of all components containing a cycle.
    pub fn nontrivial_components<N>(&self, graph: &DiGraph<N>) -> Vec<usize> {
        (0..self.components.len())
            .filter(|&i| self.is_nontrivial(i, graph))
            .collect()
    }
}

/// Computes the strongly connected components with Tarjan's algorithm
/// (iterative, so deep graphs do not overflow the stack).
pub fn strongly_connected_components<N>(graph: &DiGraph<N>) -> SccDecomposition {
    let n = graph.node_count();
    const UNVISITED: usize = usize::MAX;

    let mut index_of = vec![UNVISITED; n];
    let mut lowlink = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut components: Vec<Vec<NodeId>> = Vec::new();
    let mut component_of = vec![usize::MAX; n];

    // Explicit DFS stack: (node, next successor position).
    let mut call_stack: Vec<(usize, usize)> = Vec::new();

    for start in 0..n {
        if index_of[start] != UNVISITED {
            continue;
        }
        call_stack.push((start, 0));
        index_of[start] = next_index;
        lowlink[start] = next_index;
        next_index += 1;
        stack.push(start);
        on_stack[start] = true;

        while let Some(&mut (v, ref mut succ_pos)) = call_stack.last_mut() {
            let succs = graph.successors(NodeId::from_index(v));
            if *succ_pos < succs.len() {
                let w = succs[*succ_pos].index();
                *succ_pos += 1;
                if index_of[w] == UNVISITED {
                    index_of[w] = next_index;
                    lowlink[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    call_stack.push((w, 0));
                } else if on_stack[w] {
                    lowlink[v] = lowlink[v].min(index_of[w]);
                }
            } else {
                call_stack.pop();
                if let Some(&(parent, _)) = call_stack.last() {
                    lowlink[parent] = lowlink[parent].min(lowlink[v]);
                }
                if lowlink[v] == index_of[v] {
                    let mut component = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack invariant");
                        on_stack[w] = false;
                        component_of[w] = components.len();
                        component.push(NodeId::from_index(w));
                        if w == v {
                            break;
                        }
                    }
                    component.sort();
                    components.push(component);
                }
            }
        }
    }

    SccDecomposition {
        components,
        component_of,
    }
}

/// Builds the condensation: one node per SCC (payload = component index),
/// with an edge between distinct components whenever the original graph has
/// an edge between their members.
pub fn condensation<N>(graph: &DiGraph<N>) -> (SccDecomposition, DiGraph<usize>) {
    let scc = strongly_connected_components(graph);
    let mut cond: DiGraph<usize> = DiGraph::new();
    for i in 0..scc.len() {
        cond.add_node(i);
    }
    for (a, b) in graph.edges() {
        let ca = scc.component_of(a);
        let cb = scc.component_of(b);
        if ca != cb {
            cond.add_edge(NodeId::from_index(ca), NodeId::from_index(cb));
        }
    }
    (scc, cond)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(edges: &[(u32, u32)], nodes: u32) -> DiGraph<u32> {
        let mut g = DiGraph::new();
        for i in 0..nodes {
            g.add_node(i);
        }
        for &(a, b) in edges {
            g.add_edge(NodeId(a), NodeId(b));
        }
        g
    }

    #[test]
    fn single_cycle_is_one_component() {
        let g = graph(&[(0, 1), (1, 2), (2, 0)], 3);
        let scc = strongly_connected_components(&g);
        assert_eq!(scc.len(), 1);
        assert_eq!(scc.components[0].len(), 3);
        assert!(scc.is_nontrivial(0, &g));
    }

    #[test]
    fn dag_has_singleton_components() {
        let g = graph(&[(0, 1), (1, 2), (0, 2)], 3);
        let scc = strongly_connected_components(&g);
        assert_eq!(scc.len(), 3);
        assert!(scc.nontrivial_components(&g).is_empty());
    }

    #[test]
    fn two_cycles_and_a_bridge() {
        // 0 <-> 1, 2 <-> 3, bridge 1 -> 2.
        let g = graph(&[(0, 1), (1, 0), (2, 3), (3, 2), (1, 2)], 4);
        let scc = strongly_connected_components(&g);
        assert_eq!(scc.len(), 2);
        assert_eq!(scc.nontrivial_components(&g).len(), 2);
        assert_eq!(scc.component_of(NodeId(0)), scc.component_of(NodeId(1)));
        assert_ne!(scc.component_of(NodeId(0)), scc.component_of(NodeId(2)));
    }

    #[test]
    fn self_loop_is_nontrivial() {
        let g = graph(&[(0, 0), (0, 1)], 2);
        let scc = strongly_connected_components(&g);
        let loops = scc.nontrivial_components(&g);
        assert_eq!(loops.len(), 1);
        assert_eq!(scc.components[loops[0]], vec![NodeId(0)]);
    }

    #[test]
    fn condensation_is_acyclic_and_preserves_reachability() {
        let g = graph(&[(0, 1), (1, 0), (1, 2), (2, 3), (3, 2)], 4);
        let (scc, cond) = condensation(&g);
        assert_eq!(scc.len(), 2);
        assert_eq!(cond.node_count(), 2);
        assert_eq!(cond.edge_count(), 1);
        assert!(crate::cycles::is_acyclic(&cond));
    }

    #[test]
    fn deep_chain_does_not_overflow() {
        // A long path plus a back edge: one big SCC; exercises the iterative DFS.
        let n = 50_000u32;
        let mut edges: Vec<(u32, u32)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        edges.push((n - 1, 0));
        let g = graph(&edges, n);
        let scc = strongly_connected_components(&g);
        assert_eq!(scc.len(), 1);
    }
}
