//! Model checking of first-order formulas over uncertain databases.
//!
//! An uncertain database is, in particular, an ordinary finite relational
//! structure; a certain rewriting `φ_q` is evaluated over that structure
//! (not over repairs). Quantifiers range over the active domain — the usual
//! semantics for domain-independent rewritings such as the ones produced by
//! [`crate::fo::rewrite`].

use super::FoFormula;
use cqa_data::{Fact, FxHashMap, UncertainDatabase, Value};
use cqa_query::{Term, Variable};

/// A variable assignment used during evaluation.
pub type Environment = FxHashMap<Variable, Value>;

fn eval_term(term: &Term, env: &Environment) -> Option<Value> {
    match term {
        Term::Const(c) => Some(c.clone()),
        Term::Var(v) => env.get(v).cloned(),
    }
}

/// Evaluates `formula` over `db` under the (possibly empty) assignment `env`.
///
/// Free variables of the formula must be bound by `env`; unbound variables
/// make atoms and equalities evaluate to `false` (the formulas produced by
/// [`crate::fo::rewrite`] are sentences, so this never triggers for them).
pub fn evaluate(formula: &FoFormula, db: &UncertainDatabase, env: &Environment) -> bool {
    match formula {
        FoFormula::True => true,
        FoFormula::False => false,
        FoFormula::Atom { relation, terms } => {
            let values: Option<Vec<Value>> = terms.iter().map(|t| eval_term(t, env)).collect();
            match values {
                Some(values) => db.contains(&Fact::new(*relation, values)),
                None => false,
            }
        }
        FoFormula::Equals(a, b) => match (eval_term(a, env), eval_term(b, env)) {
            (Some(x), Some(y)) => x == y,
            _ => false,
        },
        FoFormula::Not(inner) => !evaluate(inner, db, env),
        FoFormula::And(parts) => parts.iter().all(|p| evaluate(p, db, env)),
        FoFormula::Or(parts) => parts.iter().any(|p| evaluate(p, db, env)),
        FoFormula::Implies(a, b) => !evaluate(a, db, env) || evaluate(b, db, env),
        FoFormula::Exists(vars, body) => quantify(vars, body, db, env, true),
        FoFormula::Forall(vars, body) => !quantify(vars, body, db, env, false),
    }
}

/// Evaluates the sentence (no free variables) over the database.
pub fn evaluate_sentence(formula: &FoFormula, db: &UncertainDatabase) -> bool {
    evaluate(formula, db, &Environment::default())
}

/// Iterates assignments of `vars` over the active domain. With
/// `looking_for = true` returns true iff some assignment satisfies `body`
/// (∃); with `false`, returns true iff some assignment *falsifies* it
/// (so that `Forall` is the negation of the result).
fn quantify(
    vars: &[Variable],
    body: &FoFormula,
    db: &UncertainDatabase,
    env: &Environment,
    looking_for: bool,
) -> bool {
    let domain: Vec<Value> = db.active_domain().into_iter().collect();
    if domain.is_empty() {
        // Empty active domain: ∃ is false, ∀ is true.
        return false;
    }
    fn rec(
        vars: &[Variable],
        body: &FoFormula,
        db: &UncertainDatabase,
        env: &mut Environment,
        domain: &[Value],
        looking_for: bool,
    ) -> bool {
        match vars.split_first() {
            None => evaluate(body, db, env) == looking_for,
            Some((v, rest)) => {
                for value in domain {
                    let previous = env.insert(v.clone(), value.clone());
                    let found = rec(rest, body, db, env, domain, looking_for);
                    match previous {
                        Some(p) => {
                            env.insert(v.clone(), p);
                        }
                        None => {
                            env.remove(v);
                        }
                    }
                    if found {
                        return true;
                    }
                }
                false
            }
        }
    }
    let mut scratch = env.clone();
    rec(vars, body, db, &mut scratch, &domain, looking_for)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_data::Schema;

    fn db() -> UncertainDatabase {
        let schema = Schema::from_relations([("R", 2, 1)]).unwrap().into_shared();
        let mut db = UncertainDatabase::new(schema);
        db.insert_values("R", ["a", "1"]).unwrap();
        db.insert_values("R", ["a", "2"]).unwrap();
        db.insert_values("R", ["b", "1"]).unwrap();
        db
    }

    fn r(db: &UncertainDatabase) -> cqa_data::RelationId {
        db.schema().relation_id("R").unwrap()
    }

    #[test]
    fn atoms_and_equalities() {
        let db = db();
        let rel = r(&db);
        let present = FoFormula::atom(rel, vec![Term::constant("a"), Term::constant("1")]);
        let absent = FoFormula::atom(rel, vec![Term::constant("b"), Term::constant("2")]);
        assert!(evaluate_sentence(&present, &db));
        assert!(!evaluate_sentence(&absent, &db));
        assert!(evaluate_sentence(
            &FoFormula::Equals(Term::constant("x"), Term::constant("x")),
            &db
        ));
        assert!(!evaluate_sentence(
            &FoFormula::Equals(Term::constant("x"), Term::constant("y")),
            &db
        ));
    }

    #[test]
    fn quantifiers_range_over_the_active_domain() {
        let db = db();
        let rel = r(&db);
        // ∃x R(x, '1') — true (x = a or b).
        let exists = FoFormula::exists(
            vec![Variable::new("x")],
            FoFormula::atom(rel, vec![Term::var("x"), Term::constant("1")]),
        );
        assert!(evaluate_sentence(&exists, &db));
        // ∀x (R(x,'1') → R(x,'2')) — false (b has no 2).
        let forall = FoFormula::forall(
            vec![Variable::new("x")],
            FoFormula::Implies(
                Box::new(FoFormula::atom(rel, vec![Term::var("x"), Term::constant("1")])),
                Box::new(FoFormula::atom(rel, vec![Term::var("x"), Term::constant("2")])),
            ),
        );
        assert!(!evaluate_sentence(&forall, &db));
        // ∀x (R(x,'2') → R(x,'1')) — true (only a has 2, and R(a,1) holds).
        let forall2 = FoFormula::forall(
            vec![Variable::new("x")],
            FoFormula::Implies(
                Box::new(FoFormula::atom(rel, vec![Term::var("x"), Term::constant("2")])),
                Box::new(FoFormula::atom(rel, vec![Term::var("x"), Term::constant("1")])),
            ),
        );
        assert!(evaluate_sentence(&forall2, &db));
    }

    #[test]
    fn connectives() {
        let db = db();
        assert!(evaluate_sentence(
            &FoFormula::Or(vec![FoFormula::False, FoFormula::True]),
            &db
        ));
        assert!(!evaluate_sentence(
            &FoFormula::And(vec![FoFormula::False, FoFormula::True]),
            &db
        ));
        assert!(evaluate_sentence(&FoFormula::Not(Box::new(FoFormula::False)), &db));
        assert!(evaluate_sentence(
            &FoFormula::Implies(Box::new(FoFormula::False), Box::new(FoFormula::False)),
            &db
        ));
    }

    #[test]
    fn empty_database_semantics() {
        let schema = Schema::from_relations([("R", 2, 1)]).unwrap().into_shared();
        let empty = UncertainDatabase::new(schema);
        let rel = empty.schema().relation_id("R").unwrap();
        let exists = FoFormula::exists(
            vec![Variable::new("x")],
            FoFormula::atom(rel, vec![Term::var("x"), Term::var("x")]),
        );
        let forall = FoFormula::forall(
            vec![Variable::new("x")],
            FoFormula::False,
        );
        assert!(!evaluate_sentence(&exists, &empty));
        assert!(evaluate_sentence(&forall, &empty), "∀ over empty domain is true");
    }
}
