//! The bridge between `PROBABILITY(q)` and `CERTAINTY(q)` (Section 7.2).
//!
//! * **Proposition 1**: on a BID database `(db, Pr)`, the answer to
//!   `PROBABILITY(q)` is 1 iff `db' ∈ CERTAINTY(q)`, where `db'` keeps
//!   exactly the blocks whose probabilities sum to 1.
//! * **Theorem 6**: if `q` is safe then `CERTAINTY(q)` is first-order
//!   expressible. (Contrapositive, Corollary 2: if `CERTAINTY(q)` is not
//!   FO-expressible then `PROBABILITY(q)` is ♯P-hard.)
//!
//! These are checked programmatically over the query catalog and random
//! instances by the integration tests and the experiment harness.

use crate::bid::BidDatabase;
use crate::safety::is_safe;
use cqa_core::classify::{classify, ComplexityClass};
use cqa_core::solvers::{CertaintyEngine, CertaintySolver};
use cqa_query::{ConjunctiveQuery, QueryError};

/// Decides `Pr(q) = 1` via Proposition 1: restrict to the blocks whose
/// probabilities sum to 1 and test certainty there (no probability
/// computation needed).
pub fn probability_is_one(bid: &BidDatabase, query: &ConjunctiveQuery) -> Result<bool, QueryError> {
    let restricted = bid.full_blocks_database();
    let engine = CertaintyEngine::new(query)?;
    Ok(engine.is_certain(&restricted))
}

/// The statement of Theorem 6, checked for one query: *safe implies the
/// attack-graph classification is "first-order expressible"*.
///
/// Returns `Ok(true)` when the implication holds for `query` (vacuously when
/// the query is unsafe), `Ok(false)` if it is violated (which would indicate
/// a bug — the paper proves it always holds).
pub fn theorem6_holds(query: &ConjunctiveQuery) -> Result<bool, QueryError> {
    if !is_safe(query) {
        return Ok(true);
    }
    let classification = classify(query)?;
    Ok(matches!(
        classification.class,
        ComplexityClass::FirstOrderExpressible
    ))
}

/// The statement of Corollary 2 for one query: if `CERTAINTY(q)` is **not**
/// first-order expressible then `q` is unsafe (so `PROBABILITY(q)` is
/// ♯P-hard by Theorem 5). Logically equivalent to [`theorem6_holds`].
pub fn corollary2_holds(query: &ConjunctiveQuery) -> Result<bool, QueryError> {
    let classification = classify(query)?;
    if matches!(classification.class, ComplexityClass::FirstOrderExpressible) {
        return Ok(true);
    }
    Ok(!is_safe(query))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{probability_exact, probability_over_repairs};
    use cqa_data::UncertainDatabase;
    use cqa_query::catalog;

    #[test]
    fn theorem6_and_corollary2_hold_on_the_catalog() {
        for entry in catalog::all() {
            if !cqa_query::join_tree::is_acyclic(&entry.query) {
                // The classification (and Theorem 6) concerns acyclic queries;
                // cyclic catalog queries (C(k), k >= 3) are skipped here.
                continue;
            }
            assert!(
                theorem6_holds(&entry.query).unwrap(),
                "Theorem 6 violated on {}",
                entry.name
            );
            assert!(
                corollary2_holds(&entry.query).unwrap(),
                "Corollary 2 violated on {}",
                entry.name
            );
        }
    }

    #[test]
    fn proposition1_on_the_conference_database() {
        let q = catalog::conference().query;
        let db = catalog::conference_database();
        // Uniform over repairs: every block sums to 1, so db' = db and
        // Pr(q) = 1 iff db is certain — here it is not (Pr = 3/4).
        let bid = BidDatabase::uniform_over_repairs(&db);
        assert!(!probability_is_one(&bid, &q).unwrap());
        assert!(probability_exact(&bid, &q) < 1.0);

        // Make it certain: drop the Paris tuple.
        let mut fixed = db.clone();
        let c = fixed.schema().relation_id("C").unwrap();
        fixed.remove_fact(&cqa_data::Fact::new(
            c,
            vec![
                cqa_data::Value::str("PODS"),
                cqa_data::Value::str("2016"),
                cqa_data::Value::str("Paris"),
            ],
        ));
        let bid_fixed = BidDatabase::uniform_over_repairs(&fixed);
        assert!(probability_is_one(&bid_fixed, &q).unwrap());
        assert!((probability_exact(&bid_fixed, &q) - 1.0).abs() < 1e-9);
        assert!((probability_over_repairs(&fixed, &q) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn proposition1_with_sub_one_blocks() {
        // A block summing to less than 1 is excluded from db', so even a
        // "certainly joining" fact with probability < 1 prevents Pr(q) = 1.
        let q = catalog::conference().query;
        let schema = q.schema().clone();
        let mut db = UncertainDatabase::new(schema);
        db.insert_values("C", ["PODS", "2016", "Rome"]).unwrap();
        db.insert_values("R", ["PODS", "A"]).unwrap();
        let c_fact = db
            .facts()
            .find(|f| f.relation() == db.schema().relation_id("C").unwrap())
            .unwrap()
            .clone();
        let bid = BidDatabase::new(db.clone(), [(c_fact, 0.9)]).unwrap();
        assert!(!probability_is_one(&bid, &q).unwrap());
        let exact = probability_exact(&bid, &q);
        assert!((exact - 0.9).abs() < 1e-9);
        // With probability 1 instead, Proposition 1 flips.
        let bid_full = BidDatabase::uniform_over_repairs(&db);
        assert!(probability_is_one(&bid_full, &q).unwrap());
    }
}
