//! The closures `F^{+,q}` (Definition 2) and `F^{⊞,q}` (Definition 5).
//!
//! * `F^{+,q}` is the attribute closure of `key(F)` with respect to
//!   `K(q \ {F})` — the functional dependencies contributed by all *other*
//!   atoms. It governs which attacks exist.
//! * `F^{⊞,q}` is the attribute closure of `key(F)` with respect to the full
//!   `K(q)`. It governs whether an attack is weak or strong.
//!
//! `F^{+,q} ⊆ F^{⊞,q}` always holds (the paper notes this after
//! Definition 5), which the unit tests check on the catalog queries.

use cqa_query::fd::FdSet;
use cqa_query::{AtomId, ConjunctiveQuery, QueryError, VarIndex, VarSet, Variable};
use std::collections::BTreeSet;

/// Pre-computed per-atom variable sets and closures for one query.
#[derive(Clone, Debug)]
pub struct ClosureTable {
    index: VarIndex,
    key_sets: Vec<VarSet>,
    var_sets: Vec<VarSet>,
    /// `F^{+,q}` per atom.
    plus: Vec<VarSet>,
    /// `F^{⊞,q}` per atom.
    boxed: Vec<VarSet>,
}

impl ClosureTable {
    /// Computes all closures for the query.
    pub fn compute(query: &ConjunctiveQuery) -> Result<Self, QueryError> {
        let index = query.var_index()?;
        let n = query.len();
        let key_sets: Vec<VarSet> = (0..n).map(|i| index.set_of(&query.key_vars(i))).collect();
        let var_sets: Vec<VarSet> = (0..n).map(|i| index.set_of(&query.vars_of(i))).collect();
        let full_fds = FdSet::of_query(query, &index);
        let mut plus = Vec::with_capacity(n);
        let mut boxed = Vec::with_capacity(n);
        for (f, &key_set) in key_sets.iter().enumerate() {
            let without_f = FdSet::of_atoms(query, (0..n).filter(|&i| i != f), &index);
            plus.push(without_f.closure(key_set));
            boxed.push(full_fds.closure(key_set));
        }
        Ok(ClosureTable {
            index,
            key_sets,
            var_sets,
            plus,
            boxed,
        })
    }

    /// The variable index shared by all the sets in this table.
    pub fn var_index(&self) -> &VarIndex {
        &self.index
    }

    /// `key(F)` as a bit set.
    pub fn key_set(&self, atom: AtomId) -> VarSet {
        self.key_sets[atom]
    }

    /// `vars(F)` as a bit set.
    pub fn var_set(&self, atom: AtomId) -> VarSet {
        self.var_sets[atom]
    }

    /// `F^{+,q}` as a bit set.
    pub fn plus(&self, atom: AtomId) -> VarSet {
        self.plus[atom]
    }

    /// `F^{⊞,q}` as a bit set.
    pub fn boxed(&self, atom: AtomId) -> VarSet {
        self.boxed[atom]
    }

    /// `F^{+,q}` materialised as variables (for display / diagnostics).
    pub fn plus_vars(&self, atom: AtomId) -> BTreeSet<Variable> {
        self.index
            .materialize(self.plus[atom])
            .into_iter()
            .collect()
    }

    /// `F^{⊞,q}` materialised as variables.
    pub fn boxed_vars(&self, atom: AtomId) -> BTreeSet<Variable> {
        self.index
            .materialize(self.boxed[atom])
            .into_iter()
            .collect()
    }

    /// Converts a set of variables into the table's bit-set representation.
    pub fn set_of<'a>(&self, vars: impl IntoIterator<Item = &'a Variable>) -> VarSet {
        self.index.set_of(vars)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_query::catalog;

    fn names(set: &BTreeSet<Variable>) -> Vec<String> {
        set.iter().map(|v| v.to_string()).collect()
    }

    #[test]
    fn example2_plus_closures() {
        // Example 2: F^{+,q1} = {u}, G^{+,q1} = {y}, H^{+,q1} = {x,z}, I^{+,q1} = {x,y,z}.
        let q = catalog::q1().query;
        let table = ClosureTable::compute(&q).unwrap();
        assert_eq!(names(&table.plus_vars(0)), vec!["u"]);
        assert_eq!(names(&table.plus_vars(1)), vec!["y"]);
        assert_eq!(names(&table.plus_vars(2)), vec!["x", "z"]);
        assert_eq!(names(&table.plus_vars(3)), vec!["x", "y", "z"]);
    }

    #[test]
    fn example4_boxed_closures() {
        // Example 4: F^{⊞,q1} = {u,x,y,z}; G, H, I all have {x,y,z}.
        let q = catalog::q1().query;
        let table = ClosureTable::compute(&q).unwrap();
        assert_eq!(names(&table.boxed_vars(0)), vec!["u", "x", "y", "z"]);
        for atom in 1..4 {
            assert_eq!(names(&table.boxed_vars(atom)), vec!["x", "y", "z"]);
        }
    }

    #[test]
    fn plus_is_always_contained_in_boxed() {
        for entry in catalog::all() {
            if !cqa_query::join_tree::is_acyclic(&entry.query) {
                continue;
            }
            let table = ClosureTable::compute(&entry.query).unwrap();
            for atom in entry.query.atom_ids() {
                assert!(
                    table.plus(atom).is_subset_of(&table.boxed(atom)),
                    "F+ ⊆ F⊞ violated for {} atom {}",
                    entry.name,
                    atom
                );
                assert!(
                    table.key_set(atom).is_subset_of(&table.plus(atom)),
                    "key(F) ⊆ F+ violated for {} atom {}",
                    entry.name,
                    atom
                );
            }
        }
    }

    #[test]
    fn ac3_closures_cover_everything() {
        // In AC(3) every key determines the whole variable set (via the cycle
        // and the all-key S3 atom), so all boxed closures equal vars(q).
        let q = catalog::ac_k(3).query;
        let table = ClosureTable::compute(&q).unwrap();
        let all = table.var_index().all();
        for atom in q.atom_ids() {
            assert_eq!(table.boxed(atom), all, "atom {atom}");
        }
    }
}
