//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this vendored shim
//! implements the subset of the criterion API the workspace's benches use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_with_input`] /
//! [`BenchmarkGroup::bench_function`], [`Bencher::iter`], [`BenchmarkId`],
//! and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Instead of criterion's statistical machinery it takes `sample_size`
//! samples of a fixed-iteration inner loop and reports the fastest sample's
//! per-iteration time (minimum-of-samples is a robust point estimate for
//! micro-benchmarks). Results are printed to stdout, one line per benchmark:
//!
//! ```text
//! bench  group/id ... 12.345 µs/iter (8 samples, 64 iters each)
//! ```

#![forbid(unsafe_code)]

use std::fmt;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value wrapper, mirroring `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            _criterion: self,
        }
    }
}

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter, rendered `name/param`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id that is just a parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// A group of benchmarks sharing a name and measurement settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; the shim does not warm up separately
    /// (the first, discarded calibration sample serves as warm-up).
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Caps the total time spent measuring one benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Benchmarks a closure that receives a shared input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.to_string(), |b| f(b, input));
        self
    }

    /// Benchmarks a closure with no input.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(&id.to_string(), |b| f(b));
        self
    }

    /// Finishes the group (a no-op in the shim; results are printed as they
    /// are measured).
    pub fn finish(self) {}

    fn run(&mut self, id: &str, mut f: impl FnMut(&mut Bencher)) {
        // Calibration sample: one iteration, also serves as warm-up.
        let mut calibrate = Bencher {
            iterations: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut calibrate);
        let per_iter = calibrate.elapsed.max(Duration::from_nanos(1));
        // Aim each sample at ~1/sample_size of the measurement budget.
        let budget = self.measurement_time.max(Duration::from_millis(10));
        let per_sample = budget / (self.sample_size as u32);
        let iters = (per_sample.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

        let mut best = Duration::MAX;
        let started = Instant::now();
        let mut samples = 0usize;
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                iterations: iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            best = best.min(b.elapsed / (iters as u32));
            samples += 1;
            if started.elapsed() > budget {
                break;
            }
        }
        println!(
            "bench  {}/{} ... {:.3} µs/iter ({} samples, {} iters each)",
            self.name,
            id,
            best.as_secs_f64() * 1e6,
            samples,
            iters
        );
    }
}

/// Runs the timed inner loop of one sample.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iterations` calls of the routine.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            std_black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Declares a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main` that runs the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_run_and_report() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.measurement_time(Duration::from_millis(30));
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        let input = 21u64;
        group.bench_with_input(BenchmarkId::new("double", input), &input, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }
}
