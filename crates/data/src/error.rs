//! Error type for the data layer.

use std::error::Error;
use std::fmt;

/// Errors raised while building schemas and databases.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataError {
    /// A relation with the same name was already declared.
    DuplicateRelation {
        /// Name of the relation declared twice.
        name: String,
    },
    /// The signature `[n, k]` violates `n >= k >= 1` (see Section 3: every
    /// relation has at least one key position and the key is a prefix).
    InvalidSignature {
        /// Name of the offending relation.
        name: String,
        /// Declared arity `n`.
        arity: usize,
        /// Declared key length `k`.
        key_len: usize,
    },
    /// A fact mentions a relation that is not part of the schema.
    UnknownRelation {
        /// The unresolved relation name.
        name: String,
    },
    /// A fact has the wrong number of values for its relation.
    ArityMismatch {
        /// Relation name of the fact.
        relation: String,
        /// Arity declared in the schema.
        expected: usize,
        /// Number of values supplied.
        actual: usize,
    },
    /// Two databases (or a database and a query) use different schemas.
    SchemaMismatch,
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::DuplicateRelation { name } => {
                write!(f, "relation `{name}` is already declared")
            }
            DataError::InvalidSignature {
                name,
                arity,
                key_len,
            } => write!(
                f,
                "relation `{name}` has invalid signature [{arity},{key_len}]: \
                 the arity must be >= key length >= 1"
            ),
            DataError::UnknownRelation { name } => {
                write!(f, "relation `{name}` is not declared in the schema")
            }
            DataError::ArityMismatch {
                relation,
                expected,
                actual,
            } => write!(
                f,
                "fact over `{relation}` has {actual} values but the relation has arity {expected}"
            ),
            DataError::SchemaMismatch => write!(f, "operands use different schemas"),
        }
    }
}

impl Error for DataError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_mention_the_relation() {
        let e = DataError::ArityMismatch {
            relation: "R".into(),
            expected: 3,
            actual: 2,
        };
        assert!(e.to_string().contains('R'));
        assert!(e.to_string().contains('3'));
        let e = DataError::InvalidSignature {
            name: "S".into(),
            arity: 2,
            key_len: 3,
        };
        assert!(e.to_string().contains("[2,3]"));
    }
}
