//! The TCP server: acceptor, per-connection handlers, HTTP endpoints.
//!
//! One [`std::net::TcpListener`] accepts both dialects; the first bytes of
//! a connection decide. A line starting with an HTTP method keyword makes
//! the connection an HTTP exchange (`GET /metrics`, `GET /view/<name>`,
//! `POST /query`) — persistent by default for HTTP/1.1 per RFC 9112
//! (honoring `Connection: close` / `keep-alive` either way); anything else
//! enters the newline-delimited line protocol and stays in it until EOF or
//! `\quit`.
//!
//! Each connection gets its own OS thread (blocking reads), but **query
//! evaluation runs on the shared work-stealing [`ParPool`]**: the handler
//! dispatches one pool job per admitted query and waits on a channel — with
//! `recv_timeout` when a deadline is configured — so a slow query times out
//! without wedging its connection, and a panicking query surfaces as an
//! error response without taking the worker or the acceptor down.
//!
//! Robustness policy, exercised byte-by-byte in `tests/serve.rs`:
//!
//! * malformed requests (bad UTF-8, parse errors, unknown commands) get an
//!   `error:` response and the connection stays usable;
//! * an oversized request line (> [`ServerConfig::max_request_bytes`]) gets
//!   an `error:` response and the connection closes — the framing can no
//!   longer be trusted;
//! * abrupt disconnects and truncated requests end the handler quietly;
//!   the acceptor never sees any of it.

use crate::admission::{Admission, CancelToken};
use crate::epoch::EpochManager;
use crate::protocol::{self, Request, WriteOp};
use crate::stats;
use cqa_core::answers::{possible_answers, AnswerSets};
use cqa_data::{Schema, UncertainDatabase};
use cqa_par::{BatchEngine, BatchOutcome, BatchResult, ParPool};
use cqa_query::ConjunctiveQuery;
use std::collections::BTreeSet;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The [`ServerConfig::on_query_start`] hook: runs on the pool worker with
/// the admitted query's [`CancelToken`].
pub type QueryStartHook = Arc<dyn Fn(&CancelToken) + Send + Sync>;

/// Tuning knobs of a [`Server`].
#[derive(Clone)]
pub struct ServerConfig {
    /// Worker threads of the query pool (`None`: one per hardware thread).
    pub threads: Option<usize>,
    /// Admission bound: maximum queries in flight (queued + running) across
    /// all connections; the excess is rejected loudly. `0` rejects every
    /// query (the deterministic overload-path test mode).
    pub max_inflight: usize,
    /// Per-query deadline; `None` disables timeouts.
    pub deadline: Option<Duration>,
    /// Maximum bytes of one request line (and of an HTTP body). Oversized
    /// requests are answered with an error and the connection closes.
    pub max_request_bytes: usize,
    /// Candidate-answer chunk size between cancellation checks: smaller
    /// chunks notice a tripped deadline sooner at slightly more overhead.
    pub query_chunk: usize,
    /// Test seam: runs on the pool worker at the start of every admitted
    /// query, before evaluation, with the query's [`CancelToken`]. The
    /// concurrency suite parks here to saturate admission control and to
    /// guarantee a query is still running when its deadline fires — fully
    /// deterministic overload/timeout tests, no sleeps-as-synchronization.
    pub on_query_start: Option<QueryStartHook>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            threads: None,
            max_inflight: 64,
            deadline: None,
            max_request_bytes: 64 * 1024,
            query_chunk: 256,
            on_query_start: None,
        }
    }
}

impl std::fmt::Debug for ServerConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerConfig")
            .field("threads", &self.threads)
            .field("max_inflight", &self.max_inflight)
            .field("deadline", &self.deadline)
            .field("max_request_bytes", &self.max_request_bytes)
            .field("query_chunk", &self.query_chunk)
            .field("on_query_start", &self.on_query_start.is_some())
            .finish()
    }
}

/// Everything the acceptor, the connection handlers and the pool jobs
/// share.
struct Shared {
    schema: Arc<Schema>,
    epochs: EpochManager,
    admission: Admission,
    pool: ParPool,
    config: ServerConfig,
    stop: AtomicBool,
    served: AtomicUsize,
    started: Instant,
}

/// A bound, not-yet-running server. [`run`](Server::run) blocks the calling
/// thread in the accept loop; [`spawn`](Server::spawn) runs it on its own
/// thread and returns a [`ServerHandle`] for tests and embedders.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral test port) and
    /// freezes `db` as epoch zero.
    pub fn bind(db: UncertainDatabase, addr: &str, config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let pool = match config.threads {
            Some(n) => ParPool::new(n),
            None => ParPool::with_available_parallelism(),
        };
        let shared = Arc::new(Shared {
            schema: db.schema().clone(),
            epochs: EpochManager::new(db, pool.clone()),
            admission: Admission::new(config.max_inflight),
            pool,
            config,
            stop: AtomicBool::new(false),
            served: AtomicUsize::new(0),
            started: Instant::now(),
        });
        Ok(Server { listener, shared })
    }

    /// The bound address (the ephemeral port after binding `:0`).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The query pool (shared with every connection's batch evaluation).
    pub fn pool(&self) -> &ParPool {
        &self.shared.pool
    }

    /// Accepts connections until [`ServerHandle::shutdown`] trips the stop
    /// flag, one handler thread per connection. A failed accept is counted
    /// and skipped — a misbehaving client must never kill the acceptor.
    pub fn run(&self) -> io::Result<()> {
        for conn in self.listener.incoming() {
            if self.shared.stop.load(Ordering::Relaxed) {
                break;
            }
            match conn {
                Ok(stream) => {
                    let shared = self.shared.clone();
                    std::thread::Builder::new()
                        .name("cqa-serve-conn".to_string())
                        .spawn(move || handle_connection(shared, stream))?;
                }
                Err(_) => {
                    cqa_obs::count!("serve.accept_errors");
                }
            }
        }
        Ok(())
    }

    /// Runs the accept loop on its own thread, returning a handle that can
    /// shut it down.
    pub fn spawn(self) -> io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let shared = self.shared.clone();
        let thread = std::thread::Builder::new()
            .name("cqa-serve-acceptor".to_string())
            .spawn(move || {
                let _ = self.run();
            })?;
        Ok(ServerHandle {
            addr,
            shared,
            thread,
        })
    }
}

/// A running server's control handle.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    thread: JoinHandle<()>,
}

impl ServerHandle {
    /// The address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The currently published epoch.
    pub fn epoch(&self) -> u64 {
        self.shared.epochs.epoch()
    }

    /// Queries answered so far (all connections).
    pub fn served(&self) -> usize {
        self.shared.served.load(Ordering::Relaxed)
    }

    /// Stops the acceptor and joins its thread. Open connections keep their
    /// handler threads until the client side closes; tests close their
    /// clients first.
    pub fn shutdown(self) {
        self.shared.stop.store(true, Ordering::Relaxed);
        // Unblock the accept call with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        let _ = self.thread.join();
    }
}

/// One bounded request line.
enum Line {
    /// A complete (or final unterminated) line, without its terminator.
    Request(Vec<u8>),
    /// The line exceeded the byte bound before a newline appeared.
    TooLong,
    /// Clean end of stream.
    Eof,
}

/// Reads one `\n`-terminated line of at most `max` bytes. The bound is
/// enforced *while reading* (via [`Read::take`]), so a hostile client
/// cannot balloon memory with a newline-free stream.
fn read_request_line(reader: &mut impl BufRead, max: usize) -> io::Result<Line> {
    let mut buf = Vec::new();
    let n = reader
        .by_ref()
        .take(max as u64 + 1)
        .read_until(b'\n', &mut buf)?;
    if n == 0 {
        return Ok(Line::Eof);
    }
    if buf.last() == Some(&b'\n') {
        buf.pop();
        if buf.last() == Some(&b'\r') {
            buf.pop();
        }
        return Ok(Line::Request(buf));
    }
    if buf.len() > max {
        return Ok(Line::TooLong);
    }
    // EOF before a newline: serve the truncated request; the next read
    // reports Eof and the handler exits.
    Ok(Line::Request(buf))
}

/// What one request line asks the connection to do next.
enum Dispatch {
    /// No response (blank line or pure comment).
    Silent,
    /// Respond with this line and keep going.
    Respond(String),
    /// Respond with this line, then close the connection.
    Close(String),
}

fn handle_connection(shared: Arc<Shared>, stream: TcpStream) {
    cqa_obs::count!("serve.connections");
    // One-line responses must not sit in Nagle's buffer waiting for a
    // delayed ACK — that turns sub-millisecond queries into ~40ms round
    // trips on loopback.
    let _ = stream.set_nodelay(true);
    // IO errors mean the client is gone; nothing to report, nothing to
    // wedge — the handler simply ends.
    let _ = serve_connection(&shared, stream);
}

fn serve_connection(shared: &Arc<Shared>, stream: TcpStream) -> io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    let mut request_no = 0usize;
    let mut first = true;
    loop {
        let line = match read_request_line(&mut reader, shared.config.max_request_bytes)? {
            Line::Eof => return Ok(()),
            Line::TooLong => {
                cqa_obs::count!("serve.protocol_errors");
                let message = format!(
                    "request exceeds {} bytes; closing connection",
                    shared.config.max_request_bytes
                );
                writeln!(writer, "{}", protocol::render_error("request", &message))?;
                return writer.flush();
            }
            Line::Request(bytes) => {
                if first && looks_like_http(&bytes) {
                    return serve_http(shared, &bytes, &mut reader, &mut writer);
                }
                first = false;
                bytes
            }
        };
        let n = request_no + 1;
        // One request, one response — and a panic anywhere in parsing or
        // dispatch becomes an error response, never a dead connection.
        let dispatch = catch_unwind(AssertUnwindSafe(|| dispatch_line(shared, &line, n)))
            .unwrap_or_else(|_| {
                cqa_obs::count!("serve.handler_panics");
                Dispatch::Respond(protocol::render_error(
                    &format!("q{n}"),
                    "internal error while handling the request",
                ))
            });
        match dispatch {
            Dispatch::Silent => {}
            Dispatch::Respond(response) => {
                request_no = n;
                writeln!(writer, "{response}")?;
                writer.flush()?;
            }
            Dispatch::Close(response) => {
                writeln!(writer, "{response}")?;
                return writer.flush();
            }
        }
    }
}

/// Parses and executes one request line; `n` is its 1-based request number
/// on this connection (blank lines don't consume numbers).
fn dispatch_line(shared: &Arc<Shared>, line: &[u8], n: usize) -> Dispatch {
    let Ok(text) = std::str::from_utf8(line) else {
        cqa_obs::count!("serve.protocol_errors");
        return Dispatch::Respond(protocol::render_error(
            &format!("q{n}"),
            "request is not valid UTF-8",
        ));
    };
    match protocol::parse_request(&shared.schema, text, n) {
        Ok(None) => Dispatch::Silent,
        Err(e) => {
            cqa_obs::count!("serve.protocol_errors");
            Dispatch::Respond(protocol::render_error(&format!("q{n}"), &e))
        }
        Ok(Some(request)) => {
            cqa_obs::count!("serve.requests");
            match request {
                Request::Query { name, query } => {
                    Dispatch::Respond(execute_query(shared, name, query))
                }
                Request::Write(op) => Dispatch::Respond(execute_write(shared, &op, n)),
                Request::Subscribe { name, query } => {
                    Dispatch::Respond(match shared.epochs.subscribe(&name, &query) {
                        Ok(reading) => format!(
                            "ok: subscribed {name}, epoch {}, {} certain / {} possible",
                            reading.epoch, reading.certain, reading.possible
                        ),
                        Err(e) => protocol::render_error(&name, &e),
                    })
                }
                Request::View { name } => Dispatch::Respond(match shared.epochs.view(&name) {
                    Some(reading) => reading.line.clone(),
                    None => protocol::render_error(&name, &format!("unknown view `{name}`")),
                }),
                Request::Stats => Dispatch::Respond(stats::stats_line(
                    &shared.epochs.current(),
                    shared.served.load(Ordering::Relaxed),
                    shared.started,
                    shared.admission.inflight(),
                    shared.epochs.view_count(),
                    shared.epochs.pinned_epochs(),
                )),
                Request::Epoch => Dispatch::Respond(format!("epoch: {}", shared.epochs.epoch())),
                Request::Quit => Dispatch::Close("bye".to_string()),
            }
        }
    }
}

fn execute_write(shared: &Arc<Shared>, op: &WriteOp, n: usize) -> String {
    cqa_obs::count!("serve.writes");
    match shared.epochs.apply_write(op) {
        Ok(outcome) => {
            let verb = if !outcome.changed {
                "no-op"
            } else {
                match op {
                    WriteOp::Insert(_) => "inserted",
                    WriteOp::RemoveFact(_) => "removed",
                    WriteOp::RemoveBlock(_) => "removed block",
                }
            };
            format!("ok: {verb}, epoch {}", outcome.epoch)
        }
        Err(e) => protocol::render_error(&format!("q{n}"), &e),
    }
}

/// Admission control → pool dispatch → deadline-bounded wait.
fn execute_query(shared: &Arc<Shared>, name: String, query: ConjunctiveQuery) -> String {
    cqa_obs::count!("serve.queries");
    let Some(permit) = shared.admission.try_acquire() else {
        return protocol::render_error(
            &name,
            &format!(
                "overloaded: {} queries in flight (limit {}); retry later",
                shared.admission.inflight(),
                shared.admission.max()
            ),
        );
    };
    let deadline = shared.config.deadline.map(|d| Instant::now() + d);
    let token = Arc::new(CancelToken::new(deadline));
    let (tx, rx) = mpsc::channel();
    {
        let shared = shared.clone();
        let token = token.clone();
        let name = name.clone();
        shared.pool.clone().spawn(move || {
            // The permit rides with the job: the in-flight slot frees when
            // evaluation really ends, even if the handler timed out first.
            let _permit = permit;
            if let Some(hook) = &shared.config.on_query_start {
                hook(&token);
            }
            let result = answer_with_cancel(&shared, &name, &query, &token);
            let _ = tx.send(result);
        });
    }
    let received = match deadline {
        None => rx.recv().map_err(|_| RecvFailure::Panicked),
        Some(deadline) => rx.recv_timeout(remaining(deadline)).map_err(|e| match e {
            mpsc::RecvTimeoutError::Timeout => RecvFailure::DeadlineExceeded,
            mpsc::RecvTimeoutError::Disconnected => RecvFailure::Panicked,
        }),
    };
    match received {
        Ok(result) => {
            shared.served.fetch_add(1, Ordering::Relaxed);
            cqa_obs::count!("serve.served");
            protocol::render_result(&result)
        }
        Err(RecvFailure::DeadlineExceeded) => {
            // Trip the token so the worker abandons the query at its next
            // chunk boundary; its late result lands in a dropped channel.
            token.cancel();
            cqa_obs::count!("serve.deadline_exceeded");
            let budget = shared.config.deadline.unwrap_or_default();
            protocol::render_error(
                &name,
                &format!("deadline exceeded after {} ms", budget.as_millis()),
            )
        }
        Err(RecvFailure::Panicked) => {
            cqa_obs::count!("serve.query_panics");
            protocol::render_error(&name, "query evaluation panicked")
        }
    }
}

enum RecvFailure {
    DeadlineExceeded,
    Panicked,
}

fn remaining(deadline: Instant) -> Duration {
    deadline.saturating_duration_since(Instant::now())
}

/// Answers one query on the **current** epoch, checking the cancel token
/// between candidate chunks. The epoch is pinned once, up front: possible
/// answers and every certainty chunk read the same frozen snapshot, which
/// is exactly the no-torn-reads property the epoch-isolation test asserts.
fn answer_with_cancel(
    shared: &Shared,
    name: &str,
    query: &ConjunctiveQuery,
    token: &CancelToken,
) -> BatchResult {
    let engine: Arc<BatchEngine> = shared.epochs.current();
    if token.is_cancelled() {
        return cancelled(name);
    }
    if query.is_boolean() {
        // Boolean queries are one plan execution; the engine memoizes the
        // classified solver per query shape and records query_nanos itself.
        return engine.answer(name, query);
    }
    let started = Instant::now();
    let result = open_query_in_chunks(shared, &engine, name, query, token);
    cqa_obs::observe_duration!("par.batch.query_nanos", started.elapsed());
    result
}

/// The open-query path: enumerate candidates, then decide certainty in
/// chunks through the epoch-shared [`CertainAnswersEngine`] memo, honoring
/// cancellation between chunks.
fn open_query_in_chunks(
    shared: &Shared,
    engine: &BatchEngine,
    name: &str,
    query: &ConjunctiveQuery,
    token: &CancelToken,
) -> BatchResult {
    let db = engine.snapshot().database();
    let possible = match possible_answers(query, db) {
        Ok(possible) => possible,
        Err(e) => return failed(name, &e.to_string()),
    };
    let answers_engine = match shared.epochs.answer_engine(query) {
        Ok(answers_engine) => answers_engine,
        Err(e) => return failed(name, &e),
    };
    let tuples: Vec<Vec<cqa_data::Value>> = possible.iter().cloned().collect();
    let mut certain = BTreeSet::new();
    for chunk in tuples.chunks(shared.config.query_chunk.max(1)) {
        if token.is_cancelled() {
            cqa_obs::count!("serve.cancelled_mid_query");
            return cancelled(name);
        }
        match answers_engine.verdicts(db, chunk) {
            Ok(verdicts) => {
                for (tuple, verdict) in chunk.iter().zip(verdicts) {
                    if verdict {
                        certain.insert(tuple.clone());
                    }
                }
            }
            Err(e) => return failed(name, &e.to_string()),
        }
    }
    BatchResult {
        name: name.to_string(),
        outcome: BatchOutcome::Answers(AnswerSets { certain, possible }),
    }
}

fn cancelled(name: &str) -> BatchResult {
    failed(name, "cancelled: deadline exceeded")
}

fn failed(name: &str, message: &str) -> BatchResult {
    BatchResult {
        name: name.to_string(),
        outcome: BatchOutcome::Error(message.to_string()),
    }
}

// ---------------------------------------------------------------------------
// HTTP
// ---------------------------------------------------------------------------

fn looks_like_http(line: &[u8]) -> bool {
    [
        b"GET " as &[u8],
        b"POST ",
        b"HEAD ",
        b"PUT ",
        b"DELETE ",
        b"OPTIONS ",
    ]
    .iter()
    .any(|method| line.starts_with(method))
}

/// The persistent-connection loop: serve one exchange, then — if both
/// sides agreed to keep the socket alive — read the next request line and
/// go again. Anything that breaks framing (oversized headers, an unread
/// body, a non-HTTP line) closes the connection.
fn serve_http(
    shared: &Arc<Shared>,
    request_line: &[u8],
    reader: &mut impl BufRead,
    writer: &mut impl Write,
) -> io::Result<()> {
    let mut line = request_line.to_vec();
    loop {
        if !http_exchange(shared, &line, reader, writer)? {
            return Ok(());
        }
        cqa_obs::count!("serve.http_keepalive_reuses");
        match read_request_line(reader, shared.config.max_request_bytes)? {
            Line::Request(next) if looks_like_http(&next) => line = next,
            _ => return Ok(()),
        }
    }
}

/// One HTTP exchange: parse the request line and headers, serve
/// `GET /metrics`, `GET /view/<name>` or `POST /query`. Header count and
/// sizes are bounded; a body larger than `max_request_bytes` is refused
/// outright. Returns whether the connection stays open for another request.
fn http_exchange(
    shared: &Arc<Shared>,
    request_line: &[u8],
    reader: &mut impl BufRead,
    writer: &mut impl Write,
) -> io::Result<bool> {
    cqa_obs::count!("serve.http_requests");
    let line = String::from_utf8_lossy(request_line);
    let mut parts = line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let version = parts.next().unwrap_or("");
    let mut content_length = 0usize;
    let mut connection = String::new();
    for _ in 0..64 {
        match read_request_line(reader, 8 * 1024)? {
            Line::Request(header) if header.is_empty() => break,
            Line::Request(header) => {
                let header = String::from_utf8_lossy(&header);
                if let Some((key, value)) = header.split_once(':') {
                    if key.trim().eq_ignore_ascii_case("content-length") {
                        content_length = value.trim().parse().unwrap_or(0);
                    } else if key.trim().eq_ignore_ascii_case("connection") {
                        connection = value.trim().to_ascii_lowercase();
                    }
                }
            }
            Line::TooLong => {
                // Framing can't be trusted past an oversized header: close.
                http_response(writer, 431, "Request Header Fields Too Large", false)?;
                return Ok(false);
            }
            Line::Eof => return Ok(false),
        }
    }
    // RFC 9112 persistence: HTTP/1.1 keeps the socket open unless the
    // client says `Connection: close`; older versions only on an explicit
    // `keep-alive`.
    let keep_alive = if connection.contains("close") {
        false
    } else {
        connection.contains("keep-alive") || version == "HTTP/1.1"
    };
    match (method, path) {
        ("GET", "/metrics") => {
            shared.pool.record_metrics();
            cqa_obs::gauge_set!("serve.epoch", shared.epochs.epoch() as i64);
            cqa_obs::gauge_set!("serve.epochs.pinned", shared.epochs.pinned_epochs() as i64);
            cqa_obs::gauge_set!("serve.views.registered", shared.epochs.view_count() as i64);
            let body = cqa_obs::Registry::global().snapshot().render_prometheus();
            http_response_body(writer, 200, "OK", &body, keep_alive)?;
            Ok(keep_alive)
        }
        ("GET", _) if path.starts_with("/view/") => {
            let name = &path["/view/".len()..];
            match shared.epochs.view(name) {
                Some(reading) => http_response_body(
                    writer,
                    200,
                    "OK",
                    &format!("{}\n", reading.line),
                    keep_alive,
                )?,
                None => http_response(writer, 404, "Not Found", keep_alive)?,
            }
            Ok(keep_alive)
        }
        ("POST", "/query") => {
            if content_length > shared.config.max_request_bytes {
                // The oversized body is never read; the framing is gone.
                http_response(writer, 413, "Payload Too Large", false)?;
                return Ok(false);
            }
            let mut body = vec![0u8; content_length];
            reader.read_exact(&mut body)?;
            let text = String::from_utf8_lossy(&body);
            let line = text.lines().next().unwrap_or("");
            let response = match catch_unwind(AssertUnwindSafe(|| {
                dispatch_line(shared, line.as_bytes(), 1)
            })) {
                Ok(Dispatch::Silent) => String::new(),
                Ok(Dispatch::Respond(r) | Dispatch::Close(r)) => r,
                Err(_) => {
                    cqa_obs::count!("serve.handler_panics");
                    protocol::render_error("q1", "internal error while handling the request")
                }
            };
            http_response_body(writer, 200, "OK", &format!("{response}\n"), keep_alive)?;
            Ok(keep_alive)
        }
        _ => {
            // An unknown target with an unread body breaks framing: close.
            let reusable = keep_alive && content_length == 0;
            http_response(writer, 404, "Not Found", reusable)?;
            Ok(reusable)
        }
    }
}

fn http_response(
    writer: &mut impl Write,
    status: u16,
    reason: &str,
    keep_alive: bool,
) -> io::Result<()> {
    http_response_body(writer, status, reason, &format!("{reason}\n"), keep_alive)
}

fn http_response_body(
    writer: &mut impl Write,
    status: u16,
    reason: &str,
    body: &str,
    keep_alive: bool,
) -> io::Result<()> {
    write!(
        writer,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: text/plain; charset=utf-8\r\n\
         Content-Length: {}\r\nConnection: {}\r\n\r\n{body}",
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    )?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_line_reads_enforce_the_cap_while_reading() {
        let mut input: &[u8] = b"short\nway too long for the cap\nnext\n";
        let mut reader = BufReader::new(&mut input);
        assert!(matches!(
            read_request_line(&mut reader, 10).unwrap(),
            Line::Request(line) if line == b"short"
        ));
        assert!(matches!(
            read_request_line(&mut reader, 10).unwrap(),
            Line::TooLong
        ));
        // A truncated final line (no newline before EOF) is still served.
        let mut input: &[u8] = b"tail without newline";
        let mut reader = BufReader::new(&mut input);
        assert!(matches!(
            read_request_line(&mut reader, 1024).unwrap(),
            Line::Request(line) if line == b"tail without newline"
        ));
        assert!(matches!(
            read_request_line(&mut reader, 1024).unwrap(),
            Line::Eof
        ));
        // CRLF is stripped like LF.
        let mut input: &[u8] = b"crlf line\r\n";
        let mut reader = BufReader::new(&mut input);
        assert!(matches!(
            read_request_line(&mut reader, 1024).unwrap(),
            Line::Request(line) if line == b"crlf line"
        ));
    }

    #[test]
    fn http_detection_only_matches_method_prefixes() {
        assert!(looks_like_http(b"GET /metrics HTTP/1.1"));
        assert!(looks_like_http(b"POST /query HTTP/1.1"));
        assert!(!looks_like_http(b"certain q :- R(x, y)"));
        assert!(!looks_like_http(b"GETTY(x)"));
        assert!(!looks_like_http(b"\\stats"));
    }
}
