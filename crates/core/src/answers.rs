//! Certain answers to non-Boolean conjunctive queries.
//!
//! The paper restricts attention to Boolean queries, noting that the
//! restriction "is not fundamental" (Section 3). This module provides the
//! natural non-Boolean extension a database user expects: the **certain
//! answers** of a query with free variables are the tuples that are answers
//! in *every* repair. A tuple is a candidate only if it is an answer on the
//! full database (answers are monotone), and a candidate is certain iff the
//! Boolean query obtained by substituting it for the free variables is
//! certain — which is decided by the classified solvers of
//! [`crate::solvers`].

use crate::solvers::{CertaintyEngine, CertaintySolver};
use cqa_data::{UncertainDatabase, Value};
use cqa_exec::PlanCache;
use cqa_query::{substitute, ConjunctiveQuery, QueryError};
use std::collections::BTreeSet;
use std::sync::OnceLock;

/// Process-wide memo of compiled satisfaction plans: repeated
/// [`certain_answers`] calls for the same `(schema, query)` — a CLI loop, a
/// service answering the same query against evolving data — compile once.
/// Shared with the `cqa-par` batch engine so the sequential and parallel
/// paths amortize the same compilations.
pub fn shared_plan_cache() -> &'static PlanCache {
    static CACHE: OnceLock<PlanCache> = OnceLock::new();
    CACHE.get_or_init(PlanCache::new)
}

/// The certain answers (and, for context, the possible answers) of a query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AnswerSets {
    /// Tuples that are answers in **every** repair.
    pub certain: BTreeSet<Vec<Value>>,
    /// Tuples that are answers in **some** repair (equivalently, answers on
    /// the database itself, by monotonicity of conjunctive queries).
    pub possible: BTreeSet<Vec<Value>>,
}

/// Computes the certain answers of a (possibly non-Boolean) conjunctive
/// query without self-joins.
///
/// For a Boolean query the result contains the empty tuple iff the query is
/// certain.
pub fn certain_answers(
    query: &ConjunctiveQuery,
    db: &UncertainDatabase,
) -> Result<AnswerSets, QueryError> {
    let possible = possible_answers(query, db)?;
    let free = query.free_vars().to_vec();
    let mut certain = BTreeSet::new();
    for tuple in &possible {
        if tuple_is_certain(query, &free, tuple, db)? {
            certain.insert(tuple.clone());
        }
    }
    Ok(AnswerSets { certain, possible })
}

/// The **possible answers** of the query: tuples that are answers on `db`
/// itself — equivalently, answers in *some* repair (conjunctive queries are
/// monotone). These are exactly the candidates for certainty; the parallel
/// layer shards this set across threads.
///
/// Evaluated through the compiled join plan of the process-wide
/// [`shared_plan_cache`] (`cqa_query::eval` remains the reference; the
/// property suite keeps them identical).
pub fn possible_answers(
    query: &ConjunctiveQuery,
    db: &UncertainDatabase,
) -> Result<BTreeSet<Vec<Value>>, QueryError> {
    query.require_self_join_free()?;
    let index = db.index();
    Ok(shared_plan_cache()
        .plan(query, Some(index.statistics()))
        .answers(db))
}

/// Decides certainty of one candidate tuple: the Boolean query obtained by
/// substituting `tuple` for `free` must be certain. This per-candidate step
/// is what [`certain_answers`] runs in a loop and the parallel layer runs on
/// worker threads.
pub fn tuple_is_certain(
    query: &ConjunctiveQuery,
    free: &[cqa_query::Variable],
    tuple: &[Value],
    db: &UncertainDatabase,
) -> Result<bool, QueryError> {
    let grounded = substitute::substitute_seq(query, free, tuple);
    let engine = CertaintyEngine::new(&grounded)?;
    Ok(engine.is_certain(db))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_query::{catalog, Term, Variable};

    #[test]
    fn conference_certain_answers() {
        // q(x) :- C(x, y, 'Rome'), R(x, 'A'): which conferences certainly put
        // an A-ranked event in Rome?
        let boolean = catalog::conference();
        let schema = boolean.query.schema().clone();
        let query = ConjunctiveQuery::builder(schema)
            .atom(
                "C",
                [Term::var("x"), Term::var("y"), Term::constant("Rome")],
            )
            .atom("R", [Term::var("x"), Term::constant("A")])
            .free([Variable::new("x")])
            .build()
            .unwrap();
        let db = catalog::conference_database();
        let answers = certain_answers(&query, &db).unwrap();
        // Possible: PODS (if Rome repair chosen) and KDD (if rank-A repair chosen).
        assert_eq!(answers.possible.len(), 2);
        // Certain: neither — PODS may be in Paris, KDD may be rank B.
        assert!(answers.certain.is_empty());

        // Resolve KDD's rank to A: KDD becomes a certain answer.
        let mut fixed = db.clone();
        let r = fixed.schema().relation_id("R").unwrap();
        fixed.remove_fact(&cqa_data::Fact::new(
            r,
            vec![Value::str("KDD"), Value::str("B")],
        ));
        let answers = certain_answers(&query, &fixed).unwrap();
        assert_eq!(
            answers.certain,
            [vec![Value::str("KDD")]].into_iter().collect()
        );
        assert_eq!(answers.possible.len(), 2);
    }

    #[test]
    fn boolean_queries_reduce_to_the_empty_tuple() {
        let q = catalog::conference().query;
        let db = catalog::conference_database();
        let answers = certain_answers(&q, &db).unwrap();
        assert!(answers.certain.is_empty());
        assert_eq!(answers.possible.len(), 1);
        // On a certain instance, the empty tuple is a certain answer.
        let mut fixed = db.clone();
        let c = fixed.schema().relation_id("C").unwrap();
        fixed.remove_fact(&cqa_data::Fact::new(
            c,
            vec![Value::str("PODS"), Value::str("2016"), Value::str("Paris")],
        ));
        let answers = certain_answers(&q, &fixed).unwrap();
        assert_eq!(answers.certain.len(), 1);
        assert!(answers.certain.contains(&Vec::new()));
    }

    #[test]
    fn certain_answers_are_a_subset_of_possible_answers() {
        let schema = cqa_data::Schema::from_relations([("R", 2, 1), ("S", 2, 1)])
            .unwrap()
            .into_shared();
        let query = ConjunctiveQuery::builder(schema.clone())
            .atom("R", [Term::var("x"), Term::var("y")])
            .atom("S", [Term::var("y"), Term::var("z")])
            .free([Variable::new("x")])
            .build()
            .unwrap();
        let mut db = UncertainDatabase::new(schema);
        db.insert_values("R", ["a", "b"]).unwrap();
        db.insert_values("R", ["c", "b"]).unwrap();
        db.insert_values("R", ["c", "dangling"]).unwrap();
        db.insert_values("S", ["b", "t"]).unwrap();
        let answers = certain_answers(&query, &db).unwrap();
        assert!(answers.certain.is_subset(&answers.possible));
        // a is certain (its only R tuple joins); c is possible but not certain
        // (its block may choose the dangling tuple).
        assert!(answers.certain.contains(&vec![Value::str("a")]));
        assert!(!answers.certain.contains(&vec![Value::str("c")]));
        assert!(answers.possible.contains(&vec![Value::str("c")]));
    }
}
