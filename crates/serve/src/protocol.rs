//! The line protocol: newline-delimited requests, one response line each.
//!
//! ## Grammar
//!
//! ```text
//! request      := query | command | blank
//! query        := ["certain "] [name ["(" vars ")"]] [":-"] atoms
//! command      := "\stats" | "\epoch" | "\quit"
//!               | "\insert " fact | "\remove " fact | "\remove-block " fact
//!               | "\subscribe " name query | "\view " name
//! fact         := RelName "(" const ("," const)* ")"
//! blank        := ""            # comments ('#' to end of line) are stripped
//! ```
//!
//! Query lines are exactly the `certainty serve` stdin format
//! ([`cqa_parser::parse_query_line`]); an unnamed query gets the
//! synthesized name `q<n>` where `n` counts the connection's requests
//! from 1. Blank lines (and pure comments) produce **no** response; every
//! other request produces **exactly one** response line:
//!
//! ```text
//! name: certain (possible: true, solver: rewriting)      # Boolean query
//! name: 2 certain / 5 possible; certain: (a, 1), (b, 2)  # open query
//! name: error: <explanation>                             # any failure
//! ok: inserted, epoch 4                                  # effective write
//! ok: no-op, epoch 4                                     # ineffective write
//! ok: subscribed v, epoch 4, 2 certain / 5 possible      # \subscribe
//! v: 2 certain / 5 possible; certain: (a, 1), (b, 2)     # \view (query shape)
//! epoch: 4                                               # \epoch
//! stats: 512 served, 3483.4 qps, p50 0.066 ms, ...       # \stats
//! bye                                                    # \quit, then close
//! ```
//!
//! The single-line framing is what makes the concurrency tests'
//! byte-equality assertion meaningful: a response can be compared whole
//! against the single-threaded reference engine's rendering.

use cqa_data::{Fact, Schema};
use cqa_par::{BatchOutcome, BatchResult};
use cqa_parser::{parse_fact_line, parse_query_line};
use cqa_query::ConjunctiveQuery;
use std::fmt::Write as _;
use std::sync::Arc;

/// One parsed request of the line protocol.
#[derive(Clone, Debug)]
pub enum Request {
    /// A query to answer on the current epoch.
    Query {
        /// The query's name (given, or synthesized as `q<request_no>`).
        name: String,
        /// The parsed conjunctive query.
        query: ConjunctiveQuery,
    },
    /// `\insert` / `\remove` / `\remove-block`: a mutation that builds the
    /// next epoch.
    Write(WriteOp),
    /// `\stats`: one serving-stats line.
    Stats,
    /// `\epoch`: the current epoch number.
    Epoch,
    /// `\subscribe <name> <query>`: register a materialized view and
    /// publish its first reading with the current epoch.
    Subscribe {
        /// The view's name (the first word after the verb).
        name: String,
        /// The conjunctive query the view materializes.
        query: ConjunctiveQuery,
    },
    /// `\view <name>`: the named view's current reading, rendered exactly
    /// like a query response.
    View {
        /// The view's name.
        name: String,
    },
    /// `\quit`: say `bye` and close the connection.
    Quit,
}

/// A write request against the master database.
#[derive(Clone, Debug)]
pub enum WriteOp {
    /// Insert the fact (no-op if already present).
    Insert(Fact),
    /// Remove exactly the fact (no-op if absent).
    RemoveFact(Fact),
    /// Remove the fact's whole block (no-op if absent).
    RemoveBlock(Fact),
}

/// Parses one request line. Returns `Ok(None)` for blank lines and pure
/// comments (which produce no response), `Err` for malformed requests (the
/// error text becomes the response). `request_no` (1-based, per connection)
/// names unnamed queries and line-stamps parse errors.
pub fn parse_request(
    schema: &Arc<Schema>,
    line: &str,
    request_no: usize,
) -> Result<Option<Request>, String> {
    let text = line.split('#').next().unwrap_or("").trim();
    if text.is_empty() {
        return Ok(None);
    }
    if let Some(command) = text.strip_prefix('\\') {
        return match command.split_once(' ') {
            None => match command {
                "stats" => Ok(Some(Request::Stats)),
                "epoch" => Ok(Some(Request::Epoch)),
                "quit" => Ok(Some(Request::Quit)),
                "subscribe" => Err("\\subscribe: usage: \\subscribe <name> <query>".into()),
                "view" => Err("\\view: usage: \\view <name>".into()),
                other => Err(format!("unknown command `\\{other}`")),
            },
            Some((verb, rest)) => {
                let fact = |verb: &str| {
                    parse_fact_line(schema, rest, request_no).map_err(|e| format!("\\{verb}: {e}"))
                };
                match verb {
                    "insert" => Ok(Some(Request::Write(WriteOp::Insert(fact("insert")?)))),
                    "remove" => Ok(Some(Request::Write(WriteOp::RemoveFact(fact("remove")?)))),
                    "remove-block" => Ok(Some(Request::Write(WriteOp::RemoveBlock(fact(
                        "remove-block",
                    )?)))),
                    "subscribe" => {
                        let (name, body) = rest
                            .trim()
                            .split_once(' ')
                            .ok_or("\\subscribe: usage: \\subscribe <name> <query>")?;
                        // The view keeps the subscriber's chosen name; the
                        // query text's own head name (if any) is discarded.
                        let (_, query) = parse_query_line(schema, body.trim(), request_no)
                            .map_err(|e| format!("\\subscribe: {e}"))?;
                        Ok(Some(Request::Subscribe {
                            name: name.to_string(),
                            query,
                        }))
                    }
                    "view" => {
                        let name = rest.trim();
                        if name.is_empty() || name.contains(' ') {
                            return Err("\\view: usage: \\view <name>".into());
                        }
                        Ok(Some(Request::View {
                            name: name.to_string(),
                        }))
                    }
                    other => Err(format!("unknown command `\\{other}`")),
                }
            }
        };
    }
    let text = text.strip_prefix("certain ").unwrap_or(text).trim();
    let (name, query) = parse_query_line(schema, text, request_no).map_err(|e| e.to_string())?;
    Ok(Some(Request::Query { name, query }))
}

/// Renders one batch result as the protocol's single response line. Shared
/// by the server and by the test suite's single-threaded reference, so
/// byte-equality compares evaluation, not formatting.
pub fn render_result(result: &BatchResult) -> String {
    let mut out = String::new();
    match &result.outcome {
        BatchOutcome::Boolean {
            certain,
            possible,
            solver,
        } => {
            let _ = write!(
                out,
                "{}: {} (possible: {possible}, solver: {solver})",
                result.name,
                if *certain { "certain" } else { "not certain" },
            );
        }
        BatchOutcome::Answers(sets) => {
            let _ = write!(
                out,
                "{}: {} certain / {} possible",
                result.name,
                sets.certain.len(),
                sets.possible.len()
            );
            if !sets.certain.is_empty() {
                let rendered: Vec<String> = sets
                    .certain
                    .iter()
                    .map(|tuple| {
                        let cells: Vec<String> = tuple.iter().map(|v| v.to_string()).collect();
                        format!("({})", cells.join(", "))
                    })
                    .collect();
                let _ = write!(out, "; certain: {}", rendered.join(", "));
            }
        }
        BatchOutcome::Error(e) => {
            let _ = write!(out, "{}: error: {}", result.name, single_line(e));
        }
    }
    out
}

/// Renders an error response for a request that never produced a
/// [`BatchResult`] (parse failures, overload, deadline).
pub fn render_error(name: &str, message: &str) -> String {
    format!("{name}: error: {}", single_line(message))
}

/// Collapses embedded newlines so every response stays one line — a
/// multi-line error message must not desynchronize the protocol framing.
fn single_line(text: &str) -> String {
    if text.contains(['\n', '\r']) {
        text.replace(['\n', '\r'], " ")
    } else {
        text.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_core::answers::AnswerSets;
    use cqa_data::Value;
    use std::collections::BTreeSet;

    fn schema() -> Arc<Schema> {
        Schema::from_relations([("R", 2, 1)]).unwrap().into_shared()
    }

    #[test]
    fn requests_parse_by_kind() {
        let schema = schema();
        assert!(parse_request(&schema, "", 1).unwrap().is_none());
        assert!(parse_request(&schema, "  # just a comment", 1)
            .unwrap()
            .is_none());
        assert!(matches!(
            parse_request(&schema, "\\stats", 1),
            Ok(Some(Request::Stats))
        ));
        assert!(matches!(
            parse_request(&schema, "\\epoch", 1),
            Ok(Some(Request::Epoch))
        ));
        assert!(matches!(
            parse_request(&schema, "\\quit", 1),
            Ok(Some(Request::Quit))
        ));
        assert!(matches!(
            parse_request(&schema, "\\insert R(a, 1)", 1),
            Ok(Some(Request::Write(WriteOp::Insert(_))))
        ));
        assert!(matches!(
            parse_request(&schema, "\\remove R(a, 1)", 1),
            Ok(Some(Request::Write(WriteOp::RemoveFact(_))))
        ));
        assert!(matches!(
            parse_request(&schema, "\\remove-block R(a, 1)", 1),
            Ok(Some(Request::Write(WriteOp::RemoveBlock(_))))
        ));
        let Ok(Some(Request::Subscribe { name, query })) =
            parse_request(&schema, "\\subscribe keys q(x) :- R(x, y)", 1)
        else {
            panic!("expected a subscription");
        };
        assert_eq!(name, "keys");
        assert_eq!(query.free_vars().len(), 1);
        assert!(matches!(
            parse_request(&schema, "\\view keys", 1),
            Ok(Some(Request::View { name })) if name == "keys"
        ));
        let Ok(Some(Request::Query { name, query })) =
            parse_request(&schema, "certain q(x) :- R(x, y)", 1)
        else {
            panic!("expected a query");
        };
        assert_eq!(name, "q");
        assert_eq!(query.free_vars().len(), 1);
        // Unnamed queries are numbered by request, not by document line.
        let Ok(Some(Request::Query { name, .. })) = parse_request(&schema, "R(x, y)", 7) else {
            panic!("expected a query");
        };
        assert_eq!(name, "q7");
    }

    #[test]
    fn malformed_requests_become_errors_not_panics() {
        let schema = schema();
        assert!(parse_request(&schema, "\\nope", 1).is_err());
        assert!(parse_request(&schema, "\\insert T(a)", 1).is_err());
        assert!(parse_request(&schema, "\\insert R(a)", 1).is_err());
        assert!(parse_request(&schema, "q :- T(x)", 1).is_err());
        assert!(parse_request(&schema, "((((", 1).is_err());
        assert!(parse_request(&schema, "\\subscribe", 1).is_err());
        assert!(parse_request(&schema, "\\subscribe lonely", 1).is_err());
        assert!(parse_request(&schema, "\\subscribe v T(x)", 1).is_err());
        assert!(parse_request(&schema, "\\view", 1).is_err());
        assert!(parse_request(&schema, "\\view two words", 1).is_err());
    }

    #[test]
    fn responses_render_as_single_lines() {
        let boolean = BatchResult {
            name: "q1".into(),
            outcome: BatchOutcome::Boolean {
                certain: true,
                possible: true,
                solver: "rewriting",
            },
        };
        assert_eq!(
            render_result(&boolean),
            "q1: certain (possible: true, solver: rewriting)"
        );
        let mut certain = BTreeSet::new();
        certain.insert(vec![Value::str("a"), Value::Int(1)]);
        let answers = BatchResult {
            name: "q2".into(),
            outcome: BatchOutcome::Answers(AnswerSets {
                certain,
                possible: (0..3)
                    .map(|i| vec![Value::str("a"), Value::Int(i)])
                    .collect(),
            }),
        };
        assert_eq!(
            render_result(&answers),
            "q2: 1 certain / 3 possible; certain: (a, 1)"
        );
        let error = BatchResult {
            name: "q3".into(),
            outcome: BatchOutcome::Error("multi\nline\rmessage".into()),
        };
        let line = render_result(&error);
        assert_eq!(line, "q3: error: multi line message");
        assert_eq!(render_error("q4", "busy\n"), "q4: error: busy ");
    }
}
