//! Join trees and the Connectedness Condition (Section 3).
//!
//! A join tree for a conjunctive query `q` is an undirected tree whose
//! vertices are the atoms of `q` such that whenever a variable `x` occurs in
//! two atoms `F` and `G`, `x` occurs in every atom on the unique path linking
//! `F` and `G` (the **Connectedness Condition**). A query is **acyclic** iff
//! it has a join tree.
//!
//! Construction uses the classical maximum-weight-spanning-tree
//! characterisation (Bernstein–Goodman / Maier): weight every pair of atoms
//! by the number of shared variables, compute a maximum-weight spanning tree
//! of the complete graph, and check the Connectedness Condition; the query is
//! acyclic iff the check succeeds. The independent GYO test in [`crate::gyo`]
//! cross-validates this construction in the test suite.

use crate::{AtomId, ConjunctiveQuery, Variable};
use cqa_graph::spanning::{maximum_spanning_tree, Tree};
use std::collections::BTreeSet;
use std::fmt;

/// A join tree for an acyclic conjunctive query.
///
/// Vertices are [`AtomId`]s; each edge carries its label
/// `vars(F) ∩ vars(G)` as in the paper's `F —L— G` notation.
#[derive(Clone, Debug)]
pub struct JoinTree {
    tree: Tree,
    /// `labels[i][j]` is only stored for tree edges, canonicalised `(min, max)`.
    labels: Vec<((AtomId, AtomId), BTreeSet<Variable>)>,
}

impl JoinTree {
    /// Builds a join tree for `query`, or returns `None` if the query is
    /// cyclic (has no join tree).
    pub fn build(query: &ConjunctiveQuery) -> Option<JoinTree> {
        let n = query.len();
        let var_sets: Vec<BTreeSet<Variable>> = query.atoms().iter().map(|a| a.vars()).collect();
        let weight =
            |i: usize, j: usize| -> i64 { var_sets[i].intersection(&var_sets[j]).count() as i64 };
        let tree = maximum_spanning_tree(n, weight);
        let candidate = JoinTree::from_tree(query, tree);
        candidate
            .satisfies_connectedness(query)
            .then_some(candidate)
    }

    /// Wraps an explicit spanning tree (vertices = atom ids) as a join-tree
    /// candidate, computing edge labels. The Connectedness Condition is *not*
    /// checked; use [`JoinTree::satisfies_connectedness`].
    pub fn from_tree(query: &ConjunctiveQuery, tree: Tree) -> JoinTree {
        let labels = tree
            .edges()
            .iter()
            .map(|&(a, b)| {
                let label: BTreeSet<Variable> = query
                    .atom(a)
                    .vars()
                    .intersection(&query.atom(b).vars())
                    .cloned()
                    .collect();
                ((a.min(b), a.max(b)), label)
            })
            .collect();
        JoinTree { tree, labels }
    }

    /// Number of vertices (= atoms of the query).
    pub fn len(&self) -> usize {
        self.tree.len()
    }

    /// True iff the query had no atoms.
    pub fn is_empty(&self) -> bool {
        self.tree.is_empty()
    }

    /// The edges of the join tree with their labels.
    pub fn labeled_edges(&self) -> impl Iterator<Item = (AtomId, AtomId, &BTreeSet<Variable>)> {
        self.labels.iter().map(|((a, b), l)| (*a, *b, l))
    }

    /// The label of the edge `{a, b}`, if it is a tree edge.
    pub fn edge_label(&self, a: AtomId, b: AtomId) -> Option<&BTreeSet<Variable>> {
        let key = (a.min(b), a.max(b));
        self.labels.iter().find(|(e, _)| *e == key).map(|(_, l)| l)
    }

    /// The vertices on the unique path from `from` to `to` (inclusive).
    pub fn path(&self, from: AtomId, to: AtomId) -> Vec<AtomId> {
        self.tree.path(from, to).expect("join tree is connected")
    }

    /// The labels along the unique path from `from` to `to`.
    ///
    /// This is the sequence `L1, ..., Lm` used in Definition 3 to decide
    /// whether `F` attacks `G`.
    pub fn path_labels(&self, from: AtomId, to: AtomId) -> Vec<&BTreeSet<Variable>> {
        self.tree
            .path_edges(from, to)
            .expect("join tree is connected")
            .into_iter()
            .map(|(a, b)| self.edge_label(a, b).expect("path edges are tree edges"))
            .collect()
    }

    /// Checks the Connectedness Condition: for every variable `x`, the atoms
    /// containing `x` induce a connected subtree.
    pub fn satisfies_connectedness(&self, query: &ConjunctiveQuery) -> bool {
        for var in query.vars() {
            let holders: Vec<AtomId> = query.atoms_containing(&var);
            if holders.len() <= 1 {
                continue;
            }
            // In a forest, the subgraph induced by `holders` is connected iff
            // it has exactly |holders| - 1 edges with both endpoints holding x.
            let edge_count = self
                .labels
                .iter()
                .filter(|(_, label)| label.contains(&var))
                .count();
            if edge_count != holders.len() - 1 {
                return false;
            }
        }
        true
    }
}

impl fmt::Display for JoinTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (a, b, label) in self.labeled_edges() {
            write!(f, "{a} --{{")?;
            for (i, v) in label.iter().enumerate() {
                if i > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{v}")?;
            }
            writeln!(f, "}}-- {b}")?;
        }
        Ok(())
    }
}

/// True iff the query is acyclic, i.e. admits a join tree.
pub fn is_acyclic(query: &ConjunctiveQuery) -> bool {
    JoinTree::build(query).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ConjunctiveQuery, Term};
    use cqa_data::Schema;
    use std::sync::Arc;

    fn schema_q1() -> Arc<Schema> {
        Schema::from_relations([("R", 3, 1), ("S", 3, 1), ("T", 2, 1), ("P", 2, 1)])
            .unwrap()
            .into_shared()
    }

    /// q1 of Figure 2: {R(u,'a',x), S(y,x,z), T(x,y), P(x,z)}.
    fn q1() -> ConjunctiveQuery {
        ConjunctiveQuery::builder(schema_q1())
            .atom("R", [Term::var("u"), Term::constant("a"), Term::var("x")])
            .atom("S", [Term::var("y"), Term::var("x"), Term::var("z")])
            .atom("T", [Term::var("x"), Term::var("y")])
            .atom("P", [Term::var("x"), Term::var("z")])
            .build()
            .unwrap()
    }

    #[test]
    fn q1_is_acyclic_with_the_figure2_join_tree_shape() {
        let q = q1();
        let jt = JoinTree::build(&q).expect("q1 is acyclic");
        assert_eq!(jt.len(), 4);
        // S (atom 1) is the centre: it shares {x} with R, {x,y} with T, {x,z} with P.
        // A maximum-weight spanning tree must pick the weight-2 edges S-T and S-P,
        // plus a weight-1 edge attaching R.
        assert_eq!(
            jt.edge_label(1, 2).map(|l| l.len()),
            Some(2),
            "S-T edge labelled {{x,y}}"
        );
        assert_eq!(
            jt.edge_label(1, 3).map(|l| l.len()),
            Some(2),
            "S-P edge labelled {{x,z}}"
        );
        // Path from R (0) to T (2) passes through S (1), as in Figure 2.
        let path = jt.path(0, 2);
        assert!(path.contains(&1));
        let labels = jt.path_labels(0, 2);
        assert_eq!(labels.len(), path.len() - 1);
        assert!(jt.satisfies_connectedness(&q));
    }

    #[test]
    fn triangle_query_is_cyclic() {
        // C(3) = {R1(x1,x2), R2(x2,x3), R3(x3,x1)} is cyclic (no join tree).
        let schema = Schema::from_relations([("R1", 2, 1), ("R2", 2, 1), ("R3", 2, 1)])
            .unwrap()
            .into_shared();
        let q = ConjunctiveQuery::builder(schema)
            .atom("R1", [Term::var("x1"), Term::var("x2")])
            .atom("R2", [Term::var("x2"), Term::var("x3")])
            .atom("R3", [Term::var("x3"), Term::var("x1")])
            .build()
            .unwrap();
        assert!(JoinTree::build(&q).is_none());
        assert!(!is_acyclic(&q));
    }

    #[test]
    fn triangle_plus_all_variable_atom_is_acyclic() {
        // AC(3) adds S3(x1,x2,x3), which contains all variables, making the query acyclic.
        let schema =
            Schema::from_relations([("R1", 2, 1), ("R2", 2, 1), ("R3", 2, 1), ("S3", 3, 3)])
                .unwrap()
                .into_shared();
        let q = ConjunctiveQuery::builder(schema)
            .atom("R1", [Term::var("x1"), Term::var("x2")])
            .atom("R2", [Term::var("x2"), Term::var("x3")])
            .atom("R3", [Term::var("x3"), Term::var("x1")])
            .atom("S3", [Term::var("x1"), Term::var("x2"), Term::var("x3")])
            .build()
            .unwrap();
        let jt = JoinTree::build(&q).expect("AC(3) is acyclic");
        // S3 (atom 3) must be adjacent to every Ri in any join tree.
        for i in 0..3 {
            assert!(jt.edge_label(i, 3).is_some(), "S3 adjacent to atom {i}");
        }
        assert!(jt.satisfies_connectedness(&q));
    }

    #[test]
    fn single_atom_and_empty_queries_are_acyclic() {
        let schema = Schema::from_relations([("R", 2, 1)]).unwrap().into_shared();
        let single = ConjunctiveQuery::builder(schema.clone())
            .atom("R", [Term::var("x"), Term::var("y")])
            .build()
            .unwrap();
        assert!(is_acyclic(&single));
        assert_eq!(JoinTree::build(&single).unwrap().len(), 1);
        let empty = ConjunctiveQuery::boolean(schema, Vec::new()).unwrap();
        assert!(is_acyclic(&empty));
        assert!(JoinTree::build(&empty).unwrap().is_empty());
    }

    #[test]
    fn disconnected_queries_are_acyclic_with_empty_labels() {
        let schema = Schema::from_relations([("A", 1, 1), ("B", 1, 1)])
            .unwrap()
            .into_shared();
        let q = ConjunctiveQuery::builder(schema)
            .atom("A", [Term::var("u")])
            .atom("B", [Term::var("v")])
            .build()
            .unwrap();
        let jt = JoinTree::build(&q).expect("disconnected queries still have join trees");
        assert_eq!(jt.labeled_edges().count(), 1);
        let (_, _, label) = jt.labeled_edges().next().unwrap();
        assert!(label.is_empty());
    }

    #[test]
    fn path_queries_have_path_join_trees() {
        // R(x,y), S(y,z), T(z,w): the join tree must be the obvious path.
        let schema = Schema::from_relations([("R", 2, 1), ("S", 2, 1), ("T", 2, 1)])
            .unwrap()
            .into_shared();
        let q = ConjunctiveQuery::builder(schema)
            .atom("R", [Term::var("x"), Term::var("y")])
            .atom("S", [Term::var("y"), Term::var("z")])
            .atom("T", [Term::var("z"), Term::var("w")])
            .build()
            .unwrap();
        let jt = JoinTree::build(&q).unwrap();
        assert_eq!(jt.path(0, 2), vec![0, 1, 2]);
        let labels = jt.path_labels(0, 2);
        assert_eq!(labels[0].iter().next().unwrap().name(), "y");
        assert_eq!(labels[1].iter().next().unwrap().name(), "z");
    }
}
