//! # cqa-serve — the network serving layer
//!
//! Promotes the `certainty serve` stdin loop into a concurrent TCP server
//! that answers certain-query-answering traffic over a **live, mutating**
//! database — the "millions of users" story of the ROADMAP made concrete.
//!
//! One listener speaks two dialects, told apart by the first bytes of each
//! connection:
//!
//! * the **line protocol** — newline-delimited requests, one response line
//!   per request (grammar in [`protocol`]);
//! * minimal **HTTP/1.1** — `GET /metrics` renders the process-wide
//!   [`cqa_obs`] registry in the Prometheus text format, `GET /view/<name>`
//!   returns a materialized view's current reading, `POST /query` runs
//!   one line-protocol request and returns its response line. Connections
//!   are persistent by default (RFC 9112 keep-alive), closing on
//!   `Connection: close` or broken framing.
//!
//! ## Architecture
//!
//! ```text
//!            TcpListener (acceptor thread)
//!                 │ one OS thread per connection
//!                 ▼
//!   connection handler ──► admission control (bounded in-flight, reject
//!       │                  loudly when saturated)
//!       │ query job        │
//!       ▼                  ▼
//!   ParPool (vendored workpool) ──► EpochManager::current() ─┐
//!       │  chunked evaluation with CancelToken checks        │
//!       ▼                                                    ▼
//!   response line ◄── deadline? ◄── BatchEngine @ epoch N (frozen Snapshot,
//!                                   shared classified-engine memo)
//! ```
//!
//! **Epochs (MVCC-lite).** Readers never block writers and writers never
//! block readers: every query grabs an `Arc` onto the *current*
//! [`cqa_par::BatchEngine`] — a frozen [`cqa_data::Snapshot`] plus the
//! process-wide caches — and answers entirely on that epoch. A write
//! (`\insert` / `\remove` / `\remove-block`) mutates the master database
//! under a writer lock, lets the delta log patch the index incrementally
//! ([`cqa_data::DatabaseIndex`] delta maintenance, PR 6), forks the next
//! engine with [`cqa_par::BatchEngine::with_snapshot`] (sharing the
//! classified-engine memo), and publishes it with one atomic pointer swap.
//! A query therefore observes **exactly one** epoch — never a torn mix —
//! which `tests/serve.rs` checks under concurrent read/write interleavings.
//!
//! **Materialized views (`cqa-stream`).** `\subscribe <name> <query>`
//! registers a [`cqa_stream::MaterializedView`]; every effective write
//! repairs the registered views incrementally from the recorded
//! [`cqa_data::ChangeSet`] (block-level provenance, damage-thresholded
//! fallback) and publishes the repaired readings **atomically with** the
//! engine pointer swap, so `\view <name>` and `GET /view/<name>` can never
//! observe a reading from a different epoch than a concurrent query. Old
//! epochs still pinned by slow readers are counted by the
//! `serve.epochs.pinned` gauge.
//!
//! **Admission control.** In-flight queries (queued + running) are bounded
//! by [`ServerConfig::max_inflight`]; a request past the bound is rejected
//! immediately with a loud `error: overloaded` response instead of queueing
//! without bound.
//!
//! **Deadlines.** [`ServerConfig::deadline`] arms a per-query
//! [`CancelToken`]; evaluation checks it between candidate-answer chunks
//! ([`ServerConfig::query_chunk`]) and aborts gracefully, and the waiting
//! connection handler responds `error: deadline exceeded` as soon as the
//! deadline passes even if the worker is mid-chunk.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod epoch;
pub mod protocol;
pub mod server;
mod stats;

pub use admission::{Admission, CancelToken, Permit};
pub use epoch::{EpochManager, ViewReading, WriteOutcome};
pub use protocol::{render_result, Request, WriteOp};
pub use server::{QueryStartHook, Server, ServerConfig, ServerHandle};
pub use stats::stats_line;
