//! Uncertain databases and their block structure.

use crate::delta::{delta_threshold, ChangeSet, Delta};
use crate::index::DatabaseIndex;
use crate::{Block, BlockId, DataError, Fact, FxHashMap, RelationId, RepairIter, Schema, Value};
use std::collections::BTreeSet;
use std::fmt;
use std::sync::{Arc, PoisonError, RwLock};

/// The cached index snapshot plus the mutations recorded since it was built.
///
/// Invariant: `pending` is non-empty only while `snapshot` is `Some` — with
/// no snapshot to patch there is nothing to log against.
#[derive(Default)]
struct IndexCacheState {
    snapshot: Option<Arc<DatabaseIndex>>,
    pending: ChangeSet,
}

/// An **uncertain database**: a finite set of facts over a fixed schema in
/// which primary keys need not be satisfied (Section 3 of the paper).
///
/// The database maintains its block structure incrementally: every fact
/// belongs to exactly one [`Block`] (the maximal set of key-equal facts), and
/// a repair is obtained by picking one fact from every block.
///
/// ```
/// use cqa_data::{Schema, UncertainDatabase, Value};
///
/// let schema = Schema::from_relations([("C", 3, 2), ("R", 2, 1)]).unwrap().into_shared();
/// let mut db = UncertainDatabase::new(schema);
/// db.insert_values("C", ["PODS", "2016", "Rome"]).unwrap();
/// db.insert_values("C", ["PODS", "2016", "Paris"]).unwrap();
/// db.insert_values("C", ["KDD", "2017", "Rome"]).unwrap();
/// db.insert_values("R", ["PODS", "A"]).unwrap();
/// db.insert_values("R", ["KDD", "A"]).unwrap();
/// db.insert_values("R", ["KDD", "B"]).unwrap();
///
/// assert_eq!(db.fact_count(), 6);
/// assert_eq!(db.block_count(), 4);
/// assert!(!db.is_consistent());
/// assert_eq!(db.repair_count(), Some(4)); // Figure 1: four repairs
/// ```
pub struct UncertainDatabase {
    schema: Arc<Schema>,
    blocks: Vec<Block>,
    /// Maps (relation, key) to the dense index of the owning block.
    index: FxHashMap<(RelationId, Vec<Value>), usize>,
    fact_count: usize,
    /// Cached secondary-index snapshot plus the pending delta log; the
    /// snapshot is patched (not rebuilt) while the log stays small.
    ///
    /// An `RwLock` rather than a `Mutex`: concurrent readers of a warm cache
    /// never contend, and every access recovers from poisoning (the cached
    /// state is always consistent, so a reader that panicked while holding
    /// the lock must not wedge later calls).
    index_cache: RwLock<IndexCacheState>,
    /// Bumped on every effective mutation; see [`UncertainDatabase::epoch`].
    epoch: u64,
    /// Per-database override of the delta-volume fallback threshold.
    delta_threshold: Option<usize>,
}

impl Clone for UncertainDatabase {
    fn clone(&self) -> Self {
        // The clone has identical contents, so it can share the cached
        // snapshot and its pending delta log; each copy's own mutations
        // from here on touch only its own cache state.
        let state = self
            .index_cache
            .read()
            .unwrap_or_else(PoisonError::into_inner);
        let cached = IndexCacheState {
            snapshot: state.snapshot.clone(),
            pending: state.pending.clone(),
        };
        drop(state);
        UncertainDatabase {
            schema: self.schema.clone(),
            blocks: self.blocks.clone(),
            index: self.index.clone(),
            fact_count: self.fact_count,
            index_cache: RwLock::new(cached),
            epoch: self.epoch,
            delta_threshold: self.delta_threshold,
        }
    }
}

impl UncertainDatabase {
    /// Creates an empty database over the given schema.
    pub fn new(schema: Arc<Schema>) -> Self {
        UncertainDatabase {
            schema,
            blocks: Vec::new(),
            index: FxHashMap::default(),
            fact_count: 0,
            index_cache: RwLock::new(IndexCacheState::default()),
            epoch: 0,
            delta_threshold: None,
        }
    }

    /// The secondary-index snapshot of the current contents (see
    /// [`DatabaseIndex`]).
    ///
    /// Built on first use and cached. Small mutations do not discard the
    /// cache: they are logged as a [`crate::ChangeSet`] and the next call
    /// **patches** the previous snapshot via [`DatabaseIndex::apply_delta`]
    /// (counted as `data.index.delta_applied`). Only past the
    /// [delta-volume threshold](UncertainDatabase::set_delta_threshold) does
    /// the cache fall back to a full rebuild.
    pub fn index(&self) -> Arc<DatabaseIndex> {
        {
            let state = self
                .index_cache
                .read()
                .unwrap_or_else(PoisonError::into_inner);
            if let Some(snapshot) = &state.snapshot {
                if state.pending.is_empty() {
                    cqa_obs::count!("data.index.cache.hit");
                    return snapshot.clone();
                }
            }
        }
        let mut state = self
            .index_cache
            .write()
            .unwrap_or_else(PoisonError::into_inner);
        // Re-check under the write lock: another thread may have patched or
        // built the snapshot while this one waited.
        if let Some(snapshot) = &state.snapshot {
            if state.pending.is_empty() {
                cqa_obs::count!("data.index.cache.hit");
                return snapshot.clone();
            }
            // Patch the previous snapshot with the pending delta log. The
            // threshold is enforced at record time, so a non-empty log here
            // is always within budget.
            cqa_obs::count!("data.index.delta_applied");
            let started = std::time::Instant::now();
            let patched = Arc::new(snapshot.apply_delta(self, &state.pending));
            cqa_obs::observe_duration!("data.index.delta_apply_nanos", started.elapsed());
            state.snapshot = Some(patched.clone());
            state.pending.clear();
            return patched;
        }
        cqa_obs::count!("data.index.cache.miss");
        let started = std::time::Instant::now();
        let snapshot = Arc::new(DatabaseIndex::build(self));
        cqa_obs::observe_duration!("data.index.build_nanos", started.elapsed());
        state.snapshot = Some(snapshot.clone());
        state.pending.clear();
        snapshot
    }

    /// The mutation epoch: a counter bumped by every *effective* mutation
    /// (no-ops — duplicate inserts, removals of absent facts — leave it
    /// untouched). Two equal epochs of the same database lineage (the
    /// original and its clones/snapshots) denote identical contents, so
    /// readers holding a [`crate::Snapshot`] can detect staleness with one
    /// integer compare instead of a diff.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Overrides the delta-volume threshold beyond which mutations drop the
    /// cached index (forcing a full rebuild) instead of growing the delta
    /// log. `None` restores the process default
    /// ([`crate::delta::delta_threshold`], env-tunable via
    /// `CQA_DELTA_THRESHOLD`). A threshold of `0` disables patching
    /// entirely — every mutation invalidates, the pre-delta behavior.
    pub fn set_delta_threshold(&mut self, threshold: Option<usize>) {
        self.delta_threshold = threshold;
    }

    /// The effective delta-volume threshold of this database.
    pub fn delta_threshold(&self) -> usize {
        self.delta_threshold.unwrap_or_else(delta_threshold)
    }

    /// Number of mutations logged against the cached index snapshot (zero
    /// when the cache is cold, current, or was dropped past the threshold).
    pub fn pending_delta_len(&self) -> usize {
        self.index_cache
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .pending
            .len()
    }

    /// Logs one effective mutation: bumps the epoch and, when a cached
    /// snapshot exists, either appends to its delta log or — past the
    /// threshold — drops the cache so the next [`UncertainDatabase::index`]
    /// call rebuilds from scratch.
    fn record(&mut self, delta: Delta) {
        self.epoch += 1;
        let threshold = self.delta_threshold();
        let state = self
            .index_cache
            .get_mut()
            .unwrap_or_else(PoisonError::into_inner);
        if state.snapshot.is_none() {
            debug_assert!(state.pending.is_empty());
            return;
        }
        state.pending.record(delta);
        if state.pending.len() > threshold {
            state.snapshot = None;
            state.pending.clear();
            cqa_obs::count!("data.index.invalidated");
            cqa_obs::count!("data.index.delta_fallback_rebuild");
        }
    }

    /// Freezes the current contents into a [`crate::Snapshot`]: an owned,
    /// immutable, `Send + Sync` handle carrying both the data and its
    /// [`DatabaseIndex`], for sharing with worker threads while this
    /// database keeps mutating.
    pub fn snapshot(&self) -> crate::Snapshot {
        crate::Snapshot::new(self)
    }

    /// Builds a database from an iterator of facts.
    pub fn from_facts(
        schema: Arc<Schema>,
        facts: impl IntoIterator<Item = Fact>,
    ) -> Result<Self, DataError> {
        let mut db = UncertainDatabase::new(schema);
        for fact in facts {
            db.insert(fact)?;
        }
        Ok(db)
    }

    /// The shared schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Inserts a fact. Returns `Ok(true)` if the fact was new, `Ok(false)` if
    /// it was already present (set semantics), and an error on arity mismatch.
    pub fn insert(&mut self, fact: Fact) -> Result<bool, DataError> {
        let rel = self.schema.relation(fact.relation());
        if fact.arity() != rel.arity() {
            return Err(DataError::ArityMismatch {
                relation: rel.name.clone(),
                expected: rel.arity(),
                actual: fact.arity(),
            });
        }
        let key: Vec<Value> = fact.key(&self.schema).to_vec();
        let entry = (fact.relation(), key);
        let block_idx = match self.index.get(&entry) {
            Some(&i) => i,
            None => {
                let i = self.blocks.len();
                self.blocks
                    .push(Block::new(fact.relation(), entry.1.clone()));
                self.index.insert(entry, i);
                i
            }
        };
        // Clone before pushing (an `Arc` bump) so the delta log shares the
        // stored fact's allocation — `apply_delta` matches facts by it.
        let recorded = fact.clone();
        let inserted = self.blocks[block_idx].push(fact);
        if inserted {
            self.fact_count += 1;
            self.record(Delta::Inserted(recorded));
        }
        // Re-inserting a present fact is a pure no-op: the cached index
        // stays warm and the epoch does not move.
        Ok(inserted)
    }

    /// Convenience insertion by relation name and values.
    pub fn insert_values<V: Into<Value>>(
        &mut self,
        relation: &str,
        values: impl IntoIterator<Item = V>,
    ) -> Result<bool, DataError> {
        let rel = self.schema.require(relation)?;
        let values: Vec<Value> = values.into_iter().map(Into::into).collect();
        self.insert(Fact::new(rel, values))
    }

    /// Total number of facts.
    pub fn fact_count(&self) -> usize {
        self.fact_count
    }

    /// True iff the database contains no facts.
    pub fn is_empty(&self) -> bool {
        self.fact_count == 0
    }

    /// Number of blocks.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Iterates over all facts.
    pub fn facts(&self) -> impl Iterator<Item = &Fact> {
        self.blocks.iter().flat_map(|b| b.facts().iter())
    }

    /// Iterates over all facts of one relation.
    pub fn relation_facts(&self, relation: RelationId) -> impl Iterator<Item = &Fact> {
        self.blocks
            .iter()
            .filter(move |b| b.relation() == relation)
            .flat_map(|b| b.facts().iter())
    }

    /// Iterates over all blocks.
    pub fn blocks(&self) -> impl Iterator<Item = &Block> {
        self.blocks.iter()
    }

    /// Iterates over `(BlockId, &Block)` pairs.
    ///
    /// Block ids are dense indices that remain valid until the database is
    /// mutated (insertions may add blocks, removals may reorder them).
    pub fn blocks_with_ids(&self) -> impl Iterator<Item = (BlockId, &Block)> {
        self.blocks
            .iter()
            .enumerate()
            .map(|(i, b)| (BlockId(i as u32), b))
    }

    /// Iterates over the blocks of one relation.
    pub fn blocks_of(&self, relation: RelationId) -> impl Iterator<Item = &Block> {
        self.blocks.iter().filter(move |b| b.relation() == relation)
    }

    /// Returns a block by id.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.index()]
    }

    /// Returns the block (`block(A, db)` in the paper) containing a fact, if present.
    pub fn block_of(&self, fact: &Fact) -> Option<&Block> {
        let key = (fact.relation(), fact.key(&self.schema).to_vec());
        let idx = *self.index.get(&key)?;
        let block = &self.blocks[idx];
        block.contains(fact).then_some(block)
    }

    /// Returns the block with the given relation and key value, if any.
    pub fn block_with_key(&self, relation: RelationId, key: &[Value]) -> Option<&Block> {
        let idx = *self.index.get(&(relation, key.to_vec()))?;
        Some(&self.blocks[idx])
    }

    /// True iff the fact is present.
    pub fn contains(&self, fact: &Fact) -> bool {
        self.block_of(fact).is_some()
    }

    /// Consistency (Section 3): every block is a singleton.
    pub fn is_consistent(&self) -> bool {
        self.blocks.iter().all(Block::is_singleton)
    }

    /// The active domain: every constant appearing in some fact.
    pub fn active_domain(&self) -> BTreeSet<Value> {
        self.facts()
            .flat_map(|f| f.values().iter().cloned())
            .collect()
    }

    /// Number of repairs, i.e. the product of all block sizes.
    /// Returns `None` if the product overflows `u128`.
    pub fn repair_count(&self) -> Option<u128> {
        let mut count: u128 = 1;
        for b in &self.blocks {
            count = count.checked_mul(b.len() as u128)?;
        }
        Some(count)
    }

    /// Base-2 logarithm of the number of repairs (useful for reporting the
    /// size of the repair space when it overflows `u128`).
    pub fn repair_count_log2(&self) -> f64 {
        self.blocks.iter().map(|b| (b.len() as f64).log2()).sum()
    }

    /// Iterates over **all repairs** of the database.
    ///
    /// Each item is a consistent [`UncertainDatabase`] obtained by selecting
    /// one fact from every block. The number of repairs is exponential in the
    /// number of inconsistent blocks; this iterator is intended for small
    /// instances, tests and the brute-force oracle.
    pub fn repairs(&self) -> RepairIter<'_> {
        RepairIter::new(self)
    }

    /// Builds the repair obtained by choosing, for every block, the fact
    /// selected by `choose(block)`.
    pub fn repair_by<F>(&self, mut choose: F) -> UncertainDatabase
    where
        F: FnMut(&Block) -> usize,
    {
        let facts = self.blocks.iter().map(|b| {
            let i = choose(b).min(b.len().saturating_sub(1));
            b.facts()[i].clone()
        });
        UncertainDatabase::from_facts(self.schema.clone(), facts.collect::<Vec<_>>())
            .expect("facts of a database are schema-valid")
    }

    /// Removes the entire block containing `fact` (used by purification,
    /// Lemma 1). Returns `true` if a block was removed.
    pub fn remove_block_of(&mut self, fact: &Fact) -> bool {
        let key = (fact.relation(), fact.key(&self.schema).to_vec());
        let Some(&idx) = self.index.get(&key) else {
            return false;
        };
        self.remove_block_at(idx);
        true
    }

    /// Removes a single fact; if its block becomes empty the block disappears.
    /// Returns `true` if the fact was present.
    pub fn remove_fact(&mut self, fact: &Fact) -> bool {
        let key = (fact.relation(), fact.key(&self.schema).to_vec());
        let Some(&idx) = self.index.get(&key) else {
            return false;
        };
        if !self.blocks[idx].remove(fact) {
            // The key exists but the fact does not: a no-op that leaves the
            // cached index, the delta log and the epoch untouched.
            return false;
        }
        self.fact_count -= 1;
        let emptied = self.blocks[idx].is_empty();
        if emptied {
            self.detach_block_at(idx);
        }
        self.record(Delta::Removed {
            fact: fact.clone(),
            emptied_block: emptied,
        });
        true
    }

    fn remove_block_at(&mut self, idx: usize) {
        let doomed: Vec<Fact> = self.blocks[idx].facts().to_vec();
        self.fact_count -= doomed.len();
        self.detach_block_at(idx);
        for fact in doomed {
            self.record(Delta::Removed {
                fact,
                emptied_block: true,
            });
        }
    }

    /// Detaches the block at `idx` from the block list and the key index by
    /// `swap_remove` (the block that was last takes over slot `idx`, so
    /// block ids are **reordered**). Fact counting and delta recording are
    /// the caller's job.
    fn detach_block_at(&mut self, idx: usize) {
        let removed = self.blocks.swap_remove(idx);
        self.index
            .remove(&(removed.relation(), removed.key().to_vec()));
        if idx < self.blocks.len() {
            // Fix the index entry of the block that was swapped into `idx`.
            let moved = &self.blocks[idx];
            self.index
                .insert((moved.relation(), moved.key().to_vec()), idx);
        }
    }

    /// Keeps only the facts satisfying the predicate.
    pub fn retain_facts<F>(&mut self, mut keep: F)
    where
        F: FnMut(&Fact) -> bool,
    {
        let doomed: Vec<Fact> = self.facts().filter(|f| !keep(f)).cloned().collect();
        for fact in doomed {
            self.remove_fact(&fact);
        }
    }

    /// Returns a new database containing only the facts of the given relations.
    pub fn restrict_to_relations(&self, relations: &[RelationId]) -> UncertainDatabase {
        let facts: Vec<Fact> = self
            .facts()
            .filter(|f| relations.contains(&f.relation()))
            .cloned()
            .collect();
        UncertainDatabase::from_facts(self.schema.clone(), facts)
            .expect("facts of a database are schema-valid")
    }

    /// Returns a new database with the same schema containing the given facts.
    pub fn with_facts(&self, facts: impl IntoIterator<Item = Fact>) -> UncertainDatabase {
        UncertainDatabase::from_facts(self.schema.clone(), facts.into_iter().collect::<Vec<_>>())
            .expect("facts of a database are schema-valid")
    }

    /// Set union of two databases over the same schema.
    pub fn union(&self, other: &UncertainDatabase) -> Result<UncertainDatabase, DataError> {
        if !Arc::ptr_eq(&self.schema, &other.schema) && *self.schema != *other.schema {
            return Err(DataError::SchemaMismatch);
        }
        let mut db = self.clone();
        for fact in other.facts() {
            db.insert(fact.clone())?;
        }
        Ok(db)
    }

    /// True iff `self` is a subset of `other`.
    pub fn is_subset_of(&self, other: &UncertainDatabase) -> bool {
        self.facts().all(|f| other.contains(f))
    }

    /// All facts, sorted, for deterministic display and comparisons.
    pub fn sorted_facts(&self) -> Vec<Fact> {
        let mut facts: Vec<Fact> = self.facts().cloned().collect();
        facts.sort();
        facts
    }
}

impl PartialEq for UncertainDatabase {
    fn eq(&self, other: &Self) -> bool {
        *self.schema == *other.schema
            && self.fact_count == other.fact_count
            && self.facts().all(|f| other.contains(f))
    }
}

impl Eq for UncertainDatabase {}

impl fmt::Debug for UncertainDatabase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "UncertainDatabase({} facts)", self.fact_count)
    }
}

impl fmt::Display for UncertainDatabase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for fact in self.sorted_facts() {
            writeln!(f, "{}", fact.display(&self.schema))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The conference-planning database of Figure 1.
    fn figure1() -> UncertainDatabase {
        let schema = Schema::from_relations([("C", 3, 2), ("R", 2, 1)])
            .unwrap()
            .into_shared();
        let mut db = UncertainDatabase::new(schema);
        db.insert_values("C", ["PODS", "2016", "Rome"]).unwrap();
        db.insert_values("C", ["PODS", "2016", "Paris"]).unwrap();
        db.insert_values("C", ["KDD", "2017", "Rome"]).unwrap();
        db.insert_values("R", ["PODS", "A"]).unwrap();
        db.insert_values("R", ["KDD", "A"]).unwrap();
        db.insert_values("R", ["KDD", "B"]).unwrap();
        db
    }

    #[test]
    fn figure1_has_four_repairs() {
        let db = figure1();
        assert_eq!(db.fact_count(), 6);
        assert_eq!(db.block_count(), 4);
        assert!(!db.is_consistent());
        assert_eq!(db.repair_count(), Some(4));
        assert_eq!(db.repairs().count(), 4);
        for repair in db.repairs() {
            assert!(repair.is_consistent());
            assert!(repair.is_subset_of(&db));
            assert_eq!(repair.block_count(), db.block_count());
        }
    }

    #[test]
    fn duplicate_facts_are_ignored() {
        let mut db = figure1();
        let n = db.fact_count();
        assert!(!db.insert_values("R", ["KDD", "B"]).unwrap());
        assert_eq!(db.fact_count(), n);
    }

    #[test]
    fn no_op_mutations_keep_the_cached_index_and_epoch() {
        let mut db = figure1();
        let warm = db.index();
        let epoch = db.epoch();
        let r = db.schema().relation_id("R").unwrap();
        // Re-inserting a present fact.
        assert!(!db.insert_values("R", ["KDD", "B"]).unwrap());
        // Removing an absent fact (existing block, absent alternative).
        assert!(!db.remove_fact(&Fact::new(r, vec![Value::str("KDD"), Value::str("C")])));
        // Removing an absent fact of an absent block.
        assert!(!db.remove_fact(&Fact::new(r, vec![Value::str("ICDT"), Value::str("A")])));
        // Removing the block of a fact whose key has no block.
        assert!(!db.remove_block_of(&Fact::new(r, vec![Value::str("ICDT"), Value::str("A")])));
        // None of the above dirtied the cache or moved the epoch.
        assert!(Arc::ptr_eq(&warm, &db.index()));
        assert_eq!(db.epoch(), epoch);
        assert_eq!(db.pending_delta_len(), 0);
    }

    #[test]
    fn arity_is_validated() {
        let mut db = figure1();
        assert!(db.insert_values("R", ["KDD"]).is_err());
        assert!(db.insert_values("Nope", ["x"]).is_err());
    }

    #[test]
    fn block_lookup_and_membership() {
        let db = figure1();
        let schema = db.schema().clone();
        let c = schema.relation_id("C").unwrap();
        let pods_block = db
            .block_with_key(c, &[Value::str("PODS"), Value::str("2016")])
            .unwrap();
        assert_eq!(pods_block.len(), 2);
        let fact = Fact::new(
            c,
            vec![Value::str("PODS"), Value::str("2016"), Value::str("Rome")],
        );
        assert!(db.contains(&fact));
        assert_eq!(db.block_of(&fact).unwrap().len(), 2);
        let absent = Fact::new(
            c,
            vec![Value::str("PODS"), Value::str("2016"), Value::str("Tokyo")],
        );
        assert!(!db.contains(&absent));
        // Its key matches an existing block, but the fact itself is absent.
        assert!(db.block_of(&absent).is_none());
    }

    #[test]
    fn active_domain_collects_all_constants() {
        let db = figure1();
        let dom = db.active_domain();
        assert!(dom.contains(&Value::str("Rome")));
        assert!(dom.contains(&Value::str("2016")));
        assert_eq!(dom.len(), 8); // PODS KDD 2016 2017 Rome Paris A B
    }

    #[test]
    fn removing_a_block_removes_all_its_facts() {
        let mut db = figure1();
        let c = db.schema().relation_id("C").unwrap();
        let fact = Fact::new(
            c,
            vec![Value::str("PODS"), Value::str("2016"), Value::str("Paris")],
        );
        assert!(db.remove_block_of(&fact));
        assert_eq!(db.fact_count(), 4);
        assert_eq!(db.block_count(), 3);
        assert!(!db.contains(&fact));
        // Removing again is a no-op.
        assert!(!db.remove_block_of(&fact));
    }

    #[test]
    fn removing_a_single_fact_keeps_its_block_mates() {
        let mut db = figure1();
        let r = db.schema().relation_id("R").unwrap();
        let fact = Fact::new(r, vec![Value::str("KDD"), Value::str("B")]);
        assert!(db.remove_fact(&fact));
        assert_eq!(db.fact_count(), 5);
        assert!(db.contains(&Fact::new(r, vec![Value::str("KDD"), Value::str("A")])));
        // The KDD block is now a singleton; the PODS-2016 block of C is still violated.
        assert!(db
            .block_with_key(r, &[Value::str("KDD")])
            .unwrap()
            .is_singleton());
        assert!(!db.is_consistent());
    }

    #[test]
    fn retain_facts_filters() {
        let mut db = figure1();
        let r = db.schema().relation_id("R").unwrap();
        db.retain_facts(|f| f.relation() != r);
        assert_eq!(db.fact_count(), 3);
        assert_eq!(db.relation_facts(r).count(), 0);
    }

    #[test]
    fn restriction_and_union_round_trip() {
        let db = figure1();
        let schema = db.schema().clone();
        let c = schema.relation_id("C").unwrap();
        let r = schema.relation_id("R").unwrap();
        let only_c = db.restrict_to_relations(&[c]);
        let only_r = db.restrict_to_relations(&[r]);
        assert_eq!(only_c.fact_count(), 3);
        assert_eq!(only_r.fact_count(), 3);
        let back = only_c.union(&only_r).unwrap();
        assert_eq!(back, db);
    }

    #[test]
    fn repair_by_choice_function() {
        let db = figure1();
        let first = db.repair_by(|_| 0);
        assert!(first.is_consistent());
        assert_eq!(first.block_count(), 4);
    }

    #[test]
    fn consistent_database_has_one_repair() {
        let schema = Schema::from_relations([("R", 2, 1)]).unwrap().into_shared();
        let mut db = UncertainDatabase::new(schema);
        db.insert_values("R", ["a", "b"]).unwrap();
        db.insert_values("R", ["c", "d"]).unwrap();
        assert!(db.is_consistent());
        assert_eq!(db.repair_count(), Some(1));
        let repairs: Vec<_> = db.repairs().collect();
        assert_eq!(repairs.len(), 1);
        assert_eq!(repairs[0], db);
    }

    #[test]
    fn empty_database_has_exactly_the_empty_repair() {
        let schema = Schema::from_relations([("R", 2, 1)]).unwrap().into_shared();
        let db = UncertainDatabase::new(schema);
        assert_eq!(db.repair_count(), Some(1));
        let repairs: Vec<_> = db.repairs().collect();
        assert_eq!(repairs.len(), 1);
        assert!(repairs[0].is_empty());
    }

    #[test]
    fn concurrent_readers_share_one_index_snapshot() {
        let db = figure1();
        let snapshots: Vec<Arc<DatabaseIndex>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8).map(|_| scope.spawn(|| db.index())).collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        // Everyone observes the same facts; at most one build won the race,
        // and the cache serves that snapshot from then on.
        assert!(snapshots.iter().all(|s| s.fact_count() == 6));
        let cached = db.index();
        assert!(snapshots.iter().any(|s| Arc::ptr_eq(s, &cached)));
    }

    #[test]
    fn repair_count_log2_matches_exact_count() {
        let db = figure1();
        let exact = db.repair_count().unwrap() as f64;
        assert!((db.repair_count_log2() - exact.log2()).abs() < 1e-9);
    }
}
