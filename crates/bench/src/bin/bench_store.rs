//! Persistent-store and delta-maintenance benchmarks, recorded in
//! `BENCH_store.json` at the workspace root.
//!
//! Two stories are measured on the acceptance workload (the 3-atom chain
//! `path3` at n = 2200, ~13k facts):
//!
//! * **save / load throughput** — encoding an [`cqa_data::UncertainDatabase`]
//!   into the chunked dictionary-coded store format and decoding it back,
//!   reported in facts/s and MB/s, with the round-tripped database asserted
//!   to answer identically before anything is timed;
//! * **delta apply vs rebuild** — the latency of refreshing the cached
//!   [`cqa_data::DatabaseIndex`] after a single-fact insert, once via the
//!   delta-patching path (the default) and once with the delta threshold
//!   forced to 0 so every refresh is a from-scratch rebuild. The patched
//!   and rebuilt databases receive the same mutation sequence and are
//!   asserted to produce identical certain answers.
//!
//! Run with `cargo run --release -p cqa-bench --bin bench_store`
//! (`--quick` shrinks the instance for CI smoke runs).

use cqa_bench::{json_escape, ms, quick_flag, scaled_instance, time_min, write_bench_json};
use cqa_core::answers::certain_answers;
use cqa_core::solvers::{CertaintyEngine, CertaintySolver};
use cqa_data::{store, Fact, PositionSet, UncertainDatabase};
use cqa_query::{catalog, ConjunctiveQuery, Variable};

/// A probe fact for relation `R` whose values are borrowed from an existing
/// `T` fact: both values already occur in the active domain, so inserting or
/// removing the probe is the steady-state single-fact delta — block lists
/// and indexes change, the dictionary does not. (The generator namespaces
/// tokens per relation, so the borrowed pair cannot collide with a real `R`
/// fact — asserted on first insert.)
fn probe_fact(db: &UncertainDatabase) -> Fact {
    let schema = db.schema();
    let r = schema.relation_id("R").expect("path3 has R");
    let t = schema.relation_id("T").expect("path3 has T");
    let donor = db
        .index()
        .relation_facts(t)
        .next()
        .expect("the generated instance has T facts")
        .clone();
    Fact::new(r, donor.values().to_vec())
}

/// One timed "mutate + refresh" step: toggle the probe fact (insert it if
/// absent, remove it if present), then refresh the index — patched in place
/// on the delta path, rebuilt from scratch with the threshold forced to 0 —
/// and materialize every derived structure query evaluation touches
/// (statistics, columnar view, active domain, key-position hash indexes).
/// Materializing is what makes the two arms comparable: the delta path hands
/// these over already patched, while a rebuild defers them to first use and
/// must pay for them here.
fn mutate_and_refresh(db: &mut UncertainDatabase, probe: &Fact, present: &mut bool) {
    if *present {
        assert!(db.remove_fact(probe), "the probe fact was present");
    } else {
        assert!(
            db.insert(probe.clone())
                .expect("probe facts are well-formed"),
            "the probe fact must not collide with the generated instance"
        );
    }
    *present = !*present;
    refresh(db);
}

/// Refreshes the cached index and materializes the derived structures.
fn refresh(db: &UncertainDatabase) {
    let index = db.index();
    let _ = index.statistics();
    let _ = index.columnar();
    let _ = index.active_domain();
    for rel in db.schema().relation_ids() {
        let key_len = db.schema().relation(rel).key_len();
        let _ = index.position_index(rel, PositionSet::from_positions(0..key_len));
    }
}

fn main() {
    let quick = quick_flag();
    let runs = if quick { 3 } else { 10 };
    let n = if quick { 150 } else { 2200 };
    let boolean = catalog::fo_path3().query;
    let db = scaled_instance(&boolean, n, 11);
    let query = ConjunctiveQuery::with_free_vars(
        boolean.schema().clone(),
        boolean.atoms().to_vec(),
        vec![Variable::new("x")],
    )
    .expect("freeing a variable of a valid query stays valid");
    eprintln!(
        "workload path3: {} facts, {} blocks (quick: {quick})",
        db.fact_count(),
        db.block_count()
    );

    // -- save / load: correctness first, then throughput.
    let bytes = store::save_to_vec(&db);
    let loaded = store::load_from_slice(&bytes).expect("a fresh save loads");
    let engine = CertaintyEngine::new(&boolean).expect("path3 classifies");
    assert_eq!(
        engine.is_certain(&db),
        engine.is_certain(&loaded),
        "round-tripped certainty verdict diverged"
    );
    let reference = certain_answers(&query, &db).expect("path3 is answerable");
    assert_eq!(
        reference,
        certain_answers(&query, &loaded).expect("answerable"),
        "round-tripped certain answers diverged"
    );
    assert_eq!(bytes, store::save_to_vec(&loaded), "save ∘ load not stable");
    let save_time = time_min(runs, || store::save_to_vec(&db));
    let load_time = time_min(runs, || store::load_from_slice(&bytes).expect("loads"));
    let mb = bytes.len() as f64 / (1024.0 * 1024.0);
    let save_mbps = mb / save_time.as_secs_f64().max(1e-9);
    let load_mbps = mb / load_time.as_secs_f64().max(1e-9);
    let save_fps = db.fact_count() as f64 / save_time.as_secs_f64().max(1e-9);
    let load_fps = db.fact_count() as f64 / load_time.as_secs_f64().max(1e-9);
    eprintln!(
        "  save: {:9.3} ms ({:8.1} MB/s, {:10.0} facts/s), {} bytes",
        ms(save_time),
        save_mbps,
        save_fps,
        bytes.len()
    );
    eprintln!(
        "  load: {:9.3} ms ({:8.1} MB/s, {:10.0} facts/s)",
        ms(load_time),
        load_mbps,
        load_fps
    );

    // -- delta apply vs rebuild: same single-fact mutation sequence, two
    //    refresh policies. Warm both caches before timing so the first
    //    timed refresh starts from a cached snapshot either way.
    let probe = probe_fact(&db);
    let mut patched = db.clone();
    refresh(&patched);
    let mut patched_present = false;
    let delta_time = time_min(runs, || {
        mutate_and_refresh(&mut patched, &probe, &mut patched_present)
    });
    let mut rebuilt = db.clone();
    rebuilt.set_delta_threshold(Some(0));
    refresh(&rebuilt);
    let mut rebuilt_present = false;
    let rebuild_time = time_min(runs, || {
        mutate_and_refresh(&mut rebuilt, &probe, &mut rebuilt_present)
    });
    // Bring both databases to the same probe state, then the
    // delta-maintained index must answer exactly like the rebuilt one.
    if patched_present != rebuilt_present {
        mutate_and_refresh(&mut patched, &probe, &mut patched_present);
    }
    assert_eq!(patched.fact_count(), rebuilt.fact_count());
    assert_eq!(
        certain_answers(&query, &patched).expect("answerable"),
        certain_answers(&query, &rebuilt).expect("answerable"),
        "delta-patched index diverged from rebuild"
    );
    let speedup = rebuild_time.as_secs_f64() / delta_time.as_secs_f64().max(1e-9);
    eprintln!(
        "  single-fact refresh: delta {:9.3} ms vs rebuild {:9.3} ms ({speedup:.1}x)",
        ms(delta_time),
        ms(rebuild_time)
    );

    let json = format!(
        "{{\n  \"benchmark\": \"columnar store save/load + delta-apply vs index rebuild\",\n  \"generated_by\": \"cargo run --release -p cqa-bench --bin bench_store\",\n  \"quick\": {quick},\n  \"workload\": {{\n    \"name\": \"path3\",\n    \"query\": \"{}\",\n    \"facts\": {},\n    \"blocks\": {},\n    \"file_bytes\": {}\n  }},\n  \"save\": {{ \"ms\": {:.3}, \"mb_per_s\": {:.1}, \"facts_per_s\": {:.0} }},\n  \"load\": {{ \"ms\": {:.3}, \"mb_per_s\": {:.1}, \"facts_per_s\": {:.0}, \"round_trip_identical\": true }},\n  \"single_fact_refresh\": {{\n    \"delta_apply_ms\": {:.4},\n    \"rebuild_ms\": {:.4},\n    \"speedup\": {:.1},\n    \"identical_answers\": true\n  }}\n}}\n",
        json_escape(&query.to_string()),
        db.fact_count(),
        db.block_count(),
        bytes.len(),
        ms(save_time),
        save_mbps,
        save_fps,
        ms(load_time),
        load_mbps,
        load_fps,
        ms(delta_time),
        ms(rebuild_time),
        speedup,
    );
    let out = write_bench_json("BENCH_store.json", &json);
    eprintln!("wrote {}", out.display());
    print!("{json}");
}
