//! Incremental view maintenance vs full recomputation, recorded in
//! `BENCH_stream.json` at the workspace root.
//!
//! The workload is the acceptance instance (the 3-atom chain `path3` at
//! n = 2200, ~13k facts) with the open query `q(x) :- R(x,y), S(y,z),
//! T(z,w)`. Three phases:
//!
//! 1. **Repair latency** — a spoiler fact toggles in and out of an existing
//!    `R` block (single-fact churn). One arm repairs a registered
//!    [`cqa_stream::MaterializedView`] from the recorded delta; the other
//!    recomputes `certain_answers` from scratch on the same mutated
//!    snapshot. Both arms are timed from an already-frozen snapshot (the
//!    freeze is identical shared cost on either server path). The view's
//!    answer sets are asserted identical to the recomputation in every
//!    state before anything is timed, and the speedup must be ≥ 10× at
//!    full scale.
//! 2. **Mode identity** — a seeded churn script (inserts, removals, block
//!    removals) runs against views pinned to every [`cqa_exec::ExecMode`];
//!    after each delta every view must match the from-scratch reference.
//! 3. **Concurrent serve** — a live server with a subscribed view takes a
//!    write stream while readers hammer `\view`; afterwards the maintained
//!    reading must render byte-identically to a mirror database's
//!    reference answer.
//!
//! Run with `cargo run --release -p cqa-bench --bin bench_stream`
//! (`--quick` shrinks the instance for CI smoke runs).

use cqa_bench::{json_escape, ms, quick_flag, scaled_instance, write_bench_json};
use cqa_core::answers::certain_answers;
use cqa_data::{ChangeSet, Delta, Fact, UncertainDatabase, Value};
use cqa_exec::ExecMode;
use cqa_par::{BatchOutcome, BatchResult};
use cqa_query::{catalog, ConjunctiveQuery, Variable};
use cqa_serve::{protocol, Server, ServerConfig};
use cqa_stream::{MaterializedView, ViewMaintainer};
use std::io::{BufRead, BufReader, Write as _};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A spoiler fact for an existing `R` block: same key as a generated fact,
/// fresh non-joining second value. Inserting it adds a repair alternative
/// that breaks the block's join (the value occurs in no `S` key), so each
/// toggle genuinely flips a candidate's certainty — the repaired damage is
/// real work, not an empty retouch set.
fn spoiler_fact(db: &UncertainDatabase) -> Fact {
    let schema = db.schema();
    let r = schema.relation_id("R").expect("path3 has R");
    let index = db.index();
    let donor = index
        .relation_facts(r)
        .next()
        .expect("the generated instance has R facts");
    let key = donor.key(schema).to_vec();
    let mut values = key;
    values.push(Value::str("bench-spoiler"));
    Fact::new(r, values)
}

/// Toggles `fact` and records the exact delta, like the server's write path.
fn toggle(db: &mut UncertainDatabase, fact: &Fact, present: &mut bool) -> ChangeSet {
    let mut changes = ChangeSet::new();
    if *present {
        let emptied = db.block_of(fact).is_some_and(cqa_data::Block::is_singleton);
        assert!(db.remove_fact(fact), "the spoiler was present");
        changes.record(Delta::Removed {
            fact: fact.clone(),
            emptied_block: emptied,
        });
    } else {
        assert!(
            db.insert(fact.clone()).expect("spoilers are well-formed"),
            "the spoiler must not collide with the generated instance"
        );
        changes.record(Delta::Inserted(fact.clone()));
    }
    *present = !*present;
    changes
}

/// One seeded churn step for the mode-identity phase: insert a variant into
/// an existing block, remove a fact, or remove a whole block — recorded
/// delta-exactly.
fn churn_step(db: &mut UncertainDatabase, state: &mut u64, changes: &mut ChangeSet) {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    let schema = db.schema().clone();
    let rels: Vec<_> = schema.relation_ids().collect();
    let rel = rels[(*state >> 8) as usize % rels.len()];
    let Some(donor) = db
        .index()
        .relation_facts(rel)
        .nth((*state >> 16) as usize % db.index().relation_facts(rel).count().max(1))
        .cloned()
    else {
        return;
    };
    match *state % 3 {
        0 => {
            let mut values = donor.key(&schema).to_vec();
            values.push(Value::str(format!("churn{}", *state % 7)));
            let fact = Fact::new(rel, values);
            if db
                .insert(fact.clone())
                .expect("churn facts are well-formed")
            {
                changes.record(Delta::Inserted(fact));
            }
        }
        1 => {
            let emptied = db
                .block_of(&donor)
                .is_some_and(cqa_data::Block::is_singleton);
            if db.remove_fact(&donor) {
                changes.record(Delta::Removed {
                    fact: donor,
                    emptied_block: emptied,
                });
            }
        }
        _ => {
            let members: Vec<Fact> = db
                .block_with_key(rel, donor.key(&schema))
                .map(|block| block.facts().to_vec())
                .unwrap_or_default();
            if db.remove_block_of(&donor) {
                let last = members.len();
                for (i, member) in members.into_iter().enumerate() {
                    changes.record(Delta::Removed {
                        fact: member,
                        emptied_block: i + 1 == last,
                    });
                }
            }
        }
    }
}

fn main() {
    let quick = quick_flag();
    let runs = if quick { 3 } else { 10 };
    let n = if quick { 150 } else { 2200 };
    let boolean = catalog::fo_path3().query;
    let db = scaled_instance(&boolean, n, 11);
    let query = ConjunctiveQuery::with_free_vars(
        boolean.schema().clone(),
        boolean.atoms().to_vec(),
        vec![Variable::new("x")],
    )
    .expect("freeing a variable of a valid query stays valid");
    eprintln!(
        "workload path3: {} facts, {} blocks (quick: {quick})",
        db.fact_count(),
        db.block_count()
    );

    // -- Phase 1: repair latency vs full recomputation, correctness first.
    let maintainer = ViewMaintainer::new();
    let mut view = MaterializedView::new("q", &query).expect("path3 registers");
    let mut repaired_db = db.clone();
    maintainer
        .initialize(&mut view, &repaired_db.snapshot())
        .expect("initial decision");
    let spoiler = spoiler_fact(&db);
    let mut present = false;
    // Both toggle states must agree with the from-scratch evaluation
    // before either arm is timed.
    for _ in 0..2 {
        let changes = toggle(&mut repaired_db, &spoiler, &mut present);
        let snapshot = repaired_db.snapshot();
        let outcome = maintainer
            .repair(&mut view, &snapshot, &changes)
            .expect("repair");
        let reference = certain_answers(&query, snapshot.database()).expect("answerable");
        assert_eq!(view.certain(), &reference.certain, "certain diverged");
        assert_eq!(view.possible(), &reference.possible, "possible diverged");
        assert!(!outcome.full_recompute, "single-fact damage is local");
    }
    // Each toggle needs a fresh delta and snapshot, so the timed region
    // wraps the repair (resp. recomputation) alone: both server paths pay
    // the identical snapshot cost before either strategy runs, and the gate
    // compares the strategies, not the shared freeze.
    let mut repair_time = std::time::Duration::MAX;
    for _ in 0..runs {
        let changes = toggle(&mut repaired_db, &spoiler, &mut present);
        let snapshot = repaired_db.snapshot();
        let timer = std::time::Instant::now();
        maintainer
            .repair(&mut view, &snapshot, &changes)
            .expect("repair");
        repair_time = repair_time.min(timer.elapsed());
    }
    let mut full_db = db.clone();
    let mut full_present = false;
    let mut full_time = std::time::Duration::MAX;
    for _ in 0..runs {
        let _changes = toggle(&mut full_db, &spoiler, &mut full_present);
        let snapshot = full_db.snapshot();
        let timer = std::time::Instant::now();
        let _ = certain_answers(&query, snapshot.database()).expect("answerable");
        full_time = full_time.min(timer.elapsed());
    }
    let speedup = full_time.as_secs_f64() / repair_time.as_secs_f64().max(1e-9);
    let speedup_ok = speedup >= 10.0;
    eprintln!(
        "  single-fact churn: repair {:9.4} ms vs full recompute {:9.3} ms ({speedup:.1}x)",
        ms(repair_time),
        ms(full_time)
    );
    assert!(
        quick || speedup_ok,
        "view repair must be >= 10x faster than recomputation at full scale, got {speedup:.1}x"
    );

    // -- Phase 2: every ExecMode stays identical to the reference under a
    //    seeded churn script (each mode gets its own engine; the repairs
    //    consume the same recorded deltas).
    let modes = [
        ("auto", ExecMode::Auto),
        ("vectorized", ExecMode::Vectorized),
        ("row_at_a_time", ExecMode::RowAtATime),
    ];
    let churn_steps = if quick { 8 } else { 24 };
    let mut mode_db = db.clone();
    let mut mode_views: Vec<MaterializedView> = modes
        .iter()
        .map(|(name, mode)| {
            let mut view = MaterializedView::new(format!("q-{name}"), &query)
                .and_then(|v| v.with_mode(*mode))
                .expect("path3 registers in every mode");
            maintainer
                .initialize(&mut view, &mode_db.snapshot())
                .expect("initial decision");
            view
        })
        .collect();
    let mut state = 0x5DEE_CE66_D512_B529u64;
    for step in 0..churn_steps {
        let mut changes = ChangeSet::new();
        churn_step(&mut mode_db, &mut state, &mut changes);
        let snapshot = mode_db.snapshot();
        let reference = certain_answers(&query, snapshot.database()).expect("answerable");
        for view in &mut mode_views {
            maintainer
                .repair(view, &snapshot, &changes)
                .expect("repair");
            assert_eq!(
                view.certain(),
                &reference.certain,
                "{} diverged from the reference at churn step {step}",
                view.name()
            );
            assert_eq!(view.possible(), &reference.possible);
        }
    }
    eprintln!(
        "  mode identity: {churn_steps} churn steps identical in auto / vectorized / row-at-a-time"
    );

    // -- Phase 3: the maintained view under live concurrent serve traffic.
    let handle = Server::bind(
        db.clone(),
        "127.0.0.1:0",
        ServerConfig {
            threads: Some(2),
            ..ServerConfig::default()
        },
    )
    .expect("bind ephemeral port")
    .spawn()
    .expect("spawn acceptor");
    let addr = handle.addr();
    let connect = || {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).expect("set TCP_NODELAY");
        (
            BufReader::new(stream.try_clone().expect("clone stream")),
            stream,
        )
    };
    let ask = |reader: &mut BufReader<TcpStream>, writer: &mut TcpStream, line: &str| {
        writeln!(writer, "{line}").expect("send");
        let mut response = String::new();
        reader.read_line(&mut response).expect("recv");
        response.trim_end().to_string()
    };
    let (mut reader, mut writer) = connect();
    let view_query = "q(x) :- R(x, y), S(y, z), T(z, w)";
    let subscribed = ask(
        &mut reader,
        &mut writer,
        &format!("\\subscribe q {view_query}"),
    );
    assert!(subscribed.starts_with("ok: subscribed q"), "{subscribed}");

    let write_ops = if quick { 16 } else { 64 };
    let stop = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..2)
        .map(|_| {
            let stop = stop.clone();
            std::thread::spawn(move || {
                let stream = TcpStream::connect(addr).expect("connect");
                stream.set_nodelay(true).expect("set TCP_NODELAY");
                let mut reader = BufReader::new(stream.try_clone().expect("clone"));
                let mut writer = stream;
                let mut served = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    writeln!(writer, "\\view q").expect("send");
                    let mut response = String::new();
                    reader.read_line(&mut response).expect("recv");
                    assert!(response.starts_with("q: "), "{response}");
                    served += 1;
                }
                served
            })
        })
        .collect();
    // The writer churns a handful of fresh R keys — blocks grow
    // alternatives and shed them again — while a mirror database applies
    // the identical stream for the final check. (Generated instance tokens
    // contain `#`, the protocol's comment delimiter, so the stream uses
    // its own keys.)
    let mut mirror = db.clone();
    let schema = mirror.schema().clone();
    for i in 0..write_ops {
        let op = if i % 3 == 2 {
            format!("\\remove R(sk{}, serve{})", (i - 2) % 5, i - 2)
        } else {
            format!("\\insert R(sk{}, serve{i})", i % 5)
        };
        let response = ask(&mut reader, &mut writer, &op);
        assert!(response.starts_with("ok: "), "{op} -> {response}");
        let Ok(Some(protocol::Request::Write(write))) = protocol::parse_request(&schema, &op, 1)
        else {
            panic!("writer ops must parse: {op}");
        };
        match &write {
            cqa_serve::WriteOp::Insert(fact) => {
                let _ = mirror.insert(fact.clone()).expect("mirror insert");
            }
            cqa_serve::WriteOp::RemoveFact(fact) => {
                let _ = mirror.remove_fact(fact);
            }
            cqa_serve::WriteOp::RemoveBlock(fact) => {
                let _ = mirror.remove_block_of(fact);
            }
        }
    }
    stop.store(true, Ordering::Relaxed);
    let view_reads: usize = readers
        .into_iter()
        .map(|r| r.join().expect("reader thread"))
        .sum();
    let expected = protocol::render_result(&BatchResult {
        name: "q".to_string(),
        outcome: BatchOutcome::Answers(
            certain_answers(&query, &mirror).expect("mirror evaluation"),
        ),
    });
    let final_view = ask(&mut reader, &mut writer, "\\view q");
    assert_eq!(
        final_view, expected,
        "the maintained view must equal the mirror reference after the churn"
    );
    handle.shutdown();
    eprintln!(
        "  serve churn: {write_ops} writes, {view_reads} concurrent view reads, final reading identical"
    );

    let json = format!(
        "{{\n  \"benchmark\": \"incremental view repair vs full certain-answer recomputation\",\n  \"generated_by\": \"cargo run --release -p cqa-bench --bin bench_stream\",\n  \"quick\": {quick},\n  \"workload\": {{\n    \"name\": \"path3\",\n    \"query\": \"{}\",\n    \"facts\": {},\n    \"blocks\": {}\n  }},\n  \"single_fact_churn\": {{\n    \"repair_ms\": {:.4},\n    \"full_recompute_ms\": {:.4},\n    \"speedup\": {:.1},\n    \"speedup_ok\": {speedup_ok},\n    \"identical_answers\": true\n  }},\n  \"mode_identity\": {{ \"churn_steps\": {churn_steps}, \"modes\": [\"auto\", \"vectorized\", \"row_at_a_time\"], \"identical\": true }},\n  \"serve_churn\": {{ \"writes\": {write_ops}, \"concurrent_view_reads\": {view_reads}, \"final_view_identical\": true }}\n}}\n",
        json_escape(&query.to_string()),
        db.fact_count(),
        db.block_count(),
        ms(repair_time),
        ms(full_time),
        speedup,
    );
    let out = write_bench_json("BENCH_stream.json", &json);
    eprintln!("wrote {}", out.display());
    print!("{json}");
}
