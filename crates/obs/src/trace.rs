//! Operator-level execution tracing.
//!
//! A [`TraceSink`] is a fixed array of per-operator event cells, allocated
//! once per traced execution and installed explicitly on a prepared plan
//! (`PreparedFo::with_trace` / `PreparedQuery::with_trace` in `cqa-exec`).
//! Executors count hot-loop events into locals and flush them here per
//! operator visit — when no sink is installed the flush is a skipped
//! `Option` branch, which is what keeps always-on instrumentation inside
//! the `bench_obs` overhead budget.
//!
//! The event taxonomy mirrors what the engine's operators actually do:
//! *invocations* (operator entries / probes issued), *rows* (candidate
//! facts, column keys or domain values scanned), *matches* (candidates
//! that unified / batch rows that survived — the selection-vector sizes of
//! the vectorized path), *waves* (vectorized quantifier scheduling
//! rounds), and *fallback rows* (batch rows routed through the row
//! interpreter). Sink-level totals record wall time and which executor
//! ran.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// The event cell of one plan operator. All counters are relaxed atomics,
/// so one sink can be shared by the sharded executions of `cqa-par`.
#[derive(Debug, Default)]
pub struct OpTrace {
    invocations: AtomicU64,
    rows: AtomicU64,
    matches: AtomicU64,
    waves: AtomicU64,
    fallback_rows: AtomicU64,
}

impl OpTrace {
    /// Counts operator entries (row path) or parent rows processed /
    /// probes issued (batch path).
    #[inline]
    pub fn add_invocations(&self, n: u64) {
        self.invocations.fetch_add(n, Ordering::Relaxed);
    }

    /// Counts candidate rows, column keys or domain values scanned.
    #[inline]
    pub fn add_rows(&self, n: u64) {
        self.rows.fetch_add(n, Ordering::Relaxed);
    }

    /// Counts candidates that unified — on the batch path, the
    /// selection-vector sizes flowing out of the operator.
    #[inline]
    pub fn add_matches(&self, n: u64) {
        self.matches.fetch_add(n, Ordering::Relaxed);
    }

    /// Counts vectorized quantifier waves.
    #[inline]
    pub fn add_waves(&self, n: u64) {
        self.waves.fetch_add(n, Ordering::Relaxed);
    }

    /// Counts batch rows decided by the row-interpreter fallback.
    #[inline]
    pub fn add_fallback_rows(&self, n: u64) {
        self.fallback_rows.fetch_add(n, Ordering::Relaxed);
    }

    /// Operator entries / probes issued.
    pub fn invocations(&self) -> u64 {
        self.invocations.load(Ordering::Relaxed)
    }

    /// Rows scanned.
    pub fn rows(&self) -> u64 {
        self.rows.load(Ordering::Relaxed)
    }

    /// Unifying candidates / surviving batch rows.
    pub fn matches(&self) -> u64 {
        self.matches.load(Ordering::Relaxed)
    }

    /// Vectorized quantifier waves.
    pub fn waves(&self) -> u64 {
        self.waves.load(Ordering::Relaxed)
    }

    /// Rows decided via the row-interpreter fallback.
    pub fn fallback_rows(&self) -> u64 {
        self.fallback_rows.load(Ordering::Relaxed)
    }

    /// True iff no event was recorded on this operator.
    pub fn is_empty(&self) -> bool {
        self.invocations() == 0
            && self.rows() == 0
            && self.matches() == 0
            && self.waves() == 0
            && self.fallback_rows() == 0
    }
}

/// A per-execution collector of operator events: one [`OpTrace`] cell per
/// traced operator of a plan (indexed by the plan's probe/trace ids), plus
/// sink-level wall time and executor-path totals.
#[derive(Debug)]
pub struct TraceSink {
    ops: Vec<OpTrace>,
    wall_nanos: AtomicU64,
    vec_runs: AtomicU64,
    row_runs: AtomicU64,
}

impl TraceSink {
    /// A sink with `ops` operator cells, all zero.
    pub fn new(ops: usize) -> TraceSink {
        TraceSink {
            ops: (0..ops).map(|_| OpTrace::default()).collect(),
            wall_nanos: AtomicU64::new(0),
            vec_runs: AtomicU64::new(0),
            row_runs: AtomicU64::new(0),
        }
    }

    /// Number of operator cells.
    pub fn op_count(&self) -> usize {
        self.ops.len()
    }

    /// The event cell of operator `index`.
    ///
    /// # Panics
    /// If `index` is out of range — sinks must be sized to the plan they
    /// trace.
    pub fn op(&self, index: usize) -> &OpTrace {
        &self.ops[index]
    }

    /// Adds wall time spent inside a traced entry point.
    pub fn add_wall(&self, elapsed: Duration) {
        self.wall_nanos.fetch_add(
            elapsed.as_nanos().min(u64::MAX as u128) as u64,
            Ordering::Relaxed,
        );
    }

    /// Total wall time recorded by traced entry points.
    pub fn wall(&self) -> Duration {
        Duration::from_nanos(self.wall_nanos.load(Ordering::Relaxed))
    }

    /// Counts one entry-point run on the vectorized path.
    pub fn count_vec_run(&self) {
        self.vec_runs.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one entry-point run on the row path.
    pub fn count_row_run(&self) {
        self.row_runs.fetch_add(1, Ordering::Relaxed);
    }

    /// Entry-point runs that took the vectorized path.
    pub fn vec_runs(&self) -> u64 {
        self.vec_runs.load(Ordering::Relaxed)
    }

    /// Entry-point runs that took the row path.
    pub fn row_runs(&self) -> u64 {
        self.row_runs.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_cells_accumulate_events() {
        let sink = TraceSink::new(3);
        assert_eq!(sink.op_count(), 3);
        assert!(sink.op(1).is_empty());
        sink.op(1).add_invocations(1);
        sink.op(1).add_rows(10);
        sink.op(1).add_matches(4);
        sink.op(1).add_waves(2);
        sink.op(1).add_fallback_rows(1);
        let cell = sink.op(1);
        assert_eq!(
            (
                cell.invocations(),
                cell.rows(),
                cell.matches(),
                cell.waves(),
                cell.fallback_rows()
            ),
            (1, 10, 4, 2, 1)
        );
        assert!(!cell.is_empty());
        assert!(sink.op(0).is_empty());
    }

    #[test]
    fn sink_totals_record_wall_time_and_paths() {
        let sink = TraceSink::new(1);
        sink.add_wall(Duration::from_micros(5));
        sink.add_wall(Duration::from_micros(7));
        assert_eq!(sink.wall(), Duration::from_micros(12));
        sink.count_vec_run();
        sink.count_row_run();
        sink.count_row_run();
        assert_eq!((sink.vec_runs(), sink.row_runs()), (1, 2));
    }
}
