//! Shared instance builders and measurement helpers for the benchmark
//! harness and the `experiments` binary.
//!
//! Every experiment of `EXPERIMENTS.md` pulls its workloads from here so that
//! the Criterion micro-benchmarks and the experiment reproduction print-outs
//! measure exactly the same instances.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use cqa_data::UncertainDatabase;
use cqa_gen::{cycle_instance, CycleInstanceConfig, GeneratorConfig, UncertainDbGenerator};
use cqa_query::{catalog, ConjunctiveQuery};
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Workload scale → uncertain database for a given catalog query: `n` match
/// groups with one extra (key-violating) alternative per planted fact.
pub fn scaled_instance(query: &ConjunctiveQuery, n: usize, seed: u64) -> UncertainDatabase {
    UncertainDbGenerator::new(
        query,
        GeneratorConfig {
            seed,
            matches: n,
            domain_per_variable: (n / 2).max(4),
            extra_block_facts: 1,
            alternative_join_probability: 0.5,
        },
    )
    .generate()
}

/// A `C(k)` / `AC(k)` cycle-graph instance with `n` constants per layer.
pub fn scaled_cycle_instance(k: usize, with_s: bool, n: usize, seed: u64) -> UncertainDatabase {
    cycle_instance(
        k,
        with_s,
        &CycleInstanceConfig {
            seed,
            nodes_per_layer: n,
            edges_per_node: 2,
            encoded_cycle_fraction: 0.6,
        },
    )
}

/// The conference query and database of Figure 1.
pub fn figure1() -> (ConjunctiveQuery, UncertainDatabase) {
    (catalog::conference().query, catalog::conference_database())
}

/// Times a closure, returning its result and the elapsed wall-clock time.
pub fn time_it<R>(mut f: impl FnMut() -> R) -> (R, Duration) {
    let start = Instant::now();
    let result = f();
    (result, start.elapsed())
}

/// The minimum wall-clock time of `runs` executions of `f` — the
/// measurement the `bench_exec` / `bench_par` binaries record (minimum
/// over runs filters scheduler noise better than the mean).
pub fn time_min<R>(runs: usize, mut f: impl FnMut() -> R) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..runs {
        let start = Instant::now();
        std::hint::black_box(f());
        best = best.min(start.elapsed());
    }
    best
}

/// Escapes a string for embedding in the hand-rendered benchmark JSON.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats a duration in microseconds with three significant digits.
pub fn micros(d: Duration) -> String {
    format!("{:.1}µs", d.as_secs_f64() * 1e6)
}

/// A duration as fractional milliseconds (the unit every `bench_*` binary
/// reports and records).
pub fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// True iff the process was invoked with `--quick` — the CI smoke-run mode
/// every `bench_*` binary honors by shrinking its instances.
pub fn quick_flag() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// Writes a hand-rendered benchmark JSON document to `filename` at the
/// workspace root and returns the path written.
pub fn write_bench_json(filename: &str, json: &str) -> PathBuf {
    let out = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(filename);
    std::fs::write(&out, json).unwrap_or_else(|e| panic!("write {filename}: {e}"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_instances_grow_with_n() {
        let q = catalog::fig4().query;
        let small = scaled_instance(&q, 5, 1);
        let large = scaled_instance(&q, 50, 1);
        assert!(large.fact_count() > small.fact_count());
    }

    #[test]
    fn cycle_instances_grow_with_n() {
        let small = scaled_cycle_instance(3, true, 5, 1);
        let large = scaled_cycle_instance(3, true, 20, 1);
        assert!(large.fact_count() > small.fact_count());
    }

    #[test]
    fn timing_helper_reports_something() {
        let (value, elapsed) = time_it(|| 2 + 2);
        assert_eq!(value, 4);
        assert!(elapsed.as_nanos() > 0 || micros(elapsed).ends_with("µs"));
    }
}
