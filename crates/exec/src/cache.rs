//! Memoization of compiled plans per `(schema, query)`.
//!
//! Plans depend only on the query text, the schema and (for ordering, not
//! correctness) statistics, so a long-running service compiling each
//! incoming query once amortizes planning across every later snapshot. The
//! cache key is a structural fingerprint — relation signatures plus the
//! query rendering — rather than a pointer, so schema clones hit the same
//! entry and a dropped-and-reallocated schema cannot alias a stale one.

use crate::QueryPlan;
use cqa_data::Statistics;
use cqa_query::ConjunctiveQuery;
use rustc_hash::FxHashMap;
use std::fmt::Write as _;
use std::sync::{Arc, PoisonError, RwLock};

/// A thread-safe, poison-proof cache of compiled [`QueryPlan`]s.
#[derive(Default)]
pub struct PlanCache {
    plans: RwLock<FxHashMap<String, Arc<QueryPlan>>>,
}

/// The cache key of a query: relation signatures followed by the query
/// rendering. Exported so other per-query caches (the `cqa-par` batch
/// engine's classified-engine memo) key on exactly the same notion of
/// "same (schema, query)" and cannot drift from this cache.
pub fn fingerprint(query: &ConjunctiveQuery) -> String {
    let mut key = String::new();
    for (_, relation) in query.schema().iter() {
        let _ = write!(
            key,
            "{}[{},{}];",
            relation.name,
            relation.arity(),
            relation.key_len()
        );
    }
    let _ = write!(key, "|{query}");
    key
}

impl PlanCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        PlanCache::default()
    }

    /// The compiled plan for `query`, compiling (with `stats` guiding the
    /// join order) only on the first request for this `(schema, query)`.
    pub fn plan(&self, query: &ConjunctiveQuery, stats: Option<&Statistics>) -> Arc<QueryPlan> {
        let key = fingerprint(query);
        if let Some(plan) = self
            .plans
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(&key)
        {
            return plan.clone();
        }
        let compiled = Arc::new(QueryPlan::compile(query, stats));
        self.plans
            .write()
            .unwrap_or_else(PoisonError::into_inner)
            .entry(key)
            .or_insert(compiled)
            .clone()
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.plans
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// True iff no plan is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every cached plan.
    pub fn clear(&self) {
        self.plans
            .write()
            .unwrap_or_else(PoisonError::into_inner)
            .clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_query::catalog;
    use std::sync::Arc as StdArc;

    #[test]
    fn identical_queries_share_one_plan() {
        let cache = PlanCache::new();
        let q = catalog::conference().query;
        let a = cache.plan(&q, None);
        let b = cache.plan(&q.clone(), None);
        assert!(StdArc::ptr_eq(&a, &b));
        assert_eq!(cache.len(), 1);
        let other = catalog::fo_path2().query;
        let c = cache.plan(&other, None);
        assert!(!StdArc::ptr_eq(&a, &c));
        assert_eq!(cache.len(), 2);
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn cached_plans_execute() {
        let cache = PlanCache::new();
        let q = catalog::conference().query;
        let db = catalog::conference_database();
        let index = db.index();
        let plan = cache.plan(&q, Some(index.statistics()));
        assert!(plan.satisfies(&db));
    }
}
