//! Compact variable sets.
//!
//! The closure computations of Definitions 2 and 5 (`F^{+,q}`, `F^{⊞,q}`)
//! treat the variables of a query as attributes of a relational schema. A
//! query has at most a few dozen variables, so we index them once per query
//! ([`VarIndex`]) and represent sets as 128-bit masks ([`VarSet`]), which
//! makes the fixpoint loops allocation-free.

use crate::{QueryError, Variable};
use rustc_hash::FxHashMap;
use std::fmt;

/// Maximum number of distinct variables supported per query.
pub const MAX_VARS: usize = 128;

/// A bijection between the variables of one query and bit positions.
#[derive(Clone, Debug, Default)]
pub struct VarIndex {
    vars: Vec<Variable>,
    positions: FxHashMap<Variable, usize>,
}

impl VarIndex {
    /// Builds an index over the given variables (duplicates are collapsed;
    /// insertion order determines bit positions).
    pub fn new(vars: impl IntoIterator<Item = Variable>) -> Result<Self, QueryError> {
        let mut index = VarIndex::default();
        for v in vars {
            index.intern(v)?;
        }
        Ok(index)
    }

    fn intern(&mut self, var: Variable) -> Result<usize, QueryError> {
        if let Some(&i) = self.positions.get(&var) {
            return Ok(i);
        }
        let i = self.vars.len();
        if i >= MAX_VARS {
            return Err(QueryError::TooManyVariables {
                count: i + 1,
                max: MAX_VARS,
            });
        }
        self.positions.insert(var.clone(), i);
        self.vars.push(var);
        Ok(i)
    }

    /// Number of indexed variables.
    pub fn len(&self) -> usize {
        self.vars.len()
    }

    /// True iff no variable is indexed.
    pub fn is_empty(&self) -> bool {
        self.vars.is_empty()
    }

    /// The bit position of a variable, if indexed.
    pub fn position(&self, var: &Variable) -> Option<usize> {
        self.positions.get(var).copied()
    }

    /// The variable at a bit position.
    pub fn variable(&self, position: usize) -> &Variable {
        &self.vars[position]
    }

    /// All indexed variables in position order.
    pub fn variables(&self) -> &[Variable] {
        &self.vars
    }

    /// Builds a [`VarSet`] from an iterator of variables; variables that are
    /// not indexed are ignored (useful when projecting a super-query's
    /// variable set onto a sub-query).
    pub fn set_of<'a>(&self, vars: impl IntoIterator<Item = &'a Variable>) -> VarSet {
        let mut set = VarSet::empty();
        for v in vars {
            if let Some(i) = self.position(v) {
                set.insert(i);
            }
        }
        set
    }

    /// The set of all indexed variables.
    pub fn all(&self) -> VarSet {
        let mut set = VarSet::empty();
        for i in 0..self.len() {
            set.insert(i);
        }
        set
    }

    /// Materialises a [`VarSet`] back into variables.
    pub fn materialize(&self, set: VarSet) -> Vec<Variable> {
        set.iter().map(|i| self.vars[i].clone()).collect()
    }
}

/// A set of variable positions, stored as a 128-bit mask.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct VarSet(u128);

impl VarSet {
    /// The empty set.
    pub const fn empty() -> Self {
        VarSet(0)
    }

    /// Singleton set.
    pub fn singleton(position: usize) -> Self {
        let mut s = VarSet::empty();
        s.insert(position);
        s
    }

    /// Inserts a position.
    pub fn insert(&mut self, position: usize) {
        debug_assert!(position < MAX_VARS);
        self.0 |= 1u128 << position;
    }

    /// Removes a position.
    pub fn remove(&mut self, position: usize) {
        self.0 &= !(1u128 << position);
    }

    /// Membership test.
    pub fn contains(&self, position: usize) -> bool {
        (self.0 >> position) & 1 == 1
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.0.count_ones() as usize
    }

    /// True iff the set is empty.
    pub fn is_empty(&self) -> bool {
        self.0 == 0
    }

    /// Set union.
    pub fn union(self, other: VarSet) -> VarSet {
        VarSet(self.0 | other.0)
    }

    /// Set intersection.
    pub fn intersection(self, other: VarSet) -> VarSet {
        VarSet(self.0 & other.0)
    }

    /// Set difference (`self \ other`).
    pub fn difference(self, other: VarSet) -> VarSet {
        VarSet(self.0 & !other.0)
    }

    /// Subset test (`self ⊆ other`).
    pub fn is_subset_of(&self, other: &VarSet) -> bool {
        self.0 & !other.0 == 0
    }

    /// True iff the two sets share no element.
    pub fn is_disjoint(&self, other: &VarSet) -> bool {
        self.0 & other.0 == 0
    }

    /// Iterates over the positions in ascending order.
    pub fn iter(self) -> impl Iterator<Item = usize> {
        (0..MAX_VARS).filter(move |&i| self.contains(i))
    }
}

impl fmt::Debug for VarSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (n, i) in self.iter().enumerate() {
            if n > 0 {
                write!(f, ",")?;
            }
            write!(f, "{i}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_interns_variables_once() {
        let idx = VarIndex::new(["x", "y", "x", "z"].map(Variable::new)).unwrap();
        assert_eq!(idx.len(), 3);
        assert_eq!(idx.position(&Variable::new("x")), Some(0));
        assert_eq!(idx.position(&Variable::new("z")), Some(2));
        assert_eq!(idx.position(&Variable::new("w")), None);
        assert_eq!(idx.variable(1), &Variable::new("y"));
    }

    #[test]
    fn too_many_variables_is_an_error() {
        let vars = (0..=MAX_VARS).map(|i| Variable::indexed("v", i));
        assert!(matches!(
            VarIndex::new(vars),
            Err(QueryError::TooManyVariables { .. })
        ));
    }

    #[test]
    fn set_algebra() {
        let mut a = VarSet::empty();
        a.insert(0);
        a.insert(5);
        let mut b = VarSet::singleton(5);
        b.insert(9);
        assert_eq!(a.len(), 2);
        assert!(a.contains(5));
        assert!(!a.contains(9));
        assert_eq!(a.union(b).len(), 3);
        assert_eq!(a.intersection(b), VarSet::singleton(5));
        assert_eq!(a.difference(b), VarSet::singleton(0));
        assert!(VarSet::singleton(5).is_subset_of(&a));
        assert!(!a.is_subset_of(&b));
        assert!(a.intersection(b).is_subset_of(&a));
        assert!(VarSet::empty().is_subset_of(&a));
        assert!(VarSet::empty().is_disjoint(&a));
        a.remove(5);
        assert_eq!(a, VarSet::singleton(0));
    }

    #[test]
    fn set_round_trips_through_the_index() {
        let idx = VarIndex::new(["x", "y", "z"].map(Variable::new)).unwrap();
        let set = idx.set_of(&[Variable::new("z"), Variable::new("x")]);
        assert_eq!(set.len(), 2);
        let names: Vec<String> = idx.materialize(set).iter().map(|v| v.to_string()).collect();
        assert_eq!(names, vec!["x", "z"]);
        assert_eq!(idx.all().len(), 3);
        // Unknown variables are ignored by set_of.
        let partial = idx.set_of(&[Variable::new("x"), Variable::new("unknown")]);
        assert_eq!(partial.len(), 1);
    }

    #[test]
    fn iter_is_sorted() {
        let mut s = VarSet::empty();
        s.insert(17);
        s.insert(2);
        s.insert(64);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![2, 17, 64]);
    }
}
