//! Valuations: total mappings from variables to constants.
//!
//! Section 3: *"Let `U` be a set of variables. A valuation over `U` is a
//! total mapping `θ` from `U` to the set of constants. Such valuation `θ` is
//! extended to be the identity on constants and on variables not in `U`."*

use crate::{Atom, ConjunctiveQuery, Term, Variable};
use cqa_data::{Fact, Schema, Value};
use rustc_hash::FxHashMap;
use std::collections::BTreeMap;
use std::fmt;

/// A (partial or total) mapping from variables to constants.
///
/// During query evaluation valuations are built up incrementally, so the type
/// supports partial mappings; the paper's "valuation over `vars(q)`"
/// corresponds to a valuation that is total on the query's variables, which
/// [`Valuation::is_total_on`] checks.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct Valuation {
    bindings: FxHashMap<Variable, Value>,
}

impl Valuation {
    /// The empty valuation.
    pub fn new() -> Self {
        Valuation::default()
    }

    /// Builds a valuation from `(variable, value)` pairs.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (Variable, Value)>) -> Self {
        Valuation {
            bindings: pairs.into_iter().collect(),
        }
    }

    /// Number of bound variables.
    pub fn len(&self) -> usize {
        self.bindings.len()
    }

    /// True iff no variable is bound.
    pub fn is_empty(&self) -> bool {
        self.bindings.is_empty()
    }

    /// The value bound to a variable, if any.
    pub fn get(&self, var: &Variable) -> Option<&Value> {
        self.bindings.get(var)
    }

    /// Binds a variable. Returns `false` (and leaves the valuation unchanged)
    /// if the variable is already bound to a *different* value.
    pub fn bind(&mut self, var: Variable, value: Value) -> bool {
        match self.bindings.get(&var) {
            Some(existing) => *existing == value,
            None => {
                self.bindings.insert(var, value);
                true
            }
        }
    }

    /// The paper's `θ[x̄ ↦ ā]` (Definition 7): rebinds the listed variables.
    pub fn overridden(&self, vars: &[Variable], values: &[Value]) -> Valuation {
        let mut v = self.clone();
        for (x, a) in vars.iter().zip(values) {
            v.bindings.insert(x.clone(), a.clone());
        }
        v
    }

    /// True iff every variable of `vars` is bound.
    pub fn is_total_on<'a>(&self, vars: impl IntoIterator<Item = &'a Variable>) -> bool {
        vars.into_iter().all(|v| self.bindings.contains_key(v))
    }

    /// Applies the valuation to a term; variables not bound map to `None`.
    pub fn apply_term(&self, term: &Term) -> Option<Value> {
        match term {
            Term::Const(c) => Some(c.clone()),
            Term::Var(v) => self.bindings.get(v).cloned(),
        }
    }

    /// Applies the valuation to an atom, producing the fact `θ(F)`.
    /// Returns `None` if some variable of the atom is unbound.
    pub fn apply_atom(&self, atom: &Atom) -> Option<Fact> {
        let values: Option<Vec<Value>> = atom.terms().iter().map(|t| self.apply_term(t)).collect();
        Some(Fact::new(atom.relation(), values?))
    }

    /// Applies the valuation to all atoms of a query, producing `θ(q)`.
    /// Returns `None` if some variable of the query is unbound.
    pub fn apply_query(&self, query: &ConjunctiveQuery) -> Option<Vec<Fact>> {
        query.atoms().iter().map(|a| self.apply_atom(a)).collect()
    }

    /// Attempts to extend this valuation so that `θ(atom) = fact`.
    /// Returns the extended valuation, or `None` if the fact does not unify
    /// with the atom (constant mismatch, repeated-variable mismatch, or a
    /// conflict with an existing binding).
    pub fn unify_with_fact(&self, atom: &Atom, fact: &Fact, _schema: &Schema) -> Option<Valuation> {
        if atom.relation() != fact.relation() || atom.arity() != fact.arity() {
            return None;
        }
        let mut extended = self.clone();
        for (term, value) in atom.terms().iter().zip(fact.values()) {
            match term {
                Term::Const(c) => {
                    if c != value {
                        return None;
                    }
                }
                Term::Var(v) => {
                    if !extended.bind(v.clone(), value.clone()) {
                        return None;
                    }
                }
            }
        }
        Some(extended)
    }

    /// Restricts the valuation to the given variables.
    pub fn restrict_to<'a>(&self, vars: impl IntoIterator<Item = &'a Variable>) -> Valuation {
        Valuation {
            bindings: vars
                .into_iter()
                .filter_map(|v| self.bindings.get(v).map(|val| (v.clone(), val.clone())))
                .collect(),
        }
    }

    /// The bound values of the listed variables, in order; `None` if some
    /// variable is unbound. Used to extract answer tuples.
    pub fn project(&self, vars: &[Variable]) -> Option<Vec<Value>> {
        vars.iter().map(|v| self.bindings.get(v).cloned()).collect()
    }

    /// Iterates over the bindings in variable order (deterministic).
    pub fn iter(&self) -> impl Iterator<Item = (&Variable, &Value)> {
        let sorted: BTreeMap<&Variable, &Value> = self.bindings.iter().collect();
        sorted.into_iter().collect::<Vec<_>>().into_iter()
    }
}

impl fmt::Debug for Valuation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (var, val)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{var}↦{val}")?;
        }
        write!(f, "}}")
    }
}

impl fmt::Display for Valuation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_data::Schema;

    fn schema() -> Schema {
        Schema::from_relations([("R", 2, 1), ("S", 3, 2)]).unwrap()
    }

    #[test]
    fn binding_conflicts_are_rejected() {
        let mut v = Valuation::new();
        assert!(v.bind(Variable::new("x"), Value::str("a")));
        assert!(v.bind(Variable::new("x"), Value::str("a")));
        assert!(!v.bind(Variable::new("x"), Value::str("b")));
        assert_eq!(v.get(&Variable::new("x")), Some(&Value::str("a")));
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn apply_atom_requires_total_bindings() {
        let s = schema();
        let atom = Atom::new(
            s.relation_id("R").unwrap(),
            vec![Term::var("x"), Term::var("y")],
        );
        let mut v = Valuation::new();
        v.bind(Variable::new("x"), Value::str("a"));
        assert!(v.apply_atom(&atom).is_none());
        v.bind(Variable::new("y"), Value::str("b"));
        let fact = v.apply_atom(&atom).unwrap();
        assert_eq!(fact.values(), &[Value::str("a"), Value::str("b")]);
    }

    #[test]
    fn unify_handles_constants_and_repeated_variables() {
        let s = schema();
        let r = s.relation_id("R").unwrap();
        // R(x, x) unifies only with facts whose two values coincide.
        let atom = Atom::new(r, vec![Term::var("x"), Term::var("x")]);
        let ok = Fact::new(r, vec![Value::str("a"), Value::str("a")]);
        let bad = Fact::new(r, vec![Value::str("a"), Value::str("b")]);
        let base = Valuation::new();
        assert!(base.unify_with_fact(&atom, &ok, &s).is_some());
        assert!(base.unify_with_fact(&atom, &bad, &s).is_none());
        // Constant positions must match exactly.
        let atom_c = Atom::new(r, vec![Term::var("x"), Term::constant("b")]);
        assert!(base.unify_with_fact(&atom_c, &bad, &s).is_some());
        assert!(base.unify_with_fact(&atom_c, &ok, &s).is_none());
        // Existing bindings constrain unification.
        let mut bound = Valuation::new();
        bound.bind(Variable::new("x"), Value::str("z"));
        assert!(bound.unify_with_fact(&atom_c, &bad, &s).is_none());
    }

    #[test]
    fn unify_rejects_wrong_relation() {
        let s = schema();
        let r = s.relation_id("R").unwrap();
        let srel = s.relation_id("S").unwrap();
        let atom = Atom::new(r, vec![Term::var("x"), Term::var("y")]);
        let fact = Fact::new(
            srel,
            vec![Value::str("a"), Value::str("b"), Value::str("c")],
        );
        assert!(Valuation::new().unify_with_fact(&atom, &fact, &s).is_none());
    }

    #[test]
    fn projection_and_restriction() {
        let v = Valuation::from_pairs([
            (Variable::new("x"), Value::str("a")),
            (Variable::new("y"), Value::str("b")),
            (Variable::new("z"), Value::str("c")),
        ]);
        assert_eq!(
            v.project(&[Variable::new("z"), Variable::new("x")]),
            Some(vec![Value::str("c"), Value::str("a")])
        );
        assert_eq!(v.project(&[Variable::new("w")]), None);
        let r = v.restrict_to(&[Variable::new("x")]);
        assert_eq!(r.len(), 1);
        assert!(v.is_total_on(&[Variable::new("x"), Variable::new("y")]));
        assert!(!r.is_total_on(&[Variable::new("y")]));
    }

    #[test]
    fn overridden_rebinds_listed_variables() {
        let v = Valuation::from_pairs([(Variable::new("x"), Value::str("a"))]);
        let w = v.overridden(
            &[Variable::new("x"), Variable::new("y")],
            &[Value::str("b"), Value::str("c")],
        );
        assert_eq!(w.get(&Variable::new("x")), Some(&Value::str("b")));
        assert_eq!(w.get(&Variable::new("y")), Some(&Value::str("c")));
        // The original is untouched.
        assert_eq!(v.get(&Variable::new("x")), Some(&Value::str("a")));
    }

    #[test]
    fn debug_formatting_is_deterministic() {
        let v = Valuation::from_pairs([
            (Variable::new("y"), Value::str("b")),
            (Variable::new("x"), Value::str("a")),
        ]);
        assert_eq!(format!("{v:?}"), "{x↦a, y↦b}");
    }
}
