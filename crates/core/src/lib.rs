//! # cqa-core
//!
//! The primary contribution of
//!
//! > Jef Wijsen. *Charting the Tractability Frontier of Certain Conjunctive
//! > Query Answering*. PODS 2013.
//!
//! implemented as a library:
//!
//! * [`attack`] — attack graphs of acyclic Boolean conjunctive queries
//!   (Definition 3), the closures `F^{+,q}` / `F^{⊞,q}` (Definitions 2 and 5),
//!   weak vs. strong attacks, and the cycle analysis (strong cycles,
//!   terminal cycles) on which the complexity classification rests;
//! * [`classify`](mod@classify) — the tractability-frontier classifier: first-order
//!   expressible (Theorem 1), coNP-complete (Theorem 2), polynomial time
//!   (Theorems 3 and 4, Corollary 1), or the open case of Conjecture 1;
//! * [`fo`] — certain first-order rewritings: formula AST, construction for
//!   queries with acyclic attack graphs, a model checker, and SQL generation;
//! * [`solvers`] — one certain-answer algorithm per region of the frontier
//!   (rewriting-based, Theorem 3, Theorem 4 / Corollary 1, the two-atom base
//!   case, and an exact exponential oracle used as the coNP baseline),
//!   plus the [`solvers::CertaintyEngine`] dispatcher;
//! * [`reductions`] — the polynomial-time reductions used in the paper
//!   (the `θ̂` construction of Theorem 2 and the all-key padding of Lemma 9);
//! * [`answers`] — certain answers to non-Boolean queries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod answers;
pub mod attack;
pub mod classify;
pub mod fo;
pub mod reductions;
pub mod solvers;

pub use attack::{AttackGraph, AttackStrength, CycleAnalysis};
pub use classify::{classify, Classification, ComplexityClass};
pub use solvers::{CertaintyEngine, CertaintySolver};
