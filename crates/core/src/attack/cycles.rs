//! Cycle classification of attack graphs (Definitions 5 and 6).
//!
//! * A cycle is **strong** if it contains at least one strong attack, and
//!   **weak** otherwise.
//! * A cycle is **terminal** if no edge leads from a vertex in the cycle to a
//!   vertex outside the cycle (Definition 6).
//!
//! The complexity classification needs three facts about a query's attack
//! graph: does it have a cycle at all, does it have a strong cycle, and are
//! all (weak) cycles terminal. [`CycleAnalysis`] computes them by elementary
//! cycle enumeration (attack graphs have one vertex per atom, so this is
//! cheap), and additionally exposes a [`CycleAnalysis::strong_two_cycle`]
//! witness as promised by Lemma 4.

use super::{AttackGraph, AttackStrength};
use cqa_graph::cycles::elementary_cycles;
use cqa_query::AtomId;

/// One elementary cycle of the attack graph with its classification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CycleInfo {
    /// The atoms on the cycle, in cycle order (starting from the smallest id).
    pub atoms: Vec<AtomId>,
    /// True iff some attack on the cycle is strong.
    pub strong: bool,
    /// True iff no attack leads from a cycle vertex to a vertex outside the cycle.
    pub terminal: bool,
}

impl CycleInfo {
    /// Length of the cycle (number of attacks on it).
    pub fn len(&self) -> usize {
        self.atoms.len()
    }

    /// Cycles are never empty.
    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }
}

/// The cycle structure of an attack graph.
#[derive(Clone, Debug)]
pub struct CycleAnalysis {
    cycles: Vec<CycleInfo>,
}

impl CycleAnalysis {
    /// Analyses the cycles of an attack graph.
    pub fn analyze(graph: &AttackGraph) -> CycleAnalysis {
        let raw = elementary_cycles(graph.digraph(), None);
        let cycles = raw
            .into_iter()
            .map(|nodes| {
                let atoms: Vec<AtomId> = nodes.iter().map(|n| n.index()).collect();
                let strong = atoms.iter().enumerate().any(|(i, &from)| {
                    let to = atoms[(i + 1) % atoms.len()];
                    graph.strength(from, to) == Some(AttackStrength::Strong)
                });
                let terminal = atoms
                    .iter()
                    .all(|&from| graph.attacked_by(from).iter().all(|to| atoms.contains(to)));
                CycleInfo {
                    atoms,
                    strong,
                    terminal,
                }
            })
            .collect();
        CycleAnalysis { cycles }
    }

    /// All elementary cycles with their classification.
    pub fn cycles(&self) -> &[CycleInfo] {
        &self.cycles
    }

    /// True iff the attack graph has at least one cycle.
    pub fn has_cycle(&self) -> bool {
        !self.cycles.is_empty()
    }

    /// True iff some cycle is strong (Theorem 2 then gives coNP-completeness).
    pub fn has_strong_cycle(&self) -> bool {
        self.cycles.iter().any(|c| c.strong)
    }

    /// True iff every cycle is weak.
    pub fn all_cycles_weak(&self) -> bool {
        !self.has_strong_cycle()
    }

    /// True iff every cycle is terminal (Definition 6). Together with
    /// weakness this is the premise of Theorem 3.
    pub fn all_cycles_terminal(&self) -> bool {
        self.cycles.iter().all(|c| c.terminal)
    }

    /// A strong cycle of length 2, if any strong cycle exists.
    ///
    /// Lemma 4 guarantees that an attack graph with a strong cycle has a
    /// strong cycle of length 2; the returned pair `(F, G)` is ordered so
    /// that the attack `F ⇝ G` is strong (as assumed in the proof of
    /// Theorem 2).
    pub fn strong_two_cycle(&self, graph: &AttackGraph) -> Option<(AtomId, AtomId)> {
        for cycle in &self.cycles {
            if cycle.len() != 2 || !cycle.strong {
                continue;
            }
            let (a, b) = (cycle.atoms[0], cycle.atoms[1]);
            if graph.strength(a, b) == Some(AttackStrength::Strong) {
                return Some((a, b));
            }
            if graph.strength(b, a) == Some(AttackStrength::Strong) {
                return Some((b, a));
            }
        }
        None
    }

    /// The 2-cycles of the attack graph, as unordered pairs (used by the
    /// Theorem 3 solver, whose base case is a disjoint union of weak
    /// 2-cycles).
    pub fn two_cycles(&self) -> Vec<(AtomId, AtomId)> {
        self.cycles
            .iter()
            .filter(|c| c.len() == 2)
            .map(|c| (c.atoms[0].min(c.atoms[1]), c.atoms[0].max(c.atoms[1])))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attack::AttackGraph;
    use cqa_query::catalog;

    fn analysis(q: &cqa_query::ConjunctiveQuery) -> (AttackGraph, CycleAnalysis) {
        let ag = AttackGraph::build(q).unwrap();
        let an = CycleAnalysis::analyze(&ag);
        (ag, an)
    }

    #[test]
    fn q1_has_strong_cycles_and_lemma4_witness() {
        // Example 4: the cycle G <-> H is weak; F <-> G is strong; the 3-cycle
        // F -> H -> G -> F is strong.
        let q = catalog::q1().query;
        let (ag, an) = analysis(&q);
        assert!(an.has_cycle());
        assert!(an.has_strong_cycle());
        assert!(!an.all_cycles_weak());
        // Lemma 4: a strong 2-cycle exists; the witness must have its strong
        // attack in the first component. Here it is (G, F) = (1, 0).
        let (f, g) = an.strong_two_cycle(&ag).expect("Lemma 4 witness");
        assert_eq!((f, g), (1, 0));
        assert_eq!(ag.strength(f, g), Some(AttackStrength::Strong));
        assert!(ag.attacks(g, f), "the witness must be a 2-cycle");
        // The weak 2-cycle G <-> H is reported as weak.
        let gh = an
            .cycles()
            .iter()
            .find(|c| c.len() == 2 && c.atoms.contains(&1) && c.atoms.contains(&2))
            .expect("G <-> H cycle");
        assert!(!gh.strong);
    }

    #[test]
    fn lemma4_strong_cycle_implies_strong_two_cycle_on_catalog() {
        // Lemma 4 checked on every acyclic catalog query.
        for entry in catalog::all() {
            if !cqa_query::join_tree::is_acyclic(&entry.query) {
                continue;
            }
            let (ag, an) = analysis(&entry.query);
            if an.has_strong_cycle() {
                assert!(
                    an.strong_two_cycle(&ag).is_some(),
                    "Lemma 4 violated on {}",
                    entry.name
                );
            }
        }
    }

    #[test]
    fn fig4_cycles_are_weak_and_terminal() {
        let q = catalog::fig4().query;
        let (_, an) = analysis(&q);
        assert!(an.has_cycle());
        assert!(an.all_cycles_weak());
        assert!(an.all_cycles_terminal());
        assert_eq!(an.cycles().len(), 3);
        assert_eq!(an.two_cycles(), vec![(0, 1), (2, 3), (4, 5)]);
        // Lemma 6: when all cycles are terminal, every cycle has length 2.
        assert!(an.cycles().iter().all(|c| c.len() == 2));
    }

    #[test]
    fn ac3_cycles_are_weak_but_not_terminal() {
        // Figure 5: all cycles weak, none terminal (every Ri also attacks S3,
        // which lies outside every cycle through the Ri atoms... S3 is in no cycle).
        let q = catalog::ac_k(3).query;
        let (_, an) = analysis(&q);
        assert!(an.has_cycle());
        assert!(an.all_cycles_weak());
        assert!(!an.all_cycles_terminal());
        // In fact no cycle at all is terminal (the caption of Figure 5).
        assert!(an.cycles().iter().all(|c| !c.terminal));
    }

    #[test]
    fn acyclic_attack_graphs_have_no_cycles() {
        for entry in [
            catalog::fo_path2(),
            catalog::fo_path3(),
            catalog::conference(),
        ] {
            let (ag, an) = analysis(&entry.query);
            assert!(ag.is_acyclic());
            assert!(!an.has_cycle());
            assert!(an.all_cycles_weak());
            assert!(an.all_cycles_terminal());
            assert!(an.strong_two_cycle(&ag).is_none());
        }
    }

    #[test]
    fn q0_is_a_strong_two_cycle() {
        // q0 = {R0(x;y), S0(y,z;x)}: both attacks exist; at least one is strong
        // (otherwise CERTAINTY(q0) would not be coNP-complete).
        let q = catalog::q0().query;
        let (ag, an) = analysis(&q);
        assert!(an.has_strong_cycle());
        let (f, g) = an.strong_two_cycle(&ag).unwrap();
        assert_eq!(ag.strength(f, g), Some(AttackStrength::Strong));
    }

    #[test]
    fn c2_is_a_single_weak_terminal_cycle() {
        let q = catalog::c2_swap().query;
        let (_, an) = analysis(&q);
        assert_eq!(an.cycles().len(), 1);
        assert!(an.all_cycles_weak());
        assert!(an.all_cycles_terminal());
    }
}
