//! Attack graphs (Section 4) and their cycle structure (Sections 5–6).
//!
//! For an acyclic Boolean conjunctive query `q` and atoms `F, G ∈ q`, the
//! attack graph contains a directed edge `F ⇝ G` ("`F` attacks `G`") iff no
//! label on the unique join-tree path from `F` to `G` is contained in
//! `F^{+,q}` (Definition 3). Remarkably, the attack graph does not depend on
//! the choice of join tree, so it is a property of the query itself
//! (Definition 4).
//!
//! Attacks are **weak** if `key(G) ⊆ F^{⊞,q}` and **strong** otherwise
//! (Definition 5); a cycle is strong if it contains a strong attack. The
//! complexity classification of `CERTAINTY(q)` is read off this structure:
//!
//! * acyclic attack graph ⇒ first-order expressible (Theorem 1),
//! * strong cycle ⇒ coNP-complete (Theorem 2),
//! * only weak, terminal cycles ⇒ in P (Theorem 3),
//! * only weak cycles, some non-terminal ⇒ conjectured P (Conjecture 1;
//!   proved for the `AC(k)` family by Theorem 4).

mod closure;
mod cycles;
mod graph;

pub use closure::ClosureTable;
pub use cycles::{CycleAnalysis, CycleInfo};
pub use graph::{AttackEdge, AttackGraph, AttackStrength};
