//! Columnar (dictionary-encoded) views of a [`DatabaseIndex`] snapshot.
//!
//! The row-at-a-time executors in `cqa-exec` spend their time hashing and
//! cloning [`Value`]s: every probe key re-hashes `Arc<str>` contents and
//! every register write clones an `Arc`. The vectorized block-at-a-time
//! executor instead works on **dense codes**:
//!
//! * a [`Dictionary`] maps the sorted active domain to dense `u32` codes
//!   (the sort order makes code comparison order-preserving, though the
//!   executor only needs equality);
//! * [`RelationColumns`] stores, per relation, one `u32` column per
//!   attribute position, with row `r` corresponding to
//!   `DatabaseIndex::relation_fact_ids(rel)[r]` — the same dense order the
//!   row engine iterates, so row indices are meaningful to both;
//! * a [`CodeIndex`] is a hash index over one or two columns whose probe
//!   key is a single packed `u64` — one integer hash per batch row instead
//!   of hashing a `Vec<Value>`.
//!
//! All three are materialized lazily, once per snapshot, and cached on the
//! [`DatabaseIndex`] exactly like its [`PositionIndex`]es.
//!
//! [`PositionIndex`]: crate::PositionIndex

use crate::{DatabaseIndex, FxHashMap, RelationId, Value};
use std::sync::Arc;

/// Dense codes for the active domain of one snapshot.
///
/// Codes run `0..len()` in the sort order of the underlying values. A value
/// outside the active domain has no code; probe compilation maps such
/// constants to an always-empty bucket (no fact can carry them).
pub struct Dictionary {
    values: Arc<[Value]>,
}

impl Dictionary {
    fn new(values: Arc<[Value]>) -> Self {
        Dictionary { values }
    }

    /// The code of `value`, or `None` when it is outside the active domain.
    pub fn code_of(&self, value: &Value) -> Option<u32> {
        self.values
            .binary_search_by(|v| v.cmp(value))
            .ok()
            .map(|i| i as u32)
    }

    /// The value a code decodes to.
    pub fn value(&self, code: u32) -> &Value {
        &self.values[code as usize]
    }

    /// Number of coded values (= active-domain size).
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True iff the active domain is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// The dictionary-encoded columns of one relation.
///
/// `column(p)[r]` is the code of the value at position `p` of the relation's
/// `r`-th fact, where rows follow
/// [`DatabaseIndex::relation_fact_ids`] order — the vectorized and
/// row-at-a-time engines agree on what "row `r`" means.
pub struct RelationColumns {
    columns: Vec<Vec<u32>>,
    rows: usize,
}

impl RelationColumns {
    /// Assembles the columns of one relation from raw parts (the delta
    /// patcher's constructor; `build` is the bulk path).
    pub(crate) fn from_columns(columns: Vec<Vec<u32>>, rows: usize) -> Self {
        debug_assert!(columns.iter().all(|c| c.len() == rows));
        RelationColumns { columns, rows }
    }

    /// All code columns, in position order (for whole-relation remapping).
    pub(crate) fn columns(&self) -> &[Vec<u32>] {
        &self.columns
    }

    /// The code column at one attribute position.
    pub fn column(&self, position: usize) -> &[u32] {
        &self.columns[position]
    }

    /// Number of rows (= facts of the relation).
    pub fn row_count(&self) -> usize {
        self.rows
    }
}

/// The columnar view of a whole snapshot: the dictionary plus one
/// [`RelationColumns`] per relation.
///
/// Per-relation columns sit behind an `Arc` so that
/// [`crate::DatabaseIndex::apply_delta`] can carry the columns of untouched
/// relations into the next snapshot in O(1) instead of copying them.
pub struct Columnar {
    dictionary: Dictionary,
    relations: Vec<Arc<RelationColumns>>,
}

impl Columnar {
    pub(crate) fn build(index: &DatabaseIndex) -> Self {
        let dictionary = Dictionary::new(index.active_domain_shared());
        let relations = (0..index.relation_count())
            .map(|rel| {
                let rel = RelationId::from_index(rel);
                let fact_ids = index.relation_fact_ids(rel);
                let arity = index.arity(rel);
                let mut columns = vec![Vec::with_capacity(fact_ids.len()); arity];
                for &fid in fact_ids {
                    let fact = index.fact(crate::FactId(fid));
                    for (pos, value) in fact.values().iter().enumerate() {
                        let code = dictionary
                            .code_of(value)
                            .expect("every fact value is in the active domain");
                        columns[pos].push(code);
                    }
                }
                Arc::new(RelationColumns {
                    columns,
                    rows: fact_ids.len(),
                })
            })
            .collect();
        Columnar {
            dictionary,
            relations,
        }
    }

    /// Assembles a columnar view from a dictionary value array and per-relation
    /// columns (the delta patcher's constructor).
    pub(crate) fn from_parts(values: Arc<[Value]>, relations: Vec<Arc<RelationColumns>>) -> Self {
        Columnar {
            dictionary: Dictionary::new(values),
            relations,
        }
    }

    /// The snapshot's dictionary.
    pub fn dictionary(&self) -> &Dictionary {
        &self.dictionary
    }

    /// The code columns of one relation.
    pub fn relation(&self, relation: RelationId) -> &RelationColumns {
        &self.relations[relation.index()]
    }

    /// Shared handle to the code columns of one relation (O(1) carry-over of
    /// untouched relations across snapshots).
    pub(crate) fn relation_arc(&self, relation: RelationId) -> Arc<RelationColumns> {
        self.relations[relation.index()].clone()
    }

    /// The dictionary's value array (shared with the active domain).
    pub(crate) fn dictionary_values(&self) -> &Arc<[Value]> {
        &self.dictionary.values
    }
}

/// A hash index of one relation over the packed codes of one or two
/// positions: the vectorized counterpart of [`crate::PositionIndex`].
///
/// Buckets hold **row indices** (into [`RelationColumns`] order, which is
/// also [`DatabaseIndex::relation_fact_ids`] order), ascending — so a bucket
/// enumerates candidates in exactly the order the row engine would.
pub struct CodeIndex {
    positions: Vec<usize>,
    buckets: FxHashMap<u64, (u32, u32)>,
    rows: Vec<u32>,
}

impl CodeIndex {
    /// Packs the codes of a one- or two-position key into the probe word.
    /// Keys are in ascending position order, matching [`CodeIndex::positions`].
    pub fn pack(codes: &[u32]) -> u64 {
        match codes {
            [a] => *a as u64,
            [a, b] => ((*a as u64) << 32) | *b as u64,
            _ => panic!("CodeIndex keys cover one or two positions"),
        }
    }

    fn build(columns: &RelationColumns, positions: &[usize]) -> Self {
        assert!(
            matches!(positions.len(), 1 | 2),
            "CodeIndex keys cover one or two positions"
        );
        let mut grouped: FxHashMap<u64, Vec<u32>> = FxHashMap::default();
        for row in 0..columns.row_count() {
            let key = match positions {
                [p] => columns.column(*p)[row] as u64,
                [p, q] => ((columns.column(*p)[row] as u64) << 32) | columns.column(*q)[row] as u64,
                _ => unreachable!("length asserted above"),
            };
            grouped.entry(key).or_default().push(row as u32);
        }
        // Deterministic dense layout: buckets laid out in ascending key
        // order (irrelevant to results, stable for debugging).
        let mut keys: Vec<u64> = grouped.keys().copied().collect();
        keys.sort_unstable();
        let mut rows = Vec::with_capacity(columns.row_count());
        let mut buckets = FxHashMap::default();
        for key in keys {
            let ids = &grouped[&key];
            buckets.insert(key, (rows.len() as u32, ids.len() as u32));
            rows.extend_from_slice(ids);
        }
        CodeIndex {
            positions: positions.to_vec(),
            buckets,
            rows,
        }
    }

    /// The indexed positions, ascending (one or two of them).
    pub fn positions(&self) -> &[usize] {
        &self.positions
    }

    /// The row indices whose packed key equals `key`, ascending. Missing
    /// keys give `&[]`.
    pub fn candidates(&self, key: u64) -> &[u32] {
        match self.buckets.get(&key) {
            Some(&(start, len)) => &self.rows[start as usize..(start + len) as usize],
            None => &[],
        }
    }

    /// Number of distinct keys.
    pub fn key_count(&self) -> usize {
        self.buckets.len()
    }
}

pub(crate) fn build_code_index(
    columnar: &Columnar,
    relation: RelationId,
    positions: &[usize],
) -> CodeIndex {
    CodeIndex::build(columnar.relation(relation), positions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Schema, UncertainDatabase};

    fn db() -> UncertainDatabase {
        let schema = Schema::from_relations([("C", 3, 2), ("R", 2, 1)])
            .unwrap()
            .into_shared();
        let mut db = UncertainDatabase::new(schema);
        db.insert_values("C", ["PODS", "2016", "Rome"]).unwrap();
        db.insert_values("C", ["PODS", "2016", "Paris"]).unwrap();
        db.insert_values("C", ["KDD", "2017", "Rome"]).unwrap();
        db.insert_values("R", ["PODS", "A"]).unwrap();
        db.insert_values("R", ["KDD", "A"]).unwrap();
        db.insert_values("R", ["KDD", "B"]).unwrap();
        db
    }

    #[test]
    fn dictionary_codes_round_trip_and_follow_sort_order() {
        let db = db();
        let index = db.index();
        let dict = index.columnar().dictionary();
        assert_eq!(dict.len(), index.active_domain().len());
        assert!(!dict.is_empty());
        for (i, value) in index.active_domain().iter().enumerate() {
            let code = dict.code_of(value).unwrap();
            assert_eq!(code as usize, i);
            assert_eq!(dict.value(code), value);
        }
        assert_eq!(dict.code_of(&Value::str("not-there")), None);
    }

    #[test]
    fn columns_align_with_relation_fact_order() {
        let db = db();
        let index = db.index();
        let columnar = index.columnar();
        let dict = columnar.dictionary();
        for (rel, _) in db.schema().iter() {
            let cols = columnar.relation(rel);
            let fact_ids = index.relation_fact_ids(rel);
            assert_eq!(cols.row_count(), fact_ids.len());
            for (row, &fid) in fact_ids.iter().enumerate() {
                let fact = index.fact(crate::FactId::from_index(fid as usize));
                for (pos, value) in fact.values().iter().enumerate() {
                    assert_eq!(dict.value(cols.column(pos)[row]), value);
                }
            }
        }
    }

    #[test]
    fn code_index_buckets_match_position_index_buckets() {
        let db = db();
        let index = db.index();
        let c = db.schema().relation_id("C").unwrap();
        let columnar = index.columnar();
        let dict = columnar.dictionary();
        let by_city = index.code_index(c, &[2]);
        let rome = dict.code_of(&Value::str("Rome")).unwrap();
        let hits = by_city.candidates(CodeIndex::pack(&[rome]));
        assert_eq!(hits.len(), 2);
        // Rows map back to the same facts the row engine's index finds.
        let reference = index.position_index(c, crate::PositionSet::single(2));
        let fact_ids = index.relation_fact_ids(c);
        let via_codes: Vec<u32> = hits.iter().map(|&r| fact_ids[r as usize]).collect();
        assert_eq!(via_codes, reference.candidates(&[Value::str("Rome")]));
        // Two-position key.
        let pair = index.code_index(c, &[0, 2]);
        assert_eq!(pair.positions(), &[0, 2]);
        let pods = dict.code_of(&Value::str("PODS")).unwrap();
        assert_eq!(pair.candidates(CodeIndex::pack(&[pods, rome])).len(), 1);
        assert_eq!(pair.candidates(CodeIndex::pack(&[rome, pods])).len(), 0);
        assert!(pair.key_count() >= 3);
    }

    #[test]
    fn columnar_and_code_indexes_are_cached_per_snapshot() {
        let db = db();
        let index = db.index();
        let r = db.schema().relation_id("R").unwrap();
        assert!(std::ptr::eq(index.columnar(), index.columnar()));
        let a = index.code_index(r, &[0]);
        let b = index.code_index(r, &[0]);
        assert!(Arc::ptr_eq(&a, &b));
        let c = index.code_index(r, &[0, 1]);
        assert!(!Arc::ptr_eq(&a, &c));
    }
}
