//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored shim
//! provides the subset of the `rand 0.8` API used by the workspace:
//!
//! * [`SeedableRng::seed_from_u64`] and [`rngs::StdRng`],
//! * [`Rng::gen`] (for `f64`), [`Rng::gen_range`] over integer ranges
//!   (half-open and inclusive), and [`Rng::gen_bool`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — a different
//! stream than upstream `StdRng` (ChaCha12), which is fine: the workspace
//! only relies on seeded determinism within a process, never on the exact
//! values of a named algorithm.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Seedable random number generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The sampling interface: a random source plus convenience methods.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Samples a value of type `T` from its standard distribution
    /// (for `f64`: uniform in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a range (half-open `a..b` or inclusive `a..=b`).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

/// Types sampleable from their "standard" distribution via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one sample from `rng`.
    fn sample<R: Rng>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample<R: Rng>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    #[inline]
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange {
    /// The element type of the range.
    type Output;
    /// Draws a uniform sample from the range.
    fn sample_from<R: Rng>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            #[inline]
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return start + rng.next_u64() as $t;
                }
                start + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_sample_range_int!(usize, u64, u32, u16, u8);

macro_rules! impl_sample_range_signed {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            #[inline]
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as i64).wrapping_sub(start as i64) as u64;
                if span == u64::MAX {
                    return start.wrapping_add(rng.next_u64() as $t);
                }
                start.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}

impl_sample_range_signed!(isize, i64, i32, i16, i8);

/// Named generator types.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard seeded generator: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Expand the seed with SplitMix64, as recommended by the
            // xoshiro authors, so that nearby seeds give unrelated streams.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                state: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.state;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s2n = s2 ^ s0;
            let s3n = s3 ^ s1;
            let s1n = s1 ^ s2n;
            let s0n = s0 ^ s3n;
            s2n ^= t;
            self.state = [s0n, s1n, s2n, s3n.rotate_left(45)];
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic_and_distinct() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..10);
            assert!((3..10).contains(&x));
            let y = rng.gen_range(1usize..=5);
            assert!((1..=5).contains(&y));
        }
        // Degenerate inclusive range.
        assert_eq!(rng.gen_range(4usize..=4), 4);
    }

    #[test]
    fn gen_bool_and_gen_f64_are_sane() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let mut hits = 0;
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            if rng.gen_bool(0.25) {
                hits += 1;
            }
        }
        assert!((1500..3500).contains(&hits), "{hits} of 10000 at p=0.25");
    }
}
