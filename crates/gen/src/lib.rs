//! # cqa-gen
//!
//! Seeded workload and instance generators for the `certainty-rs`
//! experiments. The paper has no released datasets (it is a theory paper), so
//! every experiment in `EXPERIMENTS.md` runs on synthetic instances produced
//! here; all generators are deterministic given a seed.
//!
//! * [`UncertainDbGenerator`] — random uncertain databases for an arbitrary
//!   query shape, with tunable block count, block size and join selectivity;
//! * [`cycle_instance`] — k-partite cycle-graph instances for `C(k)` /
//!   `AC(k)` (Theorem 4 / Figure 6 style), with a controllable fraction of
//!   encoded (`S_k`) cycles;
//! * [`q0_instance`] — uncertain instances of the coNP-complete two-atom
//!   query `q0`, used to feed the Theorem 2 reduction;
//! * [`random_acyclic_query`] — random acyclic self-join-free queries for
//!   property-based testing of the attack-graph machinery.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use cqa_data::{Schema, UncertainDatabase, Value};
use cqa_query::{catalog, Atom, ConjunctiveQuery, Term, Variable};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Configuration for the generic uncertain-database generator.
#[derive(Clone, Debug)]
pub struct GeneratorConfig {
    /// Random seed (all output is a deterministic function of the config).
    pub seed: u64,
    /// Number of "match groups": for each group, one full valuation image of
    /// the query is planted, so the query is satisfiable on the database.
    pub matches: usize,
    /// Size of the constant pool per variable (smaller = more collisions and
    /// more key violations).
    pub domain_per_variable: usize,
    /// For every planted fact, how many *alternative* facts with the same key
    /// but perturbed non-key values to add (0 = consistent database).
    pub extra_block_facts: usize,
    /// Probability that an alternative fact re-uses a planted value (making
    /// it join) rather than a fresh "noise" value.
    pub alternative_join_probability: f64,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            seed: 0,
            matches: 10,
            domain_per_variable: 8,
            extra_block_facts: 1,
            alternative_join_probability: 0.5,
        }
    }
}

/// Generates uncertain databases whose shape follows a given query: planted
/// valuation images plus per-block alternatives that violate the primary
/// keys.
pub struct UncertainDbGenerator {
    query: ConjunctiveQuery,
    config: GeneratorConfig,
}

impl UncertainDbGenerator {
    /// Creates a generator for the given query.
    pub fn new(query: &ConjunctiveQuery, config: GeneratorConfig) -> Self {
        UncertainDbGenerator {
            query: query.clone(),
            config,
        }
    }

    /// Generates one database.
    pub fn generate(&self) -> UncertainDatabase {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let schema = self.query.schema().clone();
        let mut db = UncertainDatabase::new(schema.clone());
        let vars: Vec<Variable> = self.query.vars().into_iter().collect();
        for _ in 0..self.config.matches {
            // One valuation per match group.
            let valuation: Vec<(Variable, Value)> = vars
                .iter()
                .map(|v| {
                    (
                        v.clone(),
                        Value::str(format!(
                            "{}#{}",
                            v,
                            rng.gen_range(0..self.config.domain_per_variable.max(1))
                        )),
                    )
                })
                .collect();
            let theta = cqa_query::Valuation::from_pairs(valuation);
            for atom in self.query.atoms() {
                let fact = theta.apply_atom(atom).expect("valuation is total");
                let _ = db.insert(fact.clone());
                // Alternatives: same key, perturbed non-key values.
                let key_len = schema.relation(atom.relation()).key_len();
                for alt in 0..self.config.extra_block_facts {
                    let values: Vec<Value> = fact
                        .values()
                        .iter()
                        .enumerate()
                        .map(|(i, v)| {
                            if i < key_len {
                                v.clone()
                            } else if rng.gen_bool(self.config.alternative_join_probability) {
                                // Reuse another constant from the variable pool
                                // so the alternative still joins somewhere.
                                Value::str(format!(
                                    "{}#{}",
                                    vars[i % vars.len().max(1)],
                                    rng.gen_range(0..self.config.domain_per_variable.max(1))
                                ))
                            } else {
                                Value::str(format!("noise#{alt}#{}", rng.gen_range(0..1_000_000)))
                            }
                        })
                        .collect();
                    let _ = db.insert(cqa_data::Fact::new(atom.relation(), values));
                }
            }
        }
        db
    }
}

/// Parameters for [`cycle_instance`].
#[derive(Clone, Debug)]
pub struct CycleInstanceConfig {
    /// Random seed.
    pub seed: u64,
    /// Number of constants per cycle position (the paper's `type(x_i)` sets).
    pub nodes_per_layer: usize,
    /// Out-degree of every constant (block size of the `R_i` relations).
    pub edges_per_node: usize,
    /// Fraction of the k-cycles of the generated graph that are encoded in
    /// `S_k` (ignored for `C(k)` instances, which have no `S_k`).
    pub encoded_cycle_fraction: f64,
}

impl Default for CycleInstanceConfig {
    fn default() -> Self {
        CycleInstanceConfig {
            seed: 0,
            nodes_per_layer: 10,
            edges_per_node: 2,
            encoded_cycle_fraction: 0.5,
        }
    }
}

/// Generates a `C(k)` or `AC(k)` instance (Figure 6 style): a k-partite
/// directed graph given by the `R_i` relations, plus — when `with_s_atom` —
/// an `S_k` relation encoding a fraction of its k-cycles.
pub fn cycle_instance(
    k: usize,
    with_s_atom: bool,
    config: &CycleInstanceConfig,
) -> UncertainDatabase {
    assert!(k >= 2);
    let entry = if with_s_atom {
        catalog::ac_k(k)
    } else {
        catalog::c_k(k)
    };
    let schema = entry.query.schema().clone();
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut db = UncertainDatabase::new(schema);
    let name = |layer: usize, i: usize| format!("n{layer}_{i}");

    // Edges of the k-partite graph.
    for layer in 1..=k {
        let next = if layer == k { 1 } else { layer + 1 };
        for i in 0..config.nodes_per_layer {
            for _ in 0..config.edges_per_node.max(1) {
                let j = rng.gen_range(0..config.nodes_per_layer);
                db.insert_values(&format!("R{layer}"), [name(layer, i), name(next, j)])
                    .unwrap();
            }
        }
    }

    if with_s_atom {
        // Enumerate the k-cycles of the generated graph by walking layer by
        // layer, and encode a random fraction of them in S_k.
        let adjacency: Vec<Vec<Vec<usize>>> = (1..=k)
            .map(|layer| {
                let rel = db.schema().relation_id(&format!("R{layer}")).unwrap();
                let mut adj = vec![Vec::new(); config.nodes_per_layer];
                for fact in db.relation_facts(rel).collect::<Vec<_>>() {
                    let from = fact.value(0).to_string();
                    let to = fact.value(1).to_string();
                    let from_idx: usize = from.rsplit('_').next().unwrap().parse().unwrap();
                    let to_idx: usize = to.rsplit('_').next().unwrap().parse().unwrap();
                    adj[from_idx].push(to_idx);
                }
                adj
            })
            .collect();
        // Depth-first walk over layers collecting closed walks of length k.
        fn walk(
            adjacency: &[Vec<Vec<usize>>],
            layer: usize,
            start: usize,
            current: usize,
            path: &mut Vec<usize>,
            out: &mut Vec<Vec<usize>>,
        ) {
            if layer == adjacency.len() {
                if current == start {
                    out.push(path.clone());
                }
                return;
            }
            for &next in &adjacency[layer][current] {
                path.push(next);
                walk(adjacency, layer + 1, start, next, path, out);
                path.pop();
            }
        }
        let mut cycles = Vec::new();
        for start in 0..config.nodes_per_layer {
            let mut path = vec![start];
            walk(&adjacency, 1, start, start, &mut path, &mut cycles);
        }
        let s_name = format!("S{k}");
        for cycle in cycles {
            if rng.gen_bool(config.encoded_cycle_fraction.clamp(0.0, 1.0)) {
                let values: Vec<String> = (0..k).map(|i| name(i + 1, cycle[i])).collect();
                db.insert_values(&s_name, values).unwrap();
            }
        }
    }
    db
}

/// Generates an uncertain instance for the coNP-complete two-atom query `q0`
/// (used as the source of the Theorem 2 reduction): `pairs` R0-blocks, each
/// with `block_size` alternatives, and matching S0 facts for a random subset.
pub fn q0_instance(seed: u64, pairs: usize, block_size: usize, coverage: f64) -> UncertainDatabase {
    let q0 = catalog::q0().query;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = UncertainDatabase::new(q0.schema().clone());
    for i in 0..pairs {
        let x = format!("x{i}");
        for j in 0..block_size.max(1) {
            let y = format!("y{i}_{j}");
            db.insert_values("R0", [x.clone(), y.clone()]).unwrap();
            if rng.gen_bool(coverage.clamp(0.0, 1.0)) {
                // A matching S0 fact; its key (y, z) is private to this R0
                // fact, so purification cannot cascade across blocks.
                let z = format!("z{i}_{j}");
                db.insert_values("S0", [y.clone(), z.clone(), x.clone()])
                    .unwrap();
                // Occasionally add a competing fact in the same S0 block that
                // points at a *different* x, creating uncertainty on the S0 side.
                if rng.gen_bool(0.3) {
                    let other = format!("x{}", rng.gen_range(0..pairs.max(1)));
                    db.insert_values("S0", [y, z, other]).unwrap();
                }
            }
        }
    }
    db
}

/// The Figure 6 database (the worked `AC(3)` instance of the paper).
pub fn figure6_database() -> UncertainDatabase {
    let schema = catalog::ac_k(3).query.schema().clone();
    let mut db = UncertainDatabase::new(schema);
    for (r, a, b) in [
        ("R1", "a", "b"),
        ("R1", "a", "b'"),
        ("R1", "a'", "b"),
        ("R2", "b", "c"),
        ("R2", "b", "c'"),
        ("R2", "b'", "c"),
        ("R3", "c", "a"),
        ("R3", "c", "a'"),
        ("R3", "c'", "a"),
    ] {
        db.insert_values(r, [a, b]).unwrap();
    }
    for (a, b, c) in [("a", "b", "c'"), ("a", "b'", "c"), ("a'", "b", "c")] {
        db.insert_values("S3", [a, b, c]).unwrap();
    }
    db
}

/// Generates a random acyclic, self-join-free Boolean conjunctive query over
/// a fresh schema — used by the property tests of the attack-graph machinery.
///
/// The construction grows a random join tree: atom `i > 0` shares a random
/// non-empty subset of variables with a previously created atom, plus fresh
/// private variables, which guarantees acyclicity by construction.
pub fn random_acyclic_query(seed: u64, atoms: usize, max_arity: usize) -> ConjunctiveQuery {
    let atoms = atoms.clamp(1, 8);
    let max_arity = max_arity.clamp(1, 5);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut schema = Schema::new();
    let mut atom_vars: Vec<Vec<Variable>> = Vec::new();
    let mut specs: Vec<(String, Vec<Variable>, usize)> = Vec::new();
    let mut fresh = 0usize;
    for i in 0..atoms {
        let arity = rng.gen_range(1..=max_arity);
        let key_len = rng.gen_range(1..=arity);
        let mut vars: Vec<Variable> = Vec::new();
        if i > 0 {
            // Borrow a connected, non-empty prefix of some earlier atom's variables.
            let parent = &atom_vars[rng.gen_range(0..i)];
            let how_many = rng.gen_range(1..=parent.len().min(arity));
            vars.extend(parent.iter().take(how_many).cloned());
        }
        while vars.len() < arity {
            vars.push(Variable::new(format!("v{fresh}")));
            fresh += 1;
        }
        let name = format!("Rel{i}");
        schema.add_relation(&name, arity, key_len).unwrap();
        atom_vars.push(vars.clone());
        specs.push((name, vars, arity));
    }
    let schema: Arc<Schema> = schema.into_shared();
    let atoms: Vec<Atom> = specs
        .into_iter()
        .map(|(name, vars, _)| {
            let rel = schema.relation_id(&name).unwrap();
            Atom::new(rel, vars.into_iter().map(Term::Var).collect::<Vec<_>>())
        })
        .collect();
    ConjunctiveQuery::boolean(schema, atoms).expect("generated query is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_query::join_tree;

    #[test]
    fn generator_is_deterministic_and_satisfiable() {
        let q = catalog::conference().query;
        let config = GeneratorConfig {
            seed: 7,
            matches: 5,
            ..GeneratorConfig::default()
        };
        let a = UncertainDbGenerator::new(&q, config.clone()).generate();
        let b = UncertainDbGenerator::new(&q, config).generate();
        assert_eq!(a, b);
        assert!(a.fact_count() > 0);
        assert!(cqa_query::eval::satisfies(&a, &q));
    }

    #[test]
    fn extra_block_facts_create_inconsistency() {
        // Planted matches alone may already collide on keys (that is the
        // point of an uncertain database), but adding per-block alternatives
        // must strictly enlarge blocks and violate keys.
        let q = catalog::fo_path2().query;
        let base = UncertainDbGenerator::new(
            &q,
            GeneratorConfig {
                seed: 1,
                extra_block_facts: 0,
                ..GeneratorConfig::default()
            },
        )
        .generate();
        let inconsistent = UncertainDbGenerator::new(
            &q,
            GeneratorConfig {
                seed: 1,
                extra_block_facts: 2,
                ..GeneratorConfig::default()
            },
        )
        .generate();
        assert!(!inconsistent.is_consistent());
        assert!(inconsistent.fact_count() > base.fact_count());
        assert!(inconsistent.repair_count_log2() > base.repair_count_log2());
    }

    #[test]
    fn cycle_instances_have_the_right_relations() {
        let db = cycle_instance(3, true, &CycleInstanceConfig::default());
        let schema = db.schema();
        for name in ["R1", "R2", "R3", "S3"] {
            assert!(schema.relation_id(name).is_some(), "{name}");
        }
        let r1 = schema.relation_id("R1").unwrap();
        assert!(db.relation_facts(r1).count() >= 10);
        // C(k) instances have no S relation facts.
        let db_c = cycle_instance(3, false, &CycleInstanceConfig::default());
        assert!(db_c.schema().relation_id("S3").is_none());
    }

    #[test]
    fn figure6_matches_the_paper() {
        let db = figure6_database();
        assert_eq!(db.fact_count(), 12);
        assert_eq!(db.repair_count(), Some(8));
    }

    #[test]
    fn q0_instances_are_deterministic() {
        let a = q0_instance(3, 10, 2, 0.7);
        let b = q0_instance(3, 10, 2, 0.7);
        assert_eq!(a, b);
        assert!(a.fact_count() >= 20);
    }

    #[test]
    fn random_queries_are_acyclic_and_self_join_free() {
        for seed in 0..30 {
            let q = random_acyclic_query(seed, 1 + (seed as usize % 6), 4);
            assert!(q.require_self_join_free().is_ok());
            assert!(join_tree::is_acyclic(&q), "seed {seed}: {q}");
            assert!(cqa_query::gyo::is_acyclic_gyo(&q), "seed {seed}: {q}");
        }
    }
}
