//! Vectorized block-at-a-time execution.
//!
//! The row-at-a-time interpreters in [`crate::fo_plan`] and
//! [`crate::query_plan`] walk one candidate fact at a time through a
//! register file, cloning and hashing [`Value`]s at every step. This module
//! re-executes the *same compiled plans* on **batches of dense codes**:
//!
//! * values become `u32` dictionary codes ([`cqa_data::Columnar`],
//!   materialized once per snapshot);
//! * a register file becomes a `Batch` — one optional code column per
//!   slot — plus a sorted **selection vector** of surviving row indices;
//! * an `∃-scan` / `∀-block` becomes an *expansion*: one hash probe per
//!   batch row into a [`CodeIndex`] (packed `u64` keys over at most two
//!   positions; wider keys are demoted to per-candidate checks), producing
//!   a child batch together with a parent map, followed by a grouped
//!   any/all aggregation back onto the parent selection;
//! * `¬` is a sorted-set difference of selection vectors (the anti-join
//!   form), `all`/`any` narrow/union selections.
//!
//! Operators with no batch kernel (`∃-column`, `∃-domain`, `∀-domain`) fall
//! back to the row interpreter *per batch row* — the plans guarantee both
//! paths agree, and the property suite enforces observational equality.
//!
//! Path selection is governed by [`ExecMode`]: the row path stays the
//! default for cheap plans (batch setup costs more than it saves), the
//! vectorized path takes over when the cost model predicts enough work.

use crate::fo_plan::{FoOp, PreparedFo};
use crate::probe::{KeySource, PosAction, ProbeSpec, Registers, Slot};
use crate::query_plan::PreparedQuery;
use cqa_data::{CodeIndex, Columnar, DatabaseIndex, RelationId, Value};
use cqa_obs::OpTrace;
use cqa_query::Variable;
use std::collections::BTreeSet;
use std::ops::Range;
use std::sync::Arc;

/// How a prepared plan chooses between the row-at-a-time and vectorized
/// executors. The choice never affects results — the property suites assert
/// byte-identical answers on both paths — only speed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecMode {
    /// Let the cost model decide per entry point (the default): batch
    /// kernels when the estimated work clears [`FO_VEC_CUTOFF`] /
    /// [`QUERY_VEC_CUTOFF`], rows otherwise.
    Auto,
    /// Always take the vectorized path where a batch kernel exists
    /// (unsupported operators still run their row fallback). Used by the
    /// property suites to pin the path under test.
    Vectorized,
    /// Never vectorize. The reference execution path.
    RowAtATime,
}

/// Auto-mode threshold on [`crate::FoPlan::estimated_work`] above which
/// sentence evaluation batches.
pub const FO_VEC_CUTOFF: f64 = 4096.0;
/// Auto-mode threshold on [`crate::QueryPlan::estimated_work`] above which
/// `answers` batches.
pub const QUERY_VEC_CUTOFF: f64 = 4096.0;
/// Auto-mode ceiling for batch joins: above this the intermediate batches
/// could outgrow memory, so Auto stays row-at-a-time (`Vectorized` still
/// forces the batch path).
pub const QUERY_VEC_MAX: f64 = 5.0e7;
/// Auto-mode minimum batch size for `eval_tuples`: below this the per-batch
/// setup outweighs the saving.
pub const TUPLE_BATCH_MIN: usize = 32;
/// Root candidates are processed in chunks of this size so a batch join's
/// intermediates stay bounded.
pub(crate) const ROOT_CHUNK: usize = 4096;

/// The process-wide default mode: `CQA_EXEC_MODE=row|vec|auto` (read once;
/// an invalid value warns on stderr and counts as `config.env.invalid`, see
/// [`crate::tuning`]). Prepared plans can override it per instance via
/// `with_mode`.
pub fn default_mode() -> ExecMode {
    crate::tuning::exec_mode()
}

/// Where one batch-side code comes from: a constant resolved against the
/// snapshot dictionary (`None` = outside the active domain, matches
/// nothing) or a slot column.
#[derive(Clone, Debug)]
pub(crate) enum VSrc {
    Code(Option<u32>),
    Slot(Slot),
}

/// The vectorized counterpart of [`PosAction`], over codes.
#[derive(Clone, Debug)]
pub(crate) enum VAct {
    Bind { pos: usize, slot: Slot },
    CheckSlot { pos: usize, slot: Slot },
    CheckCode { pos: usize, code: Option<u32> },
}

/// A [`ProbeSpec`] lowered to dictionary codes: a packed-key probe into a
/// [`CodeIndex`] over at most two positions (`handle == None` means a full
/// scan), with every remaining position — including demoted wide-key
/// components — handled by per-candidate [`VAct`]s.
pub(crate) struct VProbe {
    pub(crate) relation: RelationId,
    pub(crate) key: Vec<VSrc>,
    pub(crate) handle: Option<Arc<CodeIndex>>,
    pub(crate) actions: Vec<VAct>,
    /// Trace-cell id of the originating [`ProbeSpec`] (probe id / step
    /// index), so batch kernels report into the same cell as the row path.
    pub(crate) probe_id: usize,
}

impl VProbe {
    pub(crate) fn build(spec: &ProbeSpec, index: &DatabaseIndex) -> VProbe {
        let columnar = index.columnar();
        let dict = columnar.dictionary();
        let mut key = Vec::new();
        let mut probe_positions: Vec<usize> = Vec::new();
        let mut actions: Vec<VAct> = Vec::new();
        // The row engine probes every bound position at once; a CodeIndex
        // packs at most two into its u64 key. Surplus key components are
        // *demoted* to per-candidate checks — the probe then returns a
        // superset of the row engine's bucket, and the checks re-establish
        // exactness.
        for (pos, src) in spec.positions.iter().zip(&spec.key) {
            if probe_positions.len() < 2 {
                probe_positions.push(pos);
                key.push(match src {
                    KeySource::Const(c) => VSrc::Code(dict.code_of(c)),
                    KeySource::Slot(s) => VSrc::Slot(*s),
                });
            } else {
                actions.push(match src {
                    KeySource::Const(c) => VAct::CheckCode {
                        pos,
                        code: dict.code_of(c),
                    },
                    KeySource::Slot(s) => VAct::CheckSlot { pos, slot: *s },
                });
            }
        }
        for action in &spec.actions {
            actions.push(match action {
                PosAction::Bind { pos, slot } => VAct::Bind {
                    pos: *pos,
                    slot: *slot,
                },
                PosAction::CheckSlot { pos, slot } => VAct::CheckSlot {
                    pos: *pos,
                    slot: *slot,
                },
                PosAction::CheckConst { pos, value } => VAct::CheckCode {
                    pos: *pos,
                    code: dict.code_of(value),
                },
            });
        }
        let handle = if probe_positions.is_empty() {
            None
        } else {
            Some(index.code_index(spec.relation, &probe_positions))
        };
        VProbe {
            relation: spec.relation,
            key,
            handle,
            actions,
            probe_id: spec.probe_id,
        }
    }
}

/// A batch of partial valuations: one optional code column per slot
/// (`None` = unbound in every row), all `Some` columns of length `len`.
pub(crate) struct Batch {
    pub(crate) len: usize,
    pub(crate) cols: Vec<Option<Vec<u32>>>,
}

impl Batch {
    fn unbound(slots: usize) -> Batch {
        Batch {
            len: 1,
            cols: vec![None; slots],
        }
    }
}

/// A vectorized operator: mirrors [`FoOp`] with probes lowered to codes.
/// Operators without a batch kernel keep a reference to their row form and
/// evaluate row-at-a-time per surviving batch row.
pub(crate) enum VOp<'p> {
    Bool(bool),
    Eq(VSrc, VSrc),
    Lookup(VProbe),
    Not(Box<VOp<'p>>),
    All(Vec<VOp<'p>>),
    Any(Vec<VOp<'p>>),
    /// `carry` is the column-pruning set: the bound parent slots the body
    /// subtree actually reads, the only columns gathered into child batches.
    ExistsScan {
        probe: VProbe,
        carry: Vec<Slot>,
        body: Box<VOp<'p>>,
    },
    ForallBlock {
        probe: VProbe,
        carry: Vec<Slot>,
        body: Box<VOp<'p>>,
    },
    Fallback(&'p FoOp),
}

/// The vectorized form of one [`crate::FoPlan`], built at prepare time
/// against one snapshot (constants resolved to codes, probes to code
/// indexes).
pub(crate) struct VecFo<'p> {
    pub(crate) root: VOp<'p>,
}

impl<'p> VecFo<'p> {
    pub(crate) fn build(root: &'p FoOp, index: &DatabaseIndex, nslots: usize) -> VecFo<'p> {
        VecFo {
            root: build_vop(root, index, nslots).0,
        }
    }
}

/// Sorted-dedup merge of two slot sets.
fn merge_slots(mut a: Vec<Slot>, b: &[Slot]) -> Vec<Slot> {
    a.extend_from_slice(b);
    a.sort_unstable();
    a.dedup();
    a
}

/// The parent slots a probe reads at evaluation time: key sources and
/// residual checks. `Bind` slots are excluded — the probe compiler's
/// invariant is that compile-time-bound slots never appear as binds, so a
/// bind slot is never bound in the parent batch.
fn probe_slots(probe: &VProbe) -> Vec<Slot> {
    let mut out: Vec<Slot> = probe
        .key
        .iter()
        .filter_map(|s| match s {
            VSrc::Slot(slot) => Some(*slot),
            VSrc::Code(_) => None,
        })
        .collect();
    for action in &probe.actions {
        if let VAct::CheckSlot { slot, .. } = action {
            out.push(*slot);
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// Lowers one row operator; the second component is the set of parent
/// slots the operator's subtree reads (its column-pruning footprint).
fn build_vop<'p>(op: &'p FoOp, index: &DatabaseIndex, nslots: usize) -> (VOp<'p>, Vec<Slot>) {
    let dict = index.columnar().dictionary();
    let src = |s: &KeySource| match s {
        KeySource::Const(c) => VSrc::Code(dict.code_of(c)),
        KeySource::Slot(slot) => VSrc::Slot(*slot),
    };
    let src_slots = |srcs: &[&KeySource]| -> Vec<Slot> {
        let mut out: Vec<Slot> = srcs
            .iter()
            .filter_map(|s| match s {
                KeySource::Slot(slot) => Some(*slot),
                KeySource::Const(_) => None,
            })
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    };
    match op {
        FoOp::Bool(b) => (VOp::Bool(*b), Vec::new()),
        // Two constants compare by value, not by code: equal constants
        // outside the active domain have no codes yet still compare equal.
        FoOp::Eq(KeySource::Const(a), KeySource::Const(b)) => (VOp::Bool(a == b), Vec::new()),
        FoOp::Eq(a, b) => (VOp::Eq(src(a), src(b)), src_slots(&[a, b])),
        FoOp::Lookup(spec) => {
            let probe = VProbe::build(spec, index);
            let needed = probe_slots(&probe);
            (VOp::Lookup(probe), needed)
        }
        FoOp::Not(inner) => {
            let (inner, needed) = build_vop(inner, index, nslots);
            (VOp::Not(Box::new(inner)), needed)
        }
        FoOp::All(parts) => {
            let mut needed = Vec::new();
            let parts = parts
                .iter()
                .map(|p| {
                    let (part, n) = build_vop(p, index, nslots);
                    needed = merge_slots(std::mem::take(&mut needed), &n);
                    part
                })
                .collect();
            (VOp::All(parts), needed)
        }
        FoOp::Any(parts) => {
            let mut needed = Vec::new();
            let parts = parts
                .iter()
                .map(|p| {
                    let (part, n) = build_vop(p, index, nslots);
                    needed = merge_slots(std::mem::take(&mut needed), &n);
                    part
                })
                .collect();
            (VOp::Any(parts), needed)
        }
        FoOp::ExistsScan { spec, body } => {
            let probe = VProbe::build(spec, index);
            let (body, carry) = build_vop(body, index, nslots);
            let needed = merge_slots(probe_slots(&probe), &carry);
            (
                VOp::ExistsScan {
                    probe,
                    carry,
                    body: Box::new(body),
                },
                needed,
            )
        }
        FoOp::ForallBlock { spec, body } => {
            let probe = VProbe::build(spec, index);
            let (body, carry) = build_vop(body, index, nslots);
            let needed = merge_slots(probe_slots(&probe), &carry);
            (
                VOp::ForallBlock {
                    probe,
                    carry,
                    body: Box::new(body),
                },
                needed,
            )
        }
        FoOp::ExistsColumn { .. } | FoOp::ExistsDomain { .. } | FoOp::ForallDomain { .. } => {
            // The row fallback materializes every bound column into
            // registers, so its footprint is conservatively all slots.
            (VOp::Fallback(op), (0..nslots).collect())
        }
    }
}

/// `[vec]`/`[row]` marker for one operator in `explain` output: whether the
/// node has a batch kernel or runs its row fallback inside the vectorized
/// executor.
pub(crate) fn fo_op_marker(op: &FoOp) -> &'static str {
    match op {
        FoOp::ExistsColumn { .. } | FoOp::ExistsDomain { .. } | FoOp::ForallDomain { .. } => {
            "[row]"
        }
        _ => "[vec]",
    }
}

fn col_code(batch: &Batch, slot: Slot, row: u32) -> Option<u32> {
    batch.cols[slot].as_ref().map(|c| c[row as usize])
}

fn src_code(src: &VSrc, batch: &Batch, row: u32) -> Option<u32> {
    match src {
        VSrc::Code(c) => *c,
        VSrc::Slot(s) => col_code(batch, *s, row),
    }
}

/// Applies a probe's per-candidate actions to relation row `frow` under
/// parent batch row `prow`. Slots bound *within* the probe land in
/// `scratch` (cleared by the caller between candidates).
fn apply_row(
    probe: &VProbe,
    columns: &cqa_data::RelationColumns,
    frow: u32,
    parent: &Batch,
    prow: u32,
    scratch: &mut Vec<(Slot, u32)>,
) -> bool {
    for action in &probe.actions {
        match action {
            VAct::Bind { pos, slot } => {
                let code = columns.column(*pos)[frow as usize];
                match col_code(parent, *slot, prow) {
                    Some(existing) => {
                        if existing != code {
                            return false;
                        }
                    }
                    None => match scratch.iter().find(|(s, _)| s == slot) {
                        Some(&(_, existing)) => {
                            if existing != code {
                                return false;
                            }
                        }
                        None => scratch.push((*slot, code)),
                    },
                }
            }
            VAct::CheckSlot { pos, slot } => {
                let code = columns.column(*pos)[frow as usize];
                let bound = col_code(parent, *slot, prow)
                    .or_else(|| scratch.iter().find(|(s, _)| s == slot).map(|&(_, c)| c));
                if bound != Some(code) {
                    return false;
                }
            }
            VAct::CheckCode { pos, code } => {
                // `None` = a constant outside the active domain: no fact
                // can carry it.
                if *code != Some(columns.column(*pos)[frow as usize]) {
                    return false;
                }
            }
        }
    }
    true
}

/// Expands `probe` under the rows `sel` of `parent`: the returned batch has
/// one child row per `(parent, unifying candidate)` pair, in `sel` order
/// (each parent's children contiguous). With `root_rows: Some(rows)` the
/// candidate list is overridden by explicit relation rows (used for root
/// sharding, where the candidate order must match the row engine's
/// `PositionIndex` bucket); `sel` must then be the single unbound root row.
/// With `trace: Some(cell)` the probe count, candidate rows examined and
/// surviving pairs are recorded on that operator cell.
fn expand(
    probe: &VProbe,
    parent: &Batch,
    sel: &[u32],
    columnar: &Columnar,
    root_rows: Option<&[u32]>,
    trace: Option<&OpTrace>,
) -> Batch {
    debug_assert!(root_rows.is_none() || sel.len() <= 1);
    let columns = columnar.relation(probe.relation);
    let nslots = parent.cols.len();
    let bind_slots: Vec<Slot> = probe
        .actions
        .iter()
        .filter_map(|a| match a {
            VAct::Bind { slot, .. } if parent.cols[*slot].is_none() => Some(*slot),
            _ => None,
        })
        .collect();
    let carry_slots: Vec<Slot> = (0..nslots).filter(|&s| parent.cols[s].is_some()).collect();
    let scan_rows: Option<Vec<u32>> = match (&probe.handle, root_rows) {
        (None, None) => Some((0..columns.row_count() as u32).collect()),
        _ => None,
    };
    let mut parents: Vec<u32> = Vec::new();
    let mut bind_cols: Vec<Vec<u32>> = vec![Vec::new(); bind_slots.len()];
    let mut scratch: Vec<(Slot, u32)> = Vec::new();
    let mut scanned = 0u64;
    for &prow in sel {
        let candidates: &[u32] = if let Some(rows) = root_rows {
            rows
        } else if let Some(handle) = &probe.handle {
            let mut packed = [0u32; 2];
            let mut miss = false;
            for (i, src) in probe.key.iter().enumerate() {
                match src_code(src, parent, prow) {
                    Some(code) => packed[i] = code,
                    // An unbound slot or out-of-domain constant: no fact
                    // matches (∃ false / ∀ vacuous, decided by the caller).
                    None => {
                        miss = true;
                        break;
                    }
                }
            }
            if miss {
                continue;
            }
            handle.candidates(CodeIndex::pack(&packed[..probe.key.len()]))
        } else {
            scan_rows.as_deref().expect("scan rows materialized above")
        };
        for &frow in candidates {
            scanned += 1;
            scratch.clear();
            if apply_row(probe, columns, frow, parent, prow, &mut scratch) {
                parents.push(prow);
                for (i, slot) in bind_slots.iter().enumerate() {
                    let code = scratch
                        .iter()
                        .find(|(s, _)| s == slot)
                        .map(|&(_, c)| c)
                        .expect("a passing candidate binds every bind slot");
                    bind_cols[i].push(code);
                }
            }
        }
    }
    let len = parents.len();
    if let Some(cell) = trace {
        cell.add_invocations(sel.len() as u64);
        cell.add_rows(scanned);
        cell.add_matches(len as u64);
    }
    let mut cols: Vec<Option<Vec<u32>>> = vec![None; nslots];
    for &slot in &carry_slots {
        let src = parent.cols[slot].as_ref().expect("carry slots are bound");
        cols[slot] = Some(parents.iter().map(|&p| src[p as usize]).collect());
    }
    for (i, &slot) in bind_slots.iter().enumerate() {
        cols[slot] = Some(std::mem::take(&mut bind_cols[i]));
    }
    Batch { len, cols }
}

/// Sorted-set union of two ascending selection vectors.
fn union_sorted(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// Sorted-set difference `a \ b` of two ascending selection vectors.
fn diff_sorted(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len());
    let mut j = 0;
    for &x in a {
        while j < b.len() && b[j] < x {
            j += 1;
        }
        if j < b.len() && b[j] == x {
            continue;
        }
        out.push(x);
    }
    out
}

/// The batch evaluator for one prepared formula plan.
struct VecCtx<'e, 'p> {
    prepared: &'e PreparedFo<'p>,
    columnar: &'e Columnar,
}

impl VecCtx<'_, '_> {
    /// The trace cell of operator `id`, when a sink is installed.
    #[inline]
    fn trace_cell(&self, id: usize) -> Option<&OpTrace> {
        self.prepared.trace.as_deref().map(|sink| sink.op(id))
    }

    /// Evaluates `op` over the rows `sel` (ascending) of `batch`, returning
    /// the ascending subset of rows where the operator holds.
    fn eval(&self, op: &VOp<'_>, batch: &Batch, sel: Vec<u32>) -> Vec<u32> {
        if sel.is_empty() {
            return sel;
        }
        match op {
            VOp::Bool(true) => sel,
            VOp::Bool(false) => Vec::new(),
            VOp::Eq(a, b) => sel
                .into_iter()
                .filter(
                    |&row| match (src_code(a, batch, row), src_code(b, batch, row)) {
                        (Some(x), Some(y)) => x == y,
                        // An unbound side never equals anything (the row
                        // engine's open-formula convention).
                        _ => false,
                    },
                )
                .collect(),
            VOp::Lookup(probe) => {
                let columns = self.columnar.relation(probe.relation);
                let mut scratch: Vec<(Slot, u32)> = Vec::new();
                let probed = sel.len() as u64;
                let mut scanned = 0u64;
                let mut out: Vec<u32> = Vec::new();
                for &row in &sel {
                    let candidates: Option<&[u32]> = if let Some(handle) = &probe.handle {
                        let mut packed = [0u32; 2];
                        let mut miss = false;
                        for (i, src) in probe.key.iter().enumerate() {
                            match src_code(src, batch, row) {
                                Some(code) => packed[i] = code,
                                None => {
                                    miss = true;
                                    break;
                                }
                            }
                        }
                        if miss {
                            None
                        } else {
                            Some(handle.candidates(CodeIndex::pack(&packed[..probe.key.len()])))
                        }
                    } else {
                        // Full scan: probe the whole relation row range.
                        Some(&[])
                    };
                    let hit = match (candidates, &probe.handle) {
                        (None, _) => false,
                        (Some(c), Some(_)) => c.iter().any(|&frow| {
                            scanned += 1;
                            scratch.clear();
                            apply_row(probe, columns, frow, batch, row, &mut scratch)
                        }),
                        (Some(_), None) => (0..columns.row_count() as u32).any(|frow| {
                            scanned += 1;
                            scratch.clear();
                            apply_row(probe, columns, frow, batch, row, &mut scratch)
                        }),
                    };
                    if hit {
                        out.push(row);
                    }
                }
                if let Some(cell) = self.trace_cell(probe.probe_id) {
                    cell.add_invocations(probed);
                    cell.add_rows(scanned);
                    cell.add_matches(out.len() as u64);
                }
                out
            }
            VOp::Not(inner) => {
                let survived = self.eval(inner, batch, sel.clone());
                diff_sorted(&sel, &survived)
            }
            VOp::All(parts) => {
                let mut current = sel;
                for part in parts {
                    if current.is_empty() {
                        break;
                    }
                    current = self.eval(part, batch, current);
                }
                current
            }
            VOp::Any(parts) => {
                // Progressive union: rows already decided true drop out of
                // the remaining disjuncts (the batch analogue of the row
                // engine's short-circuit).
                let mut remaining = sel;
                let mut acc: Vec<u32> = Vec::new();
                for part in parts {
                    if remaining.is_empty() {
                        break;
                    }
                    let survived = self.eval(part, batch, remaining.clone());
                    remaining = diff_sorted(&remaining, &survived);
                    acc = union_sorted(&acc, &survived);
                }
                acc
            }
            VOp::ExistsScan { probe, carry, body } => {
                self.eval_quantifier(true, probe, carry, body, batch, &sel)
            }
            VOp::ForallBlock { probe, carry, body } => {
                self.eval_quantifier(false, probe, carry, body, batch, &sel)
            }
            VOp::Fallback(op) => {
                // Row fallback: materialize the bound columns as register
                // values and run the row interpreter per surviving row.
                if let Some(cell) =
                    crate::fo_plan::fo_op_trace_id(op).and_then(|id| self.trace_cell(id))
                {
                    cell.add_fallback_rows(sel.len() as u64);
                }
                let dict = self.columnar.dictionary();
                let nslots = batch.cols.len();
                let bound: Vec<Slot> = (0..nslots).filter(|&s| batch.cols[s].is_some()).collect();
                let mut regs = Registers::new(nslots);
                sel.into_iter()
                    .filter(|&row| {
                        for &slot in &bound {
                            let code = col_code(batch, slot, row).expect("bound column");
                            regs.set(slot, dict.value(code).clone());
                        }
                        self.prepared.eval_op(op, &mut regs)
                    })
                    .collect()
            }
        }
    }

    /// Wave-based quantifier evaluation: the batch analogue of the row
    /// engine's short-circuit. Materializing every quantified fact of every
    /// parent multiplies the per-level fan-outs into the full quantifier
    /// tree, which the row engine never visits — it stops at the first
    /// witness (∃) or the first failing fact (∀). Instead, wave `k`
    /// evaluates the body on the `k`-th candidate of every still-undecided
    /// parent at once: batches stay as wide as the undecided parent set
    /// while parents drop out as soon as they are decided, so the visited
    /// rows track the row engine's pruned walk.
    ///
    /// Decision rules per parent: no candidates (or a key miss) decides
    /// immediately (∃ false, ∀ vacuously true); a candidate failing the
    /// probe's residual checks is outside the quantified set and is skipped;
    /// an exhausted candidate list decides (∃ false, ∀ true); a surviving
    /// body row decides ∃ true; a failing body row decides ∀ false.
    fn eval_quantifier(
        &self,
        exists: bool,
        probe: &VProbe,
        carry: &[Slot],
        body: &VOp<'_>,
        parent: &Batch,
        sel: &[u32],
    ) -> Vec<u32> {
        let columns = self.columnar.relation(probe.relation);
        let nslots = parent.cols.len();
        let trace = self.trace_cell(probe.probe_id);
        let mut scanned = 0u64;
        let mut matched = 0u64;
        let scan_rows: Option<Vec<u32>> = match &probe.handle {
            None => Some((0..columns.row_count() as u32).collect()),
            Some(_) => None,
        };
        // Per selected parent: its candidate rows, with immediately
        // decidable parents (no candidates) settled up front.
        let mut lists: Vec<(u32, &[u32])> = Vec::with_capacity(sel.len());
        let mut decided_true: Vec<u32> = Vec::new();
        for &prow in sel {
            let candidates: Option<&[u32]> = if let Some(handle) = &probe.handle {
                let mut packed = [0u32; 2];
                let mut miss = false;
                for (i, src) in probe.key.iter().enumerate() {
                    match src_code(src, parent, prow) {
                        Some(code) => packed[i] = code,
                        // Unbound slot or out-of-domain constant: no fact
                        // matches.
                        None => {
                            miss = true;
                            break;
                        }
                    }
                }
                if miss {
                    None
                } else {
                    Some(handle.candidates(CodeIndex::pack(&packed[..probe.key.len()])))
                }
            } else {
                scan_rows.as_deref()
            };
            match candidates {
                None | Some([]) => {
                    if !exists {
                        decided_true.push(prow);
                    }
                }
                Some(c) => lists.push((prow, c)),
            }
        }

        let bind_slots: Vec<Slot> = probe
            .actions
            .iter()
            .filter_map(|a| match a {
                VAct::Bind { slot, .. } if parent.cols[*slot].is_none() => Some(*slot),
                _ => None,
            })
            .collect();
        // Column pruning: gather only the bound columns the body reads.
        let carry_slots: Vec<Slot> = carry
            .iter()
            .copied()
            .filter(|&s| parent.cols[s].is_some())
            .collect();

        let mut undecided: Vec<usize> = (0..lists.len()).collect();
        let mut scratch: Vec<(Slot, u32)> = Vec::new();
        // Wave scratch, reused across waves: undecided parents skipped this
        // wave, the wave's members, and the wave batch itself — only the
        // carried and freshly bound columns are materialized, filled in
        // place as members pass the probe's residual checks.
        let mut next_undecided: Vec<usize> = Vec::with_capacity(undecided.len());
        let mut wave_members: Vec<usize> = Vec::new();
        let mut wave_batch = Batch {
            len: 0,
            cols: vec![None; nslots],
        };
        for &slot in carry_slots.iter().chain(&bind_slots) {
            wave_batch.cols[slot] = Some(Vec::new());
        }
        let mut k = 0usize;
        while !undecided.is_empty() {
            next_undecided.clear();
            wave_members.clear();
            wave_batch.len = 0;
            for col in wave_batch.cols.iter_mut().flatten() {
                col.clear();
            }
            for &m in &undecided {
                let (prow, cands) = lists[m];
                if k >= cands.len() {
                    // Exhausted without a decision: every unifying fact
                    // passed (∀ true) or none witnessed (∃ false).
                    if !exists {
                        decided_true.push(prow);
                    }
                    continue;
                }
                scanned += 1;
                scratch.clear();
                if apply_row(probe, columns, cands[k], parent, prow, &mut scratch) {
                    wave_members.push(m);
                    wave_batch.len += 1;
                    for &slot in &carry_slots {
                        let src = parent.cols[slot].as_ref().expect("carry slots are bound");
                        let col = wave_batch.cols[slot].as_mut().expect("allocated above");
                        col.push(src[prow as usize]);
                    }
                    for &slot in &bind_slots {
                        let code = scratch
                            .iter()
                            .find(|(s, _)| *s == slot)
                            .map(|&(_, c)| c)
                            .expect("a passing candidate binds every bind slot");
                        wave_batch.cols[slot]
                            .as_mut()
                            .expect("allocated above")
                            .push(code);
                    }
                } else {
                    // Not part of the quantified set: skip this candidate,
                    // the parent stays undecided.
                    next_undecided.push(m);
                }
            }
            if wave_batch.len > 0 {
                matched += wave_batch.len as u64;
                let wave_sel: Vec<u32> = (0..wave_batch.len as u32).collect();
                let survived = self.eval(body, &wave_batch, wave_sel);
                let mut si = 0;
                for (row, &m) in wave_members.iter().enumerate() {
                    let ok = si < survived.len() && survived[si] == row as u32;
                    if ok {
                        si += 1;
                    }
                    if exists {
                        if ok {
                            decided_true.push(lists[m].0);
                        } else {
                            next_undecided.push(m);
                        }
                    } else if ok {
                        next_undecided.push(m);
                    }
                    // ∀ with a failing child: decided false, dropped.
                }
            }
            // Skips and wave survivors interleave arbitrarily; restore the
            // deterministic parent order for the next wave.
            next_undecided.sort_unstable();
            std::mem::swap(&mut undecided, &mut next_undecided);
            k += 1;
        }
        if let Some(cell) = trace {
            cell.add_invocations(sel.len() as u64);
            cell.add_rows(scanned);
            cell.add_matches(matched);
            cell.add_waves(k as u64);
        }
        decided_true.sort_unstable();
        decided_true
    }
}

/// Vectorized sentence evaluation: a single unbound batch row survives the
/// root operator iff the sentence holds. A root `∃-scan` goes through the
/// sharded entry point so the candidate list is processed in
/// [`ROOT_CHUNK`]-sized chunks with early exit — the batch analogue of the
/// row engine's first-witness short-circuit.
pub(crate) fn eval_sentence(prepared: &PreparedFo<'_>) -> bool {
    let vec_fo = prepared.vec.as_ref().expect("vec form built");
    if prepared.plan.free.is_empty() && matches!(vec_fo.root, VOp::ExistsScan { .. }) {
        return eval_root_shard(prepared, 0..usize::MAX);
    }
    let ctx = VecCtx {
        prepared,
        columnar: prepared.index.columnar(),
    };
    let batch = Batch::unbound(prepared.plan.slots.len());
    !ctx.eval(&vec_fo.root, &batch, vec![0]).is_empty()
}

/// Maps ascending fact ids of one relation to their dense row indices.
fn rows_of_fids(index: &DatabaseIndex, relation: RelationId, fids: &[u32]) -> Vec<u32> {
    let all = index.relation_fact_ids(relation);
    fids.iter()
        .map(|fid| {
            all.binary_search(fid)
                .expect("candidate fact ids come from the relation") as u32
        })
        .collect()
}

/// Vectorized root-sharded sentence evaluation. The shard is an index range
/// into the *row engine's* root candidate list (a `PositionIndex` bucket),
/// so partitions recombine identically on both paths.
pub(crate) fn eval_root_shard(prepared: &PreparedFo<'_>, shard: Range<usize>) -> bool {
    let vec_fo = prepared.vec.as_ref().expect("vec form built");
    let VOp::ExistsScan { probe, body, .. } = &vec_fo.root else {
        return shard.start == 0 && eval_sentence(prepared);
    };
    let FoOp::ExistsScan { spec, .. } = &prepared.plan.root else {
        unreachable!("vec root mirrors the plan root");
    };
    let regs = Registers::new(prepared.plan.slots.len());
    let Some(candidates) = spec.candidates(
        &prepared.index,
        prepared.handles[spec.probe_id].as_ref(),
        &regs,
    ) else {
        return false;
    };
    let ids = candidates.ids();
    let lo = shard.start.min(ids.len());
    let hi = shard.end.min(ids.len());
    if lo == hi {
        return false;
    }
    let ctx = VecCtx {
        prepared,
        columnar: prepared.index.columnar(),
    };
    let parent = Batch::unbound(prepared.plan.slots.len());
    for chunk in ids[lo..hi].chunks(ROOT_CHUNK) {
        let rows = rows_of_fids(&prepared.index, probe.relation, chunk);
        let batch = expand(
            probe,
            &parent,
            &[0],
            ctx.columnar,
            Some(&rows),
            ctx.trace_cell(probe.probe_id),
        );
        if batch.len == 0 {
            continue;
        }
        let child_sel: Vec<u32> = (0..batch.len as u32).collect();
        if !ctx.eval(body, &batch, child_sel).is_empty() {
            return true;
        }
    }
    false
}

/// Vectorized batch evaluation of an open formula over `tuples`:
/// `out[i]` ⇔ `eval_with` under `vars ↦ tuples[i]`. Tuples carrying values
/// outside the active domain are routed through the row path (their codes
/// do not exist).
pub(crate) fn eval_tuples(
    prepared: &PreparedFo<'_>,
    vars: &[Variable],
    tuples: &[Vec<Value>],
) -> Vec<bool> {
    let vec_fo = prepared.vec.as_ref().expect("vec form built");
    let columnar = prepared.index.columnar();
    let dict = columnar.dictionary();
    let nslots = prepared.plan.slots.len();
    let slot_for: Vec<Option<Slot>> = vars
        .iter()
        .map(|v| {
            prepared
                .plan
                .free
                .iter()
                .find(|(fv, _)| fv == v)
                .map(|&(_, s)| s)
        })
        .collect();
    let mut cols: Vec<Option<Vec<u32>>> = vec![None; nslots];
    for slot in slot_for.iter().flatten() {
        cols[*slot] = Some(Vec::with_capacity(tuples.len()));
    }
    let mut foreign: Vec<usize> = Vec::new();
    for (row, tuple) in tuples.iter().enumerate() {
        let mut ok = true;
        for (value, slot) in tuple.iter().zip(&slot_for) {
            let Some(slot) = slot else { continue };
            let code = match dict.code_of(value) {
                Some(code) => code,
                None => {
                    ok = false;
                    0
                }
            };
            cols[*slot].as_mut().expect("allocated above").push(code);
        }
        if !ok {
            foreign.push(row);
        }
    }
    let batch = Batch {
        len: tuples.len(),
        cols,
    };
    let sel: Vec<u32> = (0..tuples.len() as u32)
        .filter(|r| !foreign.contains(&(*r as usize)))
        .collect();
    let ctx = VecCtx { prepared, columnar };
    let survived = ctx.eval(&vec_fo.root, &batch, sel);
    let mut out = vec![false; tuples.len()];
    for row in survived {
        out[row as usize] = true;
    }
    for row in foreign {
        out[row] = prepared.eval_tuple_row(vars, &tuples[row]);
    }
    out
}

/// Vectorized `answers` / `answers_shard`: a batch hash join down the step
/// pipeline, chunked over the root candidate list so intermediates stay
/// bounded. The shard range indexes the row engine's root candidate list,
/// so partitions recombine identically on both paths.
pub(crate) fn query_answers(
    prepared: &PreparedQuery<'_>,
    shard: Option<Range<usize>>,
) -> BTreeSet<Vec<Value>> {
    let mut out = BTreeSet::new();
    let plan = prepared.plan;
    let step = plan.steps.first().expect("vec path requires steps");
    let regs = Registers::new(plan.slots.len());
    let Some(candidates) =
        step.spec
            .candidates(&prepared.index, prepared.handles[0].as_ref(), &regs)
    else {
        return out;
    };
    let ids = candidates.ids();
    let (lo, hi) = match shard {
        Some(range) => (range.start.min(ids.len()), range.end.min(ids.len())),
        None => (0, ids.len()),
    };
    if lo >= hi {
        return out;
    }
    let columnar = prepared.index.columnar();
    let dict = columnar.dictionary();
    let trace_cell = |i: usize| prepared.trace.as_deref().map(|sink| sink.op(i));
    let parent = Batch::unbound(plan.slots.len());
    for chunk in ids[lo..hi].chunks(ROOT_CHUNK) {
        let rows = rows_of_fids(&prepared.index, step.spec.relation, chunk);
        let mut batch = expand(
            &prepared.vec_steps[0],
            &parent,
            &[0],
            columnar,
            Some(&rows),
            trace_cell(0),
        );
        for (i, probe) in prepared.vec_steps[1..].iter().enumerate() {
            if batch.len == 0 {
                break;
            }
            let sel: Vec<u32> = (0..batch.len as u32).collect();
            batch = expand(probe, &batch, &sel, columnar, None, trace_cell(i + 1));
        }
        if batch.len == 0 {
            continue;
        }
        let free_cols: Option<Vec<&Vec<u32>>> = plan
            .free_slots
            .iter()
            .map(|&s| batch.cols[s].as_ref())
            .collect();
        let Some(free_cols) = free_cols else { continue };
        for row in 0..batch.len {
            out.insert(
                free_cols
                    .iter()
                    .map(|col| dict.value(col[row]).clone())
                    .collect(),
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FoPlan, QueryPlan};
    use cqa_data::{Schema, UncertainDatabase};
    use cqa_query::fo_formula::FoFormula;
    use cqa_query::{ConjunctiveQuery, Term};

    fn db() -> UncertainDatabase {
        let schema = Schema::from_relations([("R", 2, 1), ("S", 2, 1)])
            .unwrap()
            .into_shared();
        let mut db = UncertainDatabase::new(schema);
        for (a, b) in [("a", "1"), ("a", "2"), ("b", "1"), ("c", "3")] {
            db.insert_values("R", [a, b]).unwrap();
        }
        for (a, b) in [("1", "x"), ("2", "x"), ("3", "y")] {
            db.insert_values("S", [a, b]).unwrap();
        }
        db
    }

    fn both_modes(formula: &FoFormula, db: &UncertainDatabase) -> (bool, bool) {
        let index = db.index();
        let plan = FoPlan::compile(formula, db.schema(), Some(index.statistics()));
        let row = plan.prepare(&index).with_mode(ExecMode::RowAtATime).eval();
        let vec = plan.prepare(&index).with_mode(ExecMode::Vectorized).eval();
        (row, vec)
    }

    #[test]
    fn vectorized_sentences_match_the_row_engine() {
        let db = db();
        let r = db.schema().relation_id("R").unwrap();
        let s = db.schema().relation_id("S").unwrap();
        let x = || Term::var("x");
        let y = || Term::var("y");
        let sentences = [
            // ∃x∃y (R(x,y) ∧ S(y,'x')) — join through ∃-scans.
            FoFormula::exists(
                vec![cqa_query::Variable::new("x"), cqa_query::Variable::new("y")],
                FoFormula::and(vec![
                    FoFormula::atom(r, vec![x(), y()]),
                    FoFormula::atom(s, vec![y(), Term::constant("x")]),
                ]),
            ),
            // ∀y (R('a',y) → y = '1') — false (R(a,2)).
            FoFormula::forall(
                vec![cqa_query::Variable::new("y")],
                FoFormula::Implies(
                    Box::new(FoFormula::atom(r, vec![Term::constant("a"), y()])),
                    Box::new(FoFormula::Equals(y(), Term::constant("1"))),
                ),
            ),
            // ∀y (R('b',y) → y = '1') — true (singleton block).
            FoFormula::forall(
                vec![cqa_query::Variable::new("y")],
                FoFormula::Implies(
                    Box::new(FoFormula::atom(r, vec![Term::constant("b"), y()])),
                    Box::new(FoFormula::Equals(y(), Term::constant("1"))),
                ),
            ),
            // ∃x (R(x,'1') ∧ ¬R(x,'2')) — anti-join: x='b' witnesses.
            FoFormula::exists(
                vec![cqa_query::Variable::new("x")],
                FoFormula::and(vec![
                    FoFormula::atom(r, vec![x(), Term::constant("1")]),
                    FoFormula::Not(Box::new(FoFormula::atom(r, vec![x(), Term::constant("2")]))),
                ]),
            ),
            // Disjunction with an out-of-domain constant probe.
            FoFormula::Or(vec![
                FoFormula::atom(r, vec![Term::constant("zz"), Term::constant("1")]),
                FoFormula::atom(r, vec![Term::constant("c"), Term::constant("3")]),
            ]),
            // Constant equality outside the active domain (value compare).
            FoFormula::Equals(Term::constant("zz"), Term::constant("zz")),
            // ∀x ¬R(x,x) — unguarded ∀-domain: the row fallback inside the
            // vectorized executor.
            FoFormula::forall(
                vec![cqa_query::Variable::new("x")],
                FoFormula::Not(Box::new(FoFormula::atom(r, vec![x(), x()]))),
            ),
        ];
        for (i, sentence) in sentences.iter().enumerate() {
            let (row, vec) = both_modes(sentence, &db);
            assert_eq!(row, vec, "sentence {i}");
        }
    }

    #[test]
    fn vectorized_root_shards_recombine() {
        let db = db();
        let r = db.schema().relation_id("R").unwrap();
        let sentence = FoFormula::exists(
            vec![cqa_query::Variable::new("x"), cqa_query::Variable::new("y")],
            FoFormula::and(vec![
                FoFormula::atom(r, vec![Term::var("x"), Term::var("y")]),
                FoFormula::Equals(Term::var("y"), Term::constant("3")),
            ]),
        );
        let index = db.index();
        let plan = FoPlan::compile(&sentence, db.schema(), Some(index.statistics()));
        let row = plan.prepare(&index).with_mode(ExecMode::RowAtATime);
        let vec = plan.prepare(&index).with_mode(ExecMode::Vectorized);
        let width = row.root_shard_width().expect("root ∃-scan");
        assert_eq!(vec.eval(), row.eval());
        for shards in [1usize, 2, 3, width + 2] {
            let per = width.div_ceil(shards);
            let any_vec =
                (0..shards).any(|s| vec.eval_root_shard(s * per..((s + 1) * per).min(width)));
            let any_row =
                (0..shards).any(|s| row.eval_root_shard(s * per..((s + 1) * per).min(width)));
            assert_eq!(any_vec, any_row, "{shards} shards");
            assert_eq!(any_vec, row.eval());
        }
    }

    #[test]
    fn vectorized_eval_tuples_matches_eval_with() {
        let db = db();
        let r = db.schema().relation_id("R").unwrap();
        // Open formula over x: ∃y R(x, y) ∧ ¬R(x, '2').
        let open = FoFormula::and(vec![
            FoFormula::exists(
                vec![cqa_query::Variable::new("y")],
                FoFormula::atom(r, vec![Term::var("x"), Term::var("y")]),
            ),
            FoFormula::Not(Box::new(FoFormula::atom(
                r,
                vec![Term::var("x"), Term::constant("2")],
            ))),
        ]);
        let index = db.index();
        let plan = FoPlan::compile(&open, db.schema(), Some(index.statistics()));
        let vars = [cqa_query::Variable::new("x")];
        // 'zz' is outside the active domain: exercises the foreign-row
        // fallback inside the batch path.
        let tuples: Vec<Vec<Value>> = ["a", "b", "c", "zz"]
            .iter()
            .map(|v| vec![Value::str(*v)])
            .collect();
        let row = plan
            .prepare(&index)
            .with_mode(ExecMode::RowAtATime)
            .eval_tuples(&vars, &tuples);
        let vec = plan
            .prepare(&index)
            .with_mode(ExecMode::Vectorized)
            .eval_tuples(&vars, &tuples);
        assert_eq!(row, vec);
        assert_eq!(row, vec![false, true, true, false]);
    }

    #[test]
    fn vectorized_answers_match_and_shards_recombine() {
        let db = db();
        let q = ConjunctiveQuery::builder(db.schema().clone())
            .atom("R", [Term::var("x"), Term::var("y")])
            .atom("S", [Term::var("y"), Term::var("z")])
            .free([cqa_query::Variable::new("x"), cqa_query::Variable::new("z")])
            .build()
            .unwrap();
        let index = db.index();
        let plan = QueryPlan::compile(&q, Some(index.statistics()));
        let row = plan.prepare(&index).with_mode(ExecMode::RowAtATime);
        let vec = plan.prepare(&index).with_mode(ExecMode::Vectorized);
        assert_eq!(row.answers(), vec.answers());
        assert!(!vec.answers().is_empty());
        let width = row.root_width().expect("non-empty plan");
        for shards in [1usize, 2, 3, width + 1] {
            let per = width.div_ceil(shards);
            let mut union = std::collections::BTreeSet::new();
            for s in 0..shards {
                union.extend(vec.answers_shard(s * per..((s + 1) * per).min(width)));
            }
            assert_eq!(union, row.answers(), "{shards} shards");
        }
    }

    #[test]
    fn wide_keys_demote_to_checked_positions() {
        // Three bound key positions: the CodeIndex takes two, the third is
        // demoted to a per-candidate check.
        let schema = Schema::from_relations([("T", 3, 3)]).unwrap().into_shared();
        let mut db = UncertainDatabase::new(schema);
        db.insert_values("T", ["a", "b", "c"]).unwrap();
        db.insert_values("T", ["a", "b", "d"]).unwrap();
        let t = db.schema().relation_id("T").unwrap();
        let hit = FoFormula::atom(
            t,
            vec![
                Term::constant("a"),
                Term::constant("b"),
                Term::constant("c"),
            ],
        );
        let miss = FoFormula::atom(
            t,
            vec![
                Term::constant("a"),
                Term::constant("b"),
                Term::constant("e"),
            ],
        );
        assert_eq!(both_modes(&hit, &db), (true, true));
        assert_eq!(both_modes(&miss, &db), (false, false));
    }

    #[test]
    fn explain_marks_vectorized_and_row_operators() {
        let db = db();
        let r = db.schema().relation_id("R").unwrap();
        let mixed = FoFormula::exists(
            vec![cqa_query::Variable::new("x")],
            FoFormula::Not(Box::new(FoFormula::atom(
                r,
                vec![Term::var("x"), Term::constant("1")],
            ))),
        );
        let plan = FoPlan::compile(&mixed, db.schema(), None);
        let text = plan.explain();
        assert!(text.contains("exec: est work"), "{text}");
        assert!(text.contains("[row]"), "{text}");
        assert!(text.contains("[vec]"), "{text}");
    }
}
