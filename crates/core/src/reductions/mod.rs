//! Polynomial-time many-one reductions used in the paper.
//!
//! * [`theorem2`] — the `θ̂` construction from the proof of Theorem 2:
//!   a reduction from `CERTAINTY(q0)` (with `q0 = {R0(x, y), S0(y, z, x)}`,
//!   coNP-complete by Kolaitis–Pema) to `CERTAINTY(q)` for any acyclic
//!   self-join-free query `q` whose attack graph contains a strong cycle.
//! * [`lemma9`] — the all-key padding reduction of Lemma 9, which in
//!   particular reduces `CERTAINTY(C(k))` to `CERTAINTY(AC(k))`
//!   (Corollary 1).

pub mod lemma9;
pub mod theorem2;

pub use lemma9::pad_with_all_key_atoms;
pub use theorem2::Theorem2Reduction;
