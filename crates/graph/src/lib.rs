//! # cqa-graph
//!
//! Directed-graph algorithms used throughout the `certainty-rs` workspace:
//!
//! * [`DiGraph`] — a small, generic adjacency-list digraph,
//! * [`scc`] — Tarjan strongly connected components and condensation,
//! * [`cycles`] — elementary-cycle enumeration (Johnson) and acyclicity,
//! * [`paths`] — reachability, fixed-length cycles, and the "elementary cycle
//!   longer than `k`" test used inside the proof of Theorem 4,
//! * [`spanning`] — maximum-weight spanning trees (join-tree construction)
//!   and undirected-tree path queries.
//!
//! The attack graphs of the paper have at most a handful of vertices (one per
//! query atom), while the graphs built by the cycle-query solver of Theorem 4
//! have one vertex per constant of the active domain; the algorithms here are
//! written to be correct for both regimes and efficient for the latter.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cycles;
mod digraph;
pub mod paths;
pub mod scc;
pub mod spanning;

pub use digraph::{DiGraph, NodeId};
