//! Attack-graph explorer: rebuilds the figures of the paper.
//!
//! For each catalog query (q1 of Figure 2, the Figure 4 query, AC(3) of
//! Figure 5, ...), prints the join tree, the closures `F⁺` / `F^⊞`, the
//! attack graph with weak/strong labels, the cycle analysis and the
//! resulting complexity classification, plus Graphviz DOT output that can be
//! rendered to reproduce the figures.
//!
//! Run with `cargo run --example attack_graph_explorer`.

use cqa::core::attack::{AttackGraph, CycleAnalysis};
use cqa::core::classify::classify;
use cqa::parser::dot;
use cqa::query::{catalog, JoinTree};

fn explore(entry: &catalog::CatalogQuery) {
    println!("==============================================================");
    println!("{}  —  {}", entry.name, entry.description);
    println!("query: {}", entry.query);

    let Some(join_tree) = JoinTree::build(&entry.query) else {
        println!("the query is cyclic: no join tree, attack graph undefined\n");
        return;
    };
    println!("\njoin tree:");
    print!("{join_tree}");

    let graph = AttackGraph::build(&entry.query).unwrap();
    let closures = graph.closures();
    println!("\nclosures (Definition 2 / Definition 5):");
    for (id, atom) in entry.query.atoms_with_ids() {
        let plus: Vec<String> = closures
            .plus_vars(id)
            .iter()
            .map(|v| v.to_string())
            .collect();
        let boxed: Vec<String> = closures
            .boxed_vars(id)
            .iter()
            .map(|v| v.to_string())
            .collect();
        println!(
            "  {:<22} F+ = {{{}}}   F⊞ = {{{}}}",
            atom.display(entry.query.schema()).to_string(),
            plus.join(","),
            boxed.join(",")
        );
    }

    println!("\nattack graph (Definition 3):");
    print!("{}", graph.render());
    let analysis = CycleAnalysis::analyze(&graph);
    println!(
        "cycles: {}   strong cycle: {}   all weak+terminal: {}",
        analysis.cycles().len(),
        analysis.has_strong_cycle(),
        analysis.all_cycles_weak() && analysis.all_cycles_terminal()
    );
    println!("classification: {}", classify(&entry.query).unwrap().class);

    println!("\nGraphviz DOT (render with `dot -Tpng`):");
    println!("{}", dot::attack_graph_to_dot(&graph));
}

fn main() {
    for entry in [
        catalog::q1(),
        catalog::fig4(),
        catalog::ac_k(3),
        catalog::conference(),
        catalog::c_k(3),
    ] {
        explore(&entry);
    }
}
