//! Constants of the data model.
//!
//! The paper assumes an abstract, countably infinite set of constants. In this
//! implementation a constant is a [`Value`]: a string, a 64-bit integer, or a
//! tuple of values. Tuple values are not part of the paper's data model per
//! se, but the coNP-hardness reduction of Theorem 2 constructs constants of
//! the form `⟨θ(x), θ(y)⟩` and `⟨θ(x), θ(y), θ(z)⟩`; representing them as
//! first-class tuple values keeps that reduction faithful and injective.

use std::borrow::Cow;
use std::fmt;
use std::sync::Arc;

/// A constant of the data model.
///
/// `Value` is cheap to clone: strings and tuples are reference counted.
/// Equality, hashing and ordering are structural, so values can be used as
/// block keys and as vertices of the graphs built by the cycle-query solver.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// A symbolic constant such as `"PODS"` or `"Rome"`.
    Str(Arc<str>),
    /// An integer constant such as a year.
    Int(i64),
    /// A tuple constant, e.g. `⟨a, b⟩`, as produced by the Theorem 2
    /// reduction (`θ̂` maps some variables to pairs or triples of constants).
    Tuple(Arc<[Value]>),
}

impl Value {
    /// Creates a string value.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Creates an integer value.
    pub fn int(i: i64) -> Self {
        Value::Int(i)
    }

    /// Creates a tuple value from its components.
    ///
    /// Tuples compare element-wise: two tuples are equal iff they have the
    /// same length and contain the same elements in the same order, exactly
    /// as required by the proof of Theorem 2.
    pub fn tuple(items: impl IntoIterator<Item = Value>) -> Self {
        Value::Tuple(items.into_iter().collect::<Vec<_>>().into())
    }

    /// Creates the pair value `⟨a, b⟩`.
    pub fn pair(a: Value, b: Value) -> Self {
        Value::tuple([a, b])
    }

    /// Creates the triple value `⟨a, b, c⟩`.
    pub fn triple(a: Value, b: Value, c: Value) -> Self {
        Value::tuple([a, b, c])
    }

    /// Returns the string slice if this is a string value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the integer if this is an integer value.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the components if this is a tuple value.
    pub fn as_tuple(&self) -> Option<&[Value]> {
        match self {
            Value::Tuple(t) => Some(t),
            _ => None,
        }
    }

    /// A human-readable rendering that is also accepted back by the
    /// `cqa-parser` crate (strings are quoted only when necessary).
    pub fn render(&self) -> Cow<'_, str> {
        match self {
            Value::Str(s) => Cow::Borrowed(s),
            _ => Cow::Owned(self.to_string()),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Str(s) => write!(f, "{s}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Tuple(items) => {
                write!(f, "<")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, ">")
            }
        }
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Tuple(_) => write!(f, "{self}"),
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(Arc::from(s.as_str()))
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i64::from(i))
    }
}

impl From<usize> for Value {
    fn from(i: usize) -> Self {
        Value::Int(i as i64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn string_values_compare_structurally() {
        assert_eq!(Value::str("Rome"), Value::from("Rome"));
        assert_ne!(Value::str("Rome"), Value::str("Paris"));
    }

    #[test]
    fn int_and_string_are_distinct() {
        assert_ne!(Value::int(2016), Value::str("2016"));
    }

    #[test]
    fn tuples_compare_elementwise() {
        let a = Value::pair(Value::str("a"), Value::str("b"));
        let b = Value::tuple([Value::str("a"), Value::str("b")]);
        let c = Value::pair(Value::str("b"), Value::str("a"));
        assert_eq!(a, b);
        assert_ne!(a, c);
        // Length matters: <a,b> != <a,b,b>.
        let d = Value::triple(Value::str("a"), Value::str("b"), Value::str("b"));
        assert_ne!(a, d);
    }

    #[test]
    fn display_round_trip_is_readable() {
        assert_eq!(Value::str("PODS").to_string(), "PODS");
        assert_eq!(Value::int(7).to_string(), "7");
        let t = Value::pair(Value::str("x"), Value::int(1));
        assert_eq!(t.to_string(), "<x,1>");
    }

    #[test]
    fn values_are_ordered_and_usable_in_btreeset() {
        let set: BTreeSet<Value> = [Value::int(2), Value::int(1), Value::str("a")]
            .into_iter()
            .collect();
        assert_eq!(set.len(), 3);
    }

    #[test]
    fn clone_is_cheap_and_equal() {
        let v = Value::str("a fairly long constant name that would be costly to copy");
        let w = v.clone();
        assert_eq!(v, w);
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::str("x").as_str(), Some("x"));
        assert_eq!(Value::int(3).as_int(), Some(3));
        assert!(Value::int(3).as_str().is_none());
        assert_eq!(
            Value::pair(Value::int(1), Value::int(2))
                .as_tuple()
                .map(<[Value]>::len),
            Some(2)
        );
    }
}
