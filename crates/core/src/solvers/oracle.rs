//! The exact oracle: a baseline decision procedure for `CERTAINTY(q)` that
//! works for **every** Boolean conjunctive query (even self-joins and cyclic
//! queries), at exponential worst-case cost.
//!
//! `CERTAINTY(q)` is in coNP for first-order `q` (Section 1: a "no"
//! certificate is a repair falsifying `q`); the oracle searches for exactly
//! such a certificate. It is used
//!
//! * as the solver for the coNP-complete region (Theorem 2) and the open
//!   region of Conjecture 1,
//! * as the ground-truth oracle against which the polynomial solvers are
//!   validated in tests, and
//! * as the exponential baseline in the benchmark harness.
//!
//! Two prunings keep the backtracking search practical on benchmark sizes:
//! a branch whose already-chosen facts satisfy `q` can never produce a
//! falsifying repair, and a branch whose chosen facts plus all facts of the
//! still-undecided blocks do not satisfy `q` already *is* a falsifying branch.

use super::CertaintySolver;
use cqa_data::{Fact, UncertainDatabase};
use cqa_query::{eval, purify, ConjunctiveQuery, QueryError};

/// Exact (worst-case exponential) certainty check by falsifying-repair search.
pub struct ExactOracle {
    query: ConjunctiveQuery,
}

impl ExactOracle {
    /// Builds the oracle; accepts any Boolean conjunctive query.
    pub fn new(query: &ConjunctiveQuery) -> Result<Self, QueryError> {
        query.require_boolean()?;
        Ok(ExactOracle {
            query: query.clone(),
        })
    }

    /// Plain brute force: enumerate *all* repairs and evaluate the query on
    /// each. Exponential in the number of violated blocks; only intended for
    /// very small instances (tests and cross-validation). Each repair is a
    /// throwaway evaluated exactly once, so the naive evaluator is used —
    /// building an index snapshot per repair would dominate.
    pub fn is_certain_bruteforce(&self, db: &UncertainDatabase) -> bool {
        db.repairs()
            .all(|r| eval::naive::satisfies(&r, &self.query))
    }

    /// Searches for a falsifying repair; returns one if it exists.
    pub fn find_falsifying_repair(&self, db: &UncertainDatabase) -> Option<UncertainDatabase> {
        if self.query.is_empty() {
            return None; // The empty query is satisfied by every repair.
        }
        // Purify as in Lemma 1, but remember the unsupported witness fact of
        // every removed block: the lemma's proof extends a falsifying repair
        // of the purified database with exactly those facts (in reverse
        // removal order) to obtain a falsifying repair of the original.
        let mut purified = db.clone();
        let mut removed_witnesses: Vec<Fact> = Vec::new();
        loop {
            let doomed = purified
                .facts()
                .find(|f| !purify::supports(&purified, &self.query, f))
                .cloned();
            match doomed {
                Some(fact) => {
                    removed_witnesses.push(fact.clone());
                    purified.remove_block_of(&fact);
                }
                None => break,
            }
        }

        // Blocks ordered largest-first: inconsistent blocks carry the choice.
        let mut blocks: Vec<Vec<Fact>> = purified.blocks().map(|b| b.facts().to_vec()).collect();
        blocks.sort_by_key(|b| std::cmp::Reverse(b.len()));

        let mut chosen: Vec<Fact> = Vec::with_capacity(blocks.len());
        let mut chosen_db = purified.with_facts([]);
        let mut optimistic_db = purified.clone();
        if self.search(&blocks, 0, &mut chosen, &mut chosen_db, &mut optimistic_db) {
            // `chosen` falsifies q on the purified database; re-attach one
            // (unsupported) fact per removed block, as in the Lemma 1 proof.
            let facts = chosen.into_iter().chain(removed_witnesses);
            let candidate = db.with_facts(facts);
            debug_assert!(candidate.is_consistent());
            debug_assert_eq!(candidate.block_count(), db.block_count());
            debug_assert!(!eval::satisfies(&candidate, &self.query));
            return Some(candidate);
        }
        None
    }

    /// Backtracking over blocks. `chosen` holds one fact per already-decided
    /// block; `chosen_db` (the chosen facts) and `optimistic_db` (the chosen
    /// facts plus every fact of the still-undecided blocks) mirror it as
    /// databases, both maintained incrementally rather than rebuilt per
    /// node. Returns true if some completion falsifies the query.
    fn search(
        &self,
        blocks: &[Vec<Fact>],
        depth: usize,
        chosen: &mut Vec<Fact>,
        chosen_db: &mut UncertainDatabase,
        optimistic_db: &mut UncertainDatabase,
    ) -> bool {
        // Pruning 1: if the chosen facts alone already satisfy q, no
        // completion of this branch can falsify it. The parent node was not
        // satisfied (it would have been pruned), so the chosen facts satisfy
        // q iff some valuation image uses the fact added last — an anchored
        // probe instead of a from-scratch decision. The naive variant is the
        // right evaluator here: `chosen_db` is tiny and mutated at every
        // node, so an index snapshot would be rebuilt per probe.
        if let Some(last) = chosen.last() {
            if purify::supports_naive(chosen_db, &self.query, last) {
                return false;
            }
        }
        if depth == blocks.len() {
            return true; // A complete falsifying repair.
        }
        // Pruning 2: even taking *all* facts of the undecided blocks, if q is
        // not satisfied then any completion falsifies it — pick arbitrarily.
        if !eval::naive::satisfies(optimistic_db, &self.query) {
            for block in &blocks[depth..] {
                chosen.push(block[0].clone());
            }
            return true;
        }
        for fact in &blocks[depth] {
            chosen.push(fact.clone());
            chosen_db
                .insert(fact.clone())
                .expect("facts of a database are schema-valid");
            // Deciding this block shrinks the optimistic database by the
            // block's rejected facts.
            for sibling in &blocks[depth] {
                if sibling != fact {
                    optimistic_db.remove_fact(sibling);
                }
            }
            let found = self.search(blocks, depth + 1, chosen, chosen_db, optimistic_db);
            for sibling in &blocks[depth] {
                if sibling != fact {
                    optimistic_db
                        .insert(sibling.clone())
                        .expect("facts of a database are schema-valid");
                }
            }
            if found {
                return true;
            }
            chosen.pop();
            chosen_db.remove_fact(fact);
        }
        false
    }
}

impl CertaintySolver for ExactOracle {
    fn name(&self) -> &'static str {
        "exact-oracle"
    }

    fn query(&self) -> &ConjunctiveQuery {
        &self.query
    }

    fn is_certain(&self, db: &UncertainDatabase) -> bool {
        self.find_falsifying_repair(db).is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_query::catalog;

    #[test]
    fn oracle_matches_brute_force_on_the_conference_example() {
        let q = catalog::conference().query;
        let oracle = ExactOracle::new(&q).unwrap();
        let db = catalog::conference_database();
        assert!(!oracle.is_certain(&db));
        assert!(!oracle.is_certain_bruteforce(&db));
        let repair = oracle.find_falsifying_repair(&db).unwrap();
        assert!(repair.is_consistent());
        assert!(repair.is_subset_of(&db));
        assert!(!eval::satisfies(&repair, &q));
        assert_eq!(repair.block_count(), db.block_count());
    }

    #[test]
    fn certain_when_every_repair_satisfies() {
        // Make the conference database certain for the query by dropping the
        // Paris tuple: every repair then contains C(PODS,2016,Rome) and R(PODS,A).
        let q = catalog::conference().query;
        let oracle = ExactOracle::new(&q).unwrap();
        let mut db = catalog::conference_database();
        let c = db.schema().relation_id("C").unwrap();
        db.remove_fact(&cqa_data::Fact::new(
            c,
            vec![
                cqa_data::Value::str("PODS"),
                cqa_data::Value::str("2016"),
                cqa_data::Value::str("Paris"),
            ],
        ));
        assert!(oracle.is_certain(&db));
        assert!(oracle.is_certain_bruteforce(&db));
        assert!(oracle.find_falsifying_repair(&db).is_none());
    }

    #[test]
    fn empty_query_is_always_certain() {
        let schema = cqa_data::Schema::from_relations([("R", 2, 1)])
            .unwrap()
            .into_shared();
        let q = ConjunctiveQuery::boolean(schema.clone(), Vec::new()).unwrap();
        let oracle = ExactOracle::new(&q).unwrap();
        let empty = UncertainDatabase::new(schema);
        assert!(oracle.is_certain(&empty));
    }

    #[test]
    fn unsatisfiable_query_is_never_certain_on_nonempty_dbs() {
        let q = catalog::conference().query;
        let oracle = ExactOracle::new(&q).unwrap();
        let schema = q.schema().clone();
        let mut db = UncertainDatabase::new(schema);
        db.insert_values("C", ["VLDB", "2020", "Tokyo"]).unwrap();
        assert!(!oracle.is_certain(&db));
    }

    #[test]
    fn oracle_agrees_with_brute_force_on_random_like_instances() {
        // A deterministic pseudo-random sweep over small C(2)-style instances.
        let q = catalog::c2_swap().query;
        let oracle = ExactOracle::new(&q).unwrap();
        let schema = q.schema().clone();
        let mut mismatches = 0;
        for seed in 0u64..40 {
            let mut db = UncertainDatabase::new(schema.clone());
            let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            let mut next = || {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 33) as usize
            };
            for _ in 0..6 {
                let a = next() % 3;
                let b = next() % 3;
                db.insert_values("R1", [format!("a{a}"), format!("b{b}")])
                    .unwrap();
                let c = next() % 3;
                let d = next() % 3;
                db.insert_values("R2", [format!("b{c}"), format!("a{d}")])
                    .unwrap();
            }
            if oracle.is_certain(&db) != oracle.is_certain_bruteforce(&db) {
                mismatches += 1;
            }
        }
        assert_eq!(mismatches, 0);
    }
}
