//! Admission control and per-query cancellation.
//!
//! Two small synchronization pieces keep an overloaded server honest:
//!
//! * [`Admission`] bounds the number of in-flight queries (queued on the
//!   pool + running). A request past the bound is **rejected immediately**
//!   with a loud error — bounded latency beats an unbounded queue.
//! * [`CancelToken`] carries a query's deadline and cancellation flag. The
//!   evaluation loop polls it between candidate chunks
//!   ([`CancelToken::is_cancelled`]); the connection handler trips it when
//!   the deadline passes, and test hooks can block on
//!   [`CancelToken::wait_cancelled`] to simulate a slow query that is
//!   *guaranteed* to still be running at its deadline — deterministic
//!   timeout tests without sleeps-as-synchronization.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::Instant;

/// A bounded in-flight-query counter. `max == 0` rejects every query —
/// useful for testing the overload path deterministically.
#[derive(Debug)]
pub struct Admission {
    max: usize,
    inflight: Arc<AtomicUsize>,
}

impl Admission {
    /// Admission control admitting at most `max` concurrent queries.
    pub fn new(max: usize) -> Admission {
        Admission {
            max,
            inflight: Arc::new(AtomicUsize::new(0)),
        }
    }

    /// The configured bound.
    pub fn max(&self) -> usize {
        self.max
    }

    /// Queries currently admitted (queued + running).
    pub fn inflight(&self) -> usize {
        self.inflight.load(Ordering::Relaxed)
    }

    /// Tries to admit one query: `Some(permit)` reserves a slot released
    /// when the permit drops, `None` means the server is saturated and the
    /// caller must reject. Lock-free compare-and-swap, so the rejection
    /// path is prompt no matter how contended the server is.
    pub fn try_acquire(&self) -> Option<Permit> {
        let mut current = self.inflight.load(Ordering::Relaxed);
        loop {
            if current >= self.max {
                cqa_obs::count!("serve.rejected_overload");
                return None;
            }
            match self.inflight.compare_exchange_weak(
                current,
                current + 1,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    cqa_obs::gauge_set!("serve.inflight", (current + 1) as i64);
                    return Some(Permit {
                        inflight: self.inflight.clone(),
                    });
                }
                Err(seen) => current = seen,
            }
        }
    }
}

/// A reserved in-flight slot; dropping it releases the slot. Moves into the
/// query's pool job so the slot stays held until evaluation really ends —
/// even after the waiting handler gave up at the deadline.
#[derive(Debug)]
pub struct Permit {
    inflight: Arc<AtomicUsize>,
}

impl Drop for Permit {
    fn drop(&mut self) {
        let was = self.inflight.fetch_sub(1, Ordering::AcqRel);
        cqa_obs::gauge_set!("serve.inflight", was.saturating_sub(1) as i64);
    }
}

/// A query's deadline and cancellation flag, shared between the connection
/// handler (which trips it) and the evaluating worker (which polls it at
/// chunk boundaries).
#[derive(Debug)]
pub struct CancelToken {
    deadline: Option<Instant>,
    cancelled: Mutex<bool>,
    wake: Condvar,
}

impl CancelToken {
    /// A token that cancels when [`cancel`](Self::cancel)ed or — if
    /// `deadline` is set — when the deadline passes.
    pub fn new(deadline: Option<Instant>) -> CancelToken {
        CancelToken {
            deadline,
            cancelled: Mutex::new(false),
            wake: Condvar::new(),
        }
    }

    /// The query's deadline, if any.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// Trips the token and wakes any [`wait_cancelled`](Self::wait_cancelled)
    /// waiter.
    pub fn cancel(&self) {
        *self
            .cancelled
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = true;
        self.wake.notify_all();
    }

    /// True once the token is tripped or its deadline has passed. The
    /// evaluation loop polls this between chunks; a `true` answer means
    /// "stop now, the client is no longer waiting for this result".
    pub fn is_cancelled(&self) -> bool {
        if *self
            .cancelled
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
        {
            return true;
        }
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// Blocks until the token cancels (explicitly or by deadline). This is
    /// the deterministic "deliberately slow query": a test hook that parks
    /// here is guaranteed to still be running when the deadline fires, so
    /// the timeout path is exercised without timing guesswork.
    pub fn wait_cancelled(&self) {
        let mut cancelled = self
            .cancelled
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        loop {
            if *cancelled {
                return;
            }
            match self.deadline {
                Some(deadline) => {
                    let now = Instant::now();
                    if now >= deadline {
                        return;
                    }
                    let (guard, _) = self
                        .wake
                        .wait_timeout(cancelled, deadline - now)
                        .unwrap_or_else(PoisonError::into_inner);
                    cancelled = guard;
                }
                None => {
                    cancelled = self
                        .wake
                        .wait(cancelled)
                        .unwrap_or_else(PoisonError::into_inner);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn admission_bounds_inflight_and_releases_on_drop() {
        let admission = Admission::new(2);
        let a = admission.try_acquire().expect("slot 1");
        let _b = admission.try_acquire().expect("slot 2");
        assert_eq!(admission.inflight(), 2);
        assert!(admission.try_acquire().is_none(), "saturated");
        drop(a);
        assert_eq!(admission.inflight(), 1);
        assert!(admission.try_acquire().is_some(), "slot freed");
    }

    #[test]
    fn zero_capacity_rejects_everything() {
        let admission = Admission::new(0);
        assert!(admission.try_acquire().is_none());
        assert_eq!(admission.inflight(), 0);
    }

    #[test]
    fn tokens_cancel_explicitly_and_by_deadline() {
        let token = CancelToken::new(None);
        assert!(!token.is_cancelled());
        token.cancel();
        assert!(token.is_cancelled());

        let expired = CancelToken::new(Some(Instant::now() - Duration::from_millis(1)));
        assert!(expired.is_cancelled());
        expired.wait_cancelled(); // returns immediately: deadline passed
    }

    #[test]
    fn waiters_wake_on_cancel_from_another_thread() {
        let token = Arc::new(CancelToken::new(None));
        let waiter = {
            let token = token.clone();
            std::thread::spawn(move || token.wait_cancelled())
        };
        token.cancel();
        waiter.join().expect("waiter returns after cancel");
    }
}
