//! MVCC-lite epoch management: frozen reader epochs, delta-built writers.
//!
//! The manager owns the **master** [`UncertainDatabase`] (behind a writer
//! mutex) and publishes the **current epoch** — an
//! `Arc<`[`BatchEngine`]`>` over a frozen [`cqa_data::Snapshot`] — behind an
//! `RwLock` that is only ever held for a pointer clone or a pointer swap:
//!
//! * **Readers** ([`EpochManager::current`]) clone the `Arc` and answer
//!   entirely on that epoch; a concurrent publish cannot tear their view,
//!   because the epoch's snapshot and index are immutable by construction.
//! * **Writers** ([`EpochManager::apply_write`]) serialize on the master
//!   mutex, mutate the database (which records index **deltas**), freeze
//!   the next snapshot — flushing the delta log through the incremental
//!   index patcher rather than rebuilding — fork the next engine with
//!   [`BatchEngine::with_snapshot`] (sharing the classified-engine memo and
//!   the pool), and swap the published pointer. Old epochs die when their
//!   last in-flight reader drops its `Arc`.
//!
//! No-op writes (duplicate insert, absent removal) publish nothing: the
//! epoch number a client observes increments exactly on effective
//! mutations, mirroring [`UncertainDatabase::epoch`].

use crate::protocol::WriteOp;
use cqa_core::answers::CertainAnswersEngine;
use cqa_data::UncertainDatabase;
use cqa_exec::cache::fingerprint;
use cqa_par::{BatchEngine, ParPool};
use rustc_hash::FxHashMap;
use std::sync::{Arc, Mutex, PoisonError, RwLock};

/// What a write did: whether it changed anything, and the epoch the caller
/// now observes (the new epoch if `changed`, the unchanged one otherwise).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WriteOutcome {
    /// True iff the mutation was effective (a fresh insert, a present
    /// removal) and a new epoch was published.
    pub changed: bool,
    /// The epoch after the write.
    pub epoch: u64,
}

/// The server's shared epoch state: master database + published engine +
/// the cross-epoch memo of open-rewriting answer engines.
pub struct EpochManager {
    master: Mutex<UncertainDatabase>,
    current: RwLock<Arc<BatchEngine>>,
    /// Memoized [`CertainAnswersEngine`]s per `(schema, query)`
    /// fingerprint, shared across epochs — classification and rewriting
    /// shape are data-independent, and the compiled open plan re-checks
    /// statistics drift itself. This is the non-Boolean counterpart of the
    /// [`BatchEngine`]'s classified-engine memo.
    answer_engines: Mutex<FxHashMap<String, Arc<CertainAnswersEngine>>>,
}

impl EpochManager {
    /// Freezes `db` as epoch zero's snapshot and publishes its engine.
    pub fn new(db: UncertainDatabase, pool: ParPool) -> EpochManager {
        let engine = Arc::new(BatchEngine::new(db.snapshot(), pool));
        EpochManager {
            master: Mutex::new(db),
            current: RwLock::new(engine),
            answer_engines: Mutex::new(FxHashMap::default()),
        }
    }

    /// The current epoch's engine. The returned `Arc` pins the epoch: the
    /// caller's whole query runs against this one frozen snapshot no matter
    /// how many writes publish newer epochs meanwhile.
    pub fn current(&self) -> Arc<BatchEngine> {
        self.current
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// The published epoch number.
    pub fn epoch(&self) -> u64 {
        self.current().epoch()
    }

    /// Applies one write to the master database and — iff it was effective —
    /// publishes the next epoch. Writers serialize on the master mutex, so
    /// epochs are published in write order; the publish itself is a single
    /// pointer swap under the write lock, never blocking readers for longer
    /// than a pointer clone takes.
    pub fn apply_write(&self, op: &WriteOp) -> Result<WriteOutcome, String> {
        let mut master = self.master.lock().unwrap_or_else(PoisonError::into_inner);
        let changed = match op {
            WriteOp::Insert(fact) => master.insert(fact.clone()).map_err(|e| e.to_string())?,
            WriteOp::RemoveFact(fact) => master.remove_fact(fact),
            WriteOp::RemoveBlock(fact) => master.remove_block_of(fact),
        };
        if !changed {
            return Ok(WriteOutcome {
                changed: false,
                epoch: master.epoch(),
            });
        }
        cqa_obs::count!("serve.writes_effective");
        // Freezing the snapshot flushes the pending delta log through the
        // incremental index patcher (rebuild past CQA_DELTA_THRESHOLD).
        let snapshot = master.snapshot();
        let epoch = snapshot.epoch();
        let next = Arc::new(self.current().with_snapshot(snapshot));
        *self.current.write().unwrap_or_else(PoisonError::into_inner) = next;
        cqa_obs::count!("serve.epochs_published");
        Ok(WriteOutcome {
            changed: true,
            epoch,
        })
    }

    /// The memoized open-rewriting answer engine for `query`, classifying
    /// and compiling on first sight of the shape. Counted as
    /// `serve.answer_engine.{hit,miss}`.
    pub fn answer_engine(
        &self,
        query: &cqa_query::ConjunctiveQuery,
    ) -> Result<Arc<CertainAnswersEngine>, String> {
        let key = fingerprint(query);
        if let Some(engine) = self
            .answer_engines
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(&key)
        {
            cqa_obs::count!("serve.answer_engine.hit");
            return Ok(engine.clone());
        }
        cqa_obs::count!("serve.answer_engine.miss");
        // Classify outside the lock; a racing duplicate loses the entry
        // race harmlessly (both engines answer alike).
        let engine = Arc::new(CertainAnswersEngine::new(query).map_err(|e| e.to_string())?);
        Ok(self
            .answer_engines
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .entry(key)
            .or_insert(engine)
            .clone())
    }

    /// Number of memoized answer engines (tests pin memo reuse).
    pub fn answer_engine_count(&self) -> usize {
        self.answer_engines
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_data::{Fact, Schema, Value};
    use cqa_query::{ConjunctiveQuery, Term, Variable};

    fn manager() -> EpochManager {
        let schema = Schema::from_relations([("R", 2, 1)]).unwrap().into_shared();
        let mut db = UncertainDatabase::new(schema);
        db.insert_values("R", ["a", "1"]).unwrap();
        EpochManager::new(db, ParPool::new(2))
    }

    fn fact(schema: &Arc<Schema>, key: &str, value: i64) -> Fact {
        let rel = schema.relation_id("R").unwrap();
        Fact::checked(schema, rel, vec![Value::str(key), Value::Int(value)]).unwrap()
    }

    #[test]
    fn effective_writes_publish_new_epochs_and_noops_do_not() {
        let manager = manager();
        let schema = manager.current().snapshot().schema().clone();
        let before = manager.epoch();
        let reader_pin = manager.current();

        let outcome = manager
            .apply_write(&WriteOp::Insert(fact(&schema, "b", 2)))
            .unwrap();
        assert!(outcome.changed);
        assert!(outcome.epoch > before);
        assert_eq!(manager.epoch(), outcome.epoch);
        // A pinned reader epoch stays frozen across the publish.
        assert_eq!(reader_pin.snapshot().fact_count(), 1);
        assert_eq!(manager.current().snapshot().fact_count(), 2);

        // Duplicate insert and absent removals are no-ops: same epoch.
        for op in [
            WriteOp::Insert(fact(&schema, "b", 2)),
            WriteOp::RemoveFact(fact(&schema, "zzz", 9)),
            WriteOp::RemoveBlock(fact(&schema, "zzz", 9)),
        ] {
            let noop = manager.apply_write(&op).unwrap();
            assert!(!noop.changed);
            assert_eq!(noop.epoch, outcome.epoch);
        }

        // Removal publishes again.
        let removed = manager
            .apply_write(&WriteOp::RemoveFact(fact(&schema, "b", 2)))
            .unwrap();
        assert!(removed.changed);
        assert!(removed.epoch > outcome.epoch);
        assert_eq!(manager.current().snapshot().fact_count(), 1);
    }

    #[test]
    fn answer_engines_are_memoized_across_epochs() {
        let manager = manager();
        let schema = manager.current().snapshot().schema().clone();
        let query = ConjunctiveQuery::builder(schema.clone())
            .atom("R", [Term::var("x"), Term::var("y")])
            .free([Variable::new("x")])
            .build()
            .unwrap();
        let first = manager.answer_engine(&query).unwrap();
        manager
            .apply_write(&WriteOp::Insert(fact(&schema, "c", 3)))
            .unwrap();
        let second = manager.answer_engine(&query).unwrap();
        assert!(Arc::ptr_eq(&first, &second), "memo survives epochs");
        assert_eq!(manager.answer_engine_count(), 1);
    }
}
