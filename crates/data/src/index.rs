//! Secondary indexes over an [`UncertainDatabase`].
//!
//! The database's primary index (relation + key prefix → block) supports the
//! block structure of Section 3; the solvers, however, join facts on
//! *arbitrary* position subsets: a backtracking join binds variables one atom
//! at a time, and the positions that are already bound change from search
//! node to search node. A [`DatabaseIndex`] is an immutable snapshot of the
//! database built for exactly that access pattern:
//!
//! * every fact gets a dense [`FactId`], so candidate sets are plain `u32`
//!   lists instead of cloned facts;
//! * per-relation fact and block lists replace the full-database scans of
//!   `relation_facts` / `blocks_of`;
//! * [`DatabaseIndex::position_index`] builds (lazily, once) a hash index
//!   from the values at any chosen [`PositionSet`] to the ids of the facts
//!   carrying those values, so a join step with bound positions is a single
//!   hash probe;
//! * the sorted active domain is computed once and cached for the
//!   quantifier loops of the first-order model checker.
//!
//! The snapshot is cached on the database ([`UncertainDatabase::index`]) and
//! invalidated by any mutation, so repeated evaluations against the same
//! database pay the build cost once.

use crate::columnar::{build_code_index, CodeIndex, Columnar};
use crate::{Block, BlockId, Fact, FxHashMap, FxHashSet, RelationId, UncertainDatabase, Value};
use std::fmt;
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

/// Dense id of a fact inside one [`DatabaseIndex`] snapshot.
///
/// Ids run `0..index.fact_count()` and are only meaningful relative to the
/// snapshot that produced them (a mutation of the database produces a new
/// snapshot with new ids).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct FactId(pub(crate) u32);

impl FactId {
    /// The dense index of the fact.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Creates a fact id from a dense index.
    pub fn from_index(i: usize) -> Self {
        FactId(i as u32)
    }
}

impl fmt::Display for FactId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fact#{}", self.0)
    }
}

/// A set of attribute positions (0-based), stored as a bitmask.
///
/// Relations in this workspace have small arities (the paper's signatures
/// are `[n, k]` with tiny `n`); 64 positions are plenty.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct PositionSet(u64);

impl PositionSet {
    /// The number of representable positions (`0..MAX_POSITIONS`). Callers
    /// indexing relations of larger arity must skip the excess positions
    /// (probing a position subset always yields a candidate *superset*, so
    /// skipping positions is sound wherever candidates are re-checked).
    pub const MAX_POSITIONS: usize = 64;

    /// The empty position set.
    pub fn empty() -> Self {
        PositionSet(0)
    }

    /// The set containing a single position.
    pub fn single(pos: usize) -> Self {
        let mut s = PositionSet::empty();
        s.insert(pos);
        s
    }

    /// Builds a set from an iterator of positions.
    pub fn from_positions(positions: impl IntoIterator<Item = usize>) -> Self {
        let mut s = PositionSet::empty();
        for p in positions {
            s.insert(p);
        }
        s
    }

    /// Adds a position (< 64).
    pub fn insert(&mut self, pos: usize) {
        assert!(
            pos < Self::MAX_POSITIONS,
            "PositionSet supports positions 0..64"
        );
        self.0 |= 1 << pos;
    }

    /// True iff the position is in the set.
    pub fn contains(&self, pos: usize) -> bool {
        pos < Self::MAX_POSITIONS && self.0 & (1 << pos) != 0
    }

    /// True iff no position is in the set.
    pub fn is_empty(&self) -> bool {
        self.0 == 0
    }

    /// Number of positions in the set.
    pub fn len(&self) -> usize {
        self.0.count_ones() as usize
    }

    /// Iterates over the positions in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        let bits = self.0;
        (0..Self::MAX_POSITIONS).filter(move |p| bits & (1 << p) != 0)
    }
}

impl fmt::Debug for PositionSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

/// A hash index of one relation on one position subset: maps the tuple of
/// values at those positions (in ascending position order) to the dense ids
/// of the facts carrying them.
pub struct PositionIndex {
    positions: Vec<usize>,
    buckets: FxHashMap<Vec<Value>, Arc<[u32]>>,
    empty: Arc<[u32]>,
}

impl PositionIndex {
    fn build(index: &DatabaseIndex, relation: RelationId, positions: PositionSet) -> Self {
        let positions: Vec<usize> = positions.iter().collect();
        let mut grouped: FxHashMap<Vec<Value>, Vec<u32>> = FxHashMap::default();
        for &fid in index.relation_fact_ids(relation) {
            let fact = &index.facts[fid as usize];
            let key: Vec<Value> = positions.iter().map(|&p| fact.value(p).clone()).collect();
            grouped.entry(key).or_default().push(fid);
        }
        let buckets = grouped
            .into_iter()
            .map(|(key, ids)| (key, ids.into()))
            .collect();
        PositionIndex {
            positions,
            buckets,
            empty: Arc::from(&[][..]),
        }
    }

    /// The indexed positions, ascending.
    pub fn positions(&self) -> &[usize] {
        &self.positions
    }

    /// The fact ids whose values at the indexed positions equal `key`
    /// (values in ascending position order). Missing keys give `&[]`.
    pub fn candidates(&self, key: &[Value]) -> &[u32] {
        self.buckets.get(key).map_or(&[], |ids| ids)
    }

    /// Like [`PositionIndex::candidates`], but returns a shared handle, so a
    /// caller can resolve the bucket once and keep it without re-hashing the
    /// key (the join engine's per-node pattern).
    pub fn candidates_shared(&self, key: &[Value]) -> Arc<[u32]> {
        self.buckets.get(key).unwrap_or(&self.empty).clone()
    }

    /// Number of distinct keys.
    pub fn key_count(&self) -> usize {
        self.buckets.len()
    }

    /// Iterates over the distinct keys (arbitrary order).
    ///
    /// For a single-position index this enumerates the distinct values of
    /// that column — the candidate set the first-order model checker uses to
    /// restrict quantifier ranges.
    pub fn keys(&self) -> impl Iterator<Item = &[Value]> {
        self.buckets.keys().map(Vec::as_slice)
    }
}

/// Per-relation summary statistics of one [`DatabaseIndex`] snapshot.
///
/// These feed the cost model of the `cqa-exec` physical planner: the number
/// of facts bounds the output of a full scan, and the distinct counts per
/// position estimate the selectivity of an index probe on that position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RelationStatistics {
    fact_count: usize,
    block_count: usize,
    distinct: Vec<usize>,
}

impl RelationStatistics {
    /// Number of facts of the relation.
    pub fn fact_count(&self) -> usize {
        self.fact_count
    }

    /// Number of blocks (distinct keys) of the relation.
    pub fn block_count(&self) -> usize {
        self.block_count
    }

    /// Number of distinct values at one attribute position (`None` when the
    /// position is out of range for the relation's arity).
    pub fn distinct_count(&self, position: usize) -> Option<usize> {
        self.distinct.get(position).copied()
    }

    /// Distinct counts for every position, in position order.
    pub fn distinct_counts(&self) -> &[usize] {
        &self.distinct
    }
}

/// Snapshot-wide statistics: one [`RelationStatistics`] per relation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Statistics {
    relations: Vec<RelationStatistics>,
}

impl Statistics {
    /// The statistics of one relation.
    pub fn relation(&self, relation: RelationId) -> &RelationStatistics {
        &self.relations[relation.index()]
    }

    /// Iterates over `(RelationId, &RelationStatistics)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (RelationId, &RelationStatistics)> {
        self.relations
            .iter()
            .enumerate()
            .map(|(i, s)| (RelationId::from_index(i), s))
    }
}

/// An immutable index snapshot of an [`UncertainDatabase`].
///
/// Obtained from [`UncertainDatabase::index`]; see the module documentation.
pub struct DatabaseIndex {
    facts: Vec<Fact>,
    fact_blocks: Vec<u32>,
    by_relation: Vec<Vec<u32>>,
    blocks_by_relation: Vec<Vec<u32>>,
    arities: Vec<usize>,
    active_domain: OnceLock<Arc<[Value]>>,
    statistics: OnceLock<Statistics>,
    position_indexes: Mutex<FxHashMap<(RelationId, u64), Arc<PositionIndex>>>,
    columnar: OnceLock<Columnar>,
    code_indexes: Mutex<FxHashMap<(RelationId, u64), Arc<CodeIndex>>>,
}

impl DatabaseIndex {
    pub(crate) fn build(db: &UncertainDatabase) -> Self {
        let relations = db.schema().len();
        let mut facts = Vec::with_capacity(db.fact_count());
        let mut fact_blocks = Vec::with_capacity(db.fact_count());
        let mut by_relation = vec![Vec::new(); relations];
        let mut blocks_by_relation = vec![Vec::new(); relations];
        for (block_id, block) in db.blocks_with_ids() {
            blocks_by_relation[block.relation().index()].push(block_id.0);
            for fact in block.facts() {
                let fid = facts.len() as u32;
                by_relation[fact.relation().index()].push(fid);
                facts.push(fact.clone());
                fact_blocks.push(block_id.0);
            }
        }
        DatabaseIndex {
            facts,
            fact_blocks,
            by_relation,
            blocks_by_relation,
            arities: db.schema().iter().map(|(_, r)| r.arity()).collect(),
            active_domain: OnceLock::new(),
            statistics: OnceLock::new(),
            position_indexes: Mutex::new(FxHashMap::default()),
            columnar: OnceLock::new(),
            code_indexes: Mutex::new(FxHashMap::default()),
        }
    }

    /// Number of relations in the schema the snapshot was built over.
    pub fn relation_count(&self) -> usize {
        self.arities.len()
    }

    /// Arity of one relation.
    pub fn arity(&self, relation: RelationId) -> usize {
        self.arities[relation.index()]
    }

    /// Number of facts in the snapshot.
    pub fn fact_count(&self) -> usize {
        self.facts.len()
    }

    /// The fact with the given dense id.
    pub fn fact(&self, id: FactId) -> &Fact {
        &self.facts[id.index()]
    }

    /// The block (id) a fact belongs to.
    pub fn block_of(&self, id: FactId) -> BlockId {
        BlockId(self.fact_blocks[id.index()])
    }

    /// Dense ids of all facts of one relation, in snapshot order.
    pub fn relation_fact_ids(&self, relation: RelationId) -> &[u32] {
        &self.by_relation[relation.index()]
    }

    /// Ids of all blocks of one relation.
    pub fn relation_block_ids(&self, relation: RelationId) -> &[u32] {
        &self.blocks_by_relation[relation.index()]
    }

    /// Iterates over the facts of one relation without a database scan.
    pub fn relation_facts(&self, relation: RelationId) -> impl Iterator<Item = &Fact> {
        self.relation_fact_ids(relation)
            .iter()
            .map(move |&fid| &self.facts[fid as usize])
    }

    /// Iterates over the blocks of one relation of `db` without scanning the
    /// other relations' blocks.
    ///
    /// `db` must be the database this snapshot was built from.
    pub fn relation_blocks<'a>(
        &'a self,
        db: &'a UncertainDatabase,
        relation: RelationId,
    ) -> impl Iterator<Item = &'a Block> {
        self.relation_block_ids(relation)
            .iter()
            .map(move |&b| db.block(BlockId(b)))
    }

    /// The sorted, deduplicated active domain, computed once per snapshot.
    pub fn active_domain(&self) -> &[Value] {
        self.active_domain_shared_ref()
    }

    /// The active domain as a shared handle (the allocation backing both
    /// [`DatabaseIndex::active_domain`] and the columnar dictionary).
    pub fn active_domain_shared(&self) -> Arc<[Value]> {
        self.active_domain_shared_ref().clone()
    }

    fn active_domain_shared_ref(&self) -> &Arc<[Value]> {
        self.active_domain.get_or_init(|| {
            cqa_obs::count!("data.active_domain.build");
            let mut dom: Vec<Value> = self
                .facts
                .iter()
                .flat_map(|f| f.values().iter().cloned())
                .collect();
            dom.sort();
            dom.dedup();
            dom.into()
        })
    }

    /// Per-relation statistics (cardinality, block count, distinct values
    /// per position), computed once per snapshot and cached.
    ///
    /// These are the inputs of the `cqa-exec` cost model: they are exact for
    /// the snapshot they were computed on and serve as *estimates* when a
    /// plan compiled against one snapshot is executed against another.
    pub fn statistics(&self) -> &Statistics {
        self.statistics.get_or_init(|| {
            cqa_obs::count!("data.statistics.build");
            let relations = self
                .by_relation
                .iter()
                .enumerate()
                .map(|(rel, fact_ids)| {
                    let arity = self.arities[rel];
                    let mut seen: Vec<FxHashSet<&Value>> = vec![FxHashSet::default(); arity];
                    for &fid in fact_ids {
                        let fact = &self.facts[fid as usize];
                        for (pos, value) in fact.values().iter().enumerate() {
                            seen[pos].insert(value);
                        }
                    }
                    RelationStatistics {
                        fact_count: fact_ids.len(),
                        block_count: self.blocks_by_relation[rel].len(),
                        distinct: seen.into_iter().map(|s| s.len()).collect(),
                    }
                })
                .collect();
            Statistics { relations }
        })
    }

    /// The hash index of `relation` on the given position subset, built on
    /// first use and cached for the lifetime of the snapshot.
    ///
    /// An empty position set yields a single bucket (the empty key) holding
    /// every fact of the relation; callers with no bound positions should
    /// prefer [`DatabaseIndex::relation_fact_ids`].
    pub fn position_index(
        &self,
        relation: RelationId,
        positions: PositionSet,
    ) -> Arc<PositionIndex> {
        let key = (relation, positions.0);
        // The cache only ever grows and entries are immutable, so a panic in
        // some other holder of the lock cannot leave it inconsistent —
        // recover from poisoning instead of propagating it.
        if let Some(existing) = self
            .position_indexes
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(&key)
        {
            cqa_obs::count!("data.position_index.hit");
            return existing.clone();
        }
        cqa_obs::count!("data.position_index.miss");
        // Build outside the lock: concurrent builders may race, in which
        // case one result wins and the duplicates are dropped — harmless.
        let started = std::time::Instant::now();
        let built = Arc::new(PositionIndex::build(self, relation, positions));
        cqa_obs::observe_duration!("data.position_index.build_nanos", started.elapsed());
        let mut cache = self
            .position_indexes
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        cache.entry(key).or_insert(built).clone()
    }

    /// The dictionary-encoded columnar view of the snapshot, materialized on
    /// first use and cached — the value arrays the vectorized executor scans.
    pub fn columnar(&self) -> &Columnar {
        // The pre-check races benignly: two first callers may both count a
        // miss, but `get_or_init` still builds exactly once.
        if self.columnar.get().is_some() {
            cqa_obs::count!("data.columnar.hit");
        } else {
            cqa_obs::count!("data.columnar.miss");
        }
        self.columnar.get_or_init(|| {
            let started = std::time::Instant::now();
            let built = Columnar::build(self);
            cqa_obs::observe_duration!("data.columnar.build_nanos", started.elapsed());
            built
        })
    }

    /// The packed-code hash index of `relation` over one or two `positions`
    /// (ascending), built on first use and cached for the snapshot — the
    /// vectorized counterpart of [`DatabaseIndex::position_index`].
    pub fn code_index(&self, relation: RelationId, positions: &[usize]) -> Arc<CodeIndex> {
        // One or two positions, packed 1-biased so [p] and [p, 0] differ.
        let packed = match positions {
            [p] => *p as u64 + 1,
            [p, q] => (*p as u64 + 1) | ((*q as u64 + 1) << 32),
            _ => panic!("CodeIndex keys cover one or two positions"),
        };
        let key = (relation, packed);
        if let Some(existing) = self
            .code_indexes
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(&key)
        {
            cqa_obs::count!("data.code_index.hit");
            return existing.clone();
        }
        cqa_obs::count!("data.code_index.miss");
        // Same build-outside-the-lock pattern as `position_index`.
        let started = std::time::Instant::now();
        let built = Arc::new(build_code_index(self.columnar(), relation, positions));
        cqa_obs::observe_duration!("data.code_index.build_nanos", started.elapsed());
        let mut cache = self
            .code_indexes
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        cache.entry(key).or_insert(built).clone()
    }
}

impl fmt::Debug for DatabaseIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DatabaseIndex({} facts)", self.facts.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Schema;

    fn figure1() -> UncertainDatabase {
        let schema = Schema::from_relations([("C", 3, 2), ("R", 2, 1)])
            .unwrap()
            .into_shared();
        let mut db = UncertainDatabase::new(schema);
        db.insert_values("C", ["PODS", "2016", "Rome"]).unwrap();
        db.insert_values("C", ["PODS", "2016", "Paris"]).unwrap();
        db.insert_values("C", ["KDD", "2017", "Rome"]).unwrap();
        db.insert_values("R", ["PODS", "A"]).unwrap();
        db.insert_values("R", ["KDD", "A"]).unwrap();
        db.insert_values("R", ["KDD", "B"]).unwrap();
        db
    }

    #[test]
    fn position_sets_behave_like_sets() {
        let s = PositionSet::from_positions([2, 0]);
        assert!(s.contains(0) && s.contains(2) && !s.contains(1));
        assert_eq!(s.len(), 2);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 2]);
        assert!(PositionSet::empty().is_empty());
        assert_eq!(PositionSet::single(3).iter().collect::<Vec<_>>(), vec![3]);
    }

    #[test]
    fn snapshot_lists_facts_and_blocks_per_relation() {
        let db = figure1();
        let index = db.index();
        let c = db.schema().relation_id("C").unwrap();
        let r = db.schema().relation_id("R").unwrap();
        assert_eq!(index.fact_count(), 6);
        assert_eq!(index.relation_fact_ids(c).len(), 3);
        assert_eq!(index.relation_fact_ids(r).len(), 3);
        assert_eq!(index.relation_block_ids(c).len(), 2);
        assert_eq!(index.relation_block_ids(r).len(), 2);
        for &fid in index.relation_fact_ids(c) {
            let fact = index.fact(FactId(fid));
            assert_eq!(fact.relation(), c);
            let block = db.block(index.block_of(FactId(fid)));
            assert!(block.contains(fact));
        }
        let listed: Vec<_> = index.relation_blocks(&db, r).collect();
        assert_eq!(listed.len(), 2);
        assert!(listed.iter().all(|b| b.relation() == r));
    }

    #[test]
    fn position_probes_find_exactly_the_matching_facts() {
        let db = figure1();
        let index = db.index();
        let c = db.schema().relation_id("C").unwrap();
        // Index C on its third column (the city).
        let city = index.position_index(c, PositionSet::single(2));
        assert_eq!(city.candidates(&[Value::str("Rome")]).len(), 2);
        assert_eq!(city.candidates(&[Value::str("Paris")]).len(), 1);
        assert_eq!(city.candidates(&[Value::str("Tokyo")]).len(), 0);
        assert_eq!(city.key_count(), 2);
        // Index C on (conference, city).
        let pair = index.position_index(c, PositionSet::from_positions([0, 2]));
        assert_eq!(pair.positions(), &[0, 2]);
        let hits = pair.candidates(&[Value::str("PODS"), Value::str("Rome")]);
        assert_eq!(hits.len(), 1);
        assert_eq!(index.fact(FactId(hits[0])).value(1), &Value::str("2016"));
        // The same subset is served from the cache (same Arc).
        let again = index.position_index(c, PositionSet::from_positions([0, 2]));
        assert!(Arc::ptr_eq(&pair, &again));
    }

    #[test]
    fn empty_position_set_buckets_everything_under_the_empty_key() {
        let db = figure1();
        let index = db.index();
        let r = db.schema().relation_id("R").unwrap();
        let all = index.position_index(r, PositionSet::empty());
        assert_eq!(all.candidates(&[]).len(), 3);
    }

    #[test]
    fn statistics_report_cardinalities_and_distinct_counts() {
        let db = figure1();
        let index = db.index();
        let c = db.schema().relation_id("C").unwrap();
        let r = db.schema().relation_id("R").unwrap();
        let stats = index.statistics();
        assert_eq!(stats.relation(c).fact_count(), 3);
        assert_eq!(stats.relation(c).block_count(), 2);
        // C columns: {PODS, KDD}, {2016, 2017}, {Rome, Paris}.
        assert_eq!(stats.relation(c).distinct_counts(), &[2, 2, 2]);
        assert_eq!(stats.relation(r).distinct_count(0), Some(2));
        assert_eq!(stats.relation(r).distinct_count(1), Some(2));
        assert_eq!(stats.relation(r).distinct_count(7), None);
        assert_eq!(stats.iter().count(), 2);
        // Served from the cache: same allocation on repeated calls.
        assert!(std::ptr::eq(stats, index.statistics()));
    }

    #[test]
    fn active_domain_is_sorted_and_complete() {
        let db = figure1();
        let index = db.index();
        let dom = index.active_domain();
        assert_eq!(dom.len(), 8);
        assert!(dom.windows(2).all(|w| w[0] < w[1]));
        let reference: Vec<Value> = db.active_domain().into_iter().collect();
        assert_eq!(dom, reference.as_slice());
    }

    #[test]
    fn snapshots_are_cached_and_invalidated_by_mutation() {
        let mut db = figure1();
        let a = db.index();
        let b = db.index();
        assert!(Arc::ptr_eq(&a, &b));
        db.insert_values("R", ["VLDB", "A"]).unwrap();
        let c = db.index();
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(c.fact_count(), 7);
        // Removal invalidates too.
        let r = db.schema().relation_id("R").unwrap();
        db.remove_fact(&Fact::new(r, vec![Value::str("VLDB"), Value::str("A")]));
        let d = db.index();
        assert_eq!(d.fact_count(), 6);
        // A clone shares the cached snapshot until either side mutates.
        let clone = db.clone();
        assert!(Arc::ptr_eq(&clone.index(), &db.index()));
    }
}
