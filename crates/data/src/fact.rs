//! Facts and key-equality.
//!
//! Section 3: *"A fact is an atom in which no variable occurs. Two facts
//! `R1(a1, b1)`, `R2(a2, b2)` are key-equal if `R1 = R2` and `a1 = a2`."*

use crate::{DataError, RelationId, Schema, Value};
use std::fmt;
use std::sync::Arc;

/// A ground atom `R(v1, ..., vn)`.
///
/// The relation is stored as a [`RelationId`] resolved against the schema the
/// fact belongs to; the key is the prefix of length `key_len` of `values`.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fact {
    relation: RelationId,
    values: Arc<[Value]>,
}

impl Fact {
    /// Creates a fact without arity checking (checked on database insertion).
    pub fn new(relation: RelationId, values: impl Into<Vec<Value>>) -> Self {
        Fact {
            relation,
            values: values.into().into(),
        }
    }

    /// Creates a fact, validating arity against the schema.
    pub fn checked(
        schema: &Schema,
        relation: RelationId,
        values: impl Into<Vec<Value>>,
    ) -> Result<Self, DataError> {
        let values: Vec<Value> = values.into();
        let rel = schema.relation(relation);
        if values.len() != rel.arity() {
            return Err(DataError::ArityMismatch {
                relation: rel.name.clone(),
                expected: rel.arity(),
                actual: values.len(),
            });
        }
        Ok(Fact::new(relation, values))
    }

    /// The relation this fact belongs to.
    pub fn relation(&self) -> RelationId {
        self.relation
    }

    /// All values of the fact, in position order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// The value at position `i` (0-based).
    pub fn value(&self, i: usize) -> &Value {
        &self.values[i]
    }

    /// Arity of the fact (number of values).
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// The primary-key prefix of the fact, according to the schema.
    pub fn key<'a>(&'a self, schema: &Schema) -> &'a [Value] {
        let k = schema.relation(self.relation).key_len();
        &self.values[..k]
    }

    /// The non-key suffix of the fact, according to the schema.
    pub fn non_key<'a>(&'a self, schema: &Schema) -> &'a [Value] {
        let k = schema.relation(self.relation).key_len();
        &self.values[k..]
    }

    /// Key-equality (Section 3): same relation name and same key prefix.
    pub fn key_equal(&self, other: &Fact, schema: &Schema) -> bool {
        self.relation == other.relation && self.key(schema) == other.key(schema)
    }

    /// Renders the fact using the relation names of `schema`.
    pub fn display<'a>(&'a self, schema: &'a Schema) -> impl fmt::Display + 'a {
        FactDisplay { fact: self, schema }
    }
}

impl fmt::Debug for Fact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.relation)?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v:?}")?;
        }
        write!(f, ")")
    }
}

struct FactDisplay<'a> {
    fact: &'a Fact,
    schema: &'a Schema,
}

impl fmt::Display for FactDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let rel = self.schema.relation(self.fact.relation());
        write!(f, "{}(", rel.name)?;
        for (i, v) in self.fact.values().iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::from_relations([("C", 3, 2), ("R", 2, 1)]).unwrap()
    }

    fn c(schema: &Schema, vals: [&str; 3]) -> Fact {
        Fact::new(
            schema.relation_id("C").unwrap(),
            vals.iter().map(Value::str).collect::<Vec<_>>(),
        )
    }

    #[test]
    fn key_is_the_declared_prefix() {
        let s = schema();
        let f = c(&s, ["PODS", "2016", "Rome"]);
        assert_eq!(f.key(&s), &[Value::str("PODS"), Value::str("2016")]);
        assert_eq!(f.non_key(&s), &[Value::str("Rome")]);
    }

    #[test]
    fn key_equality_follows_the_paper() {
        let s = schema();
        let a = c(&s, ["PODS", "2016", "Rome"]);
        let b = c(&s, ["PODS", "2016", "Paris"]);
        let d = c(&s, ["KDD", "2017", "Rome"]);
        assert!(a.key_equal(&b, &s));
        assert!(!a.key_equal(&d, &s));
        // Key-equality requires the same relation name.
        let r = Fact::new(
            s.relation_id("R").unwrap(),
            vec![Value::str("PODS"), Value::str("A")],
        );
        assert!(!a.key_equal(&r, &s));
    }

    #[test]
    fn checked_construction_validates_arity() {
        let s = schema();
        let id = s.relation_id("R").unwrap();
        assert!(Fact::checked(&s, id, vec![Value::str("PODS")]).is_err());
        assert!(Fact::checked(&s, id, vec![Value::str("PODS"), Value::str("A")]).is_ok());
    }

    #[test]
    fn display_uses_relation_names() {
        let s = schema();
        let f = c(&s, ["PODS", "2016", "Rome"]);
        assert_eq!(f.display(&s).to_string(), "C(PODS, 2016, Rome)");
    }

    #[test]
    fn facts_are_hashable_and_ordered() {
        let s = schema();
        let a = c(&s, ["PODS", "2016", "Rome"]);
        let b = c(&s, ["PODS", "2016", "Paris"]);
        let mut set = std::collections::BTreeSet::new();
        set.insert(a.clone());
        set.insert(b.clone());
        set.insert(a.clone());
        assert_eq!(set.len(), 2);
    }
}
