//! The one-line serving-stats rendering shared by the network server's
//! `\stats` command and the CLI's stdin serve loop.

use cqa_par::BatchEngine;
use std::time::Instant;

/// One serving-stats line: throughput, latency percentiles (from the
/// `par.batch.query_nanos` histogram), cache hit rates, pool and epoch
/// state. `inflight` is the admission-control occupancy (0 for the stdin
/// loop, which has no admission control); `views` counts registered
/// materialized views and `pinned` the old epochs still held by slow
/// readers (both 0 for the stdin loop, which has neither).
pub fn stats_line(
    engine: &BatchEngine,
    served: usize,
    started: Instant,
    inflight: usize,
    views: usize,
    pinned: usize,
) -> String {
    engine.pool().record_metrics();
    let snapshot = cqa_obs::Registry::global().snapshot();
    let qps = served as f64 / started.elapsed().as_secs_f64().max(1e-9);
    let (p50, p99) = snapshot
        .histogram("par.batch.query_nanos")
        .map(|h| {
            (
                h.percentile(50.0) as f64 / 1e6,
                h.percentile(99.0) as f64 / 1e6,
            )
        })
        .unwrap_or((0.0, 0.0));
    let rate = |prefix: &str| {
        snapshot
            .hit_rate(prefix)
            .map_or_else(|| "-".to_string(), |r| format!("{:.0}%", r * 100.0))
    };
    format!(
        "stats: {served} served, {inflight} in flight, {qps:.1} qps, \
         p50 {p50:.3} ms, p99 {p99:.3} ms, \
         plan-cache {}, engine-cache {}, steals {}, epoch {}, \
         views {views}, pinned epochs {pinned}, \
         index deltas {} applied / {} rebuilt",
        rate("exec.plan_cache"),
        rate("par.batch.engine"),
        engine.pool().steals(),
        engine.epoch(),
        snapshot.counter("data.index.delta_applied"),
        snapshot.counter("data.index.delta_fallback_rebuild"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_data::{Schema, UncertainDatabase};
    use cqa_par::ParPool;

    #[test]
    fn stats_lines_render_every_field() {
        let schema = Schema::from_relations([("R", 2, 1)]).unwrap().into_shared();
        let db = UncertainDatabase::new(schema);
        let engine = BatchEngine::new(db.snapshot(), ParPool::new(1));
        let line = stats_line(&engine, 42, Instant::now(), 3, 2, 1);
        assert!(
            line.starts_with("stats: 42 served, 3 in flight, "),
            "{line}"
        );
        assert!(line.contains("qps"), "{line}");
        assert!(line.contains("p99"), "{line}");
        assert!(line.contains("epoch 0"), "{line}");
        assert!(line.contains("views 2, pinned epochs 1"), "{line}");
    }
}
