//! The name-keyed metric registry and its snapshot/diff/render API.

use crate::metrics::{Counter, Gauge, Histogram, HistogramSnapshot};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Arc, OnceLock, RwLock};

/// One registered metric.
#[derive(Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// A process-wide, name-keyed store of [`Counter`]s, [`Gauge`]s and
/// [`Histogram`]s. Handles are `Arc`s: resolve once (the [`crate::count!`]
/// family caches per call site), then update lock-free. The registry lock
/// is only taken to register or to [snapshot](Registry::snapshot).
///
/// Names are dotted paths by convention (`exec.plan_cache.hit`,
/// `par.batch.query_nanos`), which groups the rendered output naturally.
#[derive(Default)]
pub struct Registry {
    metrics: RwLock<BTreeMap<String, Metric>>,
}

impl Registry {
    /// A fresh, empty registry (unit tests; everything else uses
    /// [`Registry::global`]).
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The process-wide registry every crate of the stack reports into.
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new)
    }

    fn lock_poisoned() -> ! {
        panic!("a thread panicked while holding the metrics registry lock")
    }

    /// The counter registered under `name`, registering it if new.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let guard = self
            .metrics
            .read()
            .unwrap_or_else(|_| Self::lock_poisoned());
        if let Some(metric) = guard.get(name) {
            let Metric::Counter(c) = metric else {
                panic!("metric {name:?} is registered as a non-counter");
            };
            return c.clone();
        }
        drop(guard);
        let mut guard = self
            .metrics
            .write()
            .unwrap_or_else(|_| Self::lock_poisoned());
        let metric = guard
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::new())));
        let Metric::Counter(c) = metric else {
            panic!("metric {name:?} is registered as a non-counter");
        };
        c.clone()
    }

    /// The gauge registered under `name`, registering it if new.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let guard = self
            .metrics
            .read()
            .unwrap_or_else(|_| Self::lock_poisoned());
        if let Some(metric) = guard.get(name) {
            let Metric::Gauge(g) = metric else {
                panic!("metric {name:?} is registered as a non-gauge");
            };
            return g.clone();
        }
        drop(guard);
        let mut guard = self
            .metrics
            .write()
            .unwrap_or_else(|_| Self::lock_poisoned());
        let metric = guard
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::new())));
        let Metric::Gauge(g) = metric else {
            panic!("metric {name:?} is registered as a non-gauge");
        };
        g.clone()
    }

    /// The histogram registered under `name`, registering it if new.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let guard = self
            .metrics
            .read()
            .unwrap_or_else(|_| Self::lock_poisoned());
        if let Some(metric) = guard.get(name) {
            let Metric::Histogram(h) = metric else {
                panic!("metric {name:?} is registered as a non-histogram");
            };
            return h.clone();
        }
        drop(guard);
        let mut guard = self
            .metrics
            .write()
            .unwrap_or_else(|_| Self::lock_poisoned());
        let metric = guard
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new())));
        let Metric::Histogram(h) = metric else {
            panic!("metric {name:?} is registered as a non-histogram");
        };
        h.clone()
    }

    /// A point-in-time copy of every registered metric's value.
    pub fn snapshot(&self) -> Snapshot {
        let guard = self
            .metrics
            .read()
            .unwrap_or_else(|_| Self::lock_poisoned());
        Snapshot {
            values: guard
                .iter()
                .map(|(name, metric)| {
                    let value = match metric {
                        Metric::Counter(c) => MetricValue::Counter(c.get()),
                        Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                        Metric::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                    };
                    (name.clone(), value)
                })
                .collect(),
        }
    }
}

/// A snapshotted metric value.
#[derive(Clone, Debug, PartialEq)]
pub enum MetricValue {
    /// A counter's running total.
    Counter(u64),
    /// A gauge's instantaneous value.
    Gauge(i64),
    /// A histogram's state.
    Histogram(HistogramSnapshot),
}

/// A point-in-time copy of a [`Registry`], ordered by metric name.
/// Supports windowed readings ([`Snapshot::diff`]) and text rendering —
/// the backing of `certainty stats` and `serve`'s `\stats`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    values: BTreeMap<String, MetricValue>,
}

impl Snapshot {
    /// True iff no metrics were registered when the snapshot was taken.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Iterates `(name, value)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &MetricValue)> {
        self.values.iter().map(|(n, v)| (n.as_str(), v))
    }

    /// The named counter's value, 0 if absent or not a counter.
    pub fn counter(&self, name: &str) -> u64 {
        match self.values.get(name) {
            Some(MetricValue::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// The named gauge's value, `None` if absent or not a gauge.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        match self.values.get(name) {
            Some(MetricValue::Gauge(v)) => Some(*v),
            _ => None,
        }
    }

    /// The named histogram's state, `None` if absent or not a histogram.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        match self.values.get(name) {
            Some(MetricValue::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// Of a hit/miss counter pair under `prefix` (`{prefix}.hit` /
    /// `{prefix}.miss`), the hit rate in `[0, 1]`; `None` when neither
    /// fired.
    pub fn hit_rate(&self, prefix: &str) -> Option<f64> {
        let hits = self.counter(&format!("{prefix}.hit"));
        let misses = self.counter(&format!("{prefix}.miss"));
        let total = hits + misses;
        (total > 0).then(|| hits as f64 / total as f64)
    }

    /// This snapshot minus an `earlier` one: counters and histograms
    /// subtract (saturating), gauges keep their later value. Metrics only
    /// present in `earlier` are dropped — the window is read forward.
    pub fn diff(&self, earlier: &Snapshot) -> Snapshot {
        Snapshot {
            values: self
                .values
                .iter()
                .map(|(name, value)| {
                    let diffed = match (value, earlier.values.get(name)) {
                        (MetricValue::Counter(now), Some(MetricValue::Counter(then))) => {
                            MetricValue::Counter(now.saturating_sub(*then))
                        }
                        (MetricValue::Histogram(now), Some(MetricValue::Histogram(then))) => {
                            MetricValue::Histogram(now.diff(then))
                        }
                        (other, _) => other.clone(),
                    };
                    (name.clone(), diffed)
                })
                .collect(),
        }
    }

    /// Renders the snapshot as text, one metric per line, in name order.
    /// Histograms print count/mean/p50/p90/p99 (interpreting values as
    /// nanoseconds is up to the reader; the numbers are unit-free).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.values {
            match value {
                MetricValue::Counter(v) => {
                    let _ = writeln!(out, "{name:<44} {v}");
                }
                MetricValue::Gauge(v) => {
                    let _ = writeln!(out, "{name:<44} {v} (gauge)");
                }
                MetricValue::Histogram(h) => {
                    let _ = writeln!(
                        out,
                        "{name:<44} count {} mean {:.0} p50 {} p90 {} p99 {}",
                        h.count,
                        h.mean(),
                        h.p50(),
                        h.p90(),
                        h.p99(),
                    );
                }
            }
        }
        out
    }

    /// Renders the snapshot in the Prometheus text exposition format — the
    /// body of the serving layer's `GET /metrics` endpoint. Metric names
    /// have their dots replaced by underscores (`par.batch.query_nanos` →
    /// `par_batch_query_nanos`); counters and gauges emit one sample each,
    /// histograms emit `_count`, `_sum` and quantile gauges for p50/p90/p99.
    pub fn render_prometheus(&self) -> String {
        let sanitize = |name: &str| name.replace(['.', '-'], "_");
        let mut out = String::new();
        for (name, value) in &self.values {
            let name = sanitize(name);
            match value {
                MetricValue::Counter(v) => {
                    let _ = writeln!(out, "# TYPE {name} counter");
                    let _ = writeln!(out, "{name} {v}");
                }
                MetricValue::Gauge(v) => {
                    let _ = writeln!(out, "# TYPE {name} gauge");
                    let _ = writeln!(out, "{name} {v}");
                }
                MetricValue::Histogram(h) => {
                    let _ = writeln!(out, "# TYPE {name} summary");
                    for (q, v) in [(0.5, h.p50()), (0.9, h.p90()), (0.99, h.p99())] {
                        let _ = writeln!(out, "{name}{{quantile=\"{q}\"}} {v}");
                    }
                    let _ = writeln!(out, "{name}_sum {}", h.sum);
                    let _ = writeln!(out, "{name}_count {}", h.count);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_get_or_create_and_handles_are_shared() {
        let reg = Registry::new();
        let a = reg.counter("x.hits");
        let b = reg.counter("x.hits");
        assert!(Arc::ptr_eq(&a, &b));
        a.inc();
        b.add(2);
        assert_eq!(reg.snapshot().counter("x.hits"), 3);
    }

    #[test]
    #[should_panic(expected = "non-counter")]
    fn kind_mismatch_panics() {
        let reg = Registry::new();
        reg.gauge("metric");
        reg.counter("metric");
    }

    #[test]
    fn snapshots_diff_and_render() {
        let reg = Registry::new();
        reg.counter("a.count").add(10);
        reg.gauge("b.depth").set(3);
        reg.histogram("c.nanos").record(1500);
        let before = reg.snapshot();
        reg.counter("a.count").add(5);
        reg.gauge("b.depth").set(9);
        reg.histogram("c.nanos").record(3000);
        let after = reg.snapshot();
        let window = after.diff(&before);
        assert_eq!(window.counter("a.count"), 5);
        assert_eq!(window.gauge("b.depth"), Some(9));
        assert_eq!(window.histogram("c.nanos").unwrap().count, 1);
        let text = after.render();
        assert!(text.contains("a.count"), "{text}");
        assert!(text.contains("(gauge)"), "{text}");
        assert!(text.contains("p99"), "{text}");
    }

    #[test]
    fn prometheus_rendering_sanitizes_names_and_types_metrics() {
        let reg = Registry::new();
        reg.counter("serve.requests").add(7);
        reg.gauge("serve.inflight").set(2);
        reg.histogram("par.batch.query_nanos").record(2048);
        let text = reg.snapshot().render_prometheus();
        assert!(text.contains("# TYPE serve_requests counter"), "{text}");
        assert!(text.contains("serve_requests 7"), "{text}");
        assert!(text.contains("# TYPE serve_inflight gauge"), "{text}");
        assert!(text.contains("serve_inflight 2"), "{text}");
        assert!(
            text.contains("# TYPE par_batch_query_nanos summary"),
            "{text}"
        );
        assert!(
            text.contains("par_batch_query_nanos{quantile=\"0.99\"}"),
            "{text}"
        );
        assert!(text.contains("par_batch_query_nanos_count 1"), "{text}");
        assert!(
            !text.contains("serve.requests"),
            "dotted name leaked: {text}"
        );
    }

    #[test]
    fn hit_rates_come_from_counter_pairs() {
        let reg = Registry::new();
        assert_eq!(reg.snapshot().hit_rate("cache"), None);
        reg.counter("cache.hit").add(3);
        reg.counter("cache.miss").add(1);
        assert_eq!(reg.snapshot().hit_rate("cache"), Some(0.75));
    }
}
