//! A small generic directed graph.

use rustc_hash::{FxHashMap, FxHashSet};
use std::fmt;
use std::hash::Hash;

/// Dense node identifier within a [`DiGraph`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The dense index of the node.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a node id from a dense index.
    pub fn from_index(i: usize) -> Self {
        NodeId(i as u32)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A directed graph with node payloads of type `N`.
///
/// Parallel edges are collapsed (the edge set is a set); self-loops are
/// allowed by the structure but never created by the attack-graph code (the
/// paper's attacks require distinct atoms).
#[derive(Clone, Debug)]
pub struct DiGraph<N> {
    nodes: Vec<N>,
    succ: Vec<Vec<NodeId>>,
    pred: Vec<Vec<NodeId>>,
    edges: FxHashSet<(NodeId, NodeId)>,
}

impl<N> Default for DiGraph<N> {
    fn default() -> Self {
        DiGraph {
            nodes: Vec::new(),
            succ: Vec::new(),
            pred: Vec::new(),
            edges: FxHashSet::default(),
        }
    }
}

impl<N> DiGraph<N> {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a node with the given payload and returns its id.
    pub fn add_node(&mut self, payload: N) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(payload);
        self.succ.push(Vec::new());
        self.pred.push(Vec::new());
        id
    }

    /// Adds a directed edge; returns `false` if it was already present.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId) -> bool {
        if !self.edges.insert((from, to)) {
            return false;
        }
        self.succ[from.index()].push(to);
        self.pred[to.index()].push(from);
        true
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The payload of a node.
    pub fn node(&self, id: NodeId) -> &N {
        &self.nodes[id.index()]
    }

    /// Iterates over all node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Iterates over `(id, payload)` pairs.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, &N)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId(i as u32), n))
    }

    /// Successors of a node.
    pub fn successors(&self, id: NodeId) -> &[NodeId] {
        &self.succ[id.index()]
    }

    /// Predecessors of a node.
    pub fn predecessors(&self, id: NodeId) -> &[NodeId] {
        &self.pred[id.index()]
    }

    /// Out-degree of a node.
    pub fn out_degree(&self, id: NodeId) -> usize {
        self.succ[id.index()].len()
    }

    /// In-degree of a node.
    pub fn in_degree(&self, id: NodeId) -> usize {
        self.pred[id.index()].len()
    }

    /// True iff the edge `from -> to` is present.
    pub fn has_edge(&self, from: NodeId, to: NodeId) -> bool {
        self.edges.contains(&(from, to))
    }

    /// Iterates over all edges.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.edges.iter().copied()
    }

    /// Finds the node id of the first node whose payload equals `payload`.
    pub fn find_node(&self, payload: &N) -> Option<NodeId>
    where
        N: PartialEq,
    {
        self.nodes
            .iter()
            .position(|n| n == payload)
            .map(NodeId::from_index)
    }
}

impl<N: Clone + Eq + Hash> DiGraph<N> {
    /// Builds a graph from an edge list over payload values, creating nodes
    /// on first use. Useful for graphs whose vertices are database constants
    /// (Theorem 4 of the paper).
    pub fn from_payload_edges(edges: impl IntoIterator<Item = (N, N)>) -> Self {
        let mut graph = DiGraph::new();
        let mut ids: FxHashMap<N, NodeId> = FxHashMap::default();
        for (a, b) in edges {
            let ia = *ids
                .entry(a.clone())
                .or_insert_with(|| graph.add_node(a.clone()));
            let ib = *ids
                .entry(b.clone())
                .or_insert_with(|| graph.add_node(b.clone()));
            graph.add_edge(ia, ib);
        }
        graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_construction() {
        let mut g: DiGraph<&str> = DiGraph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let c = g.add_node("c");
        assert!(g.add_edge(a, b));
        assert!(g.add_edge(b, c));
        assert!(g.add_edge(c, a));
        assert!(!g.add_edge(a, b)); // duplicate
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.successors(a), &[b]);
        assert_eq!(g.predecessors(a), &[c]);
        assert!(g.has_edge(a, b));
        assert!(!g.has_edge(b, a));
        assert_eq!(g.out_degree(a), 1);
        assert_eq!(g.in_degree(a), 1);
        assert_eq!(g.find_node(&"b"), Some(b));
        assert_eq!(g.find_node(&"z"), None);
    }

    #[test]
    fn from_payload_edges_reuses_nodes() {
        let g = DiGraph::from_payload_edges([("a", "b"), ("b", "c"), ("a", "c"), ("c", "a")]);
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 4);
    }
}
