//! Property-based tests (proptest) for the paper's structural lemmas and for
//! solver agreement on randomly generated queries and databases.

use cqa::core::answers::{tuple_is_certain, CertainAnswersEngine};
use cqa::core::attack::{AttackGraph, CycleAnalysis};
use cqa::core::classify::{classify, ComplexityClass};
use cqa::core::fo::eval::evaluate_sentence;
use cqa::core::solvers::{CertaintyEngine, CertaintySolver, ExactOracle, RewritingSolver};
use cqa::exec::{ExecMode, FoPlan, QueryPlan};
use cqa::gen::{random_acyclic_query, GeneratorConfig, UncertainDbGenerator};
use cqa::par::{certain_answers_par, ParConfig, ParPool, ParallelEngine};
use cqa::prob::eval::{probability_exact, probability_over_repairs};
use cqa::prob::{is_safe, BidDatabase};
use cqa::query::{catalog, eval, gyo, join_tree, purify};
use proptest::prelude::*;
use std::sync::OnceLock;

/// Shared worker pools for the parallel-agreement suite: 1 thread (the
/// degenerate case), 2, and 7 (odd, so remainder chunks are exercised).
fn shared_pools() -> &'static Vec<ParPool> {
    static POOLS: OnceLock<Vec<ParPool>> = OnceLock::new();
    POOLS.get_or_init(|| [1usize, 2, 7].into_iter().map(ParPool::new).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The two acyclicity tests (max-spanning-tree join tree and GYO) agree
    /// on randomly generated acyclic queries.
    #[test]
    fn join_tree_and_gyo_agree(seed in 0u64..5_000, atoms in 1usize..7, arity in 1usize..5) {
        let q = random_acyclic_query(seed, atoms, arity);
        prop_assert!(join_tree::is_acyclic(&q));
        prop_assert!(gyo::is_acyclic_gyo(&q));
    }

    /// Structural facts about attack graphs on random acyclic queries:
    /// key(F) ⊆ F⁺ ⊆ F⊞ (Definition 2/5), Lemma 2, Lemma 3, Lemma 4.
    #[test]
    fn attack_graph_lemmas(seed in 0u64..5_000, atoms in 1usize..7) {
        let q = random_acyclic_query(seed, atoms, 4);
        let graph = AttackGraph::build(&q).unwrap();
        let closures = graph.closures();
        let n = q.len();
        for f in 0..n {
            prop_assert!(closures.key_set(f).is_subset_of(&closures.plus(f)));
            prop_assert!(closures.plus(f).is_subset_of(&closures.boxed(f)));
        }
        // Lemma 2: F ⇝ G implies key(G) ⊄ F⁺ and vars(F) ⊄ F⁺.
        for edge in graph.edges() {
            prop_assert!(!closures.key_set(edge.to).is_subset_of(&closures.plus(edge.from)));
            prop_assert!(!closures.var_set(edge.from).is_subset_of(&closures.plus(edge.from)));
        }
        // Lemma 3: F ⇝ G and G ⇝ H (distinct) implies F ⇝ H or G ⇝ F.
        for f in 0..n {
            for g in 0..n {
                for h in 0..n {
                    if f != g && g != h && f != h && graph.attacks(f, g) && graph.attacks(g, h) {
                        prop_assert!(
                            graph.attacks(f, h) || graph.attacks(g, f),
                            "Lemma 3 violated on {q} ({f},{g},{h})"
                        );
                    }
                }
            }
        }
        // Lemma 4: a strong cycle implies a strong 2-cycle.
        let analysis = CycleAnalysis::analyze(&graph);
        if analysis.has_strong_cycle() {
            prop_assert!(analysis.strong_two_cycle(&graph).is_some());
        }
        // Lemma 6: if all cycles are terminal, all cycles have length 2.
        if analysis.has_cycle() && analysis.all_cycles_terminal() {
            prop_assert!(analysis.cycles().iter().all(|c| c.len() == 2));
        }
    }

    /// Theorem 6 (safe ⇒ FO-expressible) on random acyclic queries.
    #[test]
    fn theorem6_on_random_queries(seed in 0u64..5_000, atoms in 1usize..6) {
        let q = random_acyclic_query(seed, atoms, 4);
        if is_safe(&q) {
            let class = classify(&q).unwrap().class;
            prop_assert_eq!(class, ComplexityClass::FirstOrderExpressible);
        }
    }

    /// Purification (Lemma 1) never changes membership in CERTAINTY(q), and
    /// the purified database is a subset supporting every remaining fact.
    #[test]
    fn purification_preserves_certainty(seed in 0u64..2_000) {
        let q = catalog::conference().query;
        let db = UncertainDbGenerator::new(&q, GeneratorConfig {
            seed,
            matches: 3,
            domain_per_variable: 3,
            extra_block_facts: 1,
            alternative_join_probability: 0.4,
        }).generate();
        prop_assume!(db.repair_count_log2() <= 14.0);
        let purified = purify::purify(&db, &q);
        prop_assert!(purified.is_subset_of(&db));
        prop_assert!(purify::is_purified(&purified, &q));
        let certain = |d: &cqa_data::UncertainDatabase| d.repairs().all(|r| eval::satisfies(&r, &q));
        prop_assert_eq!(certain(&db), certain(&purified));
    }

    /// The dispatching engine agrees with brute force on random instances of
    /// the three tractable-region catalog queries.
    #[test]
    fn engine_matches_brute_force(seed in 0u64..1_500, which in 0usize..3) {
        let entry = match which {
            0 => catalog::fo_path2(),
            1 => catalog::c2_swap(),
            _ => catalog::ac_k(2),
        };
        let q = entry.query;
        let db = UncertainDbGenerator::new(&q, GeneratorConfig {
            seed,
            matches: 3,
            domain_per_variable: 2,
            extra_block_facts: 1,
            alternative_join_probability: 0.7,
        }).generate();
        prop_assume!(db.repair_count_log2() <= 14.0);
        let engine = CertaintyEngine::new(&q).unwrap();
        let oracle = ExactOracle::new(&q).unwrap();
        prop_assert_eq!(engine.is_certain(&db), oracle.is_certain_bruteforce(&db));
    }

    /// The uniform-repair probability equals the exhaustive BID probability
    /// with uniform per-block weights, and certainty holds iff it equals 1.
    #[test]
    fn uniform_probability_consistency(seed in 0u64..1_000) {
        let q = catalog::conference().query;
        let db = UncertainDbGenerator::new(&q, GeneratorConfig {
            seed,
            matches: 2,
            domain_per_variable: 3,
            extra_block_facts: 1,
            alternative_join_probability: 0.5,
        }).generate();
        prop_assume!(db.repair_count_log2() <= 12.0);
        let over_repairs = probability_over_repairs(&db, &q);
        let bid = BidDatabase::uniform_over_repairs(&db);
        let exact = probability_exact(&bid, &q);
        prop_assert!((over_repairs - exact).abs() < 1e-9);
        let engine = CertaintyEngine::new(&q).unwrap();
        prop_assert_eq!(engine.is_certain(&db), (exact - 1.0).abs() < 1e-9);
    }

    /// Repair enumeration: the number of enumerated repairs equals the product
    /// of the block sizes, and every repair is a maximal consistent subset.
    #[test]
    fn repair_enumeration_invariants(seed in 0u64..1_000) {
        let q = catalog::fo_path2().query;
        let db = UncertainDbGenerator::new(&q, GeneratorConfig {
            seed,
            matches: 2,
            domain_per_variable: 2,
            extra_block_facts: 1,
            alternative_join_probability: 0.5,
        }).generate();
        prop_assume!(db.repair_count_log2() <= 10.0);
        let expected = db.repair_count().unwrap();
        let mut count = 0u128;
        for repair in db.repairs() {
            count += 1;
            prop_assert!(repair.is_consistent());
            prop_assert!(repair.is_subset_of(&db));
            prop_assert_eq!(repair.block_count(), db.block_count());
        }
        prop_assert_eq!(count, expected);
    }
}

proptest! {
    // 256 cases so the indexed join is cross-checked on well over 200
    // randomized generator instances per run.
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The indexed bind-aware join agrees with the retained naive
    /// nested-loop reference evaluator: same satisfaction verdict, the same
    /// set of satisfying valuations, and the same verdicts under partial
    /// base bindings (both the binding of a real witness and a junk binding).
    #[test]
    fn indexed_join_agrees_with_naive_reference(seed in 0u64..100_000, which in 0usize..4) {
        let entry = match which {
            0 => catalog::conference(),
            1 => catalog::fo_path3(),
            2 => catalog::fig4(),
            _ => catalog::ac_k(3),
        };
        let q = entry.query;
        let db = UncertainDbGenerator::new(&q, GeneratorConfig {
            seed,
            matches: 1 + (seed % 5) as usize,
            domain_per_variable: 2 + (seed % 3) as usize,
            extra_block_facts: (seed % 3) as usize,
            alternative_join_probability: 0.6,
        }).generate();
        prop_assert_eq!(eval::satisfies(&db, &q), eval::naive::satisfies(&db, &q));
        let witnesses = eval::naive::all_valuations(&db, &q);
        let mut indexed: Vec<String> =
            eval::all_valuations(&db, &q).iter().map(|v| format!("{v:?}")).collect();
        let mut reference: Vec<String> =
            witnesses.iter().map(|v| format!("{v:?}")).collect();
        indexed.sort();
        reference.sort();
        prop_assert_eq!(indexed, reference, "query {}, seed {}", entry.name, seed);
        if let Some(total) = witnesses.into_iter().next() {
            let vars: Vec<cqa::query::Variable> = q.vars().into_iter().collect();
            let partial = total.restrict_to(vars.iter().take(1 + seed as usize % vars.len().max(1)));
            prop_assert!(eval::satisfies_with(&db, &q, &partial));
            prop_assert_eq!(
                eval::satisfies_with(&db, &q, &partial),
                eval::naive::satisfies_with(&db, &q, &partial)
            );
        }
        if let Some(var) = q.vars().into_iter().next() {
            let junk = cqa::query::Valuation::from_pairs([
                (var, cqa_data::Value::str("__not_in_any_fact__")),
            ]);
            prop_assert_eq!(
                eval::satisfies_with(&db, &q, &junk),
                eval::naive::satisfies_with(&db, &q, &junk)
            );
        }
    }
}

proptest! {
    // 256 cases: every run cross-checks the compiled physical plans against
    // the interpreters on well over 200 randomized generator instances.
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Compiled plans agree with the interpreters they replace:
    /// `cqa_exec::QueryPlan` with `cqa_query::eval` (verdict and full
    /// valuation set), and — on the Theorem 1 catalog queries —
    /// `cqa_exec::FoPlan` on the certain rewriting with the generic model
    /// checker `cqa_core::fo::eval` and with the solver's interpreted
    /// recursion.
    #[test]
    fn compiled_plans_agree_with_the_interpreters(seed in 0u64..100_000, which in 0usize..3) {
        let entry = match which {
            0 => catalog::conference(),
            1 => catalog::fo_path2(),
            _ => catalog::fo_path3(),
        };
        let q = entry.query;
        let db = UncertainDbGenerator::new(&q, GeneratorConfig {
            seed,
            matches: 1 + (seed % 5) as usize,
            domain_per_variable: 2 + (seed % 3) as usize,
            extra_block_facts: (seed % 3) as usize,
            alternative_join_probability: 0.6,
        }).generate();
        let index = db.index();

        // Query side: the compiled join plan vs the tree-walking join.
        let plan = QueryPlan::compile(&q, Some(index.statistics()));
        let prepared = plan.prepare(&index);
        prop_assert_eq!(prepared.satisfies(), eval::satisfies(&db, &q),
            "query plan verdict, {} seed {}", entry.name, seed);
        let mut compiled: Vec<String> =
            prepared.all_valuations().iter().map(|v| format!("{v:?}")).collect();
        let mut reference: Vec<String> =
            eval::all_valuations(&db, &q).iter().map(|v| format!("{v:?}")).collect();
        compiled.sort();
        reference.sort();
        prop_assert_eq!(compiled, reference, "query plan valuations, {} seed {}", entry.name, seed);

        // Rewriting side: the compiled FO plan vs the model checker and the
        // interpreted elimination recursion (three-way agreement).
        let solver = RewritingSolver::new(&q).unwrap();
        let fo_plan = FoPlan::compile(solver.formula(), q.schema(), Some(index.statistics()));
        let compiled_verdict = fo_plan.prepare(&index).eval();
        prop_assert_eq!(compiled_verdict, evaluate_sentence(solver.formula(), &db),
            "fo plan vs model checker, {} seed {}\n{}", entry.name, seed, fo_plan.explain());
        prop_assert_eq!(compiled_verdict, solver.is_certain_interpreted(&db),
            "fo plan vs interpreted recursion, {} seed {}\n{}", entry.name, seed, fo_plan.explain());
    }
}

proptest! {
    // 256 cases: the parallel layer is cross-checked against the sequential
    // path on well over 200 randomized generator instances per run, at
    // every pool size (1, 2 and 7 threads — 7 is deliberately odd so the
    // remainder chunk of an uneven split is exercised).
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Parallel and sequential evaluation agree **exactly**: `certain_answers`
    /// (candidate-space sharding, ordered-set merge) returns byte-identical
    /// answer sets, and `is_certain` / `is_possible` (root-scan sharding,
    /// disjunction merge) return identical verdicts, at every thread count.
    /// The cutoff is forced to zero so every case actually crosses the pool.
    #[test]
    fn parallel_evaluation_agrees_with_sequential(seed in 0u64..100_000, which in 0usize..3) {
        let entry = match which {
            0 => catalog::conference(),
            1 => catalog::fo_path2(),
            _ => catalog::fo_path3(),
        };
        let q = entry.query;
        let db = UncertainDbGenerator::new(&q, GeneratorConfig {
            seed,
            matches: 1 + (seed % 5) as usize,
            domain_per_variable: 2 + (seed % 3) as usize,
            extra_block_facts: (seed % 3) as usize,
            alternative_join_probability: 0.6,
        }).generate();
        let snapshot = db.snapshot();
        let config = ParConfig::always_parallel();

        // Non-Boolean: free the first variable, compare full answer sets.
        let free_q = cqa::query::ConjunctiveQuery::with_free_vars(
            q.schema().clone(),
            q.atoms().to_vec(),
            vec![cqa::query::Variable::new("x")],
        ).unwrap();
        let sequential = cqa::core::answers::certain_answers(&free_q, &db).unwrap();
        for pool in shared_pools() {
            let parallel = certain_answers_par(&free_q, &snapshot, pool, &config).unwrap();
            prop_assert_eq!(
                &parallel, &sequential,
                "certain_answers at {} threads, {} seed {}", pool.thread_count(), entry.name, seed
            );
        }

        // Boolean: certainty and possibility verdicts.
        let engine = CertaintyEngine::new(&q).unwrap();
        let certain = engine.is_certain(&db);
        let possible = engine.is_possible(&db);
        for pool in shared_pools() {
            let par = ParallelEngine::new(&q, pool.clone(), config.clone()).unwrap();
            prop_assert_eq!(par.is_certain(&snapshot), certain,
                "is_certain at {} threads, {} seed {}", pool.thread_count(), entry.name, seed);
            prop_assert_eq!(par.is_possible(&snapshot), possible,
                "is_possible at {} threads, {} seed {}", pool.thread_count(), entry.name, seed);
        }
    }
}

proptest! {
    // 256 cases: the vectorized block-at-a-time executor is cross-checked
    // against the row-at-a-time engine and the interpreted references on
    // well over 200 randomized generator instances per run. The executor
    // mode is *forced* both ways through the `with_mode` knob, so every
    // case exercises the vectorized kernels even below the cost model's
    // auto cutoff — the fallback boundary the auto path would otherwise
    // hide.
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Vectorized and row-at-a-time execution agree **exactly**: on the
    /// Theorem 1 catalog queries, `is_certain` through the compiled
    /// rewriting (vec vs row vs the generic model checker, three-way) and
    /// `certain_answers` through the compile-once engine (vec vs row vs the
    /// per-candidate classified-solver reference, byte-identical answer
    /// sets); and on a query with a cyclic attack graph, the engine's
    /// per-candidate fallback is verified mode-independent.
    #[test]
    fn vectorized_execution_agrees_with_row_and_interpreters(seed in 0u64..100_000, which in 0usize..4) {
        let (q, name) = match which {
            0 => (catalog::conference().query, "conference"),
            1 => (catalog::fo_path2().query, "fo_path2"),
            2 => (catalog::fo_path3().query, "fo_path3"),
            _ => {
                // {R(y;z), S(z;y), F(y;w)} with w free: the attack graph has
                // a cycle among the bound variables, so the answers engine
                // must take the per-candidate fallback path.
                let schema = cqa_data::Schema::from_relations(
                    [("R", 2, 1), ("S", 2, 1), ("F", 2, 1)]).unwrap().into_shared();
                let q = cqa::query::ConjunctiveQuery::builder(schema)
                    .atom("R", [cqa::query::Term::var("y"), cqa::query::Term::var("z")])
                    .atom("S", [cqa::query::Term::var("z"), cqa::query::Term::var("y")])
                    .atom("F", [cqa::query::Term::var("y"), cqa::query::Term::var("w")])
                    .free([cqa::query::Variable::new("w")])
                    .build().unwrap();
                (q, "cyclic-free-w")
            }
        };
        let db = UncertainDbGenerator::new(&q, GeneratorConfig {
            seed,
            matches: 1 + (seed % 5) as usize,
            domain_per_variable: 2 + (seed % 3) as usize,
            extra_block_facts: (seed % 3) as usize,
            alternative_join_probability: 0.6,
        }).generate();
        let index = db.index();

        if which < 3 {
            // Boolean rewriting: vec vs row vs the generic model checker.
            let solver = RewritingSolver::new(&q).unwrap();
            let fo_plan = FoPlan::compile(solver.formula(), q.schema(), Some(index.statistics()));
            let row = fo_plan.prepare(&index).with_mode(ExecMode::RowAtATime).eval();
            let vec_verdict = fo_plan.prepare(&index).with_mode(ExecMode::Vectorized).eval();
            prop_assert_eq!(vec_verdict, row,
                "is_certain vec vs row, {} seed {}\n{}", name, seed, fo_plan.explain());
            prop_assert_eq!(vec_verdict, evaluate_sentence(solver.formula(), &db),
                "is_certain vec vs model checker, {} seed {}\n{}", name, seed, fo_plan.explain());

            // Join answers on the freed query: vec vs row, byte-identical.
            let free_q = cqa::query::ConjunctiveQuery::with_free_vars(
                q.schema().clone(),
                q.atoms().to_vec(),
                vec![cqa::query::Variable::new("x")],
            ).unwrap();
            let plan = QueryPlan::compile(&free_q, Some(index.statistics()));
            let row_answers = plan.prepare(&index).with_mode(ExecMode::RowAtATime).answers();
            let vec_answers = plan.prepare(&index).with_mode(ExecMode::Vectorized).answers();
            prop_assert_eq!(&vec_answers, &row_answers,
                "join answers vec vs row, {} seed {}", name, seed);

            // Certain answers through the compile-once engine: vec vs row vs
            // the per-candidate classified-solver reference. A value outside
            // the active domain rides along to cross the foreign-tuple
            // boundary of the batch path.
            let mut candidates = row_answers;
            candidates.insert(vec![cqa_data::Value::str("__foreign__")]);
            let free = free_q.free_vars().to_vec();
            let reference: std::collections::BTreeSet<Vec<cqa_data::Value>> = candidates.iter()
                .filter(|t| tuple_is_certain(&free_q, &free, t, &db).unwrap())
                .cloned()
                .collect();
            for mode in [ExecMode::RowAtATime, ExecMode::Vectorized, ExecMode::Auto] {
                let engine = CertainAnswersEngine::new(&free_q).unwrap().with_mode(mode);
                prop_assert!(engine.uses_open_rewriting());
                prop_assert_eq!(&engine.certain_of(&db, &candidates).unwrap(), &reference,
                    "certain_of {:?}, {} seed {}", mode, name, seed);
            }
        } else {
            // Fallback boundary: the mode knob must be inert on the
            // per-candidate path, and the verdicts must match the reference.
            let candidates = cqa::core::answers::possible_answers(&q, &db).unwrap();
            let free = q.free_vars().to_vec();
            let reference: std::collections::BTreeSet<Vec<cqa_data::Value>> = candidates.iter()
                .filter(|t| tuple_is_certain(&q, &free, t, &db).unwrap())
                .cloned()
                .collect();
            for mode in [ExecMode::RowAtATime, ExecMode::Vectorized, ExecMode::Auto] {
                let engine = CertainAnswersEngine::new(&q).unwrap().with_mode(mode);
                prop_assert!(!engine.uses_open_rewriting());
                prop_assert_eq!(&engine.certain_of(&db, &candidates).unwrap(), &reference,
                    "fallback certain_of {:?}, {} seed {}", mode, name, seed);
            }
        }
    }
}

/// Materializes every cached derived structure on the database's current
/// index snapshot — statistics, columnar view, active domain, and the
/// key-prefix hash index of every relation — so that a later mutation has to
/// delta-patch all of them rather than rebuild lazily.
fn warm_index(db: &cqa_data::UncertainDatabase) {
    let index = db.index();
    let _ = index.statistics();
    let _ = index.columnar();
    let _ = index.active_domain();
    for (rel, relation) in db.schema().iter() {
        let _ = index.position_index(
            rel,
            cqa_data::PositionSet::from_positions(0..relation.key_len()),
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Delta maintenance and persistence, end to end: a random interleaving
    /// of inserts (fresh and duplicate), fact removals (present and absent)
    /// and block removals is applied to two copies of a generated database —
    /// one refreshing its index through the delta-patch path, one with the
    /// delta threshold forced to 0 so every refresh is a from-scratch
    /// rebuild. The patched index must match the rebuilt one exactly (fact
    /// ids, block assignment, per-relation id lists, hash-index buckets,
    /// statistics, active domain), no-op mutations must leave the epoch and
    /// the delta log untouched, and saving the mutated database to the store
    /// format must round-trip byte-stably with identical certain answers
    /// across every [`ExecMode`].
    #[test]
    fn delta_patched_index_matches_rebuild_and_store_round_trips(
        seed in 0u64..100_000, which in 0usize..3
    ) {
        let (q, name) = match which {
            0 => (catalog::conference().query, "conference"),
            1 => (catalog::fo_path2().query, "fo_path2"),
            _ => (catalog::fo_path3().query, "fo_path3"),
        };
        let mut db = UncertainDbGenerator::new(&q, GeneratorConfig {
            seed,
            matches: 1 + (seed % 5) as usize,
            domain_per_variable: 2 + (seed % 3) as usize,
            extra_block_facts: (seed % 3) as usize,
            alternative_join_probability: 0.6,
        }).generate();
        let mut rebuilt = db.clone();
        rebuilt.set_delta_threshold(Some(0));
        warm_index(&db);
        warm_index(&rebuilt);

        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(which as u64) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let steps = 6 + (seed % 7) as usize;
        for step in 0..steps {
            let facts: Vec<cqa_data::Fact> = db.facts().cloned().collect();
            if facts.is_empty() {
                break;
            }
            let donor = facts[(next() as usize) % facts.len()].clone();
            let last = donor.values().len() - 1;
            match next() % 6 {
                0 | 1 => {
                    // Fresh fact: the donor's tuple with a new last value —
                    // joins the donor's block (or opens a new one) and grows
                    // the dictionary and active domain.
                    let mut values = donor.values().to_vec();
                    values[last] = cqa_data::Value::str(format!("fresh-{step}-{}", next() % 5));
                    let fact = cqa_data::Fact::new(donor.relation(), values);
                    let patched_new = db.insert(fact.clone()).unwrap();
                    let rebuilt_new = rebuilt.insert(fact).unwrap();
                    prop_assert_eq!(patched_new, rebuilt_new,
                        "insert divergence, {} seed {} step {}", name, seed, step);
                }
                2 => {
                    // Duplicate insert: a no-op that must not touch the
                    // epoch or the pending delta log.
                    let (epoch, pending) = (db.epoch(), db.pending_delta_len());
                    prop_assert!(!db.insert(donor.clone()).unwrap(),
                        "duplicate insert reported new, {} seed {}", name, seed);
                    prop_assert!(!rebuilt.insert(donor).unwrap(),
                        "duplicate insert reported new (rebuilt), {} seed {}", name, seed);
                    prop_assert_eq!(db.epoch(), epoch,
                        "no-op insert bumped the epoch, {} seed {}", name, seed);
                    prop_assert_eq!(db.pending_delta_len(), pending,
                        "no-op insert logged a delta, {} seed {}", name, seed);
                }
                3 => {
                    prop_assert!(db.remove_fact(&donor),
                        "present fact did not remove, {} seed {}", name, seed);
                    prop_assert!(rebuilt.remove_fact(&donor),
                        "present fact did not remove (rebuilt), {} seed {}", name, seed);
                }
                4 => {
                    prop_assert!(db.remove_block_of(&donor),
                        "present block did not remove, {} seed {}", name, seed);
                    prop_assert!(rebuilt.remove_block_of(&donor),
                        "present block did not remove (rebuilt), {} seed {}", name, seed);
                }
                _ => {
                    // Removing an absent fact: a no-op that must not touch
                    // the epoch or the pending delta log.
                    let mut values = donor.values().to_vec();
                    values[last] = cqa_data::Value::str("absent-probe");
                    let ghost = cqa_data::Fact::new(donor.relation(), values);
                    let (epoch, pending) = (db.epoch(), db.pending_delta_len());
                    prop_assert!(!db.remove_fact(&ghost),
                        "absent fact removed, {} seed {}", name, seed);
                    prop_assert!(!rebuilt.remove_fact(&ghost),
                        "absent fact removed (rebuilt), {} seed {}", name, seed);
                    prop_assert_eq!(db.epoch(), epoch,
                        "no-op removal bumped the epoch, {} seed {}", name, seed);
                    prop_assert_eq!(db.pending_delta_len(), pending,
                        "no-op removal logged a delta, {} seed {}", name, seed);
                }
            }
            if next() % 2 == 0 {
                // Flush the pending deltas into a patched snapshot now and
                // then, so later mutations chain patch-on-patch.
                warm_index(&db);
            }
        }

        // The delta-patched index must equal the from-scratch rebuild
        // structure by structure.
        warm_index(&db);
        warm_index(&rebuilt);
        let patched = db.index();
        let reference = rebuilt.index();
        prop_assert_eq!(patched.fact_count(), reference.fact_count(),
            "fact count, {} seed {}", name, seed);
        for i in 0..patched.fact_count() {
            let id = cqa_data::FactId::from_index(i);
            prop_assert_eq!(patched.fact(id), reference.fact(id),
                "fact id {} diverged, {} seed {}", i, name, seed);
            prop_assert_eq!(patched.block_of(id), reference.block_of(id),
                "block of fact {} diverged, {} seed {}", i, name, seed);
        }
        prop_assert_eq!(patched.active_domain(), reference.active_domain(),
            "active domain, {} seed {}", name, seed);
        prop_assert_eq!(patched.statistics(), reference.statistics(),
            "statistics, {} seed {}", name, seed);
        for (rel, relation) in db.schema().iter() {
            prop_assert_eq!(
                patched.relation_fact_ids(rel), reference.relation_fact_ids(rel),
                "fact ids of {}, {} seed {}", relation.name, name, seed);
            prop_assert_eq!(
                patched.relation_block_ids(rel), reference.relation_block_ids(rel),
                "block ids of {}, {} seed {}", relation.name, name, seed);
            let posbits = cqa_data::PositionSet::from_positions(0..relation.key_len());
            let a = patched.position_index(rel, posbits);
            let b = reference.position_index(rel, posbits);
            prop_assert_eq!(a.key_count(), b.key_count(),
                "key count of {}, {} seed {}", relation.name, name, seed);
            for key in b.keys() {
                prop_assert_eq!(a.candidates(key), b.candidates(key),
                    "bucket {:?} of {}, {} seed {}", key, relation.name, name, seed);
            }
            // The columnar view may assign dictionary codes in a different
            // order after patching; compare the decoded cells instead.
            let (ca, cb) = (patched.columnar(), reference.columnar());
            let (ra, rb) = (ca.relation(rel), cb.relation(rel));
            prop_assert_eq!(ra.row_count(), rb.row_count(),
                "columnar rows of {}, {} seed {}", relation.name, name, seed);
            for p in 0..relation.arity() {
                for (x, y) in ra.column(p).iter().zip(rb.column(p)) {
                    prop_assert_eq!(ca.dictionary().value(*x), cb.dictionary().value(*y),
                        "columnar cell of {}, {} seed {}", relation.name, name, seed);
                }
            }
        }

        // Persistence: the mutated database must survive a save → load
        // round trip byte-stably and answer identically in every mode.
        let bytes = cqa_data::store::save_to_vec(&db);
        let loaded = cqa_data::store::load_from_slice(&bytes).expect("a fresh save loads");
        prop_assert_eq!(&bytes, &cqa_data::store::save_to_vec(&loaded),
            "save-load-save not byte stable, {} seed {}", name, seed);
        let solver = RewritingSolver::new(&q).unwrap();
        let fo_plan = FoPlan::compile(solver.formula(), q.schema(), None);
        let loaded_index = loaded.index();
        let free_q = cqa::query::ConjunctiveQuery::with_free_vars(
            q.schema().clone(),
            q.atoms().to_vec(),
            vec![cqa::query::Variable::new("x")],
        ).unwrap();
        let candidates = cqa::core::answers::possible_answers(&free_q, &db).unwrap();
        for mode in [ExecMode::RowAtATime, ExecMode::Vectorized, ExecMode::Auto] {
            prop_assert_eq!(
                fo_plan.prepare(&loaded_index).with_mode(mode).eval(),
                fo_plan.prepare(&patched).with_mode(mode).eval(),
                "verdict after reload {:?}, {} seed {}", mode, name, seed);
            let engine = CertainAnswersEngine::new(&free_q).unwrap().with_mode(mode);
            let on_patched = engine.certain_of(&db, &candidates).unwrap();
            prop_assert_eq!(&engine.certain_of(&rebuilt, &candidates).unwrap(), &on_patched,
                "certain answers patched vs rebuilt {:?}, {} seed {}", mode, name, seed);
            prop_assert_eq!(&engine.certain_of(&loaded, &candidates).unwrap(), &on_patched,
                "certain answers after reload {:?}, {} seed {}", mode, name, seed);
        }
    }
}
