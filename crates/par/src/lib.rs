//! # cqa-par — work-stealing parallel evaluation of `CERTAINTY(q)`
//!
//! The paper studies `CERTAINTY(q)` in **data complexity** (Section 3): the
//! query `q` is fixed, the uncertain database is the input. That is exactly
//! the shape that parallelizes — once `cqa-exec` has compiled `q` (and, in
//! the Theorem 1 region, its certain first-order rewriting `φ_q`) into
//! immutable `Send + Sync` plans, an evaluation is a loop over independent
//! subproblems bound to one immutable [`cqa_data::Snapshot`]:
//!
//! * **candidate answers** — each possible answer's certainty check grounds
//!   the query with that tuple and decides a Boolean instance, sharing
//!   nothing with the other candidates ([`certain_answers_par`]);
//! * **root-scan shards** — the root `∃`/first join step of a compiled plan
//!   iterates a fixed candidate fact list, and the search below disjoint
//!   slices is independent ([`ParallelEngine`], riding on the shard hooks
//!   of `cqa-exec`);
//! * **whole queries** — a service answering many queries over one frozen
//!   snapshot runs them concurrently through shared plan and engine caches
//!   ([`BatchEngine`], the `certainty serve` CLI story).
//!
//! Chunks execute on a small vendored work-stealing pool
//! (`vendor/workpool`, wrapped as [`ParPool`]) and merge
//! **deterministically**: verdicts are disjunctions (associative,
//! commutative) and answer sets merge into ordered `BTreeSet`s, so results
//! are byte-identical at every thread count — the property
//! `tests/properties.rs` enforces at 1, 2 and 7 threads. A sequential
//! cutoff fed by the `cqa-exec` cost model
//! ([`cqa_exec::QueryPlan::estimated_work`]) keeps small problems off the
//! pool entirely.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod answers;
mod batch;
mod config;
mod engine;
mod pool;

pub use answers::certain_answers_par;
pub use batch::{BatchEngine, BatchOutcome, BatchResult};
pub use config::ParConfig;
pub use engine::ParallelEngine;
pub use pool::{par_map, ParPool};
