//! Elementary (simple directed) cycles.
//!
//! Definition 5 of the paper: a cycle of size `n` in the attack graph is a
//! sequence of edges `F0 -> F1 -> ... -> Fn-1 -> F0` with pairwise-distinct
//! vertices, i.e. an **elementary** cycle. Attack graphs have one vertex per
//! query atom, so they are tiny; the enumeration below is a straightforward
//! ordered DFS (the classic Tiernan/Johnson scheme without the blocking
//! machinery), with an optional cap for robustness.

use crate::{DiGraph, NodeId};

/// True iff the graph contains no directed cycle (self-loops count as cycles).
pub fn is_acyclic<N>(graph: &DiGraph<N>) -> bool {
    // Kahn's algorithm: the graph is acyclic iff all nodes can be peeled in
    // topological order.
    let n = graph.node_count();
    let mut in_deg: Vec<usize> = (0..n)
        .map(|i| graph.in_degree(NodeId::from_index(i)))
        .collect();
    let mut queue: Vec<usize> = (0..n).filter(|&i| in_deg[i] == 0).collect();
    let mut seen = 0usize;
    while let Some(v) = queue.pop() {
        seen += 1;
        for &w in graph.successors(NodeId::from_index(v)) {
            in_deg[w.index()] -= 1;
            if in_deg[w.index()] == 0 {
                queue.push(w.index());
            }
        }
    }
    seen == n
}

/// Returns a topological order of the nodes, or `None` if the graph is cyclic.
pub fn topological_order<N>(graph: &DiGraph<N>) -> Option<Vec<NodeId>> {
    let n = graph.node_count();
    let mut in_deg: Vec<usize> = (0..n)
        .map(|i| graph.in_degree(NodeId::from_index(i)))
        .collect();
    let mut queue: Vec<usize> = (0..n).filter(|&i| in_deg[i] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(v) = queue.pop() {
        order.push(NodeId::from_index(v));
        for &w in graph.successors(NodeId::from_index(v)) {
            in_deg[w.index()] -= 1;
            if in_deg[w.index()] == 0 {
                queue.push(w.index());
            }
        }
    }
    (order.len() == n).then_some(order)
}

/// Enumerates all elementary cycles of the graph.
///
/// Each cycle is reported once, as the list of its vertices starting from its
/// smallest vertex id (so rotations are canonicalised). `limit` caps the
/// number of cycles returned; `None` means unbounded.
pub fn elementary_cycles<N>(graph: &DiGraph<N>, limit: Option<usize>) -> Vec<Vec<NodeId>> {
    let n = graph.node_count();
    let cap = limit.unwrap_or(usize::MAX);
    let mut cycles = Vec::new();

    // For each start vertex s, search for simple paths that only use vertices
    // with id >= s and return to s. Starting from the smallest vertex of the
    // cycle guarantees each cycle is found exactly once.
    for s in 0..n {
        if cycles.len() >= cap {
            break;
        }
        let start = NodeId::from_index(s);
        let mut path = vec![start];
        let mut on_path = vec![false; n];
        on_path[s] = true;
        // DFS stack of (node, next successor index).
        let mut stack: Vec<(NodeId, usize)> = vec![(start, 0)];

        while let Some(&mut (v, ref mut next)) = stack.last_mut() {
            let succs = graph.successors(v);
            if *next >= succs.len() {
                stack.pop();
                on_path[v.index()] = false;
                path.pop();
                continue;
            }
            let w = succs[*next];
            *next += 1;
            if w == start {
                cycles.push(path.clone());
                if cycles.len() >= cap {
                    return cycles;
                }
            } else if w.index() > s && !on_path[w.index()] {
                on_path[w.index()] = true;
                path.push(w);
                stack.push((w, 0));
            }
        }
    }
    cycles
}

/// Enumerates elementary cycles of length exactly `k`.
pub fn cycles_of_length<N>(graph: &DiGraph<N>, k: usize) -> Vec<Vec<NodeId>> {
    elementary_cycles(graph, None)
        .into_iter()
        .filter(|c| c.len() == k)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(edges: &[(u32, u32)], nodes: u32) -> DiGraph<u32> {
        let mut g = DiGraph::new();
        for i in 0..nodes {
            g.add_node(i);
        }
        for &(a, b) in edges {
            g.add_edge(NodeId(a), NodeId(b));
        }
        g
    }

    #[test]
    fn acyclicity() {
        assert!(is_acyclic(&graph(&[(0, 1), (1, 2), (0, 2)], 3)));
        assert!(!is_acyclic(&graph(&[(0, 1), (1, 0)], 2)));
        assert!(!is_acyclic(&graph(&[(0, 0)], 1)));
        assert!(is_acyclic(&graph(&[], 0)));
    }

    #[test]
    fn topological_order_respects_edges() {
        let g = graph(&[(0, 1), (1, 2), (0, 2), (3, 0)], 4);
        let order = topological_order(&g).unwrap();
        let pos = |n: u32| order.iter().position(|&x| x == NodeId(n)).unwrap();
        assert!(pos(3) < pos(0));
        assert!(pos(0) < pos(1));
        assert!(pos(1) < pos(2));
        assert!(topological_order(&graph(&[(0, 1), (1, 0)], 2)).is_none());
    }

    #[test]
    fn enumerates_all_cycles_of_a_two_cycle_pair() {
        // 0 <-> 1 and 1 <-> 2: two elementary 2-cycles, no 3-cycle.
        let g = graph(&[(0, 1), (1, 0), (1, 2), (2, 1)], 3);
        let cycles = elementary_cycles(&g, None);
        assert_eq!(cycles.len(), 2);
        assert!(cycles.iter().all(|c| c.len() == 2));
    }

    #[test]
    fn counts_cycles_of_the_complete_digraph_on_three_vertices() {
        // K3 with all 6 arcs: 3 two-cycles + 2 three-cycles = 5 elementary cycles.
        let g = graph(&[(0, 1), (1, 0), (1, 2), (2, 1), (0, 2), (2, 0)], 3);
        let cycles = elementary_cycles(&g, None);
        assert_eq!(cycles.len(), 5);
        assert_eq!(cycles_of_length(&g, 2).len(), 3);
        assert_eq!(cycles_of_length(&g, 3).len(), 2);
    }

    #[test]
    fn each_cycle_reported_once_with_canonical_rotation() {
        let g = graph(&[(0, 1), (1, 2), (2, 0)], 3);
        let cycles = elementary_cycles(&g, None);
        assert_eq!(cycles, vec![vec![NodeId(0), NodeId(1), NodeId(2)]]);
    }

    #[test]
    fn limit_caps_the_enumeration() {
        let g = graph(&[(0, 1), (1, 0), (1, 2), (2, 1), (0, 2), (2, 0)], 3);
        assert_eq!(elementary_cycles(&g, Some(2)).len(), 2);
    }

    #[test]
    fn self_loop_is_a_cycle_of_length_one() {
        let g = graph(&[(0, 0)], 1);
        let cycles = elementary_cycles(&g, None);
        assert_eq!(cycles, vec![vec![NodeId(0)]]);
    }
}
