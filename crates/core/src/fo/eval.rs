//! Model checking of first-order formulas over uncertain databases.
//!
//! An uncertain database is, in particular, an ordinary finite relational
//! structure; a certain rewriting `φ_q` is evaluated over that structure
//! (not over repairs). Quantifiers range over the active domain — the usual
//! semantics for domain-independent rewritings such as the ones produced by
//! [`crate::fo::rewrite`].

use super::FoFormula;
use cqa_data::{DatabaseIndex, Fact, FxHashMap, PositionSet, UncertainDatabase, Value};
use cqa_query::{Term, Variable};
use std::sync::Arc;

/// A variable assignment used during evaluation.
pub type Environment = FxHashMap<Variable, Value>;

fn eval_term(term: &Term, env: &Environment) -> Option<Value> {
    match term {
        Term::Const(c) => Some(c.clone()),
        Term::Var(v) => env.get(v).cloned(),
    }
}

/// Evaluates `formula` over `db` under the (possibly empty) assignment `env`.
///
/// Free variables of the formula must be bound by `env`; unbound variables
/// make atoms and equalities evaluate to `false` (the formulas produced by
/// [`crate::fo::rewrite`] are sentences, so this never triggers for them).
pub fn evaluate(formula: &FoFormula, db: &UncertainDatabase, env: &Environment) -> bool {
    let index = db.index();
    let mut scratch = env.clone();
    let mut domains = DomainCache::default();
    eval_rec(formula, db, &index, &mut scratch, &mut domains)
}

/// Memoizes [`restricted_domain`] per quantifier body and variable for the
/// duration of one [`evaluate`] call: the restriction depends only on the
/// formula node and the index snapshot, but a node under an outer quantifier
/// is visited once per outer binding. Keyed by the body's address, which is
/// stable while the formula is borrowed.
type DomainCache = FxHashMap<(usize, Variable), Option<Arc<Vec<Value>>>>;

/// Evaluates the sentence (no free variables) over the database.
pub fn evaluate_sentence(formula: &FoFormula, db: &UncertainDatabase) -> bool {
    evaluate(formula, db, &Environment::default())
}

fn eval_rec(
    formula: &FoFormula,
    db: &UncertainDatabase,
    index: &DatabaseIndex,
    env: &mut Environment,
    domains: &mut DomainCache,
) -> bool {
    match formula {
        FoFormula::True => true,
        FoFormula::False => false,
        FoFormula::Atom { relation, terms } => {
            let values: Option<Vec<Value>> = terms.iter().map(|t| eval_term(t, env)).collect();
            match values {
                Some(values) => db.contains(&Fact::new(*relation, values)),
                None => false,
            }
        }
        FoFormula::Equals(a, b) => match (eval_term(a, env), eval_term(b, env)) {
            (Some(x), Some(y)) => x == y,
            _ => false,
        },
        FoFormula::Not(inner) => !eval_rec(inner, db, index, env, domains),
        FoFormula::And(parts) => parts.iter().all(|p| eval_rec(p, db, index, env, domains)),
        FoFormula::Or(parts) => parts.iter().any(|p| eval_rec(p, db, index, env, domains)),
        FoFormula::Implies(a, b) => {
            !eval_rec(a, db, index, env, domains) || eval_rec(b, db, index, env, domains)
        }
        FoFormula::Exists(vars, body) => quantify(vars, body, db, index, env, domains, true),
        FoFormula::Forall(vars, body) => !quantify(vars, body, db, index, env, domains, false),
    }
}

/// Collects the relational atoms that must hold whenever `formula` holds:
/// the formula itself, the conjuncts of top-level conjunctions, and (for
/// constraining *outer* variables) the bodies of nested existentials, minus
/// variables those existentials shadow. Negated or disjunctive contexts are
/// not descended into.
fn necessary_atoms<'f>(
    formula: &'f FoFormula,
    shadowed: &mut Vec<&'f Variable>,
    out: &mut Vec<(&'f FoFormula, Vec<&'f Variable>)>,
) {
    match formula {
        FoFormula::Atom { .. } => out.push((formula, shadowed.clone())),
        FoFormula::And(parts) => {
            for p in parts {
                necessary_atoms(p, shadowed, out);
            }
        }
        FoFormula::Exists(vars, body) => {
            let before = shadowed.len();
            shadowed.extend(vars.iter());
            necessary_atoms(body, shadowed, out);
            shadowed.truncate(before);
        }
        _ => {}
    }
}

/// The values a quantified variable can take while satisfying `body`: if the
/// variable occurs (unshadowed) in an atom that is necessary for `body`, its
/// value must appear in the corresponding column of that relation, so the
/// distinct values of that column — served by the single-position index —
/// replace the full active domain. Returns `None` when no such occurrence
/// exists (fall back to the active domain).
fn restricted_domain(
    var: &Variable,
    body: &FoFormula,
    index: &DatabaseIndex,
) -> Option<Vec<Value>> {
    let mut atoms = Vec::new();
    necessary_atoms(body, &mut Vec::new(), &mut atoms);
    // Select the smallest column first; only the winner is materialized.
    let mut best: Option<std::sync::Arc<cqa_data::PositionIndex>> = None;
    for (atom, shadowed) in &atoms {
        if shadowed.contains(&var) {
            continue;
        }
        let FoFormula::Atom { relation, terms } = atom else {
            continue;
        };
        for (pos, term) in terms.iter().enumerate().take(PositionSet::MAX_POSITIONS) {
            if term.as_var() != Some(var) {
                continue;
            }
            let column = index.position_index(*relation, PositionSet::single(pos));
            if best
                .as_ref()
                .is_none_or(|b| column.key_count() < b.key_count())
            {
                best = Some(column);
            }
        }
    }
    best.map(|column| column.keys().map(|key| key[0].clone()).collect())
}

/// Iterates assignments of `vars` over their candidate domains. With
/// `looking_for = true` returns true iff some assignment satisfies `body`
/// (∃); with `false`, returns true iff some assignment *falsifies* it
/// (so that `Forall` is the negation of the result).
///
/// For the satisfying direction each variable's range is restricted to the
/// column values of an atom the body cannot hold without
/// ([`restricted_domain`]); the falsifying direction must consider the whole
/// active domain.
#[allow(clippy::too_many_arguments)]
fn quantify(
    vars: &[Variable],
    body: &FoFormula,
    db: &UncertainDatabase,
    index: &DatabaseIndex,
    env: &mut Environment,
    cache: &mut DomainCache,
    looking_for: bool,
) -> bool {
    let full_domain = index.active_domain();
    if full_domain.is_empty() {
        // Empty active domain: ∃ is false, ∀ is true.
        return false;
    }
    // `None` means "the full active domain" — borrowed from the snapshot
    // rather than cloned, since unrestricted variables are the common case.
    // Restrictions are memoized per (body, variable): a quantifier nested
    // under another is visited once per outer binding with the same result.
    let body_key = body as *const FoFormula as usize;
    let domains: Vec<Option<Arc<Vec<Value>>>> = vars
        .iter()
        .map(|v| {
            if !looking_for {
                return None;
            }
            cache
                .entry((body_key, v.clone()))
                .or_insert_with(|| restricted_domain(v, body, index).map(Arc::new))
                .clone()
        })
        .collect();
    #[allow(clippy::too_many_arguments)]
    fn rec(
        vars: &[Variable],
        domains: &[Option<Arc<Vec<Value>>>],
        full_domain: &[Value],
        body: &FoFormula,
        db: &UncertainDatabase,
        index: &DatabaseIndex,
        env: &mut Environment,
        cache: &mut DomainCache,
        looking_for: bool,
    ) -> bool {
        match vars.split_first() {
            None => eval_rec(body, db, index, env, cache) == looking_for,
            Some((v, rest)) => {
                let domain: &[Value] = match &domains[0] {
                    Some(restricted) => restricted,
                    None => full_domain,
                };
                for value in domain {
                    let previous = env.insert(v.clone(), value.clone());
                    let found = rec(
                        rest,
                        &domains[1..],
                        full_domain,
                        body,
                        db,
                        index,
                        env,
                        cache,
                        looking_for,
                    );
                    match previous {
                        Some(p) => {
                            env.insert(v.clone(), p);
                        }
                        None => {
                            env.remove(v);
                        }
                    }
                    if found {
                        return true;
                    }
                }
                false
            }
        }
    }
    rec(
        vars,
        &domains,
        full_domain,
        body,
        db,
        index,
        env,
        cache,
        looking_for,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_data::Schema;

    fn db() -> UncertainDatabase {
        let schema = Schema::from_relations([("R", 2, 1)]).unwrap().into_shared();
        let mut db = UncertainDatabase::new(schema);
        db.insert_values("R", ["a", "1"]).unwrap();
        db.insert_values("R", ["a", "2"]).unwrap();
        db.insert_values("R", ["b", "1"]).unwrap();
        db
    }

    fn r(db: &UncertainDatabase) -> cqa_data::RelationId {
        db.schema().relation_id("R").unwrap()
    }

    #[test]
    fn atoms_and_equalities() {
        let db = db();
        let rel = r(&db);
        let present = FoFormula::atom(rel, vec![Term::constant("a"), Term::constant("1")]);
        let absent = FoFormula::atom(rel, vec![Term::constant("b"), Term::constant("2")]);
        assert!(evaluate_sentence(&present, &db));
        assert!(!evaluate_sentence(&absent, &db));
        assert!(evaluate_sentence(
            &FoFormula::Equals(Term::constant("x"), Term::constant("x")),
            &db
        ));
        assert!(!evaluate_sentence(
            &FoFormula::Equals(Term::constant("x"), Term::constant("y")),
            &db
        ));
    }

    #[test]
    fn quantifiers_range_over_the_active_domain() {
        let db = db();
        let rel = r(&db);
        // ∃x R(x, '1') — true (x = a or b).
        let exists = FoFormula::exists(
            vec![Variable::new("x")],
            FoFormula::atom(rel, vec![Term::var("x"), Term::constant("1")]),
        );
        assert!(evaluate_sentence(&exists, &db));
        // ∀x (R(x,'1') → R(x,'2')) — false (b has no 2).
        let forall = FoFormula::forall(
            vec![Variable::new("x")],
            FoFormula::Implies(
                Box::new(FoFormula::atom(
                    rel,
                    vec![Term::var("x"), Term::constant("1")],
                )),
                Box::new(FoFormula::atom(
                    rel,
                    vec![Term::var("x"), Term::constant("2")],
                )),
            ),
        );
        assert!(!evaluate_sentence(&forall, &db));
        // ∀x (R(x,'2') → R(x,'1')) — true (only a has 2, and R(a,1) holds).
        let forall2 = FoFormula::forall(
            vec![Variable::new("x")],
            FoFormula::Implies(
                Box::new(FoFormula::atom(
                    rel,
                    vec![Term::var("x"), Term::constant("2")],
                )),
                Box::new(FoFormula::atom(
                    rel,
                    vec![Term::var("x"), Term::constant("1")],
                )),
            ),
        );
        assert!(evaluate_sentence(&forall2, &db));
    }

    #[test]
    fn connectives() {
        let db = db();
        assert!(evaluate_sentence(
            &FoFormula::Or(vec![FoFormula::False, FoFormula::True]),
            &db
        ));
        assert!(!evaluate_sentence(
            &FoFormula::And(vec![FoFormula::False, FoFormula::True]),
            &db
        ));
        assert!(evaluate_sentence(
            &FoFormula::Not(Box::new(FoFormula::False)),
            &db
        ));
        assert!(evaluate_sentence(
            &FoFormula::Implies(Box::new(FoFormula::False), Box::new(FoFormula::False)),
            &db
        ));
    }

    #[test]
    fn empty_database_semantics() {
        let schema = Schema::from_relations([("R", 2, 1)]).unwrap().into_shared();
        let empty = UncertainDatabase::new(schema);
        let rel = empty.schema().relation_id("R").unwrap();
        let exists = FoFormula::exists(
            vec![Variable::new("x")],
            FoFormula::atom(rel, vec![Term::var("x"), Term::var("x")]),
        );
        let forall = FoFormula::forall(vec![Variable::new("x")], FoFormula::False);
        assert!(!evaluate_sentence(&exists, &empty));
        assert!(
            evaluate_sentence(&forall, &empty),
            "∀ over empty domain is true"
        );
    }
}
