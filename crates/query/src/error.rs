//! Error type for query construction and analysis.

use std::error::Error;
use std::fmt;

/// Errors raised when building or analysing conjunctive queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// An atom's term count does not match the relation's declared arity.
    ArityMismatch {
        /// The relation name.
        relation: String,
        /// Declared arity.
        expected: usize,
        /// Number of terms supplied.
        actual: usize,
    },
    /// An atom mentions a relation missing from the schema.
    UnknownRelation {
        /// The unresolved relation name.
        name: String,
    },
    /// The operation requires a query without self-joins (the paper's
    /// standing assumption), but a relation name occurs in more than one atom.
    SelfJoin {
        /// The repeated relation name.
        relation: String,
    },
    /// The operation requires an acyclic query (one that admits a join tree),
    /// but the query is cyclic.
    CyclicQuery,
    /// The operation requires a Boolean query but free variables are present.
    NotBoolean,
    /// A query uses more variables than the bit-set representation supports.
    TooManyVariables {
        /// Number of variables in the query.
        count: usize,
        /// Maximum supported.
        max: usize,
    },
    /// A free variable does not occur in any atom.
    UnboundFreeVariable {
        /// Name of the offending variable.
        name: String,
    },
    /// The query does not have the shape required by a specialised algorithm
    /// (e.g. the `C(k)` / `AC(k)` solver of Theorem 4).
    Unsupported {
        /// Human-readable explanation.
        reason: String,
    },
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::ArityMismatch {
                relation,
                expected,
                actual,
            } => write!(
                f,
                "atom over `{relation}` has {actual} terms but the relation has arity {expected}"
            ),
            QueryError::UnknownRelation { name } => {
                write!(f, "relation `{name}` is not declared in the schema")
            }
            QueryError::SelfJoin { relation } => write!(
                f,
                "query has a self-join on `{relation}`; this operation requires self-join-free queries"
            ),
            QueryError::CyclicQuery => {
                write!(f, "query is cyclic (it has no join tree); this operation requires an acyclic query")
            }
            QueryError::NotBoolean => write!(f, "operation requires a Boolean query"),
            QueryError::TooManyVariables { count, max } => {
                write!(f, "query has {count} variables; at most {max} are supported")
            }
            QueryError::UnboundFreeVariable { name } => {
                write!(f, "free variable `{name}` does not occur in any atom")
            }
            QueryError::Unsupported { reason } => write!(f, "unsupported query shape: {reason}"),
        }
    }
}

impl Error for QueryError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        assert!(QueryError::SelfJoin {
            relation: "R".into()
        }
        .to_string()
        .contains("self-join"));
        assert!(QueryError::CyclicQuery.to_string().contains("join tree"));
    }
}
