//! The worked `AC(3)` example of Figures 6 and 7, plus the Theorem 4
//! algorithm at a larger scale.
//!
//! Run with `cargo run --example cycle_queries`.

use cqa::core::solvers::{CertaintySolver, CycleQuerySolver, ExactOracle};
use cqa::gen::{cycle_instance, figure6_database, CycleInstanceConfig};
use cqa::query::{catalog, eval};

fn main() {
    let ac3 = catalog::ac_k(3).query;
    let db = figure6_database();
    println!(
        "Figure 6 instance ({} facts, {} repairs):",
        db.fact_count(),
        db.repair_count().unwrap()
    );
    print!("{db}");

    let solver = CycleQuerySolver::new(&ac3).unwrap();
    let oracle = ExactOracle::new(&ac3).unwrap();
    println!(
        "\nCERTAINTY(AC(3)) via the Theorem 4 graph algorithm: {}",
        solver.is_certain(&db)
    );
    println!(
        "CERTAINTY(AC(3)) via brute force over 8 repairs:      {}",
        oracle.is_certain_bruteforce(&db)
    );

    println!("\nfalsifying repairs (Figure 7 exhibits two):");
    for (i, repair) in db.repairs().enumerate() {
        if !eval::naive::satisfies(&repair, &ac3) {
            println!("--- falsifying repair #{} ---", i + 1);
            print!("{repair}");
        }
    }

    // The C(k) question Fuxman and Miller left open (settled by Corollary 1):
    // the same machinery answers C(3) without the S3 relation.
    let c3 = catalog::c_k(3).query;
    let c_solver = CycleQuerySolver::new(&c3).unwrap();
    let mut forced = cqa_data::UncertainDatabase::new(c3.schema().clone());
    for (r, a, b) in [("R1", "a", "b"), ("R2", "b", "c"), ("R3", "c", "a")] {
        forced.insert_values(r, [a, b]).unwrap();
    }
    println!(
        "\nC(3) on a single forced triangle: certain = {}",
        c_solver.is_certain(&forced)
    );

    // Scale up: a few hundred constants per layer stay well below a second.
    for n in [50usize, 200] {
        let big = cycle_instance(
            3,
            true,
            &CycleInstanceConfig {
                seed: 5,
                nodes_per_layer: n,
                edges_per_node: 2,
                encoded_cycle_fraction: 0.6,
            },
        );
        let start = std::time::Instant::now();
        let verdict = solver.is_certain(&big);
        println!(
            "AC(3) instance with {} facts: certain = {verdict} ({:?})",
            big.fact_count(),
            start.elapsed()
        );
    }
}
