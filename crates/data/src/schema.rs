//! Database schemas: relation names with `[n, k]` signatures.
//!
//! Section 3 of the paper: *"Every relation name `R` has a fixed signature,
//! which is a pair `[n, k]` with `n >= k >= 1`: the integer `n` is the arity
//! of the relation name and `{1, 2, ..., k}` is the primary key. The relation
//! name `R` is all-key if `n = k`."*

use crate::{DataError, FxHashMap};
use std::fmt;
use std::sync::Arc;

/// Index of a relation inside a [`Schema`].
///
/// Relation ids are dense (`0..schema.len()`), which lets the rest of the
/// workspace use plain vectors indexed by relation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct RelationId(pub(crate) u32);

impl RelationId {
    /// Returns the dense index of this relation.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Creates a relation id from a dense index (`0..schema.len()`).
    pub fn from_index(i: usize) -> Self {
        RelationId(i as u32)
    }
}

impl fmt::Display for RelationId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rel#{}", self.0)
    }
}

/// The signature `[n, k]` of a relation: arity `n`, primary key `{1..k}`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Signature {
    /// Arity `n` of the relation.
    pub arity: usize,
    /// Length `k` of the primary-key prefix (`1 <= k <= n`).
    pub key_len: usize,
}

impl Signature {
    /// Creates a signature, without validation (validated by [`Schema::add_relation`]).
    pub fn new(arity: usize, key_len: usize) -> Self {
        Signature { arity, key_len }
    }

    /// Returns true if the relation is *all-key* (`n = k`).
    ///
    /// All-key relations are consistent by construction: every block is a
    /// singleton, so they behave like certain (deterministic) relations.
    /// Lemma 9 of the paper exploits exactly this.
    pub fn is_all_key(&self) -> bool {
        self.arity == self.key_len
    }
}

impl fmt::Display for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{},{}]", self.arity, self.key_len)
    }
}

/// A declared relation: name plus signature.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Relation {
    /// The relation name (unique within a schema).
    pub name: String,
    /// The `[n, k]` signature.
    pub signature: Signature,
}

impl Relation {
    /// Arity `n`.
    pub fn arity(&self) -> usize {
        self.signature.arity
    }

    /// Key length `k`.
    pub fn key_len(&self) -> usize {
        self.signature.key_len
    }

    /// True iff the relation is all-key.
    pub fn is_all_key(&self) -> bool {
        self.signature.is_all_key()
    }
}

/// A database schema: a finite set of relation names with signatures.
///
/// Schemas are immutable once wrapped in an [`Arc`] and shared between the
/// database, the query and all solver components; this guarantees that
/// relation ids mean the same thing everywhere.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Schema {
    relations: Vec<Relation>,
    by_name: FxHashMap<String, RelationId>,
}

impl Schema {
    /// Creates an empty schema.
    pub fn new() -> Self {
        Schema::default()
    }

    /// Declares a relation with signature `[arity, key_len]`.
    ///
    /// Fails if the name is already taken or the signature violates
    /// `arity >= key_len >= 1`.
    pub fn add_relation(
        &mut self,
        name: impl Into<String>,
        arity: usize,
        key_len: usize,
    ) -> Result<RelationId, DataError> {
        let name = name.into();
        if self.by_name.contains_key(&name) {
            return Err(DataError::DuplicateRelation { name });
        }
        if key_len == 0 || key_len > arity {
            return Err(DataError::InvalidSignature {
                name,
                arity,
                key_len,
            });
        }
        let id = RelationId(self.relations.len() as u32);
        self.by_name.insert(name.clone(), id);
        self.relations.push(Relation {
            name,
            signature: Signature::new(arity, key_len),
        });
        Ok(id)
    }

    /// Convenience constructor: builds a schema from `(name, arity, key_len)` triples.
    pub fn from_relations<'a>(
        rels: impl IntoIterator<Item = (&'a str, usize, usize)>,
    ) -> Result<Self, DataError> {
        let mut schema = Schema::new();
        for (name, arity, key_len) in rels {
            schema.add_relation(name, arity, key_len)?;
        }
        Ok(schema)
    }

    /// Wraps the schema in an [`Arc`] for sharing.
    pub fn into_shared(self) -> Arc<Schema> {
        Arc::new(self)
    }

    /// Number of declared relations.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// True iff no relation is declared.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }

    /// Looks a relation up by id.
    ///
    /// # Panics
    /// Panics if the id does not belong to this schema.
    pub fn relation(&self, id: RelationId) -> &Relation {
        &self.relations[id.index()]
    }

    /// Looks a relation up by name.
    pub fn relation_id(&self, name: &str) -> Option<RelationId> {
        self.by_name.get(name).copied()
    }

    /// Looks a relation up by name, returning an error mentioning the name.
    pub fn require(&self, name: &str) -> Result<RelationId, DataError> {
        self.relation_id(name)
            .ok_or_else(|| DataError::UnknownRelation {
                name: name.to_owned(),
            })
    }

    /// Iterates over `(id, relation)` pairs in declaration order.
    pub fn iter(&self) -> impl Iterator<Item = (RelationId, &Relation)> {
        self.relations
            .iter()
            .enumerate()
            .map(|(i, r)| (RelationId(i as u32), r))
    }

    /// Iterates over all relation ids.
    pub fn relation_ids(&self) -> impl Iterator<Item = RelationId> + '_ {
        (0..self.relations.len() as u32).map(RelationId)
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (_, r) in self.iter() {
            writeln!(f, "{}{}", r.name, r.signature)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declares_relations_with_signatures() {
        let mut s = Schema::new();
        let c = s.add_relation("C", 3, 2).unwrap();
        let r = s.add_relation("R", 2, 1).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.relation(c).name, "C");
        assert_eq!(s.relation(c).arity(), 3);
        assert_eq!(s.relation(c).key_len(), 2);
        assert_eq!(s.relation_id("R"), Some(r));
        assert_eq!(s.relation_id("X"), None);
    }

    #[test]
    fn rejects_duplicate_names() {
        let mut s = Schema::new();
        s.add_relation("R", 2, 1).unwrap();
        assert!(matches!(
            s.add_relation("R", 3, 1),
            Err(DataError::DuplicateRelation { .. })
        ));
    }

    #[test]
    fn rejects_invalid_signatures() {
        let mut s = Schema::new();
        assert!(matches!(
            s.add_relation("R", 2, 0),
            Err(DataError::InvalidSignature { .. })
        ));
        assert!(matches!(
            s.add_relation("S", 2, 3),
            Err(DataError::InvalidSignature { .. })
        ));
        // n = k = 1 is the smallest legal signature.
        assert!(s.add_relation("T", 1, 1).is_ok());
    }

    #[test]
    fn all_key_detection() {
        let s = Schema::from_relations([("R", 2, 1), ("S", 3, 3)]).unwrap();
        assert!(!s.relation(s.relation_id("R").unwrap()).is_all_key());
        assert!(s.relation(s.relation_id("S").unwrap()).is_all_key());
    }

    #[test]
    fn require_reports_unknown_relation() {
        let s = Schema::from_relations([("R", 2, 1)]).unwrap();
        let err = s.require("Missing").unwrap_err();
        assert!(err.to_string().contains("Missing"));
    }

    #[test]
    fn display_lists_signatures() {
        let s = Schema::from_relations([("R", 2, 1), ("S", 3, 2)]).unwrap();
        let text = s.to_string();
        assert!(text.contains("R[2,1]"));
        assert!(text.contains("S[3,2]"));
    }
}
