//! # cqa-parser
//!
//! A small text format for uncertain databases and conjunctive queries, plus
//! Graphviz DOT export of join trees and attack graphs. This is the frontend
//! used by the `certainty` CLI and by the examples; it is deliberately tiny
//! (line-based) rather than a full datalog dialect.
//!
//! ## Format
//!
//! ```text
//! # comments start with '#'
//! relation C(conf*, year*, city)      # '*' marks the primary-key prefix
//! relation R(conf*, rank)
//!
//! C(PODS, 2016, Rome)                 # facts: bare tokens are constants
//! C(PODS, 2016, Paris)
//! R(PODS, A)
//!
//! certain rome :- C(x, y, "Rome"), R(x, "A")   # queries: bare identifiers are
//!                                              # variables, quoted strings and
//!                                              # numbers are constants
//! ```
//!
//! A document may declare several named queries; free variables are written
//! `certain name(x, y) :- ...`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod csv;
pub mod dot;

use cqa_data::{Schema, UncertainDatabase, Value};
use cqa_query::{Atom, ConjunctiveQuery, Term, Variable};
use std::error::Error;
use std::fmt;
use std::sync::Arc;

/// A parsed document: schema, facts and named queries.
#[derive(Clone, Debug)]
pub struct Document {
    /// The declared schema.
    pub schema: Arc<Schema>,
    /// The uncertain database given by the fact lines.
    pub database: UncertainDatabase,
    /// The named queries, in declaration order.
    pub queries: Vec<(String, ConjunctiveQuery)>,
}

/// Parse errors with a 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number of the offending line (0 for document-level errors).
    pub line: usize,
    /// Explanation.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for ParseError {}

pub(crate) fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

/// Splits `R(a, b, c)` into the name and the comma-separated argument list.
fn split_call(line: usize, text: &str) -> Result<(String, Vec<String>), ParseError> {
    let open = text
        .find('(')
        .ok_or_else(|| err(line, format!("expected '(' in `{text}`")))?;
    let close = text
        .rfind(')')
        .ok_or_else(|| err(line, format!("expected ')' in `{text}`")))?;
    if close < open {
        return Err(err(line, format!("mismatched parentheses in `{text}`")));
    }
    let name = text[..open].trim().to_string();
    if name.is_empty() {
        return Err(err(line, format!("missing relation name in `{text}`")));
    }
    let inside = &text[open + 1..close];
    let args = if inside.trim().is_empty() {
        Vec::new()
    } else {
        inside.split(',').map(|s| s.trim().to_string()).collect()
    };
    Ok((name, args))
}

/// Parses a constant token of a fact: quoted string, integer, or bare symbol.
fn parse_constant(token: &str) -> Value {
    let token = token.trim();
    if token.len() >= 2 && token.starts_with('"') && token.ends_with('"') {
        return Value::str(&token[1..token.len() - 1]);
    }
    if let Ok(i) = token.parse::<i64>() {
        return Value::Int(i);
    }
    Value::str(token)
}

/// Parses a query-body token: quoted strings and integers are constants,
/// everything else is a variable.
fn parse_term(token: &str) -> Term {
    let token = token.trim();
    if token.len() >= 2 && token.starts_with('"') && token.ends_with('"') {
        return Term::Const(Value::str(&token[1..token.len() - 1]));
    }
    if let Ok(i) = token.parse::<i64>() {
        return Term::Const(Value::Int(i));
    }
    Term::Var(Variable::new(token))
}

/// Parses a query body `R(x, "a"), S(y, x)` against a schema.
pub fn parse_query_body(
    schema: &Arc<Schema>,
    body: &str,
    free: Vec<Variable>,
    line: usize,
) -> Result<ConjunctiveQuery, ParseError> {
    // Split on commas that are not inside parentheses.
    let mut atoms_text: Vec<String> = Vec::new();
    let mut depth = 0usize;
    let mut current = String::new();
    for c in body.chars() {
        match c {
            '(' => {
                depth += 1;
                current.push(c);
            }
            ')' => {
                depth = depth.saturating_sub(1);
                current.push(c);
            }
            ',' if depth == 0 => {
                atoms_text.push(current.trim().to_string());
                current.clear();
            }
            _ => current.push(c),
        }
    }
    if !current.trim().is_empty() {
        atoms_text.push(current.trim().to_string());
    }
    let mut atoms = Vec::new();
    for text in atoms_text.iter().filter(|t| !t.is_empty()) {
        let (name, args) = split_call(line, text)?;
        let rel = schema
            .relation_id(&name)
            .ok_or_else(|| err(line, format!("unknown relation `{name}`")))?;
        let terms: Vec<Term> = args.iter().map(|a| parse_term(a)).collect();
        atoms.push(Atom::new(rel, terms));
    }
    ConjunctiveQuery::with_free_vars(schema.clone(), atoms, free)
        .map_err(|e| err(line, e.to_string()))
}

/// Parses a whole document (schema + facts + queries).
pub fn parse_document(text: &str) -> Result<Document, ParseError> {
    let mut schema = Schema::new();
    let mut fact_lines: Vec<(usize, String)> = Vec::new();
    let mut query_lines: Vec<(usize, String)> = Vec::new();

    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = match raw.find('#') {
            Some(pos) => &raw[..pos],
            None => raw,
        };
        let line = line.trim().trim_end_matches('.').trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("relation ") {
            let (name, columns) = split_call(line_no, rest)?;
            let key_len = columns.iter().take_while(|c| c.ends_with('*')).count();
            let arity = columns.len();
            if key_len == 0 || columns.iter().skip(key_len).any(|c| c.ends_with('*')) {
                return Err(err(
                    line_no,
                    "the '*'-marked key columns must form a non-empty prefix",
                ));
            }
            schema
                .add_relation(&name, arity, key_len)
                .map_err(|e| err(line_no, e.to_string()))?;
        } else if line.starts_with("certain") {
            query_lines.push((line_no, line.to_string()));
        } else {
            fact_lines.push((line_no, line.to_string()));
        }
    }

    let schema = schema.into_shared();
    let mut database = UncertainDatabase::new(schema.clone());
    for (line_no, line) in fact_lines {
        let (name, args) = split_call(line_no, &line)?;
        let rel = schema
            .relation_id(&name)
            .ok_or_else(|| err(line_no, format!("unknown relation `{name}`")))?;
        let values: Vec<Value> = args.iter().map(|a| parse_constant(a)).collect();
        let fact = cqa_data::Fact::checked(&schema, rel, values)
            .map_err(|e| err(line_no, e.to_string()))?;
        database
            .insert(fact)
            .map_err(|e| err(line_no, e.to_string()))?;
    }

    let mut queries = Vec::new();
    for (line_no, line) in query_lines {
        let rest = line.strip_prefix("certain").expect("checked above").trim();
        // The document format stays strict (a missing `:-` is a typo to
        // report); only the interactive serve stream accepts a bare body.
        if !rest.contains(":-") {
            return Err(err(line_no, "expected `certain <name>[(vars)] :- <atoms>`"));
        }
        queries.push(parse_query_line(&schema, rest, line_no)?);
    }

    Ok(Document {
        schema,
        database,
        queries,
    })
}

/// Parses one fact line `R(a, 1, "quoted")` against a schema: every
/// argument is a constant (quoted string, integer, or bare symbol). This is
/// the write half of the serve protocol (`\insert` / `\remove` /
/// `\remove-block` lines); fact lines of a document go through
/// [`parse_document`].
pub fn parse_fact_line(
    schema: &Arc<Schema>,
    line: &str,
    line_no: usize,
) -> Result<cqa_data::Fact, ParseError> {
    let (name, args) = split_call(line_no, line.trim())?;
    let rel = schema
        .relation_id(&name)
        .ok_or_else(|| err(line_no, format!("unknown relation `{name}`")))?;
    let values: Vec<Value> = args.iter().map(|a| parse_constant(a)).collect();
    cqa_data::Fact::checked(schema, rel, values).map_err(|e| err(line_no, e.to_string()))
}

/// Parses one named query line `name[(vars)] :- R(x, "a"), S(y, x)` (the
/// part after the `certain` keyword of a document, or one line of a
/// `certainty serve` stream; a bare `:- body` or even a bare `body` gets
/// the synthesized name `q<line>`). Returns the name and the parsed query.
pub fn parse_query_line(
    schema: &Arc<Schema>,
    line: &str,
    line_no: usize,
) -> Result<(String, ConjunctiveQuery), ParseError> {
    let line = line.trim();
    let (head, body) = match line.split_once(":-") {
        Some((head, body)) => (head.trim(), body),
        None => ("", line),
    };
    let (name, free) = if head.contains('(') {
        let (name, vars) = split_call(line_no, head)?;
        (
            name,
            vars.iter()
                .filter(|v| !v.is_empty())
                .map(Variable::new)
                .collect(),
        )
    } else {
        (head.to_string(), Vec::new())
    };
    let name = if name.is_empty() {
        format!("q{line_no}")
    } else {
        name
    };
    let query = parse_query_body(schema, body, free, line_no)?;
    Ok((name, query))
}

#[cfg(test)]
mod tests {
    use super::*;

    const CONFERENCE: &str = r#"
# Figure 1 of the paper
relation C(conf*, year*, city)
relation R(conf*, rank)

C(PODS, 2016, Rome)
C(PODS, 2016, Paris)
C(KDD, 2017, Rome)
R(PODS, A)
R(KDD, A)
R(KDD, B)

certain rome :- C(x, y, "Rome"), R(x, "A")
certain which(x) :- C(x, y, "Rome"), R(x, "A")
"#;

    #[test]
    fn parses_the_conference_document() {
        let doc = parse_document(CONFERENCE).unwrap();
        assert_eq!(doc.schema.len(), 2);
        assert_eq!(doc.database.fact_count(), 6);
        assert_eq!(doc.database.repair_count(), Some(4));
        assert_eq!(doc.queries.len(), 2);
        let (name, q) = &doc.queries[0];
        assert_eq!(name, "rome");
        assert!(q.is_boolean());
        assert_eq!(q.len(), 2);
        assert!(cqa_query::eval::satisfies(&doc.database, q));
        let (_, q2) = &doc.queries[1];
        assert_eq!(q2.free_vars().len(), 1);
    }

    #[test]
    fn key_prefix_is_derived_from_stars() {
        let doc = parse_document("relation R(a*, b*, c)\nR(1, 2, 3)\n").unwrap();
        let r = doc.schema.relation_id("R").unwrap();
        assert_eq!(doc.schema.relation(r).key_len(), 2);
        assert_eq!(doc.schema.relation(r).arity(), 3);
        // Integer constants are parsed as integers.
        let fact = doc.database.facts().next().unwrap();
        assert_eq!(fact.value(0), &Value::Int(1));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let bad_key = parse_document("relation R(a, b*)\n");
        assert!(bad_key.is_err());
        assert_eq!(bad_key.unwrap_err().line, 1);
        let unknown = parse_document("relation R(a*)\nS(1)\n").unwrap_err();
        assert_eq!(unknown.line, 2);
        assert!(unknown.to_string().contains('S'));
        let arity = parse_document("relation R(a*)\nR(1, 2)\n").unwrap_err();
        assert_eq!(arity.line, 2);
        let bad_query = parse_document("relation R(a*)\ncertain q :- T(x)\n").unwrap_err();
        assert!(bad_query.to_string().contains('T'));
    }

    #[test]
    fn quoted_strings_and_variables_are_distinguished() {
        let doc = parse_document("relation R(a*, b)\nR(x, y)\ncertain q :- R(x, \"y\")\n").unwrap();
        // In the fact, bare `x` and `y` are constants.
        assert_eq!(doc.database.fact_count(), 1);
        let (_, q) = &doc.queries[0];
        // In the query, x is a variable and "y" a constant.
        assert_eq!(q.vars().len(), 1);
        assert!(cqa_query::eval::satisfies(&doc.database, q));
    }

    #[test]
    fn query_lines_parse_standalone() {
        // The `certainty serve` stream format: one query per line, with or
        // without a head.
        let doc = parse_document(CONFERENCE).unwrap();
        let (name, q) = parse_query_line(&doc.schema, "rome :- C(x, y, \"Rome\")", 1).unwrap();
        assert_eq!(name, "rome");
        assert!(q.is_boolean());
        let (name, q) = parse_query_line(&doc.schema, "which(x) :- R(x, \"A\")", 2).unwrap();
        assert_eq!(name, "which");
        assert_eq!(q.free_vars().len(), 1);
        // A bare body gets a synthesized name.
        let (name, q) = parse_query_line(&doc.schema, "C(x, y, \"Rome\")", 7).unwrap();
        assert_eq!(name, "q7");
        assert_eq!(q.len(), 1);
        assert!(parse_query_line(&doc.schema, "q :- T(x)", 3).is_err());
        // The bare-body leniency is serve-only: the document format still
        // rejects a `certain` line without `:-`.
        let strict = parse_document("relation R(a*)\ncertain R(x)\n").unwrap_err();
        assert_eq!(strict.line, 2);
        assert!(strict.to_string().contains(":-"));
    }

    #[test]
    fn fact_lines_parse_standalone() {
        // The serve protocol's write format: one fact per line.
        let doc = parse_document(CONFERENCE).unwrap();
        let fact = parse_fact_line(&doc.schema, "R(PODS, A)", 1).unwrap();
        assert!(doc.database.contains(&fact));
        let fresh = parse_fact_line(&doc.schema, "C(ICDT, 2015, \"Brussels\")", 2).unwrap();
        assert!(!doc.database.contains(&fresh));
        assert_eq!(fresh.values()[1], Value::Int(2015));
        assert!(parse_fact_line(&doc.schema, "T(a)", 3).is_err());
        assert!(parse_fact_line(&doc.schema, "R(PODS)", 4).is_err());
        assert!(parse_fact_line(&doc.schema, "no parens", 5).is_err());
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let doc =
            parse_document("# nothing\n\n   \nrelation R(a*)\n# more\nR(1) # inline\n").unwrap();
        assert_eq!(doc.database.fact_count(), 1);
    }
}
