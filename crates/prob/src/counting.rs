//! The counting variant `♯CERTAINTY(q)`: how many repairs satisfy `q`?
//!
//! Maslowski and Wijsen showed an FP / ♯P-complete dichotomy for this problem
//! (Theorem 7 cites it); reproducing their dichotomy is out of scope for this
//! repository (see `DESIGN.md` §4), but the brute-force counter below is used
//! to cross-validate `CERTAINTY` answers (`certain ⇔ all repairs satisfy`)
//! and the uniform-repair probability (`Pr(q) = satisfying / total`).

use cqa_data::UncertainDatabase;
use cqa_query::{eval, ConjunctiveQuery};

/// The result of counting repairs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RepairCount {
    /// Number of repairs satisfying the query.
    pub satisfying: u128,
    /// Total number of repairs.
    pub total: u128,
}

impl RepairCount {
    /// The fraction of satisfying repairs (the uniform-repair probability).
    pub fn fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.satisfying as f64 / self.total as f64
        }
    }

    /// True iff every repair satisfies the query.
    pub fn is_certain(&self) -> bool {
        self.satisfying == self.total
    }
}

/// Counts the repairs of `db` satisfying `query` by exhaustive enumeration.
/// Exponential in the number of violated blocks.
pub fn count_satisfying_repairs(db: &UncertainDatabase, query: &ConjunctiveQuery) -> RepairCount {
    let mut satisfying = 0u128;
    let mut total = 0u128;
    for repair in db.repairs() {
        total += 1;
        if eval::naive::satisfies(&repair, query) {
            satisfying += 1;
        }
    }
    RepairCount { satisfying, total }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_query::catalog;

    #[test]
    fn figure1_counts_three_of_four() {
        let q = catalog::conference().query;
        let db = catalog::conference_database();
        let count = count_satisfying_repairs(&db, &q);
        assert_eq!(count.total, 4);
        assert_eq!(count.satisfying, 3);
        assert!(!count.is_certain());
        assert!((count.fraction() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn consistent_databases_have_a_single_repair() {
        let q = catalog::conference().query;
        let mut db = catalog::conference_database();
        let c = db.schema().relation_id("C").unwrap();
        let r = db.schema().relation_id("R").unwrap();
        db.remove_fact(&cqa_data::Fact::new(
            c,
            vec![
                cqa_data::Value::str("PODS"),
                cqa_data::Value::str("2016"),
                cqa_data::Value::str("Paris"),
            ],
        ));
        db.remove_fact(&cqa_data::Fact::new(
            r,
            vec![cqa_data::Value::str("KDD"), cqa_data::Value::str("B")],
        ));
        let count = count_satisfying_repairs(&db, &q);
        assert_eq!(count.total, 1);
        assert_eq!(count.satisfying, 1);
        assert!(count.is_certain());
    }
}
