//! Blocks: maximal sets of key-equal facts.
//!
//! Section 3: *"A block of `db` is a maximal set of key-equal facts of `db`.
//! [...] An uncertain database `db` is consistent if it does not contain two
//! distinct facts that are key-equal (i.e., if every block of `db` is a
//! singleton)."*
//!
//! Probabilistically (Section 7), the facts of one block are *disjoint*
//! (exclusive) events, while facts of distinct blocks are independent.

use crate::{Fact, RelationId, Value};
use std::fmt;

/// A stable handle to a block inside an [`crate::UncertainDatabase`].
///
/// Block ids are dense per database (`0..db.block_count()`), so solvers can
/// store per-block state in plain vectors.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct BlockId(pub(crate) u32);

impl BlockId {
    /// Dense index of the block.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Creates a block id from a dense index (mostly useful in tests).
    pub fn from_index(i: usize) -> Self {
        BlockId(i as u32)
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "block#{}", self.0)
    }
}

/// A maximal set of key-equal facts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Block {
    relation: RelationId,
    key: Vec<Value>,
    facts: Vec<Fact>,
}

impl Block {
    pub(crate) fn new(relation: RelationId, key: Vec<Value>) -> Self {
        Block {
            relation,
            key,
            facts: Vec::new(),
        }
    }

    pub(crate) fn push(&mut self, fact: Fact) -> bool {
        if self.facts.contains(&fact) {
            false
        } else {
            self.facts.push(fact);
            true
        }
    }

    pub(crate) fn remove(&mut self, fact: &Fact) -> bool {
        if let Some(pos) = self.facts.iter().position(|f| f == fact) {
            self.facts.remove(pos);
            true
        } else {
            false
        }
    }

    /// The relation all facts of this block belong to.
    pub fn relation(&self) -> RelationId {
        self.relation
    }

    /// The shared primary-key value of the block.
    pub fn key(&self) -> &[Value] {
        &self.key
    }

    /// The facts of the block (at least one; more than one iff the block
    /// witnesses a primary-key violation).
    pub fn facts(&self) -> &[Fact] {
        &self.facts
    }

    /// Number of facts in the block.
    pub fn len(&self) -> usize {
        self.facts.len()
    }

    /// True iff the block is empty (only transiently, during removal).
    pub fn is_empty(&self) -> bool {
        self.facts.is_empty()
    }

    /// True iff the block is a singleton, i.e. consistent.
    pub fn is_singleton(&self) -> bool {
        self.facts.len() == 1
    }

    /// True iff the block contains the given fact.
    pub fn contains(&self, fact: &Fact) -> bool {
        self.facts.contains(fact)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Schema;

    #[test]
    fn blocks_deduplicate_facts() {
        let schema = Schema::from_relations([("R", 2, 1)]).unwrap();
        let r = schema.relation_id("R").unwrap();
        let mut block = Block::new(r, vec![Value::str("a")]);
        let f = Fact::new(r, vec![Value::str("a"), Value::str("b")]);
        assert!(block.push(f.clone()));
        assert!(!block.push(f.clone()));
        assert_eq!(block.len(), 1);
        assert!(block.is_singleton());
        assert!(block.contains(&f));
    }

    #[test]
    fn removal_empties_the_block() {
        let schema = Schema::from_relations([("R", 2, 1)]).unwrap();
        let r = schema.relation_id("R").unwrap();
        let mut block = Block::new(r, vec![Value::str("a")]);
        let f = Fact::new(r, vec![Value::str("a"), Value::str("b")]);
        block.push(f.clone());
        assert!(block.remove(&f));
        assert!(!block.remove(&f));
        assert!(block.is_empty());
    }
}
