//! Memoization of compiled plans per `(schema, query)`.
//!
//! Plans depend only on the query text, the schema and (for ordering, not
//! correctness) statistics, so a long-running service compiling each
//! incoming query once amortizes planning across every later snapshot. The
//! cache key is a structural fingerprint — relation signatures plus the
//! query rendering — rather than a pointer, so schema clones hit the same
//! entry and a dropped-and-reallocated schema cannot alias a stale one.
//!
//! The cache is **bounded**: beyond its capacity the least-recently-used
//! entry is evicted, so a service fed an unbounded stream of distinct
//! queries cannot grow without limit. Recency is tracked by a per-entry
//! stamp bumped from a global tick on every hit, which keeps the hot path
//! under the shared read lock; eviction (rare by construction) does an
//! O(n) min-stamp scan under the write lock. Hits, misses and evictions
//! are counted in the metrics registry under `exec.plan_cache.*`.
//!
//! Since the data layer keeps index snapshots alive across mutations (delta
//! maintenance instead of invalidation), a cached plan can now outlive the
//! statistics it was compiled against by *a lot*. Every entry therefore
//! remembers a [`StatsStamp`] of its compile-time statistics; a hit whose
//! current statistics have [drifted](StatsStamp::drifted_from) beyond
//! [`DRIFT_FACTOR`] recompiles the plan with the fresh statistics (counted
//! as `exec.plan_cache.stale`), so long-lived services keep honest join
//! orders as the data grows or shrinks underneath them.

use crate::QueryPlan;
use cqa_data::Statistics;
use cqa_query::ConjunctiveQuery;
use rustc_hash::FxHashMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, PoisonError, RwLock};

/// Default capacity: far above any workload in this repo (the CLI and the
/// batch engine see tens of distinct queries), so eviction only engages
/// under a genuinely unbounded query stream.
pub const DEFAULT_CAPACITY: usize = 1024;

/// Cardinality ratio beyond which compile-time statistics are considered
/// stale: a relation must grow or shrink ≥ 4× before a cached plan is
/// recompiled. Join-order quality degrades logarithmically with estimate
/// error, so small drift is harmless while recompiling per mutation would
/// forfeit the cache entirely.
pub const DRIFT_FACTOR: usize = 4;

/// A compact summary of the [`Statistics`] a plan was compiled against:
/// the per-relation fact counts (the only inputs whose drift reorders
/// joins at the scale the cost model cares about).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StatsStamp {
    fact_counts: Vec<usize>,
}

impl StatsStamp {
    /// Stamps the statistics a plan is about to be compiled against
    /// (`None` stamps as "compiled blind").
    pub fn of(stats: Option<&Statistics>) -> StatsStamp {
        StatsStamp {
            fact_counts: stats
                .map(|s| s.iter().map(|(_, r)| r.fact_count()).collect())
                .unwrap_or_default(),
        }
    }

    /// True iff `stats` differ from this stamp by at least
    /// [`DRIFT_FACTOR`] on some relation's cardinality (or the stamp was
    /// taken blind and real statistics are now available). `None` never
    /// drifts — with no fresh statistics there is nothing better to
    /// recompile against.
    pub fn drifted_from(&self, stats: Option<&Statistics>) -> bool {
        let Some(stats) = stats else {
            return false;
        };
        let current: Vec<usize> = stats.iter().map(|(_, r)| r.fact_count()).collect();
        if self.fact_counts.len() != current.len() {
            return true;
        }
        self.fact_counts.iter().zip(&current).any(|(&old, &new)| {
            let (lo, hi) = if old <= new { (old, new) } else { (new, old) };
            hi.max(1) >= lo.max(1) * DRIFT_FACTOR
        })
    }
}

/// A cached plan plus its last-touched stamp and compile-time statistics.
struct Entry {
    plan: Arc<QueryPlan>,
    touched: AtomicU64,
    stamp: StatsStamp,
}

/// A thread-safe, poison-proof, LRU-bounded cache of compiled
/// [`QueryPlan`]s.
pub struct PlanCache {
    plans: RwLock<FxHashMap<String, Entry>>,
    capacity: usize,
    tick: AtomicU64,
}

impl Default for PlanCache {
    fn default() -> Self {
        PlanCache::with_capacity(DEFAULT_CAPACITY)
    }
}

/// The cache key of a query: relation signatures followed by the query
/// rendering. Exported so other per-query caches (the `cqa-par` batch
/// engine's classified-engine memo) key on exactly the same notion of
/// "same (schema, query)" and cannot drift from this cache.
pub fn fingerprint(query: &ConjunctiveQuery) -> String {
    let mut key = String::new();
    for (_, relation) in query.schema().iter() {
        let _ = write!(
            key,
            "{}[{},{}];",
            relation.name,
            relation.arity(),
            relation.key_len()
        );
    }
    let _ = write!(key, "|{query}");
    key
}

impl PlanCache {
    /// Creates an empty cache with the [default capacity](DEFAULT_CAPACITY).
    pub fn new() -> Self {
        PlanCache::default()
    }

    /// Creates an empty cache evicting beyond `capacity` plans (minimum 1).
    pub fn with_capacity(capacity: usize) -> Self {
        PlanCache {
            plans: RwLock::new(FxHashMap::default()),
            capacity: capacity.max(1),
            tick: AtomicU64::new(0),
        }
    }

    /// The capacity beyond which least-recently-used plans are evicted.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The compiled plan for `query`, compiling (with `stats` guiding the
    /// join order) only on the first request for this `(schema, query)` —
    /// or again when `stats` have drifted ≥ [`DRIFT_FACTOR`] from the
    /// cached plan's compile-time statistics.
    pub fn plan(&self, query: &ConjunctiveQuery, stats: Option<&Statistics>) -> Arc<QueryPlan> {
        let key = fingerprint(query);
        let mut stale = false;
        if let Some(entry) = self
            .plans
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(&key)
        {
            if entry.stamp.drifted_from(stats) {
                stale = true;
            } else {
                entry.touched.store(
                    self.tick.fetch_add(1, Ordering::Relaxed) + 1,
                    Ordering::Relaxed,
                );
                cqa_obs::count!("exec.plan_cache.hit");
                return entry.plan.clone();
            }
        }
        if stale {
            cqa_obs::count!("exec.plan_cache.stale");
        } else {
            cqa_obs::count!("exec.plan_cache.miss");
        }
        // Compile outside the lock: concurrent first requests may compile
        // twice, but only one result is kept and both callers get it.
        let compiled = Arc::new(QueryPlan::compile(query, stats));
        let compile_stamp = StatsStamp::of(stats);
        let mut guard = self.plans.write().unwrap_or_else(PoisonError::into_inner);
        let stamp = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
        if stale {
            // Replace the drifted entry (unless a racing recompile already
            // did; either replacement was compiled against fresh stats).
            guard.insert(
                key,
                Entry {
                    plan: compiled.clone(),
                    touched: AtomicU64::new(stamp),
                    stamp: compile_stamp,
                },
            );
            return compiled;
        }
        let plan = guard
            .entry(key)
            .or_insert_with(|| Entry {
                plan: compiled,
                touched: AtomicU64::new(stamp),
                stamp: compile_stamp,
            })
            .plan
            .clone();
        if guard.len() > self.capacity {
            let oldest = guard
                .iter()
                .min_by_key(|(_, entry)| entry.touched.load(Ordering::Relaxed))
                .map(|(key, _)| key.clone());
            if let Some(oldest) = oldest {
                guard.remove(&oldest);
                cqa_obs::count!("exec.plan_cache.eviction");
            }
        }
        plan
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.plans
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// True iff no plan is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every cached plan.
    pub fn clear(&self) {
        self.plans
            .write()
            .unwrap_or_else(PoisonError::into_inner)
            .clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_query::catalog;
    use std::sync::Arc as StdArc;

    #[test]
    fn identical_queries_share_one_plan() {
        let cache = PlanCache::new();
        let q = catalog::conference().query;
        let a = cache.plan(&q, None);
        let b = cache.plan(&q.clone(), None);
        assert!(StdArc::ptr_eq(&a, &b));
        assert_eq!(cache.len(), 1);
        let other = catalog::fo_path2().query;
        let c = cache.plan(&other, None);
        assert!(!StdArc::ptr_eq(&a, &c));
        assert_eq!(cache.len(), 2);
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn cached_plans_execute() {
        let cache = PlanCache::new();
        let q = catalog::conference().query;
        let db = catalog::conference_database();
        let index = db.index();
        let plan = cache.plan(&q, Some(index.statistics()));
        assert!(plan.satisfies(&db));
    }

    #[test]
    fn capacity_evicts_the_least_recently_used_plan() {
        let cache = PlanCache::with_capacity(2);
        assert_eq!(cache.capacity(), 2);
        let first = catalog::conference().query;
        let second = catalog::fo_path2().query;
        let third = catalog::fo_path3().query;
        let a = cache.plan(&first, None);
        cache.plan(&second, None);
        // Touch `first` so `second` is now the least recently used.
        cache.plan(&first, None);
        cache.plan(&third, None);
        assert_eq!(cache.len(), 2);
        // `first` survived the eviction; `second` was dropped and
        // recompiles to a fresh allocation.
        let a2 = cache.plan(&first, None);
        assert!(StdArc::ptr_eq(&a, &a2));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn drifted_statistics_recompile_the_cached_plan() {
        let cache = PlanCache::new();
        let q = catalog::conference().query;
        let mut db = catalog::conference_database();
        let plan = cache.plan(&q, Some(db.index().statistics()));
        // Same statistics: cache hit, same allocation.
        let again = cache.plan(&q, Some(db.index().statistics()));
        assert!(StdArc::ptr_eq(&plan, &again));
        // Grow one relation past DRIFT_FACTOR: the hit is declared stale
        // and the plan recompiles against the fresh statistics.
        let before = db
            .index()
            .statistics()
            .relation(db.schema().relation_id("R").unwrap())
            .fact_count();
        for i in 0..(before * DRIFT_FACTOR + 1) {
            db.insert_values("R", [format!("conf{i}"), format!("t{i}")])
                .unwrap();
        }
        let recompiled = cache.plan(&q, Some(db.index().statistics()));
        assert!(!StdArc::ptr_eq(&plan, &recompiled));
        assert_eq!(cache.len(), 1);
        // The replacement's stamp is fresh: no further recompile.
        let stable = cache.plan(&q, Some(db.index().statistics()));
        assert!(StdArc::ptr_eq(&recompiled, &stable));
        // Callers without statistics never trigger a drift recompile.
        let blind = cache.plan(&q, None);
        assert!(StdArc::ptr_eq(&recompiled, &blind));
    }

    #[test]
    fn stats_stamps_measure_relative_drift() {
        let db = catalog::conference_database();
        let index = db.index();
        let stamp = StatsStamp::of(Some(index.statistics()));
        assert!(!stamp.drifted_from(Some(index.statistics())));
        assert!(!stamp.drifted_from(None));
        // A blind stamp drifts as soon as real statistics appear.
        assert!(StatsStamp::of(None).drifted_from(Some(index.statistics())));
    }

    #[test]
    fn capacity_is_at_least_one() {
        let cache = PlanCache::with_capacity(0);
        assert_eq!(cache.capacity(), 1);
        cache.plan(&catalog::conference().query, None);
        cache.plan(&catalog::fo_path2().query, None);
        assert_eq!(cache.len(), 1);
    }
}
