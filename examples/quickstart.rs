//! Quickstart: the Figure 1 conference-planning example from the paper.
//!
//! Builds the uncertain database of Figure 1, asks whether the query
//! "will Rome host some A conference?" is *certainly* true (true in every
//! repair), classifies the query, and reports the probability of the query
//! under the uniform-repair distribution.
//!
//! Run with `cargo run --example quickstart`.

use cqa::core::classify::classify;
use cqa::core::solvers::{CertaintyEngine, CertaintySolver};
use cqa::prob::eval::probability_over_repairs;
use cqa::query::{ConjunctiveQuery, Term};
use cqa_data::{Schema, UncertainDatabase};

fn main() {
    // Schema: C(conf, year, city) with key {conf, year}; R(conf, rank) with key {conf}.
    let schema = Schema::from_relations([("C", 3, 2), ("R", 2, 1)])
        .expect("valid schema")
        .into_shared();

    // The uncertain database of Figure 1: PODS 2016 has two possible cities,
    // KDD has two possible ranks.
    let mut db = UncertainDatabase::new(schema.clone());
    for (conf, year, city) in [
        ("PODS", "2016", "Rome"),
        ("PODS", "2016", "Paris"),
        ("KDD", "2017", "Rome"),
    ] {
        db.insert_values("C", [conf, year, city]).unwrap();
    }
    for (conf, rank) in [("PODS", "A"), ("KDD", "A"), ("KDD", "B")] {
        db.insert_values("R", [conf, rank]).unwrap();
    }
    println!(
        "uncertain database ({} facts, {} blocks, {} repairs):",
        db.fact_count(),
        db.block_count(),
        db.repair_count().unwrap()
    );
    print!("{db}");

    // The Boolean query ∃x∃y (C(x, y, 'Rome') ∧ R(x, 'A')).
    let query = ConjunctiveQuery::builder(schema)
        .atom(
            "C",
            [Term::var("x"), Term::var("y"), Term::constant("Rome")],
        )
        .atom("R", [Term::var("x"), Term::constant("A")])
        .build()
        .unwrap();
    println!("\nquery: {query}");

    // Where does CERTAINTY(q) sit on the tractability frontier?
    let classification = classify(&query).unwrap();
    println!("classification: {}", classification.class);

    // Decide certainty with the automatically selected solver.
    let engine = CertaintyEngine::new(&query).unwrap();
    println!(
        "certain on every repair? {}   (solver: {})",
        engine.is_certain(&db),
        engine.solver_name()
    );

    // The paper's introduction: the query is true in 3 of the 4 repairs.
    println!(
        "probability under uniform repairs: {}",
        probability_over_repairs(&db, &query)
    );

    // Resolve the uncertainty about PODS 2016 and ask again.
    let mut fixed = db.clone();
    fixed.remove_fact(&cqa_data::Fact::new(
        fixed.schema().relation_id("C").unwrap(),
        vec!["PODS".into(), "2016".into(), "Paris".into()],
    ));
    println!(
        "after dropping C(PODS, 2016, Paris): certain? {}",
        engine.is_certain(&fixed)
    );
}
