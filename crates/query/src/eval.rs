//! Query evaluation over (uncertain) databases.
//!
//! `db |= q` holds iff there is a valuation `θ` over `vars(q)` with
//! `θ(q) ⊆ db` (Section 3). Evaluation here treats the uncertain database as
//! a plain relational instance — certainty semantics (truth in *every*
//! repair) is implemented on top of this by `cqa-core`.
//!
//! # The indexed join
//!
//! Evaluation is a backtracking join driven by the database's secondary
//! indexes ([`cqa_data::DatabaseIndex`]). At every search node the evaluator
//! computes, for each not-yet-joined atom, the positions that are already
//! *bound* — constant positions plus positions holding a variable the
//! current partial valuation maps — and probes the hash index on exactly
//! that position subset. The atom with the fewest candidate facts is joined
//! next (a fail-first dynamic ordering); an atom with zero candidates prunes
//! the node immediately, which is sound because binding more variables can
//! only shrink a candidate set.
//!
//! Compared to the textbook nested-loop join (retained in [`naive`] as the
//! reference implementation and benchmark baseline), each join step costs a
//! hash probe over a dense `u32` candidate list instead of a scan of the
//! whole database, and the join order adapts to the data instead of being
//! fixed up front.

use crate::{Atom, ConjunctiveQuery, Term, Valuation};
use cqa_data::{DatabaseIndex, FactId, PositionSet, UncertainDatabase, Value};
use std::collections::BTreeSet;
use std::sync::Arc;

/// The candidate facts for one atom at one search node: either every fact of
/// the atom's relation (no position bound yet) or the probe result of the
/// index on the bound positions, resolved once at construction so the join
/// loop never re-hashes the probe key.
enum Candidates {
    All,
    Probe(Arc<[u32]>),
}

impl Candidates {
    fn for_atom(index: &DatabaseIndex, atom: &Atom, current: &Valuation) -> Candidates {
        let mut bound = PositionSet::empty();
        let mut key: Vec<Value> = Vec::new();
        // Positions beyond the index's 64-position limit are left unbound:
        // the probe then returns a candidate superset and unification still
        // filters exactly, so exotic arities degrade instead of failing.
        for (pos, term) in atom
            .terms()
            .iter()
            .enumerate()
            .take(PositionSet::MAX_POSITIONS)
        {
            let value = match term {
                Term::Const(c) => Some(c.clone()),
                Term::Var(v) => current.get(v).cloned(),
            };
            if let Some(value) = value {
                bound.insert(pos);
                key.push(value);
            }
        }
        if bound.is_empty() {
            Candidates::All
        } else {
            let pindex = index.position_index(atom.relation(), bound);
            Candidates::Probe(pindex.candidates_shared(&key))
        }
    }

    fn ids<'a>(&'a self, index: &'a DatabaseIndex, atom: &Atom) -> &'a [u32] {
        match self {
            Candidates::All => index.relation_fact_ids(atom.relation()),
            Candidates::Probe(ids) => ids,
        }
    }
}

/// Backtracking join over the index. Calls `on_match` for every valuation
/// `θ` over `vars(q)` with `θ(q) ⊆ db` that extends the search's base
/// valuation; stops early if `on_match` returns `true` and reports whether
/// it did. `remaining` holds the ids of the atoms still to be joined (order
/// irrelevant; the next atom is chosen dynamically).
fn search<F>(
    index: &DatabaseIndex,
    query: &ConjunctiveQuery,
    remaining: &mut Vec<usize>,
    current: &Valuation,
    on_match: &mut F,
) -> bool
where
    F: FnMut(&Valuation) -> bool,
{
    if remaining.is_empty() {
        return on_match(current);
    }
    // Fail-first: join the atom with the fewest candidates under the current
    // bindings; zero candidates anywhere prunes the whole node.
    let mut best: Option<(usize, usize, Candidates)> = None;
    for (slot, &aid) in remaining.iter().enumerate() {
        let atom = query.atom(aid);
        let candidates = Candidates::for_atom(index, atom, current);
        let count = candidates.ids(index, atom).len();
        if count == 0 {
            return false;
        }
        if best.as_ref().is_none_or(|&(_, n, _)| count < n) {
            best = Some((slot, count, candidates));
        }
    }
    let (slot, _, candidates) = best.expect("remaining is non-empty");
    let aid = remaining.swap_remove(slot);
    let atom = query.atom(aid);
    let schema = query.schema();
    let mut found = false;
    for &fid in candidates.ids(index, atom) {
        let fact = index.fact(FactId::from_index(fid as usize));
        if let Some(extended) = current.unify_with_fact(atom, fact, schema) {
            if search(index, query, remaining, &extended, on_match) {
                found = true;
                break;
            }
        }
    }
    remaining.push(aid);
    found
}

/// Runs the indexed join, feeding matches to `on_match` until it returns
/// `true`; reports whether it did.
fn run<F>(
    db: &UncertainDatabase,
    query: &ConjunctiveQuery,
    base: &Valuation,
    on_match: &mut F,
) -> bool
where
    F: FnMut(&Valuation) -> bool,
{
    let index = db.index();
    let mut remaining: Vec<usize> = (0..query.len()).collect();
    search(&index, query, &mut remaining, base, on_match)
}

/// True iff `db |= q`, i.e. some valuation maps every atom of `q` into `db`.
pub fn satisfies(db: &UncertainDatabase, query: &ConjunctiveQuery) -> bool {
    satisfies_with(db, query, &Valuation::new())
}

/// True iff some valuation *extending `base`* maps every atom of `q` into `db`.
pub fn satisfies_with(db: &UncertainDatabase, query: &ConjunctiveQuery, base: &Valuation) -> bool {
    run(db, query, base, &mut |_| true)
}

/// Finds one satisfying valuation, if any.
pub fn find_valuation(db: &UncertainDatabase, query: &ConjunctiveQuery) -> Option<Valuation> {
    let mut found = None;
    run(db, query, &Valuation::new(), &mut |v| {
        found = Some(v.clone());
        true
    });
    found
}

/// Enumerates **all** valuations `θ` over `vars(q)` with `θ(q) ⊆ db`.
///
/// The result is deduplicated (the same total valuation cannot be produced
/// twice by the backtracking join, but callers should not rely on order).
pub fn all_valuations(db: &UncertainDatabase, query: &ConjunctiveQuery) -> Vec<Valuation> {
    let mut out = Vec::new();
    run(db, query, &Valuation::new(), &mut |v| {
        out.push(v.clone());
        false
    });
    out
}

/// The answers to a (possibly non-Boolean) query on `db`: the set of tuples
/// of constants for the free variables under some satisfying valuation.
///
/// For a Boolean query this returns `{[]}` if `db |= q` and `{}` otherwise.
pub fn answers(db: &UncertainDatabase, query: &ConjunctiveQuery) -> BTreeSet<Vec<Value>> {
    let mut out = BTreeSet::new();
    run(db, query, &Valuation::new(), &mut |v| {
        if let Some(tuple) = v.project(query.free_vars()) {
            out.insert(tuple);
        }
        false
    });
    out
}

/// The pre-index nested-loop evaluator, retained verbatim as the reference
/// implementation: the property tests assert that the indexed join above
/// agrees with it on randomized instances, and the benchmark harness uses it
/// as the baseline the index layer is measured against.
pub mod naive {
    use super::*;

    /// Chooses an evaluation order for the atoms: smaller relations first,
    /// then greedily preferring atoms connected to already-placed atoms (a
    /// static greedy join order that avoids Cartesian products when possible).
    fn atom_order(db: &UncertainDatabase, query: &ConjunctiveQuery) -> Vec<usize> {
        let n = query.len();
        let sizes: Vec<usize> = query
            .atoms()
            .iter()
            .map(|a| db.relation_facts(a.relation()).count())
            .collect();
        let mut remaining: Vec<usize> = (0..n).collect();
        let mut order = Vec::with_capacity(n);
        let mut bound_vars: BTreeSet<crate::Variable> = BTreeSet::new();
        while !remaining.is_empty() {
            // Prefer atoms sharing a variable with what is already bound, then
            // smaller relations, then lower atom id (determinism).
            let (pos, &best) = remaining
                .iter()
                .enumerate()
                .min_by_key(|(_, &i)| {
                    let connected = query.atom(i).vars().iter().any(|v| bound_vars.contains(v));
                    // Sort key: connected atoms first, then smaller relations, then atom id.
                    (!(order.is_empty() || connected), sizes[i], i)
                })
                .expect("remaining is non-empty");
            order.push(best);
            bound_vars.extend(query.atom(best).vars());
            remaining.remove(pos);
        }
        order
    }

    /// Nested-loop backtracking join: rescans the atom's whole relation at
    /// every search depth.
    fn search<F>(
        db: &UncertainDatabase,
        query: &ConjunctiveQuery,
        order: &[usize],
        depth: usize,
        current: &Valuation,
        on_match: &mut F,
    ) -> bool
    where
        F: FnMut(&Valuation) -> bool,
    {
        if depth == order.len() {
            return on_match(current);
        }
        let atom = query.atom(order[depth]);
        let schema = query.schema();
        for fact in db.relation_facts(atom.relation()) {
            if let Some(extended) = current.unify_with_fact(atom, fact, schema) {
                if search(db, query, order, depth + 1, &extended, on_match) {
                    return true;
                }
            }
        }
        false
    }

    /// Reference implementation of [`super::satisfies`].
    pub fn satisfies(db: &UncertainDatabase, query: &ConjunctiveQuery) -> bool {
        satisfies_with(db, query, &Valuation::new())
    }

    /// Reference implementation of [`super::satisfies_with`].
    pub fn satisfies_with(
        db: &UncertainDatabase,
        query: &ConjunctiveQuery,
        base: &Valuation,
    ) -> bool {
        let order = atom_order(db, query);
        search(db, query, &order, 0, base, &mut |_| true)
    }

    /// Reference implementation of [`super::all_valuations`].
    pub fn all_valuations(db: &UncertainDatabase, query: &ConjunctiveQuery) -> Vec<Valuation> {
        let order = atom_order(db, query);
        let mut out = Vec::new();
        search(db, query, &order, 0, &Valuation::new(), &mut |v| {
            out.push(v.clone());
            false
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Term, Variable};
    use cqa_data::Schema;
    use std::sync::Arc;

    fn conference_db() -> (Arc<Schema>, UncertainDatabase) {
        let schema = Schema::from_relations([("C", 3, 2), ("R", 2, 1)])
            .unwrap()
            .into_shared();
        let mut db = UncertainDatabase::new(schema.clone());
        db.insert_values("C", ["PODS", "2016", "Rome"]).unwrap();
        db.insert_values("C", ["PODS", "2016", "Paris"]).unwrap();
        db.insert_values("C", ["KDD", "2017", "Rome"]).unwrap();
        db.insert_values("R", ["PODS", "A"]).unwrap();
        db.insert_values("R", ["KDD", "A"]).unwrap();
        db.insert_values("R", ["KDD", "B"]).unwrap();
        (schema, db)
    }

    /// The Section 1 query: ∃x∃y (C(x, y, 'Rome') ∧ R(x, 'A')).
    fn rome_query(schema: &Arc<Schema>) -> ConjunctiveQuery {
        ConjunctiveQuery::builder(schema.clone())
            .atom(
                "C",
                [Term::var("x"), Term::var("y"), Term::constant("Rome")],
            )
            .atom("R", [Term::var("x"), Term::constant("A")])
            .build()
            .unwrap()
    }

    #[test]
    fn satisfaction_on_the_conference_database() {
        let (schema, db) = conference_db();
        let q = rome_query(&schema);
        assert!(satisfies(&db, &q));
        // Two witnesses: PODS 2016 Rome and KDD 2017 Rome (both rank A rows join).
        let vals = all_valuations(&db, &q);
        assert_eq!(vals.len(), 2);
        for v in &vals {
            assert!(v.is_total_on(&q.vars()));
            let facts = v.apply_query(&q).unwrap();
            assert!(facts.iter().all(|f| db.contains(f)));
        }
    }

    #[test]
    fn unsatisfied_query() {
        let (schema, db) = conference_db();
        let q = ConjunctiveQuery::builder(schema)
            .atom(
                "C",
                [Term::var("x"), Term::var("y"), Term::constant("Tokyo")],
            )
            .build()
            .unwrap();
        assert!(!satisfies(&db, &q));
        assert!(find_valuation(&db, &q).is_none());
        assert!(all_valuations(&db, &q).is_empty());
    }

    #[test]
    fn empty_query_is_always_satisfied() {
        let (schema, db) = conference_db();
        let q = ConjunctiveQuery::boolean(schema.clone(), Vec::new()).unwrap();
        assert!(satisfies(&db, &q));
        let empty_db = UncertainDatabase::new(schema);
        assert!(satisfies(&empty_db, &q));
        assert_eq!(all_valuations(&empty_db, &q).len(), 1);
    }

    #[test]
    fn answers_project_free_variables() {
        let (schema, db) = conference_db();
        let q = ConjunctiveQuery::builder(schema)
            .atom(
                "C",
                [Term::var("x"), Term::var("y"), Term::constant("Rome")],
            )
            .atom("R", [Term::var("x"), Term::constant("A")])
            .free([Variable::new("x")])
            .build()
            .unwrap();
        let ans = answers(&db, &q);
        let expected: BTreeSet<Vec<Value>> = [vec![Value::str("PODS")], vec![Value::str("KDD")]]
            .into_iter()
            .collect();
        assert_eq!(ans, expected);
    }

    #[test]
    fn boolean_answers_are_the_empty_tuple() {
        let (schema, db) = conference_db();
        let q = rome_query(&schema);
        let ans = answers(&db, &q);
        assert_eq!(ans.len(), 1);
        assert!(ans.contains(&Vec::new()));
    }

    #[test]
    fn satisfies_with_respects_partial_bindings() {
        let (schema, db) = conference_db();
        let q = rome_query(&schema);
        let mut base = Valuation::new();
        base.bind(Variable::new("x"), Value::str("KDD"));
        assert!(satisfies_with(&db, &q, &base));
        let mut base2 = Valuation::new();
        base2.bind(Variable::new("x"), Value::str("ICML"));
        assert!(!satisfies_with(&db, &q, &base2));
    }

    #[test]
    fn repeated_variables_join_within_an_atom() {
        let schema = Schema::from_relations([("E", 2, 1)]).unwrap().into_shared();
        let mut db = UncertainDatabase::new(schema.clone());
        db.insert_values("E", ["a", "a"]).unwrap();
        db.insert_values("E", ["b", "c"]).unwrap();
        let q = ConjunctiveQuery::builder(schema)
            .atom("E", [Term::var("x"), Term::var("x")])
            .build()
            .unwrap();
        let vals = all_valuations(&db, &q);
        assert_eq!(vals.len(), 1);
        assert_eq!(vals[0].get(&Variable::new("x")), Some(&Value::str("a")));
    }

    #[test]
    fn cartesian_products_are_still_correct() {
        // Two atoms with disjoint variables: the join degenerates to a product.
        let schema = Schema::from_relations([("A", 1, 1), ("B", 1, 1)])
            .unwrap()
            .into_shared();
        let mut db = UncertainDatabase::new(schema.clone());
        db.insert_values("A", ["1"]).unwrap();
        db.insert_values("A", ["2"]).unwrap();
        db.insert_values("B", ["x"]).unwrap();
        let q = ConjunctiveQuery::builder(schema)
            .atom("A", [Term::var("u")])
            .atom("B", [Term::var("v")])
            .build()
            .unwrap();
        assert_eq!(all_valuations(&db, &q).len(), 2);
    }

    #[test]
    fn ground_atoms_probe_the_full_tuple() {
        let (schema, db) = conference_db();
        let present = ConjunctiveQuery::builder(schema.clone())
            .atom(
                "C",
                [
                    Term::constant("PODS"),
                    Term::constant("2016"),
                    Term::constant("Rome"),
                ],
            )
            .build()
            .unwrap();
        let absent = ConjunctiveQuery::builder(schema)
            .atom(
                "C",
                [
                    Term::constant("PODS"),
                    Term::constant("2016"),
                    Term::constant("Tokyo"),
                ],
            )
            .build()
            .unwrap();
        assert!(satisfies(&db, &present));
        assert!(!satisfies(&db, &absent));
    }

    #[test]
    fn relations_wider_than_the_position_limit_still_evaluate() {
        // Positions ≥ PositionSet::MAX_POSITIONS cannot be indexed; the join
        // must fall back to a superset probe plus unification, not panic.
        let wide = 70usize;
        let schema = Schema::from_relations([("W", wide, 1)])
            .unwrap()
            .into_shared();
        let mut db = UncertainDatabase::new(schema.clone());
        let mut row = vec!["k"; wide];
        row[wide - 1] = "last";
        db.insert_values("W", row.clone()).unwrap();
        let mut hit_terms: Vec<Term> = (0..wide - 1).map(|_| Term::var("x")).collect();
        hit_terms.push(Term::constant("last"));
        let mut miss_terms: Vec<Term> = (0..wide - 1).map(|_| Term::var("x")).collect();
        miss_terms.push(Term::constant("other"));
        let hit = ConjunctiveQuery::builder(schema.clone())
            .atom("W", hit_terms)
            .build()
            .unwrap();
        let miss = ConjunctiveQuery::builder(schema)
            .atom("W", miss_terms)
            .build()
            .unwrap();
        assert!(satisfies(&db, &hit));
        assert!(!satisfies(&db, &miss));
        assert_eq!(satisfies(&db, &hit), naive::satisfies(&db, &hit));
        assert_eq!(satisfies(&db, &miss), naive::satisfies(&db, &miss));
    }

    #[test]
    fn indexed_and_naive_agree_on_handwritten_cases() {
        let (schema, db) = conference_db();
        let queries = [
            rome_query(&schema),
            ConjunctiveQuery::builder(schema.clone())
                .atom("C", [Term::var("x"), Term::var("y"), Term::var("z")])
                .atom("R", [Term::var("x"), Term::var("r")])
                .build()
                .unwrap(),
            ConjunctiveQuery::builder(schema.clone())
                .atom(
                    "C",
                    [Term::var("x"), Term::var("y"), Term::constant("Tokyo")],
                )
                .build()
                .unwrap(),
        ];
        for q in &queries {
            assert_eq!(satisfies(&db, q), naive::satisfies(&db, q), "{q}");
            let mut indexed: Vec<String> = all_valuations(&db, q)
                .iter()
                .map(|v| format!("{v:?}"))
                .collect();
            let mut reference: Vec<String> = naive::all_valuations(&db, q)
                .iter()
                .map(|v| format!("{v:?}"))
                .collect();
            indexed.sort();
            reference.sort();
            assert_eq!(indexed, reference, "{q}");
        }
    }
}
