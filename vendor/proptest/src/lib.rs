//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this vendored shim
//! implements the subset of the proptest surface the workspace's property
//! tests use:
//!
//! * the [`proptest!`] macro with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header and
//!   `arg in strategy` parameters,
//! * integer-range strategies (`0u64..5_000`, `1usize..7`, inclusive ranges),
//! * [`prop_assert!`], [`prop_assert_eq!`] and [`prop_assume!`].
//!
//! Each generated `#[test]` runs its body for `cases` pseudo-random samples
//! drawn from a generator seeded deterministically from the test name, so
//! failures are reproducible run-to-run. Unlike real proptest there is no
//! shrinking: the failing case's inputs are reported as-is via the panic
//! message assembled by the `prop_assert*` macros.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

pub use rand::rngs::StdRng as TestRng;
use rand::{Rng, SeedableRng};

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A value generator: the strategy side of the `arg in strategy` syntax.
pub trait Strategy {
    /// The type of values produced.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_strategy_for_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_strategy_for_int_range!(usize, u64, u32, u16, u8);

/// Builds the deterministic per-test generator. Public because the
/// [`proptest!`] expansion calls it from the test crate.
pub fn test_rng(test_name: &str) -> TestRng {
    let mut seed: u64 = 0xCBF2_9CE4_8422_2325;
    for b in test_name.bytes() {
        seed ^= b as u64;
        seed = seed.wrapping_mul(0x1000_0000_01B3);
    }
    TestRng::seed_from_u64(seed)
}

/// Everything a property-test module needs.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest, ProptestConfig, Strategy};
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs `body` for many sampled argument tuples.
#[macro_export]
macro_rules! proptest {
    (@funcs ($cfg:expr)) => {};
    (@funcs ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::test_rng(stringify!($name));
            for _case in 0..config.cases {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)*
                // The body runs inside the loop so `prop_assume!` can
                // `continue` to the next case.
                $body
            }
        }
        $crate::proptest!(@funcs ($cfg) $($rest)*);
    };
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@funcs ($cfg) $($rest)*);
    };
    (
        $($rest:tt)*
    ) => {
        $crate::proptest!(@funcs ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

/// Skips the current case when its inputs do not meet a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_are_respected(a in 0u64..100, b in 1usize..7) {
            prop_assert!(a < 100);
            prop_assert!((1..7).contains(&b));
        }

        #[test]
        fn assume_skips_cases(a in 0u64..10) {
            prop_assume!(a % 2 == 0);
            prop_assert_eq!(a % 2, 0);
        }
    }

    proptest! {
        #[test]
        fn default_config_works(x in 0u32..5) {
            prop_assert!(x < 5, "x = {x}");
        }
    }
}
