//! The batch engine: many queries, one snapshot, one pool.
//!
//! This is the "serve heavy traffic" story of the ROADMAP: a service holds
//! one immutable [`Snapshot`] of the data and a stream of incoming queries.
//! [`BatchEngine::run`] answers a whole batch concurrently — one job per
//! query, inter-query parallelism — and returns the results **in input
//! order**, so the caller's output is deterministic however the workers
//! interleaved.
//!
//! Two caches amortize repeated traffic, both shared across the whole
//! process: compiled satisfaction plans go through
//! [`cqa_core::answers::shared_plan_cache`], and classified
//! [`CertaintyEngine`]s (classification + attack graph + compiled rewriting)
//! are memoized per `(schema, query)` fingerprint in the engine cache here —
//! the second time a query shape arrives, answering it is pure plan
//! execution.
//!
//! Within one batch job the evaluation is deliberately **sequential**: a
//! job that blocked on sub-jobs of the same pool could deadlock a small
//! pool, and inter-query parallelism already saturates the workers when
//! traffic is heavy. Use [`ParallelEngine`](crate::ParallelEngine) /
//! [`certain_answers_par`](crate::certain_answers_par) from outside the
//! pool for intra-query parallelism on a single huge problem.

use crate::pool::{par_map_opt, ParPool};
use cqa_core::answers::{certain_answers, AnswerSets};
use cqa_core::solvers::{CertaintyEngine, CertaintySolver};
use cqa_data::Snapshot;
use cqa_exec::cache::fingerprint;
use cqa_query::ConjunctiveQuery;
use rustc_hash::FxHashMap;
use std::sync::{Arc, Mutex, PoisonError};

/// The outcome of one query of a batch.
#[derive(Debug)]
pub enum BatchOutcome {
    /// A Boolean query: its certainty and possibility verdicts, plus the
    /// name of the solver the engine dispatched to.
    Boolean {
        /// True iff every repair satisfies the query.
        certain: bool,
        /// True iff some repair satisfies the query.
        possible: bool,
        /// The dispatched solver (see `cqa_core::solvers`).
        solver: &'static str,
    },
    /// A query with free variables: its certain and possible answer sets.
    Answers(AnswerSets),
    /// The query could not be answered (classification failed, self-join,
    /// …). Batch processing continues past failed queries.
    Error(String),
}

/// One named result of [`BatchEngine::run`], in input order.
#[derive(Debug)]
pub struct BatchResult {
    /// The query's name, as submitted.
    pub name: String,
    /// What happened.
    pub outcome: BatchOutcome,
}

/// Answers batches of queries over one frozen [`Snapshot`].
pub struct BatchEngine {
    snapshot: Snapshot,
    pool: ParPool,
    /// Memoized classified engines per `(schema, query)` fingerprint.
    engines: Arc<Mutex<FxHashMap<String, Arc<CertaintyEngine>>>>,
}

impl BatchEngine {
    /// A batch engine over `snapshot`, running on `pool`.
    pub fn new(snapshot: Snapshot, pool: ParPool) -> BatchEngine {
        BatchEngine {
            snapshot,
            pool,
            engines: Arc::new(Mutex::new(FxHashMap::default())),
        }
    }

    /// The frozen snapshot every query of every batch is answered against.
    pub fn snapshot(&self) -> &Snapshot {
        &self.snapshot
    }

    /// The mutation epoch of the engine's snapshot
    /// ([`Snapshot::epoch`]): one integer compare against the live
    /// database's [`epoch`](cqa_data::UncertainDatabase::epoch) tells a
    /// serving loop whether this engine is answering against stale data.
    pub fn epoch(&self) -> u64 {
        self.snapshot.epoch()
    }

    /// True iff `db` has been effectively mutated since this engine's
    /// snapshot was frozen from it.
    pub fn is_stale_for(&self, db: &cqa_data::UncertainDatabase) -> bool {
        self.snapshot.is_stale_for(db)
    }

    /// Swaps in a fresh snapshot, **keeping** the memoized classified
    /// engines: classification and rewriting shape depend only on the query
    /// and the schema, not the data, so after a refresh a known query shape
    /// is still pure plan execution (plans themselves re-check statistics
    /// drift in their own caches). Counted as `par.batch.refresh`.
    pub fn refresh(&mut self, snapshot: Snapshot) {
        cqa_obs::count!("par.batch.refresh");
        self.snapshot = snapshot;
    }

    /// A new engine over `snapshot` that **shares** this engine's pool and
    /// memoized classified engines. This is the epoch-swap primitive of the
    /// serving layer: readers keep answering on the old engine's frozen
    /// snapshot while the writer builds the next epoch's engine from the
    /// delta-patched index; publishing the new engine is then one atomic
    /// pointer swap, and known query shapes stay pure plan execution on
    /// both sides of the swap. Counted as `par.batch.epoch_fork`.
    pub fn with_snapshot(&self, snapshot: Snapshot) -> BatchEngine {
        cqa_obs::count!("par.batch.epoch_fork");
        BatchEngine {
            snapshot,
            pool: self.pool.clone(),
            engines: self.engines.clone(),
        }
    }

    /// The pool batch jobs run on.
    pub fn pool(&self) -> &ParPool {
        &self.pool
    }

    /// Number of classified engines currently memoized.
    pub fn cached_engine_count(&self) -> usize {
        self.engines
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Answers every query of the batch concurrently (one pool job per
    /// query) and returns the results in **input order**. A query that
    /// fails — or whose evaluation panics — yields [`BatchOutcome::Error`]
    /// without disturbing the others: a poisoned query must not take the
    /// serving process down.
    pub fn run(&self, queries: Vec<(String, ConjunctiveQuery)>) -> Vec<BatchResult> {
        let names: Vec<String> = queries.iter().map(|(name, _)| name.clone()).collect();
        let snapshot = self.snapshot.clone();
        let engines = self.engines.clone();
        let results = par_map_opt(&self.pool, queries, move |_, (name, query)| {
            let outcome = answer_one(&snapshot, &engines, &query);
            BatchResult { name, outcome }
        });
        results
            .into_iter()
            .zip(names)
            .map(|(result, name)| {
                result.unwrap_or_else(|| BatchResult {
                    name,
                    outcome: BatchOutcome::Error("query evaluation panicked".to_string()),
                })
            })
            .collect()
    }

    /// Answers a single query on the calling thread (the batch path without
    /// the pool round-trip), sharing the same caches.
    pub fn answer(&self, name: &str, query: &ConjunctiveQuery) -> BatchResult {
        BatchResult {
            name: name.to_string(),
            outcome: answer_one(&self.snapshot, &self.engines, query),
        }
    }
}

/// Answers one query against the snapshot, memoizing classified engines.
/// Each call records its wall time into the `par.batch.query_nanos`
/// histogram (the source of the serving layer's p50/p99).
fn answer_one(
    snapshot: &Snapshot,
    engines: &Mutex<FxHashMap<String, Arc<CertaintyEngine>>>,
    query: &ConjunctiveQuery,
) -> BatchOutcome {
    let started = std::time::Instant::now();
    let outcome = answer_one_inner(snapshot, engines, query);
    cqa_obs::observe_duration!("par.batch.query_nanos", started.elapsed());
    outcome
}

fn answer_one_inner(
    snapshot: &Snapshot,
    engines: &Mutex<FxHashMap<String, Arc<CertaintyEngine>>>,
    query: &ConjunctiveQuery,
) -> BatchOutcome {
    let db = snapshot.database();
    if !query.is_boolean() {
        return match certain_answers(query, db) {
            Ok(sets) => BatchOutcome::Answers(sets),
            Err(e) => BatchOutcome::Error(e.to_string()),
        };
    }
    let key = fingerprint(query);
    let cached = engines
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .get(&key)
        .cloned();
    if cached.is_some() {
        cqa_obs::count!("par.batch.engine.hit");
    } else {
        cqa_obs::count!("par.batch.engine.miss");
    }
    let engine = match cached {
        Some(engine) => engine,
        None => match CertaintyEngine::new(query) {
            Ok(engine) => {
                // Classify outside the lock; a concurrent duplicate loses
                // the entry race harmlessly (both engines answer alike).
                let engine = Arc::new(engine);
                engines
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .entry(key)
                    .or_insert_with(|| engine.clone())
                    .clone()
            }
            Err(e) => return BatchOutcome::Error(e.to_string()),
        },
    };
    BatchOutcome::Boolean {
        certain: engine.is_certain(db),
        possible: engine.is_possible(db),
        solver: engine.solver_name(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_query::{catalog, Term, Variable};

    #[test]
    fn batches_answer_in_input_order_and_reuse_engines() {
        let db = catalog::conference_database();
        let engine = BatchEngine::new(db.snapshot(), ParPool::new(3));
        let boolean = catalog::conference().query;
        let free = ConjunctiveQuery::builder(boolean.schema().clone())
            .atom(
                "C",
                [Term::var("x"), Term::var("y"), Term::constant("Rome")],
            )
            .atom("R", [Term::var("x"), Term::constant("A")])
            .free([Variable::new("x")])
            .build()
            .unwrap();
        let batch: Vec<(String, ConjunctiveQuery)> = (0..12)
            .map(|i| {
                if i % 2 == 0 {
                    (format!("b{i}"), boolean.clone())
                } else {
                    (format!("f{i}"), free.clone())
                }
            })
            .collect();
        let results = engine.run(batch);
        assert_eq!(results.len(), 12);
        for (i, result) in results.iter().enumerate() {
            if i % 2 == 0 {
                assert_eq!(result.name, format!("b{i}"));
                let BatchOutcome::Boolean {
                    certain,
                    possible,
                    solver,
                } = &result.outcome
                else {
                    panic!("expected a Boolean outcome for {}", result.name);
                };
                assert!(!certain && *possible);
                assert_eq!(*solver, "rewriting");
            } else {
                assert_eq!(result.name, format!("f{i}"));
                let BatchOutcome::Answers(sets) = &result.outcome else {
                    panic!("expected answer sets for {}", result.name);
                };
                assert!(sets.certain.is_empty());
                assert_eq!(sets.possible.len(), 2);
            }
        }
        // All six Boolean repetitions share one classified engine.
        assert_eq!(engine.cached_engine_count(), 1);
        assert_eq!(engine.snapshot().fact_count(), 6);
        assert_eq!(engine.pool().thread_count(), 3);
    }

    #[test]
    fn refresh_tracks_epochs_and_keeps_classified_engines() {
        let mut db = catalog::conference_database();
        let mut engine = BatchEngine::new(db.snapshot(), ParPool::new(2));
        let query = catalog::conference().query;
        engine.answer("warm", &query);
        assert_eq!(engine.cached_engine_count(), 1);
        assert!(!engine.is_stale_for(&db));
        // An effective mutation bumps the database epoch; the frozen
        // snapshot is now detectably stale by one integer compare.
        db.insert_values("R", ["conf_new", "t_new"]).unwrap();
        assert!(engine.is_stale_for(&db));
        assert_ne!(engine.epoch(), db.epoch());
        engine.refresh(db.snapshot());
        assert!(!engine.is_stale_for(&db));
        assert_eq!(engine.epoch(), db.epoch());
        // Classification is data-independent: the memo survives the swap.
        assert_eq!(engine.cached_engine_count(), 1);
        assert_eq!(engine.snapshot().fact_count(), 7);
    }

    #[test]
    fn with_snapshot_forks_an_epoch_sharing_the_engine_memo() {
        let mut db = catalog::conference_database();
        let old = BatchEngine::new(db.snapshot(), ParPool::new(2));
        let query = catalog::conference().query;
        old.answer("warm", &query);
        assert_eq!(old.cached_engine_count(), 1);
        db.insert_values("R", ["conf_new", "t_new"]).unwrap();
        let new = old.with_snapshot(db.snapshot());
        // The fork shares the classified-engine memo and the pool, but the
        // old engine keeps answering on its frozen epoch.
        assert_eq!(new.cached_engine_count(), 1);
        assert_eq!(old.snapshot().fact_count(), 6);
        assert_eq!(new.snapshot().fact_count(), 7);
        assert_ne!(old.epoch(), new.epoch());
        assert_eq!(new.epoch(), db.epoch());
        new.answer("again", &query);
        assert_eq!(old.cached_engine_count(), 1, "memo is shared, not copied");
    }

    #[test]
    fn failing_queries_report_errors_without_stopping_the_batch() {
        let schema = cqa_data::Schema::from_relations([("R", 2, 1)])
            .unwrap()
            .into_shared();
        let self_join = ConjunctiveQuery::builder(schema.clone())
            .atom("R", [Term::var("x"), Term::var("y")])
            .atom("R", [Term::var("y"), Term::var("z")])
            .build()
            .unwrap();
        let mut db = cqa_data::UncertainDatabase::new(schema.clone());
        db.insert_values("R", ["a", "a"]).unwrap();
        let ok = ConjunctiveQuery::builder(schema)
            .atom("R", [Term::var("x"), Term::var("y")])
            .build()
            .unwrap();
        let engine = BatchEngine::new(db.snapshot(), ParPool::new(2));
        let results = engine.run(vec![("bad".into(), self_join), ("good".into(), ok.clone())]);
        assert!(matches!(results[0].outcome, BatchOutcome::Error(_)));
        assert!(
            matches!(
                results[1].outcome,
                BatchOutcome::Boolean { certain: true, .. }
            ),
            "R(a, a) is its own block: certain"
        );
        let single = engine.answer("again", &ok);
        assert_eq!(single.name, "again");
        assert!(matches!(single.outcome, BatchOutcome::Boolean { .. }));
    }
}
