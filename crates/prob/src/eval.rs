//! Evaluation of `PROBABILITY(q)` over BID databases (Definition 12).
//!
//! * [`probability_safe`] — the polynomial-time extensional plan for safe
//!   queries, following the `IsSafe` rules (independent join / independent
//!   project / disjoint project);
//! * [`probability_exact`] — exhaustive possible-world expansion, correct for
//!   every query but exponential in the number of blocks (used as the oracle
//!   and for unsafe queries on small inputs);
//! * [`probability_monte_carlo`] — an unbiased sampling estimator for large
//!   unsafe instances.

use crate::bid::BidDatabase;
use crate::safety::{applicable_rule, connected_components, SafetyRule};
use cqa_data::{Fact, UncertainDatabase, Value};
use cqa_query::{eval, substitute, ConjunctiveQuery, QueryError, Valuation};
use rand::Rng;

/// Exact `Pr(q)` by expanding all possible worlds.
///
/// Worlds are generated block by block: each block independently contributes
/// either one of its facts (with its probability) or no fact (with the
/// residual probability `1 - Σ`), which is exactly the BID semantics.
pub fn probability_exact(bid: &BidDatabase, query: &ConjunctiveQuery) -> f64 {
    let db = bid.database();
    let blocks: Vec<&[Fact]> = db.blocks().map(|b| b.facts()).collect();

    fn go(
        bid: &BidDatabase,
        query: &ConjunctiveQuery,
        blocks: &[&[Fact]],
        depth: usize,
        chosen: &mut Vec<Fact>,
        weight: f64,
        acc: &mut f64,
    ) {
        if weight <= 0.0 {
            return;
        }
        if depth == blocks.len() {
            let world = bid.database().with_facts(chosen.iter().cloned());
            if eval::naive::satisfies(&world, query) {
                *acc += weight;
            }
            return;
        }
        let facts = blocks[depth];
        let sum: f64 = facts.iter().map(|f| bid.probability(f)).sum();
        // Option 1: the block contributes no fact.
        if 1.0 - sum > 1e-12 {
            go(
                bid,
                query,
                blocks,
                depth + 1,
                chosen,
                weight * (1.0 - sum),
                acc,
            );
        }
        // Option 2: the block contributes one of its facts.
        for fact in facts {
            let p = bid.probability(fact);
            if p > 0.0 {
                chosen.push(fact.clone());
                go(bid, query, blocks, depth + 1, chosen, weight * p, acc);
                chosen.pop();
            }
        }
    }

    let mut acc = 0.0;
    let mut chosen = Vec::new();
    go(bid, query, &blocks, 0, &mut chosen, 1.0, &mut acc);
    acc
}

/// Polynomial-time evaluation of `Pr(q)` for **safe** queries, by the
/// extensional plan mirroring `IsSafe`. Returns an error for unsafe queries
/// (use [`probability_exact`] or [`probability_monte_carlo`] instead).
pub fn probability_safe(bid: &BidDatabase, query: &ConjunctiveQuery) -> Result<f64, QueryError> {
    query.require_boolean()?;
    query.require_self_join_free()?;
    let domain: Vec<Value> = bid.database().active_domain().into_iter().collect();
    evaluate(bid, query, &domain)
}

fn evaluate(
    bid: &BidDatabase,
    query: &ConjunctiveQuery,
    domain: &[Value],
) -> Result<f64, QueryError> {
    if query.is_empty() {
        return Ok(1.0);
    }
    match applicable_rule(query) {
        SafetyRule::GroundAtom => {
            // Pr of a single ground atom is the probability of that fact.
            let atom = query.atom(0);
            let fact = Valuation::new()
                .apply_atom(atom)
                .expect("ground atoms have no variables");
            Ok(bid.probability(&fact))
        }
        SafetyRule::IndependentJoin => {
            // Variable-disjoint components touch disjoint relations (the
            // query has no self-join), so they are independent: multiply.
            let mut p = 1.0;
            for component in connected_components(query) {
                p *= evaluate(bid, &component, domain)?;
            }
            Ok(p)
        }
        SafetyRule::IndependentProject(x) => {
            // Different constants for x select different blocks in every
            // relation (x is in every key): independent union.
            let mut none = 1.0;
            for a in domain {
                let grounded = substitute::substitute_var(query, &x, a);
                none *= 1.0 - evaluate(bid, &grounded, domain)?;
            }
            Ok(1.0 - none)
        }
        SafetyRule::DisjointProject(x) => {
            // All facts of the constant-key atom live in a single block, so
            // different constants for x are mutually exclusive: sum.
            let mut total = 0.0;
            for a in domain {
                let grounded = substitute::substitute_var(query, &x, a);
                total += evaluate(bid, &grounded, domain)?;
            }
            Ok(total.min(1.0))
        }
        SafetyRule::Unsafe => Err(QueryError::Unsupported {
            reason: "query is not safe: PROBABILITY(q) is ♯P-hard (Theorem 5); \
                     use probability_exact or probability_monte_carlo"
                .into(),
        }),
    }
}

/// Unbiased Monte-Carlo estimate of `Pr(q)` from `samples` independent
/// possible worlds drawn from the BID distribution.
pub fn probability_monte_carlo<R: Rng>(
    bid: &BidDatabase,
    query: &ConjunctiveQuery,
    samples: usize,
    rng: &mut R,
) -> f64 {
    if samples == 0 {
        return 0.0;
    }
    let db = bid.database();
    let blocks: Vec<&[Fact]> = db.blocks().map(|b| b.facts()).collect();
    let mut hits = 0usize;
    for _ in 0..samples {
        let mut facts: Vec<Fact> = Vec::new();
        for block in &blocks {
            let mut roll: f64 = rng.gen();
            for fact in block.iter() {
                let p = bid.probability(fact);
                if roll < p {
                    facts.push(fact.clone());
                    break;
                }
                roll -= p;
            }
        }
        let world = db.with_facts(facts);
        if eval::naive::satisfies(&world, query) {
            hits += 1;
        }
    }
    hits as f64 / samples as f64
}

/// Convenience: `Pr(q)` under the uniform-repair distribution of an
/// uncertain database (every repair equally likely), computed exactly by
/// enumerating repairs. This is the quantity discussed in the introduction
/// ("true in three of the four repairs").
pub fn probability_over_repairs(db: &UncertainDatabase, query: &ConjunctiveQuery) -> f64 {
    let mut total = 0usize;
    let mut satisfied = 0usize;
    for repair in db.repairs() {
        total += 1;
        if eval::naive::satisfies(&repair, query) {
            satisfied += 1;
        }
    }
    if total == 0 {
        0.0
    } else {
        satisfied as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_query::catalog;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn introduction_example_three_quarters() {
        // Figure 1 + Section 1: the query is true in 3 of the 4 repairs.
        let q = catalog::conference().query;
        let db = catalog::conference_database();
        let uniform = BidDatabase::uniform_over_repairs(&db);
        assert!((probability_over_repairs(&db, &q) - 0.75).abs() < 1e-9);
        assert!((probability_exact(&uniform, &q) - 0.75).abs() < 1e-9);
        // The conference query is safe, so the polynomial plan agrees.
        let safe = probability_safe(&uniform, &q).unwrap();
        assert!((safe - 0.75).abs() < 1e-9);
    }

    #[test]
    fn safe_plan_matches_exhaustive_on_random_instances() {
        let q = catalog::conference().query;
        let schema = q.schema().clone();
        for seed in 0u64..20 {
            let mut db = UncertainDatabase::new(schema.clone());
            let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(5);
            let mut next = || {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 33) as usize
            };
            let cities = ["Rome", "Paris", "Tokyo"];
            let ranks = ["A", "B"];
            for _ in 0..4 {
                db.insert_values(
                    "C",
                    [
                        format!("conf{}", next() % 3),
                        format!("year{}", next() % 2),
                        cities[next() % 3].to_string(),
                    ],
                )
                .unwrap();
                db.insert_values(
                    "R",
                    [format!("conf{}", next() % 3), ranks[next() % 2].to_string()],
                )
                .unwrap();
            }
            let bid = BidDatabase::uniform_over_repairs(&db);
            let exact = probability_exact(&bid, &q);
            let safe = probability_safe(&bid, &q).unwrap();
            assert!(
                (exact - safe).abs() < 1e-9,
                "seed {seed}: exact {exact} vs safe {safe}\n{db}"
            );
        }
    }

    #[test]
    fn unsafe_queries_are_rejected_by_the_safe_plan() {
        let q = catalog::fo_path2().query;
        let schema = q.schema().clone();
        let db = UncertainDatabase::new(schema);
        let bid = BidDatabase::uniform_over_repairs(&db);
        assert!(matches!(
            probability_safe(&bid, &q),
            Err(QueryError::Unsupported { .. })
        ));
    }

    #[test]
    fn partial_blocks_contribute_empty_world_mass() {
        // One fact with probability 0.4: Pr(R(a,b) present) = 0.4.
        let schema = cqa_data::Schema::from_relations([("R", 2, 1)])
            .unwrap()
            .into_shared();
        let mut db = UncertainDatabase::new(schema.clone());
        db.insert_values("R", ["a", "b"]).unwrap();
        let fact = db.facts().next().unwrap().clone();
        let bid = BidDatabase::new(db, [(fact, 0.4)]).unwrap();
        let q = ConjunctiveQuery::builder(schema)
            .atom("R", [cqa_query::Term::var("x"), cqa_query::Term::var("y")])
            .build()
            .unwrap();
        assert!((probability_exact(&bid, &q) - 0.4).abs() < 1e-9);
        assert!((probability_safe(&bid, &q).unwrap() - 0.4).abs() < 1e-9);
    }

    #[test]
    fn monte_carlo_is_close_on_a_simple_instance() {
        let q = catalog::conference().query;
        let db = catalog::conference_database();
        let bid = BidDatabase::uniform_over_repairs(&db);
        let mut rng = StdRng::seed_from_u64(42);
        let estimate = probability_monte_carlo(&bid, &q, 4000, &mut rng);
        assert!((estimate - 0.75).abs() < 0.05, "estimate {estimate}");
    }

    #[test]
    fn empty_query_has_probability_one() {
        let schema = cqa_data::Schema::from_relations([("R", 2, 1)])
            .unwrap()
            .into_shared();
        let db = UncertainDatabase::new(schema.clone());
        let bid = BidDatabase::uniform_over_repairs(&db);
        let q = ConjunctiveQuery::boolean(schema, Vec::new()).unwrap();
        assert!((probability_exact(&bid, &q) - 1.0).abs() < 1e-9);
        assert!((probability_safe(&bid, &q).unwrap() - 1.0).abs() < 1e-9);
    }
}
