//! Consistent query answering as a data-cleaning tool.
//!
//! A small human-resources database has conflicting information about
//! employees coming from two ingestion pipelines. Instead of repairing the
//! data eagerly, we query it with *certain answer* semantics: a fact is
//! reported only if it holds no matter how the key conflicts are resolved.
//! The input is written in the `cqa-parser` text format (the same format the
//! `certainty` CLI reads), and the non-Boolean query uses free variables.
//!
//! Run with `cargo run --example data_cleaning`.

use cqa::core::answers::certain_answers;
use cqa::core::classify::classify;
use cqa::parser::parse_document;

const DOCUMENT: &str = r#"
# employees(emp*, dept, city): key = employee id
relation employees(emp*, dept, city)
# departments(dept*, floor): key = department name
relation departments(dept*, floor)

employees(alice, sales, berlin)
employees(alice, sales, munich)      # conflicting city from a second feed
employees(bob, engineering, berlin)
employees(carol, sales, berlin)
employees(carol, marketing, berlin)  # conflicting department
departments(sales, 1)
departments(engineering, 2)
departments(marketing, 1)
departments(marketing, 3)            # conflicting floor

# Which employees certainly sit on floor 1?
certain floor1(e) :- employees(e, d, c), departments(d, 1)
"#;

fn main() {
    let doc = parse_document(DOCUMENT).expect("document parses");
    println!(
        "database: {} facts in {} blocks, {} repairs",
        doc.database.fact_count(),
        doc.database.block_count(),
        doc.database.repair_count().unwrap()
    );

    let (name, query) = &doc.queries[0];
    println!("query {name}: {query}");

    // Classify the Boolean core of the query (same atoms, no free variables):
    // this is the problem each candidate tuple's certainty check solves.
    let boolean_core =
        cqa::query::ConjunctiveQuery::boolean(query.schema().clone(), query.atoms().to_vec())
            .expect("same atoms, no free variables");
    println!(
        "classification of the Boolean core: {}",
        classify(&boolean_core).unwrap().class
    );

    let answers = certain_answers(query, &doc.database).expect("self-join-free query");
    println!("\npossible answers (true in SOME repair):");
    for tuple in &answers.possible {
        println!(
            "  {}",
            tuple
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        );
    }
    println!("certain answers (true in EVERY repair):");
    for tuple in &answers.certain {
        println!(
            "  {}",
            tuple
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        );
    }
    println!(
        "\n{} of {} possible answers survive the certainty filter.",
        answers.certain.len(),
        answers.possible.len()
    );
}
