//! Property suite for `cqa-stream`: incremental view maintenance must be
//! indistinguishable from full recomputation.
//!
//! Each case drives a seeded interleaving of `insert` / `remove` /
//! `remove-block` mutations over a small two-relation join schema and,
//! after **every** delta, repairs three maintained views — sequential,
//! 2-thread sharded and 7-thread sharded (with a tiny shard cutoff so the
//! parallel paths actually shard), the middle one with a tiny damage
//! threshold so the full-recompute fallback is exercised too — and asserts
//! each is byte-identical to a from-scratch reference evaluation of the
//! same snapshot. Values are drawn from a deliberately small domain so the
//! script keeps revisiting the same blocks: spoiler inserts, block
//! evictions and re-inserts of previously removed facts all occur.

use cqa::core::answers::certain_answers;
use cqa::data::{ChangeSet, Delta, Fact, Schema, UncertainDatabase, Value};
use cqa::par::ParPool;
use cqa::query::{ConjunctiveQuery, Term, Variable};
use cqa::stream::{MaterializedView, ViewMaintainer};
use proptest::prelude::*;
use std::sync::{Arc, OnceLock};

/// Mutations per case: enough for several grow/shrink phases over the
/// small domain, small enough to keep 256 cases fast.
const OPS_PER_CASE: usize = 12;

fn schema() -> Arc<Schema> {
    Schema::from_relations([("R", 2, 1), ("S", 2, 1)])
        .unwrap()
        .into_shared()
}

/// q(x) :- R(x, y), S(y, z): the join makes certainty depend on *every*
/// alternative in a key block agreeing, so removals can create certainty
/// and inserts can destroy it — both repair directions are exercised.
fn query(schema: &Arc<Schema>) -> ConjunctiveQuery {
    ConjunctiveQuery::builder(schema.clone())
        .atom("R", [Term::var("x"), Term::var("y")])
        .atom("S", [Term::var("y"), Term::var("z")])
        .free([Variable::new("x")])
        .build()
        .unwrap()
}

/// The three maintainers under test share long-lived pools across proptest
/// cases (spawning fresh OS threads 256×3 times would dominate the run).
fn maintainers() -> Vec<ViewMaintainer> {
    static POOLS: OnceLock<(ParPool, ParPool)> = OnceLock::new();
    let (two, seven) = POOLS.get_or_init(|| (ParPool::new(2), ParPool::new(7)));
    vec![
        ViewMaintainer::new(),
        // Tiny threshold: large-damage steps take the fallback path.
        ViewMaintainer::with_pool(two.clone())
            .with_shard_cutoff(1)
            .with_threshold(4),
        ViewMaintainer::with_pool(seven.clone()).with_shard_cutoff(1),
    ]
}

struct Script {
    state: u64,
}

impl Script {
    fn new(seed: u64) -> Script {
        Script {
            state: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1,
        }
    }

    fn next(&mut self, bound: u64) -> u64 {
        self.state ^= self.state << 13;
        self.state ^= self.state >> 7;
        self.state ^= self.state << 17;
        self.state % bound
    }

    /// A fact over the small domain: 4 keys × 3 dependent values per
    /// relation, with R's dependent column ranging over S's key column so
    /// the join actually connects.
    fn fact(&mut self, schema: &Arc<Schema>) -> Fact {
        let relation = if self.next(2) == 0 { "R" } else { "S" };
        let rel = schema.relation_id(relation).unwrap();
        let key = Value::str(format!("k{}", self.next(4)));
        let dep = if relation == "R" {
            Value::str(format!("k{}", self.next(4)))
        } else {
            Value::Int(self.next(3) as i64)
        };
        Fact::checked(schema, rel, vec![key, dep]).unwrap()
    }
}

/// Applies one scripted mutation to `db`, recording its exact deltas —
/// the same capture discipline the server's write path uses.
fn apply_op(db: &mut UncertainDatabase, script: &mut Script, changes: &mut ChangeSet) {
    let schema = db.schema().clone();
    let fact = script.fact(&schema);
    match script.next(4) {
        // Inserts twice as likely as each removal flavor: the database
        // grows, shrinks and regrows over the script.
        0 | 1 => {
            if db.insert(fact.clone()).unwrap() {
                changes.record(Delta::Inserted(fact));
            }
        }
        2 => {
            let emptied = db
                .block_of(&fact)
                .is_some_and(cqa::data::Block::is_singleton);
            if db.remove_fact(&fact) {
                changes.record(Delta::Removed {
                    fact,
                    emptied_block: emptied,
                });
            }
        }
        _ => {
            let members: Vec<Fact> = db
                .block_with_key(fact.relation(), fact.key(&schema))
                .map(|block| block.facts().to_vec())
                .unwrap_or_default();
            if db.remove_block_of(&fact) {
                let last = members.len();
                for (i, member) in members.into_iter().enumerate() {
                    changes.record(Delta::Removed {
                        fact: member,
                        emptied_block: i + 1 == last,
                    });
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// After every delta of a random mutation interleaving, each repaired
    /// view equals a from-scratch evaluation of the same snapshot —
    /// certain and possible sets alike, at 1, 2 and 7 threads.
    #[test]
    fn incremental_view_matches_full_recompute(seed in 0u64..u64::MAX) {
        let schema = schema();
        let query = query(&schema);
        let mut db = UncertainDatabase::new(schema.clone());
        let mut script = Script::new(seed);

        // A seeded non-empty starting state, then registration.
        for _ in 0..script.next(6) {
            let fact = script.fact(&schema);
            let _ = db.insert(fact);
        }
        let maintainers = maintainers();
        let mut views = Vec::new();
        for maintainer in &maintainers {
            let mut view = MaterializedView::new("v", &query).expect("register view");
            maintainer
                .initialize(&mut view, &db.snapshot())
                .expect("initial decision");
            views.push(view);
        }

        for step in 0..OPS_PER_CASE {
            let mut changes = ChangeSet::new();
            apply_op(&mut db, &mut script, &mut changes);
            let snapshot = db.snapshot();
            let reference = certain_answers(&query, snapshot.database())
                .expect("reference evaluation");
            for (view, maintainer) in views.iter_mut().zip(&maintainers) {
                maintainer
                    .repair(view, &snapshot, &changes)
                    .expect("incremental repair");
                prop_assert_eq!(
                    view.certain(),
                    &reference.certain,
                    "certain answers diverged at step {} (seed {})",
                    step,
                    seed
                );
                prop_assert_eq!(
                    view.possible(),
                    &reference.possible,
                    "possible answers diverged at step {} (seed {})",
                    step,
                    seed
                );
                prop_assert_eq!(view.epoch(), snapshot.epoch());
            }
        }
    }
}
