//! Reachability, fixed-length cycles, and long-cycle detection.
//!
//! These are the graph subroutines used by the polynomial-time algorithm of
//! **Theorem 4**: its proof decides, inside each strong component of the
//! constant graph, whether there is (a) a cycle of length exactly `k` that is
//! *not* encoded in the `S_k` relation, or (b) an elementary cycle of length
//! strictly greater than `k`. Case (b) is decided with exactly the
//! equivalence stated in the proof: a path `a1, ..., ak, ak+1` with
//! `a1 != ak+1` together with a return path from `ak+1` to `a1` that uses no
//! edge leaving `{a1, ..., ak}`.

use crate::{DiGraph, NodeId};

/// Breadth-first reachability from `from` to `to`, optionally forbidding a set
/// of vertices from being traversed (they may still be the target).
pub fn is_reachable<N>(graph: &DiGraph<N>, from: NodeId, to: NodeId, forbidden: &[NodeId]) -> bool {
    if from == to {
        return true;
    }
    let n = graph.node_count();
    let mut blocked = vec![false; n];
    for f in forbidden {
        blocked[f.index()] = true;
    }
    let mut visited = vec![false; n];
    let mut queue = std::collections::VecDeque::new();
    visited[from.index()] = true;
    queue.push_back(from);
    while let Some(v) = queue.pop_front() {
        // A blocked vertex may be entered as the target but never traversed.
        if v != from && blocked[v.index()] {
            continue;
        }
        for &w in graph.successors(v) {
            if w == to {
                return true;
            }
            if !visited[w.index()] {
                visited[w.index()] = true;
                queue.push_back(w);
            }
        }
    }
    false
}

/// All vertices reachable from `from` (including `from` itself).
pub fn reachable_set<N>(graph: &DiGraph<N>, from: NodeId) -> Vec<NodeId> {
    let n = graph.node_count();
    let mut visited = vec![false; n];
    let mut queue = std::collections::VecDeque::new();
    visited[from.index()] = true;
    queue.push_back(from);
    let mut out = vec![from];
    while let Some(v) = queue.pop_front() {
        for &w in graph.successors(v) {
            if !visited[w.index()] {
                visited[w.index()] = true;
                queue.push_back(w);
                out.push(w);
            }
        }
    }
    out
}

/// Calls `visit` for every elementary cycle of length exactly `k` that starts
/// at its smallest vertex (each cycle is visited once, as its vertex list).
/// If `visit` returns `true` the search stops early and the function returns
/// `true`; otherwise it returns `false` after exhausting all cycles.
///
/// Runs in `O(|V|^k)` for fixed `k`, which is the bound used in the proof of
/// Theorem 4 ("the number of cycles of length k is at most |V|^k").
pub fn for_each_cycle_of_length<N, F>(graph: &DiGraph<N>, k: usize, mut visit: F) -> bool
where
    F: FnMut(&[NodeId]) -> bool,
{
    if k == 0 {
        return false;
    }
    let n = graph.node_count();
    let mut path: Vec<NodeId> = Vec::with_capacity(k);
    let mut on_path = vec![false; n];

    // DFS restricted to vertices > start (canonical rotation) and to depth k.
    // `path` always contains the simple path built so far, ending in the
    // vertex currently being expanded.
    fn dfs<N, F>(
        graph: &DiGraph<N>,
        start: NodeId,
        k: usize,
        path: &mut Vec<NodeId>,
        on_path: &mut [bool],
        visit: &mut F,
    ) -> bool
    where
        F: FnMut(&[NodeId]) -> bool,
    {
        let current = *path.last().expect("non-empty path");
        if path.len() == k {
            // A cycle of length exactly k closes iff the last vertex has an
            // edge back to the start.
            return graph.has_edge(current, start) && visit(path);
        }
        for &w in graph.successors(current) {
            if w.index() > start.index() && !on_path[w.index()] {
                on_path[w.index()] = true;
                path.push(w);
                if dfs(graph, start, k, path, on_path, visit) {
                    return true;
                }
                path.pop();
                on_path[w.index()] = false;
            }
        }
        false
    }

    for s in 0..n {
        let start = NodeId::from_index(s);
        on_path[s] = true;
        path.push(start);
        if dfs(graph, start, k, &mut path, &mut on_path, &mut visit) {
            return true;
        }
        path.pop();
        on_path[s] = false;
    }
    false
}

/// Collects all elementary cycles of length exactly `k` (canonical rotation,
/// smallest vertex first).
pub fn cycles_of_length_exact<N>(graph: &DiGraph<N>, k: usize) -> Vec<Vec<NodeId>> {
    let mut out = Vec::new();
    for_each_cycle_of_length(graph, k, |cycle| {
        out.push(cycle.to_vec());
        false
    });
    out
}

/// Decides whether the graph contains an **elementary cycle of length
/// strictly greater than `k`**, using the criterion from the proof of
/// Theorem 4:
///
/// > `Si` contains an elementary cycle of length greater than `k` iff `Si`
/// > contains a path `a1, a2, ..., ak, ak+1` such that `a1 != ak+1` and `Si`
/// > contains a path from `ak+1` to `a1` that contains no edge from
/// > `{a1, ..., ak} × V`.
///
/// We enumerate **simple** paths of `k` edges (`a1..ak+1` pairwise distinct)
/// and test reachability in the graph with `a2..ak` removed as traversable
/// vertices (removing a vertex forbids exactly its outgoing edges on any
/// return path that would pass through it).
pub fn has_elementary_cycle_longer_than<N>(graph: &DiGraph<N>, k: usize) -> bool {
    let n = graph.node_count();
    if n == 0 {
        return false;
    }

    // DFS over simple paths with exactly k edges.
    fn dfs<N>(graph: &DiGraph<N>, path: &mut Vec<NodeId>, on_path: &mut [bool], k: usize) -> bool {
        if path.len() == k + 1 {
            let a1 = path[0];
            let last = *path.last().expect("non-empty path");
            // Forbid traversing the interior vertices a2..ak and the start a1
            // (a1 may only be the target); a return path then uses no edge
            // leaving {a1, ..., ak}.
            let forbidden: Vec<NodeId> = path[..k].to_vec();
            return is_reachable(graph, last, a1, &forbidden);
        }
        let current = *path.last().expect("non-empty path");
        for &w in graph.successors(current) {
            if !on_path[w.index()] {
                on_path[w.index()] = true;
                path.push(w);
                if dfs(graph, path, on_path, k) {
                    return true;
                }
                path.pop();
                on_path[w.index()] = false;
            }
        }
        false
    }

    let mut on_path = vec![false; n];
    for s in 0..n {
        let start = NodeId::from_index(s);
        let mut path = vec![start];
        on_path[s] = true;
        if dfs(graph, &mut path, &mut on_path, k) {
            return true;
        }
        on_path[s] = false;
    }
    false
}

/// Returns the length of some shortest path from `from` to `to` (in edges),
/// or `None` if unreachable.
pub fn shortest_path_len<N>(graph: &DiGraph<N>, from: NodeId, to: NodeId) -> Option<usize> {
    if from == to {
        return Some(0);
    }
    let n = graph.node_count();
    let mut dist = vec![usize::MAX; n];
    dist[from.index()] = 0;
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(from);
    while let Some(v) = queue.pop_front() {
        for &w in graph.successors(v) {
            if dist[w.index()] == usize::MAX {
                dist[w.index()] = dist[v.index()] + 1;
                if w == to {
                    return Some(dist[w.index()]);
                }
                queue.push_back(w);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cycles::elementary_cycles;

    fn graph(edges: &[(u32, u32)], nodes: u32) -> DiGraph<u32> {
        let mut g = DiGraph::new();
        for i in 0..nodes {
            g.add_node(i);
        }
        for &(a, b) in edges {
            g.add_edge(NodeId(a), NodeId(b));
        }
        g
    }

    #[test]
    fn reachability_with_forbidden_vertices() {
        let g = graph(&[(0, 1), (1, 2), (0, 3), (3, 2)], 4);
        assert!(is_reachable(&g, NodeId(0), NodeId(2), &[]));
        assert!(is_reachable(&g, NodeId(0), NodeId(2), &[NodeId(1)]));
        assert!(!is_reachable(
            &g,
            NodeId(0),
            NodeId(2),
            &[NodeId(1), NodeId(3)]
        ));
        assert!(!is_reachable(&g, NodeId(2), NodeId(0), &[]));
        assert!(is_reachable(&g, NodeId(2), NodeId(2), &[]));
    }

    #[test]
    fn reachable_set_is_transitive_closure_row() {
        let g = graph(&[(0, 1), (1, 2), (3, 0)], 4);
        let mut set = reachable_set(&g, NodeId(0));
        set.sort();
        assert_eq!(set, vec![NodeId(0), NodeId(1), NodeId(2)]);
    }

    #[test]
    fn fixed_length_cycle_enumeration_matches_general_enumeration() {
        let g = graph(&[(0, 1), (1, 0), (1, 2), (2, 1), (0, 2), (2, 0)], 3);
        let all = elementary_cycles(&g, None);
        for k in 1..=3 {
            let expected = all.iter().filter(|c| c.len() == k).count();
            assert_eq!(cycles_of_length_exact(&g, k).len(), expected, "length {k}");
        }
    }

    #[test]
    fn six_cycle_has_no_three_cycle_but_a_long_cycle() {
        // Directed 6-cycle: 0->1->2->3->4->5->0.
        let g = graph(&[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)], 6);
        assert!(cycles_of_length_exact(&g, 3).is_empty());
        assert_eq!(cycles_of_length_exact(&g, 6).len(), 1);
        assert!(has_elementary_cycle_longer_than(&g, 3));
        assert!(!has_elementary_cycle_longer_than(&g, 6));
    }

    #[test]
    fn two_triangles_sharing_a_vertex() {
        // Figure 7 (left/right) intuition: triangles 0-1-2 and 0-3-4 share vertex 0.
        let g = graph(&[(0, 1), (1, 2), (2, 0), (0, 3), (3, 4), (4, 0)], 5);
        assert_eq!(cycles_of_length_exact(&g, 3).len(), 2);
        // No elementary cycle can be longer than 3: the two triangles only
        // share a single vertex, and an elementary cycle may visit it once.
        assert!(!has_elementary_cycle_longer_than(&g, 3));
    }

    #[test]
    fn figure7_right_style_long_cycle() {
        // Two triangles sharing an *edge pattern* via distinct vertices allow a
        // 6-cycle: 0->1->2->3->4->5->0 plus chords 0->4 and 3->1 creating 3-cycles.
        let g = graph(
            &[
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 0),
                (3, 1),
                (0, 4),
            ],
            6,
        );
        assert!(has_elementary_cycle_longer_than(&g, 3));
    }

    #[test]
    fn shortest_path() {
        let g = graph(&[(0, 1), (1, 2), (2, 3), (0, 3)], 4);
        assert_eq!(shortest_path_len(&g, NodeId(0), NodeId(3)), Some(1));
        assert_eq!(shortest_path_len(&g, NodeId(1), NodeId(3)), Some(2));
        assert_eq!(shortest_path_len(&g, NodeId(3), NodeId(0)), None);
        assert_eq!(shortest_path_len(&g, NodeId(2), NodeId(2)), Some(0));
    }

    #[test]
    fn for_each_cycle_early_exit() {
        let g = graph(&[(0, 1), (1, 0), (1, 2), (2, 1)], 3);
        let mut seen = 0;
        let stopped = for_each_cycle_of_length(&g, 2, |_| {
            seen += 1;
            true
        });
        assert!(stopped);
        assert_eq!(seen, 1);
    }
}
