//! The tractability-frontier classifier.
//!
//! Given a Boolean conjunctive query without self-joins, `classify` places
//! `CERTAINTY(q)` in one of the regions charted by the paper:
//!
//! | attack graph | complexity | source |
//! |---|---|---|
//! | acyclic | first-order expressible (hence in AC⁰ ⊆ P) | Theorem 1 |
//! | strong cycle | coNP-complete | Theorem 2 |
//! | only weak cycles, all terminal | in P, not FO | Theorem 3 |
//! | only weak cycles, some non-terminal, query is `AC(k)` | in P, not FO | Theorem 4 |
//! | only weak cycles, some non-terminal, otherwise | open (conjectured P) | Conjecture 1 |
//!
//! Queries that are not acyclic (no join tree) fall outside the attack-graph
//! framework; the cycle-query family `C(k)` (`k ≥ 3`) is still classified as
//! tractable via Corollary 1, and everything else is reported as
//! [`ComplexityClass::OutsideAcyclicScope`].

use crate::attack::{AttackGraph, CycleAnalysis};
use crate::solvers::cycle_query::{detect_cycle_query, CycleQueryShape};
use cqa_query::{join_tree, ConjunctiveQuery, QueryError};
use std::fmt;

/// Why a non-first-order query is nevertheless tractable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PtimeReason {
    /// All attack-graph cycles are weak and terminal (Theorem 3).
    WeakTerminalCycles,
    /// The query is (isomorphic to) `AC(k)` (Theorem 4).
    CycleQueryAc {
        /// The `k` of `AC(k)`.
        k: usize,
    },
    /// The query is (isomorphic to) `C(k)` with `k ≥ 3` (Corollary 1);
    /// such queries are cyclic, so the attack-graph framework does not apply,
    /// but tractability follows from the Lemma 9 reduction to `AC(k)`.
    CycleQueryC {
        /// The `k` of `C(k)`.
        k: usize,
    },
}

/// The complexity region of `CERTAINTY(q)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ComplexityClass {
    /// The attack graph is acyclic: `CERTAINTY(q)` has a certain first-order
    /// rewriting (Theorem 1).
    FirstOrderExpressible,
    /// In P but (for the attack-graph cases) provably not first-order
    /// expressible.
    PolynomialTime(PtimeReason),
    /// The attack graph has a strong cycle: coNP-complete (Theorem 2).
    CoNpComplete,
    /// Only weak cycles, at least one non-terminal, and the query is not
    /// `AC(k)`: not covered by Theorems 3–4; Conjecture 1 says it is in P.
    OpenConjecturedPtime,
    /// The query is cyclic (no join tree) and not `C(k)`: outside the scope
    /// of the paper's acyclic classification.
    OutsideAcyclicScope,
}

impl ComplexityClass {
    /// True iff the classification guarantees a polynomial-time algorithm
    /// (first-order expressible queries included).
    pub fn is_tractable(&self) -> bool {
        matches!(
            self,
            ComplexityClass::FirstOrderExpressible | ComplexityClass::PolynomialTime(_)
        )
    }
}

impl fmt::Display for ComplexityClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ComplexityClass::FirstOrderExpressible => write!(f, "first-order expressible"),
            ComplexityClass::PolynomialTime(reason) => match reason {
                PtimeReason::WeakTerminalCycles => {
                    write!(f, "in P (weak terminal cycles, Theorem 3), not FO")
                }
                PtimeReason::CycleQueryAc { k } => {
                    write!(f, "in P (AC({k}), Theorem 4), not FO")
                }
                PtimeReason::CycleQueryC { k } => {
                    write!(f, "in P (C({k}), Corollary 1)")
                }
            },
            ComplexityClass::CoNpComplete => write!(f, "coNP-complete"),
            ComplexityClass::OpenConjecturedPtime => {
                write!(f, "open (conjectured in P, Conjecture 1)")
            }
            ComplexityClass::OutsideAcyclicScope => {
                write!(f, "outside the acyclic classification")
            }
        }
    }
}

/// The result of classification: the complexity region plus the evidence
/// (attack graph and cycle analysis) it was derived from.
#[derive(Clone, Debug)]
pub struct Classification {
    /// The complexity region.
    pub class: ComplexityClass,
    /// The attack graph, when the query is acyclic.
    pub attack_graph: Option<AttackGraph>,
    /// The cycle analysis of the attack graph, when available.
    pub cycles: Option<CycleAnalysis>,
    /// The detected `C(k)` / `AC(k)` shape, when applicable.
    pub cycle_query_shape: Option<CycleQueryShape>,
}

/// Classifies `CERTAINTY(q)` for a Boolean conjunctive query without
/// self-joins.
///
/// Returns an error for non-Boolean queries or queries with self-joins
/// (the paper's standing assumptions).
pub fn classify(query: &ConjunctiveQuery) -> Result<Classification, QueryError> {
    query.require_boolean()?;
    query.require_self_join_free()?;

    let shape = detect_cycle_query(query);

    if !join_tree::is_acyclic(query) {
        // Cyclic queries: the attack-graph framework does not apply, but
        // C(k) (k >= 3) is covered by Corollary 1.
        let class = match &shape {
            Some(s) if s.s_atom.is_none() => {
                ComplexityClass::PolynomialTime(PtimeReason::CycleQueryC { k: s.k })
            }
            _ => ComplexityClass::OutsideAcyclicScope,
        };
        return Ok(Classification {
            class,
            attack_graph: None,
            cycles: None,
            cycle_query_shape: shape,
        });
    }

    let attack_graph = AttackGraph::build(query)?;
    let cycles = CycleAnalysis::analyze(&attack_graph);

    let class = if !cycles.has_cycle() {
        ComplexityClass::FirstOrderExpressible
    } else if cycles.has_strong_cycle() {
        ComplexityClass::CoNpComplete
    } else if cycles.all_cycles_terminal() {
        ComplexityClass::PolynomialTime(PtimeReason::WeakTerminalCycles)
    } else if let Some(s) = shape.as_ref().filter(|s| s.s_atom.is_some()) {
        ComplexityClass::PolynomialTime(PtimeReason::CycleQueryAc { k: s.k })
    } else {
        ComplexityClass::OpenConjecturedPtime
    };

    Ok(Classification {
        class,
        attack_graph: Some(attack_graph),
        cycles: Some(cycles),
        cycle_query_shape: shape,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_query::catalog;

    fn class_of(q: &ConjunctiveQuery) -> ComplexityClass {
        classify(q).unwrap().class
    }

    #[test]
    fn theorem1_region() {
        assert_eq!(
            class_of(&catalog::conference().query),
            ComplexityClass::FirstOrderExpressible
        );
        assert_eq!(
            class_of(&catalog::fo_path2().query),
            ComplexityClass::FirstOrderExpressible
        );
        assert_eq!(
            class_of(&catalog::fo_path3().query),
            ComplexityClass::FirstOrderExpressible
        );
    }

    #[test]
    fn theorem2_region() {
        assert_eq!(
            class_of(&catalog::q1().query),
            ComplexityClass::CoNpComplete
        );
        assert_eq!(
            class_of(&catalog::q0().query),
            ComplexityClass::CoNpComplete
        );
    }

    #[test]
    fn theorem3_region() {
        assert_eq!(
            class_of(&catalog::fig4().query),
            ComplexityClass::PolynomialTime(PtimeReason::WeakTerminalCycles)
        );
        assert_eq!(
            class_of(&catalog::c2_swap().query),
            ComplexityClass::PolynomialTime(PtimeReason::WeakTerminalCycles)
        );
    }

    #[test]
    fn theorem4_and_corollary1_regions() {
        for k in 2..=5 {
            assert_eq!(
                class_of(&catalog::ac_k(k).query),
                ComplexityClass::PolynomialTime(PtimeReason::CycleQueryAc { k }),
                "AC({k})"
            );
        }
        for k in 3..=5 {
            assert_eq!(
                class_of(&catalog::c_k(k).query),
                ComplexityClass::PolynomialTime(PtimeReason::CycleQueryC { k }),
                "C({k})"
            );
        }
        // C(2) is acyclic, so it is classified through the attack graph
        // (weak terminal cycle) rather than through Corollary 1.
        assert_eq!(
            class_of(&catalog::c_k(2).query),
            ComplexityClass::PolynomialTime(PtimeReason::WeakTerminalCycles)
        );
    }

    #[test]
    fn ac2_is_classified_via_theorem4_and_is_not_terminal() {
        // AC(2)'s attack graph has the weak cycle R1 <-> R2, but both atoms
        // also attack S2, so the cycle is non-terminal: Theorem 3 does not
        // apply and the classifier must fall through to Theorem 4.
        let c = classify(&catalog::ac_k(2).query).unwrap();
        assert_eq!(
            c.class,
            ComplexityClass::PolynomialTime(PtimeReason::CycleQueryAc { k: 2 })
        );
        assert!(!c.cycles.unwrap().all_cycles_terminal());
    }

    #[test]
    fn self_joins_are_rejected() {
        let schema = cqa_data::Schema::from_relations([("R", 2, 1)])
            .unwrap()
            .into_shared();
        let q = ConjunctiveQuery::builder(schema)
            .atom("R", [cqa_query::Term::var("x"), cqa_query::Term::var("y")])
            .atom("R", [cqa_query::Term::var("y"), cqa_query::Term::var("x")])
            .build()
            .unwrap();
        assert!(matches!(classify(&q), Err(QueryError::SelfJoin { .. })));
    }

    #[test]
    fn open_region_exists() {
        // A query with weak non-terminal cycles that is not AC(k): take AC(2)
        // and give S2 an extra private variable (so it is no longer all-key
        // over exactly the cycle variables). Classification should land in
        // the open region (or another sound region) — crucially it must not
        // be classified as FO or coNP-complete without a strong cycle.
        let schema = cqa_data::Schema::from_relations([("R1", 2, 1), ("R2", 2, 1), ("S", 3, 3)])
            .unwrap()
            .into_shared();
        let q = ConjunctiveQuery::builder(schema)
            .atom(
                "R1",
                [cqa_query::Term::var("x1"), cqa_query::Term::var("x2")],
            )
            .atom(
                "R2",
                [cqa_query::Term::var("x2"), cqa_query::Term::var("x1")],
            )
            .atom(
                "S",
                [
                    cqa_query::Term::var("x1"),
                    cqa_query::Term::var("x2"),
                    cqa_query::Term::var("w"),
                ],
            )
            .build()
            .unwrap();
        let c = classify(&q).unwrap();
        assert!(
            matches!(
                c.class,
                ComplexityClass::OpenConjecturedPtime | ComplexityClass::PolynomialTime(_)
            ),
            "got {:?}",
            c.class
        );
    }

    #[test]
    fn display_strings_mention_the_theorems() {
        assert!(
            ComplexityClass::PolynomialTime(PtimeReason::WeakTerminalCycles)
                .to_string()
                .contains("Theorem 3")
        );
        assert!(
            ComplexityClass::PolynomialTime(PtimeReason::CycleQueryAc { k: 3 })
                .to_string()
                .contains("Theorem 4")
        );
        assert!(ComplexityClass::CoNpComplete.to_string().contains("coNP"));
        assert!(ComplexityClass::FirstOrderExpressible.is_tractable());
        assert!(!ComplexityClass::CoNpComplete.is_tractable());
    }
}
