//! Variables and terms.

use cqa_data::Value;
use std::fmt;
use std::sync::Arc;

/// A query variable.
///
/// Variables are identified by name; cloning is cheap (reference counted).
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Variable(Arc<str>);

impl Variable {
    /// Creates a variable with the given name.
    pub fn new(name: impl AsRef<str>) -> Self {
        Variable(Arc::from(name.as_ref()))
    }

    /// The variable's name.
    pub fn name(&self) -> &str {
        &self.0
    }

    /// Creates the indexed variable `x1`, `x2`, … used by the `C(k)` /
    /// `AC(k)` query families (Definition 8 of the paper).
    pub fn indexed(prefix: &str, i: usize) -> Self {
        Variable::new(format!("{prefix}{i}"))
    }
}

impl fmt::Display for Variable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Debug for Variable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "?{}", self.0)
    }
}

impl From<&str> for Variable {
    fn from(s: &str) -> Self {
        Variable::new(s)
    }
}

/// A term: either a variable or a constant.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum Term {
    /// A variable occurrence.
    Var(Variable),
    /// A constant occurrence.
    Const(Value),
}

impl Term {
    /// Creates a variable term.
    pub fn var(name: impl AsRef<str>) -> Self {
        Term::Var(Variable::new(name))
    }

    /// Creates a constant term.
    pub fn constant(value: impl Into<Value>) -> Self {
        Term::Const(value.into())
    }

    /// Returns the variable if this term is one.
    pub fn as_var(&self) -> Option<&Variable> {
        match self {
            Term::Var(v) => Some(v),
            Term::Const(_) => None,
        }
    }

    /// Returns the constant if this term is one.
    pub fn as_const(&self) -> Option<&Value> {
        match self {
            Term::Var(_) => None,
            Term::Const(c) => Some(c),
        }
    }

    /// True iff the term is a variable.
    pub fn is_var(&self) -> bool {
        matches!(self, Term::Var(_))
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Const(c) => write!(f, "'{c}'"),
        }
    }
}

impl From<Variable> for Term {
    fn from(v: Variable) -> Self {
        Term::Var(v)
    }
}

impl From<Value> for Term {
    fn from(v: Value) -> Self {
        Term::Const(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variables_compare_by_name() {
        assert_eq!(Variable::new("x"), Variable::from("x"));
        assert_ne!(Variable::new("x"), Variable::new("y"));
        assert_eq!(Variable::indexed("x", 3).name(), "x3");
    }

    #[test]
    fn term_accessors() {
        let v = Term::var("x");
        let c = Term::constant("Rome");
        assert!(v.is_var());
        assert!(!c.is_var());
        assert_eq!(v.as_var().unwrap().name(), "x");
        assert_eq!(c.as_const().unwrap(), &Value::str("Rome"));
        assert!(v.as_const().is_none());
        assert!(c.as_var().is_none());
    }

    #[test]
    fn display_distinguishes_vars_and_constants() {
        assert_eq!(Term::var("x").to_string(), "x");
        assert_eq!(Term::constant("Rome").to_string(), "'Rome'");
        assert_eq!(Term::constant(7i64).to_string(), "'7'");
    }
}
